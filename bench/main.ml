(** Benchmark and figure-regeneration harness.

    Usage: [dune exec bench/main.exe] (everything), or with an argument:
    - [figures]  — regenerate the paper's Figures 1-3;
    - [time]     — Bechamel micro-benchmarks (one per experiment table);
    - [sweep]    — scaling sweeps (enum size, macro nesting depth);
    - [penalty]  — the compile-time-penalty table (expansion vs. the
      parse of already-expanded code: the cost the paper says macros
      trade for zero runtime cost).

    The paper's evaluation is qualitative (Figures 1-3 plus worked
    examples); the quantitative tables here measure the implied claims:
    macro processing is a compile-time-only cost, expansion scales
    linearly, and token substitution (CPP) is cheaper but unsafe. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let rule title = Printf.printf "\n%s\n%s\n" title (String.make 72 '-')

let run_figures () =
  rule "Figure 1: two-dimensional categorization of macro systems";
  Printf.printf "  %-28s %-14s %-30s %-26s %s\n" "Programmability \\ Basis"
    "Character" "Token" "Syntax" "Semantic";
  List.iter
    (fun (r : Ms2.Figures.fig1_row) ->
      Printf.printf "  %-28s %-14s %-30s %-26s %s\n" r.programmability
        r.character r.token r.syntax r.semantic)
    Ms2.Figures.figure1_table;
  Printf.printf "\n  Live witnesses:\n";
  Printf.printf
    "    character substitution (RE = x on \"int CORE = RE;\"):\n\
    \      %s   <- corrupts the unrelated identifier\n"
    (Ms2.Figures.char_witness ());
  Printf.printf "    MUL(A, B) = A * B on A = x + y, B = m + n:\n";
  Printf.printf "      token substitution (ms2.cpp): %s   <- wrong parse\n"
    (Ms2.Figures.cpp_witness ());
  Printf.printf
    "      syntax macros (ms2.core):     %s   <- tree-level safety\n"
    (Ms2.Figures.ms2_witness ());

  rule "Figure 2: parses of the template `[int $y;] by the AST type of y";
  Printf.printf "  %-20s %s\n" "AST type of y" "Parse";
  List.iter
    (fun (ty, parse) -> Printf.printf "  %-20s %s\n" ty parse)
    (Ms2.Figures.figure2 ());

  rule
    "Figure 3: parses of `{int x; $ph1 $ph2 return(x);} by placeholder \
     types";
  Printf.printf "  %-6s %-6s %s\n" "ph1" "ph2" "Parse";
  List.iter
    (fun (t1, t2, parse) -> Printf.printf "  %-6s %-6s %s\n" t1 t2 parse)
    (Ms2.Figures.figure3 ())

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let quota =
  match Sys.getenv_opt "MS2_BENCH_QUOTA" with
  | Some s -> float_of_string s
  | None -> 0.5

(* BENCH_*.json trackers are published atomically: render into a
   same-directory temp file, then rename it into place (the same
   contract as {!Ms2_support.Atomic_io}), so an interrupted bench run
   never leaves a truncated tracker where the previous good one was. *)
let open_tracker path = open_out (path ^ ".tmp")

let close_tracker path oc =
  close_out oc;
  Sys.rename (path ^ ".tmp") path

let measure_tests tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

(* estimated ns/run for each test, sorted by name *)
let estimates results : (string * float) list =
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let pp_time ppf ns =
  if ns >= 1e9 then Fmt.pf ppf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Fmt.pf ppf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.pf ppf "%8.2f us" (ns /. 1e3)
  else Fmt.pf ppf "%8.2f ns" ns

let print_estimates title results =
  rule title;
  List.iter
    (fun (name, est) -> Fmt.pr "  %-48s %a/run\n" name pp_time est)
    (estimates results)

(* ------------------------------------------------------------------ *)
(* Workload runners                                                    *)
(* ------------------------------------------------------------------ *)

let expand_run src () =
  match Ms2.Api.expand_string src with
  | Ok out -> Sys.opaque_identity (String.length out)
  | Error e -> failwith e

let parse_run src () =
  Sys.opaque_identity
    (List.length (Ms2_parser.Parser.program_of_string src))

let lex_run src () =
  Sys.opaque_identity (Array.length (Ms2_syntax.Lexer.tokenize src))

(* ------------------------------------------------------------------ *)
(* T1: pipeline stage costs on each paper example                      *)
(* ------------------------------------------------------------------ *)

let t1_tests () =
  let painting = Workloads.painting 8 in
  let myenum = Workloads.myenum 8 in
  let exceptions = Workloads.exceptions 4 in
  Test.make_grouped ~name:"T1"
    [ Test.make ~name:"lex: myenum source" (Staged.stage (lex_run myenum));
      Test.make ~name:"parse+check: myenum source"
        (Staged.stage (parse_run myenum));
      Test.make ~name:"expand: Painting x8"
        (Staged.stage (expand_run painting));
      Test.make ~name:"expand: myenum (8 constants)"
        (Staged.stage (expand_run myenum));
      Test.make ~name:"expand: exceptions x4"
        (Staged.stage (expand_run exceptions)) ]

(* ------------------------------------------------------------------ *)
(* T2: token substitution (CPP) vs syntax macros (MS2), Figure 1 row   *)
(* ------------------------------------------------------------------ *)

let t2_tests () =
  let n = 32 in
  let ms2_src = Workloads.mul_ms2 n in
  let cpp_input = Workloads.mul_cpp_input n in
  let cpp_run () =
    let cpp = Ms2_cpp.Cpp.create () in
    Ms2_cpp.Cpp.define_function cpp "MUL" [ "A"; "B" ]
      (Ms2_cpp.Cpp.tokenize "A * B");
    Sys.opaque_identity
      (String.length (Ms2_cpp.Cpp.expand_string cpp cpp_input))
  in
  Test.make_grouped ~name:"T2"
    [ Test.make ~name:"cpp token substitution: MUL x32 (unsafe)"
        (Staged.stage cpp_run);
      Test.make ~name:"ms2 syntax macros: MUL x32 (tree-safe)"
        (Staged.stage (expand_run ms2_src)) ]

(* ------------------------------------------------------------------ *)
(* T3: scaling sweeps                                                  *)
(* ------------------------------------------------------------------ *)

let t3_tests () =
  let enum_sizes = [ 1; 4; 16; 64 ] in
  let depths = [ 1; 4; 16; 64 ] in
  let macro_counts = [ 1; 16; 64; 256 ] in
  Test.make_grouped ~name:"T3"
    (List.map
       (fun n ->
         Test.make
           ~name:(Printf.sprintf "expand: myenum with %3d constants" n)
           (Staged.stage (expand_run (Workloads.myenum n))))
       enum_sizes
    @ List.map
        (fun d ->
          Test.make
            ~name:(Printf.sprintf "expand: Painting nested %3d deep" d)
            (Staged.stage (expand_run (Workloads.painting_nested d))))
        depths
    @ List.map
        (fun n ->
          Test.make
            ~name:(Printf.sprintf "define: %3d macros" n)
            (Staged.stage (expand_run (Workloads.many_macros n))))
        macro_counts)

(* ------------------------------------------------------------------ *)
(* Penalty: expansion vs parsing the pre-expanded code                 *)
(* ------------------------------------------------------------------ *)

let penalty_names = [ "Painting x8"; "myenum (8)"; "exceptions x4" ]

let penalty_tests () =
  let pairs =
    [ ("Painting x8", Workloads.painting 8);
      ("myenum (8)", Workloads.myenum 8);
      ("exceptions x4", Workloads.exceptions 4) ]
  in
  Test.make_grouped ~name:"penalty"
    (List.concat_map
       (fun (name, src) ->
         let pure_c = Workloads.expanded_form src in
         [ Test.make ~name:(name ^ ": macro pipeline")
             (Staged.stage (expand_run src));
           Test.make ~name:(name ^ ": parse expanded C")
             (Staged.stage (parse_run pure_c)) ])
       pairs)

let run_penalty () =
  let results = measure_tests (penalty_tests ()) in
  print_estimates
    "Compile-time penalty (paper: abstraction costs compile time, zero run \
     time)"
    results;
  let ests = estimates results in
  let find suffix name =
    List.assoc_opt ("penalty/" ^ name ^ ": " ^ suffix) ests
  in
  rule "Derived: expansion overhead over parsing the already-expanded C";
  List.iter
    (fun name ->
      match (find "macro pipeline" name, find "parse expanded C" name) with
      | Some m, Some p when p > 0. ->
          Printf.printf "  %-20s %.2fx\n" name (m /. p)
      | _, _ -> ())
    penalty_names

(* ------------------------------------------------------------------ *)
(* Ablation: compiled pattern parsers (paper §3's suggested speedup)   *)
(* ------------------------------------------------------------------ *)

let ablation_tests () =
  let src = Workloads.mul_ms2 64 in
  let run ~compile_patterns () =
    let engine = Ms2.Engine.create ~compile_patterns () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  let hygiene_src = Workloads.exceptions 4 in
  let run_hygiene ~hygienic () =
    let engine = Ms2.Engine.create ~hygienic () in
    match Ms2.Api.expand ~source:"bench" engine hygiene_src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"ablation"
    [ Test.make ~name:"MUL x64, interpreted patterns"
        (Staged.stage (run ~compile_patterns:false));
      Test.make ~name:"MUL x64, compiled patterns"
        (Staged.stage (run ~compile_patterns:true));
      Test.make ~name:"exceptions x4, hygiene off"
        (Staged.stage (run_hygiene ~hygienic:false));
      Test.make ~name:"exceptions x4, hygiene on"
        (Staged.stage (run_hygiene ~hygienic:true)) ]

(* ------------------------------------------------------------------ *)
(* Fuel accounting overhead                                            *)
(* ------------------------------------------------------------------ *)

(* The resilient pipeline charges every interpreter step and every
   filled template node against a budget.  This table measures what that
   governance costs: the same workloads expanded with the production
   budgets ({!Ms2_support.Limits.default}) and with the budgets disabled
   ({!Ms2_support.Limits.unlimited}, the max_int sentinel — the
   counters never trip and impose their minimum possible cost).  The
   target is <5% overhead. *)

let fuel_pairs () =
  [ ("fuel-heavy (2000-step meta loop x8)", Workloads.fuel_heavy 2000);
    ("myenum (32 constants)", Workloads.myenum 32);
    ("Painting x32", Workloads.painting 32) ]

let fuel_tests () =
  let run ~limits src () =
    let engine = Ms2.Engine.create ~limits () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"fuel"
    (List.concat_map
       (fun (name, src) ->
         [ Test.make ~name:(name ^ ": budgets off")
             (Staged.stage (run ~limits:Ms2_support.Limits.unlimited src));
           Test.make ~name:(name ^ ": budgets on")
             (Staged.stage (run ~limits:Ms2_support.Limits.default src)) ])
       (fuel_pairs ()))

let run_fuel () =
  let results = measure_tests (fuel_tests ()) in
  print_estimates
    "Fuel accounting overhead (default budgets vs unlimited sentinel)"
    results;
  let ests = estimates results in
  let find suffix name = List.assoc_opt ("fuel/" ^ name ^ ": " ^ suffix) ests in
  rule "Derived: overhead of enforced budgets (<5% target)";
  let rows =
    List.filter_map
      (fun (name, _) ->
        match (find "budgets on" name, find "budgets off" name) with
        | Some on, Some off when off > 0. ->
            let pct = (on -. off) /. off *. 100. in
            Printf.printf "  %-42s %+.2f%%\n" name pct;
            Some (name, off, on, pct)
        | _, _ -> None)
      (fuel_pairs ())
  in
  (* machine-readable record alongside the other BENCH_*.json trackers *)
  let oc = open_tracker "BENCH_FUEL.json" in
  Printf.fprintf oc "{\n  \"quota_s\": %g,\n  \"workloads\": [\n" quota;
  List.iteri
    (fun i (name, off, on, pct) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run_unlimited\": %.1f, \
         \"ns_per_run_default\": %.1f, \"overhead_percent\": %.2f}%s\n"
        name off on pct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let mean =
    match rows with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a (_, _, _, p) -> a +. p) 0. rows
        /. float_of_int (List.length rows)
  in
  Printf.fprintf oc "  ],\n  \"mean_overhead_percent\": %.2f\n}\n" mean;
  close_tracker "BENCH_FUEL.json" oc;
  Printf.printf "\n  mean overhead: %+.2f%%  (written to BENCH_FUEL.json)\n"
    mean

(* ------------------------------------------------------------------ *)
(* Provenance stamping overhead                                        *)
(* ------------------------------------------------------------------ *)

(* Every filled template node gets an origin stamped onto its location
   (the expansion-backtrace chain behind diagnostics, --line-directives
   and --sourcemap).  This table measures what the stamping costs: the
   same workloads expanded with provenance on (the default) and off
   ([Engine.create ~provenance:false], the benchmarking ablation).  The
   target is <5% overhead. *)

let provenance_pairs () =
  [ ("myenum (32 constants)", Workloads.myenum 32);
    ("Painting x32", Workloads.painting 32);
    ("Painting nested 16 deep", Workloads.painting_nested 16) ]

let provenance_tests () =
  let run ~provenance src () =
    let engine = Ms2.Engine.create ~provenance () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"provenance"
    (List.concat_map
       (fun (name, src) ->
         [ Test.make ~name:(name ^ ": provenance off")
             (Staged.stage (run ~provenance:false src));
           Test.make ~name:(name ^ ": provenance on")
             (Staged.stage (run ~provenance:true src)) ])
       (provenance_pairs ()))

let run_provenance () =
  let results = measure_tests (provenance_tests ()) in
  print_estimates
    "Provenance stamping overhead (expansion backtraces on vs off)"
    results;
  let ests = estimates results in
  let find suffix name =
    List.assoc_opt ("provenance/" ^ name ^ ": " ^ suffix) ests
  in
  rule "Derived: overhead of provenance stamping (<5% target)";
  let rows =
    List.filter_map
      (fun (name, _) ->
        match (find "provenance on" name, find "provenance off" name) with
        | Some on, Some off when off > 0. ->
            let pct = (on -. off) /. off *. 100. in
            Printf.printf "  %-42s %+.2f%%\n" name pct;
            Some (name, off, on, pct)
        | _, _ -> None)
      (provenance_pairs ())
  in
  let oc = open_tracker "BENCH_PROVENANCE.json" in
  Printf.fprintf oc "{\n  \"quota_s\": %g,\n  \"workloads\": [\n" quota;
  List.iteri
    (fun i (name, off, on, pct) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run_off\": %.1f, \
         \"ns_per_run_on\": %.1f, \"overhead_percent\": %.2f}%s\n"
        name off on pct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let mean =
    match rows with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a (_, _, _, p) -> a +. p) 0. rows
        /. float_of_int (List.length rows)
  in
  Printf.fprintf oc "  ],\n  \"mean_overhead_percent\": %.2f\n}\n" mean;
  close_tracker "BENCH_PROVENANCE.json" oc;
  Printf.printf
    "\n  mean overhead: %+.2f%%  (written to BENCH_PROVENANCE.json)\n" mean

(* ------------------------------------------------------------------ *)
(* Transactional checkpoint overhead                                   *)
(* ------------------------------------------------------------------ *)

(* A transactional engine snapshots its session state (macro tables,
   type environment, meta globals, object-level scopes) at every
   fragment entry so a failed fragment can roll back.  This table
   measures what the clean path pays for that insurance: the same
   workloads expanded with [~transactional:true] (the default) and
   [false] (the ablation).  The checkpoint is per *fragment*, not per
   invocation, so the cost should be one table copy amortized over the
   whole expansion — the target is <2% overhead. *)

let txn_pairs () =
  [ ("myenum (32 constants)", Workloads.myenum 32);
    ("Painting x32", Workloads.painting 32);
    ("define: 64 macros", Workloads.many_macros 64) ]

let txn_tests () =
  let run ~transactional src () =
    let engine = Ms2.Engine.create ~transactional () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"txn"
    (List.concat_map
       (fun (name, src) ->
         [ Test.make ~name:(name ^ ": checkpoints off")
             (Staged.stage (run ~transactional:false src));
           Test.make ~name:(name ^ ": checkpoints on")
             (Staged.stage (run ~transactional:true src)) ])
       (txn_pairs ()))

let run_txn () =
  let results = measure_tests (txn_tests ()) in
  print_estimates
    "Transactional checkpoint overhead (fragment snapshots on vs off)"
    results;
  let ests = estimates results in
  let find suffix name = List.assoc_opt ("txn/" ^ name ^ ": " ^ suffix) ests in
  rule "Derived: overhead of fragment checkpointing (<2% target)";
  let rows =
    List.filter_map
      (fun (name, _) ->
        match (find "checkpoints on" name, find "checkpoints off" name) with
        | Some on, Some off when off > 0. ->
            let pct = (on -. off) /. off *. 100. in
            Printf.printf "  %-42s %+.2f%%\n" name pct;
            Some (name, off, on, pct)
        | _, _ -> None)
      (txn_pairs ())
  in
  let oc = open_tracker "BENCH_TXN.json" in
  Printf.fprintf oc "{\n  \"quota_s\": %g,\n  \"workloads\": [\n" quota;
  List.iteri
    (fun i (name, off, on, pct) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run_off\": %.1f, \
         \"ns_per_run_on\": %.1f, \"overhead_percent\": %.2f}%s\n"
        name off on pct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let mean =
    match rows with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a (_, _, _, p) -> a +. p) 0. rows
        /. float_of_int (List.length rows)
  in
  Printf.fprintf oc "  ],\n  \"mean_overhead_percent\": %.2f\n}\n" mean;
  close_tracker "BENCH_TXN.json" oc;
  Printf.printf "\n  mean overhead: %+.2f%%  (written to BENCH_TXN.json)\n"
    mean

(* ------------------------------------------------------------------ *)
(* perf: throughput-engine trajectory (cache, interning, parallelism)  *)
(* ------------------------------------------------------------------ *)

(* The perf mode records the throughput work in one machine-readable
   file, BENCH_PERF.json:

   - hot-path ns/run: lexing (interned identifiers), the wide-struct
     field-lookup workload (interned-key indexes), the memoized
     [Engine.fingerprint], and repeated-fragment expansion with the
     cache on (replay) vs off (full pipeline);
   - cache effectiveness: hit rate over repeated fragments on one
     engine, and the uncached clean-path overhead (fresh engines, cache
     on-but-all-misses vs cache compiled out);
   - the multi-file speedup curve: an 8-file corpus pushed through
     [ms2c expand --jobs N] for N = 1, 2, 4, wall-clock, with the
     machine's CPU count recorded alongside (speedup is bounded by the
     cores actually present). *)

let perf_hot_tests () =
  let wide = Workloads.wide_struct 64 in
  let uses = Workloads.painting_uses 8 in
  (* the repeated-fragment pair: definitions once per session, the same
     uses-fragment over and over — replay vs the full pipeline *)
  let warm cache =
    let engine = Ms2.Engine.create ~cache () in
    (match Ms2.Api.expand ~source:"defs" engine Workloads.painting_defs with
    | Ok _ -> ()
    | Error e -> failwith e);
    (match Ms2.Api.expand ~source:"uses" engine uses with
    | Ok _ -> ()
    | Error e -> failwith e);
    engine
  in
  let cached_engine = warm true in
  let uncached_engine = warm false in
  let repeat engine () =
    match Ms2.Api.expand ~source:"uses" engine uses with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  let replay_run = repeat cached_engine in
  let uncached_run = repeat uncached_engine in
  let fp_engine = Ms2.Engine.create () in
  (match
     Ms2.Api.expand ~source:"fp" fp_engine (Workloads.many_macros 64)
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let fingerprint_run () =
    Sys.opaque_identity (String.length (Ms2.Engine.fingerprint fp_engine))
  in
  Test.make_grouped ~name:"perf"
    [ Test.make ~name:"lex: myenum source"
        (Staged.stage (lex_run (Workloads.myenum 8)));
      Test.make ~name:"expand: wide struct (64 fields)"
        (Staged.stage (expand_run wide));
      Test.make ~name:"fingerprint: 64-macro session (memoized)"
        (Staged.stage fingerprint_run);
      Test.make ~name:"repeated fragment: cache replay"
        (Staged.stage replay_run);
      Test.make ~name:"repeated fragment: cache off"
        (Staged.stage uncached_run) ]

(* Uncached clean-path overhead: fresh engine per run, every fragment a
   miss (the cache works but never hits), vs the cache compiled out. *)
let perf_miss_tests () =
  let src = Workloads.myenum 16 in
  let run ~cache () =
    let engine = Ms2.Engine.create ~cache () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"perf-miss"
    [ Test.make ~name:"clean path: cache off"
        (Staged.stage (run ~cache:false));
      Test.make ~name:"clean path: cache on (all misses)"
        (Staged.stage (run ~cache:true)) ]

(* Cache hit rate over a repeated-fragment session, counted exactly. *)
let perf_hit_rate repeats =
  let engine = Ms2.Engine.create () in
  (match
     Ms2.Api.expand ~source:"defs" engine Workloads.painting_defs
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let uses = "int draw(int hDC)\n{\n  Painting { line(1, 2); }\n  return 0;\n}\n" in
  for _ = 1 to repeats do
    match Ms2.Api.expand ~source:"uses" engine uses with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let s = Ms2.Api.stats engine in
  let total = s.Ms2.Api.cache_hits + s.Ms2.Api.cache_misses in
  ( s.Ms2.Api.cache_hits,
    s.Ms2.Api.cache_misses,
    if total = 0 then 0.
    else float_of_int s.Ms2.Api.cache_hits /. float_of_int total )

(* Wall-clock for [ms2c expand --jobs n] over a generated corpus. *)
let nproc () =
  let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
  let n =
    try int_of_string (String.trim (input_line ic)) with _ -> 1
  in
  (match Unix.close_process_in ic with _ -> ());
  max 1 n

let ms2c_path () =
  let candidates =
    [ "_build/default/bin/ms2c.exe"; "../bin/ms2c.exe"; "bin/ms2c.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "ms2c"

let perf_speedup ~files ~jobs_mode ~jobs_list =
  let dir = Filename.temp_file "ms2perf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths =
    List.init files (fun i ->
        let p = Filename.concat dir (Printf.sprintf "f%d.mc" i) in
        let oc = open_out p in
        (* per-file definitions + enough invocations that expansion
           dominates process startup *)
        output_string oc (Workloads.myenum 24);
        output_string oc (Workloads.painting 24);
        close_out oc;
        p)
  in
  let ms2c = ms2c_path () in
  let args = String.concat " " paths in
  let time_one jobs =
    (* best of three: wall-clock minimum is the least noisy estimator
       on a shared machine *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let code =
        Sys.command
          (Printf.sprintf "%s expand --jobs %d --jobs-mode=%s %s > /dev/null 2>&1"
             ms2c jobs jobs_mode args)
      in
      if code <> 0 then failwith "perf corpus failed to expand";
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let curve = List.map (fun j -> (j, time_one j)) jobs_list in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  curve

(* Intra-file fragment parallelism: one large translation unit timed
   sequentially and with speculative fragment workers, plus the
   speculation ledger (speculated / committed / revalidated) of an
   instrumented parallel run.  The corpus is all pure fragments behind
   one definition barrier, so the abort rate measures validation
   overhead, not crafted conflicts. *)
let perf_fragments ~cpus ~fragments ~jobs_list =
  let file = Filename.temp_file "ms2frag" ".mc" in
  let oc = open_out file in
  output_string oc (Workloads.fragment_corpus fragments);
  close_out oc;
  let ms2c = ms2c_path () in
  let time_one jobs =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let code =
        Sys.command
          (Printf.sprintf "%s expand --fragment-jobs %d %s > /dev/null 2>&1"
             ms2c jobs file)
      in
      if code <> 0 then failwith "fragment corpus failed to expand";
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* a single-core machine can only show scheduling overhead, so the
     speedup curve is skipped there (same gate as the multi-file
     curve); the speculation ledger is still collected — the engine
     runs the full speculative pipeline regardless of core count *)
  let curve =
    if cpus < 2 then None
    else Some (List.map (fun j -> (j, time_one j)) jobs_list)
  in
  let err = Filename.temp_file "ms2frag" ".err" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s expand --fragment-jobs %d --stats --stats-format=json %s \
          > /dev/null 2> %s"
         ms2c
         (List.fold_left max 2 jobs_list)
         file err)
  in
  if code <> 0 then failwith "fragment stats run failed";
  let ic = open_in_bin err in
  let stats =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove err;
  Sys.remove file;
  let metric name =
    let key = Printf.sprintf "\"%s\": " name in
    let kl = String.length key and m = String.length stats in
    let rec find i =
      if i + kl > m then
        failwith (Printf.sprintf "fragment stats: %s not reported" name)
      else if String.sub stats i kl = key then i + kl
      else find (i + 1)
    in
    let i = find 0 in
    let j = ref i in
    while
      !j < m && (match stats.[!j] with '0' .. '9' -> true | _ -> false)
    do
      incr j
    done;
    int_of_string (String.sub stats i (!j - i))
  in
  ( curve,
    metric "fragments.speculated",
    metric "fragments.committed",
    metric "fragments.revalidated" )

let run_perf () =
  let hot = measure_tests (perf_hot_tests ()) in
  print_estimates "perf: hot paths (interning, memoized fingerprint, cache)"
    hot;
  let miss = measure_tests (perf_miss_tests ()) in
  print_estimates "perf: uncached clean-path overhead (~5% typical)" miss;
  let hot_ests = estimates hot in
  let miss_ests = estimates miss in
  let hits, misses, rate = perf_hit_rate 50 in
  rule "Derived: cache hit rate on repeated fragments (>=80% target)";
  Printf.printf "  hits %d, misses %d -> %.1f%%\n" hits misses (rate *. 100.);
  (* Re-baselined: the original <5% target assumed the quiet boxes of
     the first measurements.  The store path itself costs ~5% (key
     digests, the post-run checkpoint, entry retention) after the
     per-miss shard-sweep refresh of the eviction counter was moved to
     the stats readers — that sweep alone had regressed this to ~25%.
     On loaded shared runners the two sub-300us measurements jitter
     independently, so CI asserts a noise-tolerant <15% bound on this
     figure rather than the typical value. *)
  let miss_overhead =
    match
      ( List.assoc_opt "perf-miss/clean path: cache on (all misses)" miss_ests,
        List.assoc_opt "perf-miss/clean path: cache off" miss_ests )
    with
    | Some on, Some off when off > 0. -> ((on -. off) /. off) *. 100.
    | _ -> nan
  in
  Printf.printf "  uncached clean-path overhead: %+.2f%%\n" miss_overhead;
  let cpus = nproc () in
  let jobs_mode = "domains" in
  rule
    (Printf.sprintf
       "Derived: multi-file speedup, 8-file corpus (machine has %d CPU%s)"
       cpus
       (if cpus = 1 then "" else "s"));
  (* on a single-core machine the curve can only show scheduling
     overhead (a misleading <1x "speedup"), so the gate is explicitly
     skipped rather than reported *)
  let curve =
    if cpus < 2 then begin
      Printf.printf
        "  skipped: %d CPU — a parallel speedup cannot be observed here\n"
        cpus;
      None
    end
    else begin
      let jobs_list = [ 1; 2; 4 ] in
      let curve = perf_speedup ~files:8 ~jobs_mode ~jobs_list in
      let t1 = List.assoc 1 curve in
      List.iter
        (fun (j, t) ->
          Printf.printf "  --jobs %d   %7.1f ms   %.2fx\n" j (t *. 1000.)
            (t1 /. t))
        curve;
      Some (curve, t1)
    end
  in
  let frag_count = 500 in
  rule
    (Printf.sprintf
       "Derived: intra-file fragment speedup, %d-fragment unit \
        (--fragment-jobs)"
       frag_count);
  let frag_curve, frag_spec, frag_committed, frag_revalidated =
    perf_fragments ~cpus ~fragments:frag_count ~jobs_list:[ 1; 2; 4 ]
  in
  let frag_abort_rate =
    if frag_spec = 0 then 0.
    else 100. *. float_of_int frag_revalidated /. float_of_int frag_spec
  in
  (match frag_curve with
  | None ->
      Printf.printf
        "  speedup skipped: %d CPU — a parallel speedup cannot be observed \
         here\n"
        cpus
  | Some curve ->
      let t1 = List.assoc 1 curve in
      List.iter
        (fun (j, t) ->
          Printf.printf "  --fragment-jobs %d   %7.1f ms   %.2fx\n" j
            (t *. 1000.) (t1 /. t))
        curve);
  Printf.printf
    "  speculation: %d speculated, %d committed, %d revalidated \
     (%.1f%% abort rate)\n"
    frag_spec frag_committed frag_revalidated frag_abort_rate;
  (* machine-readable record *)
  let oc = open_tracker "BENCH_PERF.json" in
  Printf.fprintf oc "{\n  \"quota_s\": %g,\n  \"cpus\": %d,\n" quota cpus;
  Printf.fprintf oc "  \"jobs_mode\": %S,\n" jobs_mode;
  Printf.fprintf oc "  \"hot_paths_ns_per_run\": {\n";
  let n_hot = List.length hot_ests in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name est
        (if i = n_hot - 1 then "" else ","))
    hot_ests;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc
    "  \"repeated_fragments\": {\"repeats\": 50, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"hit_rate_percent\": %.1f},\n"
    hits misses (rate *. 100.);
  Printf.fprintf oc "  \"uncached_overhead_percent\": %.2f,\n" miss_overhead;
  (match curve with
  | None ->
      Printf.fprintf oc "  \"parallel_speedup\": \"skipped\",\n";
      Printf.fprintf oc
        "  \"parallel_speedup_skip_reason\": \"machine has %d cpu\",\n" cpus
  | Some (curve, t1) ->
      Printf.fprintf oc "  \"parallel_speedup\": [\n";
      let n_curve = List.length curve in
      List.iteri
        (fun i (j, t) ->
          Printf.fprintf oc
            "    {\"jobs\": %d, \"wall_ms\": %.1f, \"speedup\": %.2f}%s\n" j
            (t *. 1000.) (t1 /. t)
            (if i = n_curve - 1 then "" else ","))
        curve;
      Printf.fprintf oc "  ],\n");
  Printf.fprintf oc "  \"fragments\": {\n";
  Printf.fprintf oc "    \"fragment_count\": %d,\n" frag_count;
  Printf.fprintf oc
    "    \"speculated\": %d,\n    \"committed\": %d,\n    \
     \"revalidated\": %d,\n"
    frag_spec frag_committed frag_revalidated;
  Printf.fprintf oc "    \"abort_rate_percent\": %.2f,\n" frag_abort_rate;
  (match frag_curve with
  | None ->
      Printf.fprintf oc "    \"speedup\": \"skipped\",\n";
      Printf.fprintf oc
        "    \"speedup_skip_reason\": \"machine has %d cpu\"\n" cpus
  | Some curve ->
      let t1 = List.assoc 1 curve in
      Printf.fprintf oc "    \"speedup\": [\n";
      let n_curve = List.length curve in
      List.iteri
        (fun i (j, t) ->
          Printf.fprintf oc
            "      {\"fragment_jobs\": %d, \"wall_ms\": %.1f, \"speedup\": \
             %.2f}%s\n"
            j (t *. 1000.) (t1 /. t)
            (if i = n_curve - 1 then "" else ","))
        curve;
      Printf.fprintf oc "    ]\n");
  Printf.fprintf oc "  }\n";
  Printf.fprintf oc "}\n";
  close_tracker "BENCH_PERF.json" oc;
  Printf.printf "\n  (written to BENCH_PERF.json)\n"

(* ------------------------------------------------------------------ *)
(* Observability overhead                                               *)
(* ------------------------------------------------------------------ *)

(* The telemetry layer's contract is zero overhead when disabled: every
   span site is one flag test, every hot-path metric one unconditional
   increment.  A single binary cannot race its own uninstrumented twin,
   so the disabled-sink overhead is *derived*: measure the per-call cost
   of a disabled [with_span] guard and of a counter increment in
   isolation, count how many of each a workload run executes (record one
   run for the span count; read the hot-path counters for the increment
   count), and express the product as a fraction of the workload's
   measured time.  The recording-enabled cost is measured directly
   (per-run start/stop, so the event buffer never grows unbounded). *)

module Obs = Ms2_support.Obs

let obs_pairs () =
  [ ("myenum (32 constants)", Workloads.myenum 32);
    ("Painting x32", Workloads.painting 32);
    ("Painting nested 16 deep", Workloads.painting_nested 16) ]

let obs_tests () =
  let run src () =
    let engine = Ms2.Engine.create () in
    match Ms2.Api.expand ~source:"bench" engine src with
    | Ok out -> Sys.opaque_identity (String.length out)
    | Error e -> failwith e
  in
  let run_rec src () =
    Obs.start_recording ();
    let r = run src () in
    ignore (Obs.stop_recording ());
    r
  in
  Test.make_grouped ~name:"obs"
    (List.concat_map
       (fun (name, src) ->
         [ Test.make ~name:(name ^ ": sinks disabled")
             (Staged.stage (run src));
           Test.make ~name:(name ^ ": recording on")
             (Staged.stage (run_rec src)) ])
       (obs_pairs ()))

let obs_guard_tests () =
  let c = Obs.Metrics.counter "bench.obs.incr" in
  Test.make_grouped ~name:"obs-guard"
    [ Test.make ~name:"disabled with_span guard"
        (Staged.stage (fun () ->
             Obs.with_span ~cat:"bench" "noop" (fun () ->
                 Sys.opaque_identity 0)));
      Test.make ~name:"counter increment"
        (Staged.stage (fun () -> Obs.Metrics.incr c)) ]

(* The counters the pipeline increments unconditionally on hot paths. *)
let obs_hot_counters =
  [ "fill.templates"; "parser.pattern_memo.hits";
    "parser.pattern_memo.misses"; "pattern.firstset.memo_hits";
    "pattern.firstset.memo_misses"; "watchdog.clock_reads" ]

(* (span sites crossed, counter increments) during one workload run *)
let obs_site_counts src =
  let sum () =
    List.fold_left
      (fun a n -> a + Obs.Metrics.value (Obs.Metrics.counter n))
      0 obs_hot_counters
  in
  let c0 = sum () in
  Obs.start_recording ();
  let engine = Ms2.Engine.create () in
  (match Ms2.Api.expand ~source:"bench" engine src with
  | Ok _ -> ()
  | Error e -> failwith e);
  let events = Obs.stop_recording () in
  (List.length events, sum () - c0)

(* The disabled/recording pairs are measured [obs_rounds] times and
   merged by per-test {e minimum}: timing noise on a shared machine
   (GC slices, CPU contention) is strictly additive, so best-of-N
   tracks the true cost where a single estimate can swing the derived
   overhead by tens of percent either way — far outside any gate. *)
let obs_rounds = 3

let min_estimates (rounds : (string * float) list list) :
    (string * float) list =
  List.fold_left
    (fun acc ests ->
      List.map
        (fun (name, v) ->
          match List.assoc_opt name acc with
          | Some v0 -> (name, Float.min v0 v)
          | None -> (name, v))
        ests)
    (List.hd rounds) rounds

let run_obs () =
  Obs.Profile.disable ();
  let rounds =
    List.init obs_rounds (fun _ -> estimates (measure_tests (obs_tests ())))
  in
  let ests = min_estimates rounds in
  rule
    "Observability overhead (sinks disabled vs recording on, best of 3)";
  List.iter
    (fun (name, est) -> Fmt.pr "  %-48s %a/run\n" name pp_time est)
    ests;
  let guard = measure_tests (obs_guard_tests ()) in
  print_estimates "Disabled-sink site costs" guard;
  let guard_ests = estimates guard in
  let site name = Option.value ~default:0. (List.assoc_opt name guard_ests) in
  let guard_ns = site "obs-guard/disabled with_span guard" in
  let incr_ns = site "obs-guard/counter increment" in
  rule "Derived: disabled-sink overhead (<=2% target) and recording cost";
  let rows =
    List.filter_map
      (fun (name, src) ->
        let find suffix =
          List.assoc_opt ("obs/" ^ name ^ ": " ^ suffix) ests
        in
        match (find "sinks disabled", find "recording on") with
        | Some off, Some on when off > 0. ->
            let spans, incrs = obs_site_counts src in
            let disabled_pct =
              ((guard_ns *. float_of_int spans)
              +. (incr_ns *. float_of_int incrs))
              /. off *. 100.
            in
            let rec_pct = (on -. off) /. off *. 100. in
            Printf.printf
              "  %-34s disabled %+.4f%%   recording %+.1f%%   (%d spans, \
               %d increments)\n"
              name disabled_pct rec_pct spans incrs;
            Some (name, off, on, spans, incrs, disabled_pct, rec_pct)
        | _, _ -> None)
      (obs_pairs ())
  in
  let oc = open_tracker "BENCH_OBS.json" in
  Printf.fprintf oc
    "{\n  \"quota_s\": %g,\n  \"guard_ns_per_call\": %.2f,\n  \
     \"counter_incr_ns_per_call\": %.2f,\n  \"workloads\": [\n"
    quota guard_ns incr_ns;
  List.iteri
    (fun i (name, off, on, spans, incrs, disabled_pct, rec_pct) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run\": %.1f, \
         \"ns_per_run_recording\": %.1f, \"span_sites\": %d, \
         \"counter_increments\": %d, \"disabled_overhead_percent\": %.4f, \
         \"recording_overhead_percent\": %.2f}%s\n"
        name off on spans incrs disabled_pct rec_pct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let mean f =
    match rows with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a r -> a +. f r) 0. rows
        /. float_of_int (List.length rows)
  in
  let mean_disabled = mean (fun (_, _, _, _, _, d, _) -> d) in
  let mean_rec = mean (fun (_, _, _, _, _, _, r) -> r) in
  Printf.fprintf oc
    "  ],\n  \"mean_disabled_overhead_percent\": %.4f,\n  \
     \"mean_recording_overhead_percent\": %.2f\n}\n"
    mean_disabled mean_rec;
  close_tracker "BENCH_OBS.json" oc;
  Printf.printf
    "\n  mean disabled-sink overhead: %+.4f%%  (written to BENCH_OBS.json)\n"
    mean_disabled

(* ------------------------------------------------------------------ *)
(* serve: daemon warm/cold latency vs one ms2c process per request     *)
(* ------------------------------------------------------------------ *)

(* Compares two ways of expanding the same corpus:

   - cold:   one `ms2c expand` process per request, each paying process
     startup plus re-expansion of the macro definitions;
   - daemon: `ms2c serve` over stdio with the definitions loaded once
     via --prelude-file, three lockstep passes over a uses-only corpus.

   The corpus split matters: definition fragments mint fresh engine
   state on every run and are deliberately never cached, so a corpus
   that contained them would measure nothing but misses.  Pass 1 of the
   daemon phase registers the corpus's symbols into the session (cold
   cache), pass 2 re-expands under the now-stable state and stores, and
   pass 3 is the true warm path (cache hits) — which is why the warm
   numbers and the CI hit assertion both come from the final pass. *)

module Json = Ms2_support.Json

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let k = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(min (n - 1) (max 0 k))

(* (p50, p99, mean), all in the unit of the samples *)
let latency_stats lats =
  let a = Array.of_list lats in
  Array.sort compare a;
  let n = Array.length a in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n
  in
  (percentile a 50., percentile a 99., mean)

let run_serve () =
  rule "serve: daemon latency vs one ms2c process per request";
  let ms2c = ms2c_path () in
  let dir = Filename.temp_file "ms2serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  let defs = Filename.concat dir "defs.mc" in
  write defs Workloads.painting_defs;
  let sizes = [ 4; 6; 8; 10; 12; 16 ] in
  let uses =
    List.map
      (fun n -> (Printf.sprintf "u%d.mc" n, Workloads.painting_uses n))
      sizes
  in
  (* --- cold: a fresh ms2c process per request, definitions inline --- *)
  let cold_paths =
    List.map
      (fun (name, text) ->
        let p = Filename.concat dir ("cold_" ^ name) in
        write p (Workloads.painting_defs ^ text);
        p)
      uses
  in
  let cold_repeats = 3 in
  let cold_lats = ref [] in
  let cold_t0 = Unix.gettimeofday () in
  for _ = 1 to cold_repeats do
    List.iter
      (fun p ->
        let t0 = Unix.gettimeofday () in
        let code =
          Sys.command
            (Printf.sprintf "%s expand %s > /dev/null 2>&1" ms2c
               (Filename.quote p))
        in
        if code <> 0 then failwith "serve bench: cold corpus failed to expand";
        cold_lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !cold_lats)
      cold_paths
  done;
  let cold_wall = Unix.gettimeofday () -. cold_t0 in
  (* --- daemon: one ms2c serve over stdio, lockstep passes ----------- *)
  let snap = Filename.concat dir "snap.bin" in
  let start_daemon extra =
    Unix.open_process
      (Printf.sprintf "%s serve --prelude-file %s%s" ms2c
         (Filename.quote defs) extra)
  in
  let next_id = ref 0 in
  let rpc (from_d, to_d) fields =
    incr next_id;
    output_string to_d
      (Json.to_string (Json.Obj (("id", Json.Int !next_id) :: fields)));
    output_char to_d '\n';
    flush to_d;
    match Json.parse (input_line from_d) with
    | Ok v -> v
    | Error e -> failwith ("serve bench: unparseable response: " ^ e)
  in
  let run_pass ch =
    let lats = ref [] and hits = ref 0 and misses = ref 0 in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, text) ->
        let t1 = Unix.gettimeofday () in
        let resp =
          rpc ch
            [ ("method", Json.Str "expand");
              ("session", Json.Str "bench");
              ("source", Json.Str name);
              ("text", Json.Str text) ]
        in
        lats := ((Unix.gettimeofday () -. t1) *. 1000.) :: !lats;
        (match Json.member resp "ok" with
        | Some (Json.Bool true) -> ()
        | _ ->
            failwith
              ("serve bench: request failed: " ^ Json.to_string resp));
        match Json.member resp "request" with
        | Some rq ->
            let counter f =
              Option.value ~default:0 (Option.bind (Json.member rq f) Json.int)
            in
            hits := !hits + counter "cache_hits";
            misses := !misses + counter "cache_misses"
        | None -> ())
      uses;
    (!lats, Unix.gettimeofday () -. t0, !hits, !misses)
  in
  let d0 = start_daemon (" --cache-file " ^ Filename.quote snap) in
  let passes = List.init 3 (fun _ -> run_pass d0) in
  ignore (rpc d0 [ ("method", Json.Str "shutdown") ]);
  ignore (Unix.close_process d0);
  (* --- restart: same daemon, back up from the drain-time snapshot vs
     from nothing.  One pass each: the warm restart's prelude replay and
     store contents turn the pass into cache hits; the cold restart
     re-expands everything, exactly what a crash without persistence
     costs. --- *)
  let restart_pass extra =
    let d = start_daemon extra in
    let result = run_pass d in
    ignore (rpc d [ ("method", Json.Str "shutdown") ]);
    ignore (Unix.close_process d);
    result
  in
  let rw_lats, _, rw_hits, _ =
    restart_pass (" --cache-file " ^ Filename.quote snap)
  in
  let rc_lats, _, rc_hits, _ = restart_pass "" in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) cold_paths;
  (try Sys.remove snap with Sys_error _ -> ());
  (try Sys.remove defs with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  (* --- report ------------------------------------------------------- *)
  let req_s n wall = if wall > 0. then float_of_int n /. wall else 0. in
  let c50, c99, cmean = latency_stats !cold_lats in
  let n_cold = List.length !cold_lats in
  Printf.printf
    "  cold (process per request)  %3d req   p50 %7.2f ms   p99 %7.2f ms   \
     %6.1f req/s\n"
    n_cold c50 c99 (req_s n_cold cold_wall);
  List.iteri
    (fun i (lats, wall, hits, misses) ->
      let p50, p99, _ = latency_stats lats in
      Printf.printf
        "  daemon pass %d               %3d req   p50 %7.2f ms   p99 %7.2f \
         ms   %6.1f req/s   (%d hits, %d misses)\n"
        (i + 1) (List.length lats) p50 p99
        (req_s (List.length lats) wall)
        hits misses)
    passes;
  let w_lats, w_wall, w_hits, w_misses =
    List.nth passes (List.length passes - 1)
  in
  let w50, w99, wmean = latency_stats w_lats in
  let speedup = if w50 > 0. then c50 /. w50 else 0. in
  Printf.printf "  warm-vs-cold p50 speedup: %.1fx\n" speedup;
  let rw50, _, _ = latency_stats rw_lats in
  let rc50, _, _ = latency_stats rc_lats in
  Printf.printf
    "  restart warm (snapshot)     %3d req   p50 %7.2f ms   (%d hits)\n"
    (List.length rw_lats) rw50 rw_hits;
  Printf.printf
    "  restart cold (no snapshot)  %3d req   p50 %7.2f ms   (%d hits)\n"
    (List.length rc_lats) rc50 rc_hits;
  if rw_hits = 0 then
    Printf.printf
      "  WARNING: no cache hits on the warm restart (snapshot expected \
       to replay)\n";
  if w_hits = 0 then
    Printf.printf
      "  WARNING: no cache hits on the final daemon pass (expected hits)\n";
  let oc = open_tracker "BENCH_SERVE.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"ms2-bench-serve-1\",\n  \"quota_s\": %g,\n  \
     \"corpus_files\": %d,\n  \"cold_repeats\": %d,\n"
    quota (List.length uses) cold_repeats;
  Printf.fprintf oc
    "  \"cold\": {\"requests\": %d, \"p50_ms\": %.2f, \"p99_ms\": %.2f, \
     \"mean_ms\": %.2f, \"requests_per_s\": %.1f},\n"
    n_cold c50 c99 cmean (req_s n_cold cold_wall);
  Printf.fprintf oc "  \"daemon_passes\": [\n";
  let n_passes = List.length passes in
  List.iteri
    (fun i (lats, wall, hits, misses) ->
      let p50, p99, mean = latency_stats lats in
      Printf.fprintf oc
        "    {\"pass\": %d, \"requests\": %d, \"p50_ms\": %.2f, \"p99_ms\": \
         %.2f, \"mean_ms\": %.2f, \"requests_per_s\": %.1f, \"cache_hits\": \
         %d, \"cache_misses\": %d}%s\n"
        (i + 1) (List.length lats) p50 p99 mean
        (req_s (List.length lats) wall)
        hits misses
        (if i = n_passes - 1 then "" else ","))
    passes;
  Printf.fprintf oc
    "  ],\n  \"warm\": {\"requests\": %d, \"p50_ms\": %.2f, \"p99_ms\": \
     %.2f, \"mean_ms\": %.2f, \"requests_per_s\": %.1f, \"cache_hits\": %d, \
     \"cache_misses\": %d},\n"
    (List.length w_lats) w50 w99 wmean
    (req_s (List.length w_lats) w_wall)
    w_hits w_misses;
  Printf.fprintf oc
    "  \"restart_warm_p50\": %.2f,\n  \"restart_cold_p50\": %.2f,\n  \
     \"restart_warm_hits\": %d,\n  \"restart_cold_hits\": %d,\n"
    rw50 rc50 rw_hits rc_hits;
  Printf.fprintf oc "  \"warm_vs_cold_speedup_p50\": %.2f\n}\n" speedup;
  close_tracker "BENCH_SERVE.json" oc;
  Printf.printf "\n  (written to BENCH_SERVE.json)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 2 parse-time type analysis cost                                *)
(* ------------------------------------------------------------------ *)

let fig2_tests () =
  let parse_with ty () =
    let tenv = Ms2_typing.Tenv.create () in
    Ms2_typing.Tenv.add tenv "y" ty;
    Sys.opaque_identity
      (ignore (Ms2_parser.Parser.meta_expr_of_string ~tenv "`[int $y;]"))
  in
  let open Ms2_mtype in
  Test.make_grouped ~name:"fig2-parse"
    [ Test.make ~name:"y : init-declarator[]"
        (Staged.stage
           (parse_with (Mtype.List (Mtype.Ast Sort.Init_declarator))));
      Test.make ~name:"y : identifier"
        (Staged.stage (parse_with (Mtype.Ast Sort.Id))) ]

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run_time () =
  print_estimates "T1: pipeline stage costs" (measure_tests (t1_tests ()));
  print_estimates "T2: CPP token substitution vs MS2 syntax macros"
    (measure_tests (t2_tests ()));
  print_estimates "Template parsing with placeholder type analysis (Fig. 2)"
    (measure_tests (fig2_tests ()));
  print_estimates
    "Ablation: compiled invocation parsers (paper: \"could be accelerated \
     by a routine that compiled a parse routine for each macro's pattern\")"
    (measure_tests (ablation_tests ()))

let run_sweep () =
  print_estimates "T3: scaling sweeps" (measure_tests (t3_tests ()))

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "figures" | "fig" -> run_figures ()
  | "time" -> run_time ()
  | "sweep" -> run_sweep ()
  | "penalty" -> run_penalty ()
  | "fuel" -> run_fuel ()
  | "provenance" -> run_provenance ()
  | "txn" -> run_txn ()
  | "perf" -> run_perf ()
  | "obs" -> run_obs ()
  | "serve" -> run_serve ()
  | "all" ->
      run_figures ();
      run_time ();
      run_sweep ();
      run_penalty ();
      run_fuel ();
      run_provenance ();
      run_txn ();
      run_perf ();
      run_obs ();
      run_serve ()
  | other ->
      Printf.eprintf
        "unknown mode %S (expected figures | time | sweep | penalty | fuel \
         | provenance | txn | perf | obs | serve)\n"
        other;
      exit 2
