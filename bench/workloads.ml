(** Benchmark workloads: MS² sources exercising each paper example, with
    size parameters for the scaling sweeps. *)

let painting_defs =
  "syntax stmt Painting {| $$stmt::body |} {\n\
   return `{BeginPaint(hDC, &ps);\n\
   $body;\n\
   EndPaint(hDC, &ps);};\n\
   }\n"

(** [painting_uses n] is the uses-only half of {!painting}: a function
    with [n] sibling Painting invocations, no definitions — the
    repeated-fragment shape of a multi-file session. *)
let painting_uses n =
  let b = Buffer.create 1024 in
  Buffer.add_string b "int draw(int hDC)\n{\n";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "  Painting { line(%d, %d); fill(%d); }\n" i (i + 1) i)
  done;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

(** [painting n] is a program with [n] sibling Painting invocations. *)
let painting n = painting_defs ^ painting_uses n

(** [painting_nested d] is one Painting invocation nested [d] deep. *)
let painting_nested d =
  let b = Buffer.create 1024 in
  Buffer.add_string b painting_defs;
  Buffer.add_string b "int draw(int hDC)\n{\n";
  for _ = 1 to d do
    Buffer.add_string b "Painting { "
  done;
  Buffer.add_string b "pixel();";
  for _ = 1 to d do
    Buffer.add_string b " }"
  done;
  Buffer.add_string b "\n  return 0;\n}\n";
  Buffer.contents b

let myenum_defs =
  "syntax decl myenum [] {| $$id::name { $$+/, id::ids } ; |} {\n\
   return list(\n\
   `[enum $name {$ids};],\n\
   `[void $(symbolconc(\"print_\", name))(int arg)\n\
   { switch (arg)\n\
   {$(map((@id id; `{case $id: {printf(\"%s\", $(pstring(id))); \
   break;}}), ids))} }],\n\
   `[int $(symbolconc(\"read_\", name))()\n\
   { char s[100];\n\
   getline(s, 100);\n\
   $(map((@id id; `{if (strcmp(s, $(pstring(id))) == 0) return $id;}), \
   ids))\n\
   return -1; }]);\n\
   }\n"

(** [myenum n] declares one enumeration with [n] constants (readers and
    writers generated for each). *)
let myenum n =
  let ids = List.init n (fun i -> Printf.sprintf "item_%d" i) in
  myenum_defs ^ "myenum workload {" ^ String.concat ", " ids ^ "};\n"

let exceptions_defs =
  "syntax stmt throw {| $$exp::value |} {\n\
   if (simple_expression(value))\n\
   return `{if (exception_ptr == 0) no_handler($value);\n\
   else longjmp(exception_ptr, $value);};\n\
   else\n\
   return `{{int the_value = $value;\n\
   if (exception_ptr == 0) no_handler(the_value);\n\
   else longjmp(exception_ptr, the_value);}};\n\
   }\n\
   syntax stmt catch {| $$exp::tag $$stmt::handler $$stmt::body |} {\n\
   return `{{int *old_exception_ptr = exception_ptr;\n\
   int jmp_buffer[2];\n\
   int result;\n\
   result = setjump(jmp_buffer);\n\
   if (result == 0)\n\
   {exception_ptr = jmp_buffer; $body}\n\
   else\n\
   {exception_ptr = old_exception_ptr;\n\
   if (result == $tag) $handler;\n\
   else throw result;}}};\n\
   }\n\
   syntax stmt unwind_protect {| $$stmt::body $$stmt::cleanup |} {\n\
   return `{{int *old_exception_ptr = exception_ptr;\n\
   int jmp_buffer[2];\n\
   int result;\n\
   result = setjump(jmp_buffer);\n\
   if (result == 0)\n\
   {exception_ptr = jmp_buffer; $body}\n\
   exception_ptr = old_exception_ptr;\n\
   $cleanup;\n\
   if (result != 0) throw result;}};\n\
   }\n"

(** [exceptions n] wraps [n] catch+unwind_protect uses. *)
let exceptions n =
  let b = Buffer.create 2048 in
  Buffer.add_string b exceptions_defs;
  Buffer.add_string b "int work(int a, int b)\n{\n  int z;\n  z = a + b;\n";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf
         "  catch tag_%d { handle(%d); } { risky(%d); }\n\
         \  unwind_protect { acquire(%d); } { release(%d); }\n"
         i i i i i)
  done;
  Buffer.add_string b "  throw z + 1;\n  return z;\n}\n";
  Buffer.contents b

(** The Figure-1 comparison workload: the MUL macro applied [n] times. *)
let mul_ms2 n =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "syntax exp MUL {| ( $$exp::a , $$exp::b ) |} { return `($a * $b); }\n";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "int w%d = MUL(x + %d, y + %d);\n" i i (i + 1))
  done;
  Buffer.contents b

let mul_cpp_input n =
  let b = Buffer.create 1024 in
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "int w%d = MUL(x + %d, y + %d);\n" i i (i + 1))
  done;
  Buffer.contents b

(** [many_macros n] defines [n] distinct statement macros (each with a
    small pattern and template) and invokes the last one once —
    measuring definition-time cost (parsing, pattern checking and
    compilation, body type checking). *)
let many_macros n =
  let b = Buffer.create 4096 in
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf
         "syntax stmt m%d {| ( $$exp::e ) ; |} { return `{f%d($e);}; }\n" i
         i)
  done;
  Buffer.add_string b
    (Printf.sprintf "int g() { m%d(1); return 0; }\n" n);
  Buffer.contents b

(** [fuel_heavy iters] — an interpreter-bound workload for measuring the
    cost of fuel accounting: one macro whose body runs an [iters]-step
    meta loop per invocation (so nearly all time is spent in
    [Interp.eval]/[exec_stmt], where fuel is charged), invoked 8 times. *)
let fuel_heavy iters =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "syntax exp checksum {| ( $$exp::seed ) |} {\n\
       \  int i;\n\
       \  int acc;\n\
       \  acc = 0;\n\
       \  i = 0;\n\
       \  while (i < %d) { acc = acc + i * 3; i = i + 1; }\n\
       \  if (acc < 0) error(\"impossible\");\n\
       \  return `($seed + 1);\n\
        }\n"
       iters);
  for i = 1 to 8 do
    Buffer.add_string b (Printf.sprintf "int w%d = checksum(x + %d);\n" i i)
  done;
  Buffer.contents b

(** [wide_struct n] — a field-lookup-bound workload: a macro binds an
    [n]-field tuple pattern (the regression case is [n = 64]) and its
    body selects every field in a meta loop, so expansion time is
    dominated by tuple-field resolution; the expansion also declares an
    [n]-field C struct and reads every member, exercising
    [Senv.field_type] on a wide layout.  Regression guard for the
    interned-key indexes replacing the old association-list scans. *)
let wide_struct n =
  let b = Buffer.create 4096 in
  (* macro: $$.( $$num::f0 , ... )::p ; body sums p->f0 ... p->f{n-1}
     ten times over *)
  Buffer.add_string b "syntax exp widesum {| ( $$.( ";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string b " , ";
    Buffer.add_string b (Printf.sprintf "$$num::f%d" i)
  done;
  Buffer.add_string b " )::p ) |} {\n  int acc;\n  int i;\n  acc = 0;\n";
  Buffer.add_string b "  i = 0;\n  while (i < 10) {\n";
  for i = 0 to n - 1 do
    Buffer.add_string b
      (Printf.sprintf "    acc = acc + num_value(p->f%d);\n" i)
  done;
  Buffer.add_string b "    i = i + 1;\n  }\n  return make_num(acc);\n}\n";
  (* the C side: an [n]-wide struct with every member read *)
  Buffer.add_string b "struct wide {\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "  int f%d;\n" i)
  done;
  Buffer.add_string b "};\nint total(struct wide w)\n{\n  int t;\n  t = 0;\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "  t = t + w.f%d;\n" i)
  done;
  Buffer.add_string b "  return t + widesum(";
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (string_of_int i)
  done;
  Buffer.add_string b ");\n}\n";
  Buffer.contents b

(** Pure-C control for the penalty comparison: the [expansion] of a
    source, as a string. *)
let expanded_form src =
  match Ms2.Api.expand_string src with
  | Ok out -> out
  | Error e -> failwith ("workload does not expand: " ^ e)

(** [fragment_corpus n] — an [n]-fragment translation unit for the
    intra-file fragment-parallelism benchmark: the [myenum] definition
    (a barrier fragment) followed by [n] ten-constant [myenum]
    declarations, each a pure top-level fragment whose expansion runs
    the meta interpreter (two [map]s, [symbolconc], [pstring] per
    declaration) — about a millisecond of real per-fragment work, so
    speculative workers dominate the pre-scan and commit walk rather
    than process startup. *)
let fragment_corpus n =
  let b = Buffer.create (n * 120) in
  Buffer.add_string b myenum_defs;
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "myenum col%d { " i);
    for j = 0 to 9 do
      if j > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "e%d_%d" i j)
    done;
    Buffer.add_string b " };\n"
  done;
  Buffer.contents b
