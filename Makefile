# Convenience targets; everything is plain dune underneath.

.PHONY: all build test faults txn-sweep serve-sweep recovery-sweep \
        bench bench-fuel bench-provenance bench-txn bench-perf bench-obs \
        bench-serve figures examples expand clean

all: build

build:
	dune build @all

test:
	dune runtest

# the fault-injection harness alone (also part of the default runtest)
faults:
	dune exec test/test_faults.exe

# the failpoint sweep and transactional-isolation suite alone
txn-sweep:
	dune exec test/test_txn.exe

# chaos-test the daemon: drive a live ms2c serve through every serve/*
# failpoint (error and timeout) and the protocol edge cases, asserting
# it stays up and sessions stay isolated (fingerprint-checked)
serve-sweep:
	dune build bin/ms2c.exe
	dune exec test/test_serve.exe

# crash-safe persistence end to end: snapshot corruption goldens, the
# kill -9 + --resume byte-identity test, the persistence failpoint
# sweep, and warm daemon restarts
recovery-sweep:
	dune build bin/ms2c.exe
	dune exec test/test_recovery.exe

# regenerate the paper's figures and all timing tables
bench:
	dune exec bench/main.exe

# fuel-accounting overhead table (writes BENCH_FUEL.json)
bench-fuel:
	dune exec bench/main.exe fuel

# provenance-stamping overhead table (writes BENCH_PROVENANCE.json)
bench-provenance:
	dune exec bench/main.exe provenance

# transactional-checkpoint overhead table (writes BENCH_TXN.json)
bench-txn:
	dune exec bench/main.exe txn

# hot-path / cache / parallel-speedup tables (writes BENCH_PERF.json)
bench-perf:
	dune exec bench/main.exe perf

# telemetry overhead table: disabled-sink and recording costs
# (writes BENCH_OBS.json)
bench-obs:
	dune exec bench/main.exe obs

# daemon latency/throughput vs one ms2c process per request
# (writes BENCH_SERVE.json)
bench-serve:
	dune build bin/ms2c.exe
	dune exec bench/main.exe serve

figures:
	dune exec bench/main.exe figures

examples:
	@for e in quickstart exceptions enum_io window_proc dynamic_bind \
	          control semantic state_machine metamacros prelude_tour \
          embedded_query derive; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; done

clean:
	dune clean
