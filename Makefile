# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench figures examples expand clean

all: build

build:
	dune build @all

test:
	dune runtest

# regenerate the paper's figures and all timing tables
bench:
	dune exec bench/main.exe

figures:
	dune exec bench/main.exe figures

examples:
	@for e in quickstart exceptions enum_io window_proc dynamic_bind \
	          control semantic state_machine metamacros prelude_tour \
          embedded_query derive; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; done

clean:
	dune clean
