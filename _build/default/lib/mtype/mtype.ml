(** Types of the macro (meta) language.

    The macro language is "C plus an extended type system": meta-values
    are C scalars (we support [int] and strings, which is what the
    paper's examples use), ASTs of some {!Sort.t}, lists of meta-values
    (declared with array syntax, [@id ids[]]), tuples (declared with
    struct syntax, and produced by tuple patterns), and functions (meta
    functions and the paper's downward-only anonymous functions). *)

type t =
  | Ast of Sort.t  (** [@stmt], [@exp], ... *)
  | List of t  (** [@id x[]]; also the type of repetition patterns *)
  | Tuple of field list  (** struct-style tuples; also tuple patterns *)
  | Int  (** C [int] (and [char]) at the meta level *)
  | String  (** C [char *] at the meta level *)
  | Void  (** value of statements-as-expressions, [error], ... *)
  | Fun of t list * t  (** meta functions and anonymous functions *)

and field = { fld_name : string; fld_type : t }

let ast s = Ast s
let list t = List t

let rec equal a b =
  match (a, b) with
  | Ast s1, Ast s2 -> Sort.equal s1 s2
  | List t1, List t2 -> equal t1 t2
  | Tuple f1, Tuple f2 ->
      List.length f1 = List.length f2
      && List.for_all2
           (fun x y -> x.fld_name = y.fld_name && equal x.fld_type y.fld_type)
           f1 f2
  | Int, Int | String, String | Void, Void -> true
  | Fun (p1, r1), Fun (p2, r2) ->
      List.length p1 = List.length p2
      && List.for_all2 equal p1 p2 && equal r1 r2
  | (Ast _ | List _ | Tuple _ | Int | String | Void | Fun _), _ -> false

(** Subtyping: sorts follow {!Sort.subsort}; lists and tuples are
    covariant; functions are contravariant in parameters.  [Num] and [Id]
    ASTs may be used where an [Exp] is expected, which is what lets
    [$name] (an [@id]) appear inside expression templates. *)
let rec subtype a b =
  match (a, b) with
  | Ast s1, Ast s2 -> Sort.subsort s1 s2
  | List t1, List t2 -> subtype t1 t2
  | Tuple f1, Tuple f2 ->
      List.length f1 = List.length f2
      && List.for_all2 (fun x y -> subtype x.fld_type y.fld_type) f1 f2
  | Int, Int | String, String | Void, Void -> true
  | Fun (p1, r1), Fun (p2, r2) ->
      List.length p1 = List.length p2
      && List.for_all2 subtype p2 p1 && subtype r1 r2
  | (Ast _ | List _ | Tuple _ | Int | String | Void | Fun _), _ -> false

let rec pp ppf = function
  | Ast s -> Fmt.pf ppf "@@%a" Sort.pp s
  | List t -> Fmt.pf ppf "%a[]" pp t
  | Tuple fields ->
      let pp_field ppf f = Fmt.pf ppf "%a %s" pp f.fld_type f.fld_name in
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ";@ ") pp_field) fields
  | Int -> Fmt.string ppf "int"
  | String -> Fmt.string ppf "char *"
  | Void -> Fmt.string ppf "void"
  | Fun (params, ret) ->
      Fmt.pf ppf "%a (%a)" pp ret Fmt.(list ~sep:(any ",@ ") pp) params

let to_string t = Fmt.str "%a" pp t

(** The sort of an AST-or-list-of-AST type, used when deciding whether a
    placeholder can stand in a given syntactic position (a list-typed
    placeholder is accepted in list positions of the same element
    sort). *)
let rec head_sort = function
  | Ast s -> Some s
  | List t -> head_sort t
  | Tuple _ | Int | String | Void | Fun _ -> None

let is_ast_like t = Option.is_some (head_sort t)
