lib/mtype/sort.mli: Format
