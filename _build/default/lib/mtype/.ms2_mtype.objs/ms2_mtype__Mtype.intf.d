lib/mtype/mtype.mli: Format Sort
