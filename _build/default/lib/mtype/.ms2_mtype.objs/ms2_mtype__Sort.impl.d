lib/mtype/sort.ml: Fmt
