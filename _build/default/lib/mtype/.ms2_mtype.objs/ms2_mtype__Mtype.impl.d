lib/mtype/mtype.ml: Fmt List Option Sort
