(** Syntactic sorts: the primitive AST types of the macro language.

    The paper's type language has the primitives [id], [stmt], [decl],
    [exp], [num] and [typespec].  Figure 2 additionally ranges a
    placeholder over the declarator-level sorts [declarator] and
    [init-declarator], so those are primitives too, as is [param]
    (function parameters, needed so patterns and templates can abstract
    over parameter lists). *)

type t =
  | Id  (** identifier *)
  | Exp  (** expression *)
  | Num  (** numeric literal; a subsort of [Exp] *)
  | Stmt  (** statement *)
  | Decl  (** (top-level) declaration *)
  | Typespec  (** type specifier, e.g. [int], [enum color] *)
  | Declarator  (** declarator, e.g. [*x[10]] *)
  | Init_declarator  (** declarator with optional initializer *)
  | Param  (** function parameter *)
  | Enumerator  (** enumeration constant with optional value *)

let all =
  [ Id; Exp; Num; Stmt; Decl; Typespec; Declarator; Init_declarator; Param;
    Enumerator ]

let equal (a : t) b = a = b

(** Concrete keyword used in source programs (after [@]) and in pattern
    specifiers. *)
let keyword = function
  | Id -> "id"
  | Exp -> "exp"
  | Num -> "num"
  | Stmt -> "stmt"
  | Decl -> "decl"
  | Typespec -> "typespec"
  | Declarator -> "declarator"
  | Init_declarator -> "init_declarator"
  | Param -> "param"
  | Enumerator -> "enumerator"

let of_keyword = function
  | "id" -> Some Id
  | "exp" -> Some Exp
  | "num" -> Some Num
  | "stmt" -> Some Stmt
  | "decl" -> Some Decl
  | "typespec" | "type_spec" -> Some Typespec
  | "declarator" -> Some Declarator
  | "init_declarator" | "init-declarator" -> Some Init_declarator
  | "param" -> Some Param
  | "enumerator" -> Some Enumerator
  | _ -> None

(** Subsort order: [Num <= Exp] and [Id <= Exp] (a numeric literal or an
    identifier may stand wherever an expression is expected). *)
let subsort a b =
  equal a b
  || match (a, b) with Num, Exp | Id, Exp -> true | _, _ -> false

let pp ppf t = Fmt.string ppf (keyword t)
