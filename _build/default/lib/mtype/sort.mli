(** Syntactic sorts: the primitive AST types of the macro language
    ([id], [exp], [num], [stmt], [decl], [typespec], plus the
    declarator-level sorts of the paper's Figure 2). *)

type t =
  | Id
  | Exp
  | Num  (** numeric literal; a subsort of [Exp] *)
  | Stmt
  | Decl
  | Typespec
  | Declarator
  | Init_declarator
  | Param
  | Enumerator

val all : t list
val equal : t -> t -> bool

val keyword : t -> string
(** Concrete keyword used in source (after [@]) and in patterns. *)

val of_keyword : string -> t option

val subsort : t -> t -> bool
(** [Num <= Exp] and [Id <= Exp]; otherwise reflexive. *)

val pp : Format.formatter -> t -> unit
