(** Types of the macro (meta) language: ASTs of some sort, lists
    (declared with array syntax), tuples (struct syntax, and tuple
    patterns), C scalars, and meta functions. *)

type t =
  | Ast of Sort.t  (** [@stmt], [@exp], ... *)
  | List of t  (** [@id x[]]; also the type of repetition patterns *)
  | Tuple of field list
  | Int
  | String
  | Void
  | Fun of t list * t

and field = { fld_name : string; fld_type : t }

val ast : Sort.t -> t
val list : t -> t
val equal : t -> t -> bool

val subtype : t -> t -> bool
(** Sorts follow {!Sort.subsort}; lists/tuples covariant; functions
    contravariant in parameters. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val head_sort : t -> Sort.t option
(** Sort of an AST-or-list-of-AST type ([None] for scalars etc.). *)

val is_ast_like : t -> bool
