(** Conversion of C declaration syntax to object-level {!Ctype}s, and
    binding of declarations into a {!Senv}.

    Conversion has the side effect of registering struct/union layouts
    and enum constants it encounters, mirroring how a C compiler
    processes declarations left to right. *)

open Ms2_syntax.Ast

let const_int_of (e : expr) : int option =
  match e.e with E_const (Cint (v, _)) -> Some v | _ -> None

let rec of_specs (senv : Senv.t) (specs : spec list) : Ctype.t =
  let unsigned = List.mem S_unsigned specs in
  let has s = List.mem s specs in
  let named =
    List.find_map (function S_named id -> Some id.id_name | _ -> None) specs
  in
  let enum = List.find_map (function S_enum es -> Some es | _ -> None) specs in
  let su =
    List.find_map
      (function
        | S_struct (tag, fields) -> Some (`Struct, tag, fields)
        | S_union (tag, fields) -> Some (`Union, tag, fields)
        | _ -> None)
      specs
  in
  if has S_void then Ctype.Void
  else if has S_float then Ctype.Floating { double = false }
  else if has S_double then Ctype.Floating { double = true }
  else if has S_char then Ctype.Integer { unsigned; rank = Ctype.Rchar }
  else if has S_short then Ctype.Integer { unsigned; rank = Ctype.Rshort }
  else if has S_long then Ctype.Integer { unsigned; rank = Ctype.Rlong }
  else
    match (enum, su, named) with
    | Some es, _, _ -> of_enum senv es
    | None, Some (kind, tag, fields), _ -> of_su senv kind tag fields
    | None, None, Some name -> (
        match Senv.find_typedef senv name with
        | Some ty -> ty
        | None -> Ctype.Unknown)
    | None, None, None ->
        if has S_int || has S_signed || has S_unsigned then
          Ctype.Integer { unsigned; rank = Ctype.Rint }
        else Ctype.Unknown

and of_enum senv (es : enum_spec) : Ctype.t =
  let tag =
    match es.enum_tag with
    | Some (Ii_id id) -> id.id_name
    | Some (Ii_splice _) | None -> Senv.fresh_tag senv
  in
  let ty = Ctype.Enum_t tag in
  (match es.enum_items with
  | None -> ()
  | Some items ->
      (* enum constants enter the variable namespace with the enum type *)
      List.iter
        (function
          | Enum_item (Ii_id id, _) -> Senv.add_var senv id.id_name ty
          | Enum_item (Ii_splice _, _) | Enum_splice _ -> ())
        items);
  ty

and of_su senv kind tag fields : Ctype.t =
  let tag =
    match tag with
    | Some (Ii_id id) -> id.id_name
    | Some (Ii_splice _) | None -> Senv.fresh_tag senv
  in
  (match fields with
  | None -> ()
  | Some fields ->
      let layout =
        List.concat_map
          (fun f ->
            let base = of_specs senv f.f_specs in
            List.filter_map
              (fun d ->
                match of_declarator senv base d with
                | "", _ -> None
                | name, ty -> Some (name, ty))
              f.f_declarators)
          fields
      in
      Senv.add_layout senv tag layout);
  match kind with
  | `Struct -> Ctype.Struct_t tag
  | `Union -> Ctype.Union_t tag

(** Standard C declarator reading: thread the type constructor down. *)
and of_declarator senv (base : Ctype.t) (d : declarator) : string * Ctype.t =
  let param_type p =
    match p with
    | P_decl (specs, pd) ->
        let _, ty = of_declarator senv (of_specs senv specs) pd in
        Ctype.decay ty
    | P_name _ -> Ctype.Unknown (* K&R: typed by separate declarations *)
    | P_ellipsis | P_splice _ -> Ctype.Unknown
  in
  let rec go d t =
    match d with
    | D_ident id -> (id.id_name, t)
    | D_abstract -> ("", t)
    | D_pointer inner -> go inner (Ctype.Pointer t)
    | D_array (inner, size) ->
        go inner (Ctype.Array (t, Option.bind size const_int_of))
    | D_func (inner, []) ->
        (* "()" — unprototyped in our subset (also matches "(void)") *)
        go inner (Ctype.Func (None, t))
    | D_func (inner, params) when List.mem P_ellipsis params ->
        (* variadic prototype: treated as unprototyped for arity checks *)
        go inner (Ctype.Func (None, t))
    | D_func (inner, params) ->
        go inner (Ctype.Func (Some (List.map param_type params), t))
    | D_splice _ -> ("", Ctype.Unknown)
  in
  go d base

let of_type_name senv (ct : ctype) : Ctype.t =
  snd (of_declarator senv (of_specs senv ct.ct_specs) ct.ct_decl)

(* ------------------------------------------------------------------ *)
(* Binding declarations into the environment                           *)
(* ------------------------------------------------------------------ *)

(** Process a declaration as a C compiler would: register tags, enum
    constants, typedefs, and declared names. *)
let bind_decl (senv : Senv.t) (decl : decl) : unit =
  match decl.d with
  | Decl_plain (specs, idecls) ->
      let base = of_specs senv specs in
      let is_typedef = List.mem S_typedef specs in
      List.iter
        (function
          | Init_decl (d, _) -> (
              match of_declarator senv base d with
              | "", _ -> ()
              | name, ty ->
                  if is_typedef then Senv.add_typedef senv name ty
                  else Senv.add_var senv name ty)
          | Init_splice _ -> ())
        idecls
  | Decl_fun (specs, d, _, _) -> (
      let base = of_specs senv specs in
      match of_declarator senv base d with
      | "", _ -> ()
      | name, ty -> Senv.add_var senv name ty)
  | Decl_metadcl _ | Decl_macro_def _ | Decl_splice _ | Decl_macro _ -> ()

(** Bind a function definition's parameters in the current scope (call
    after [Senv.push_scope]).  K&R parameter names take their types from
    the K&R declarations, defaulting to [int]. *)
let bind_params (senv : Senv.t) (d : declarator) (kr : decl list) : unit =
  let kr_type name =
    let found = ref None in
    List.iter
      (fun (decl : decl) ->
        match decl.d with
        | Decl_plain (specs, idecls) ->
            let base = of_specs senv specs in
            List.iter
              (function
                | Init_decl (dd, _) -> (
                    match of_declarator senv base dd with
                    | n, ty when n = name -> found := Some ty
                    | _ -> ())
                | Init_splice _ -> ())
              idecls
        | _ -> ())
      kr;
    match !found with Some ty -> ty | None -> Ctype.int_t
  in
  let rec params_of = function
    | D_func (inner, ps) -> (
        match params_of inner with [] -> ps | deeper -> deeper)
    | D_pointer d | D_array (d, _) -> params_of d
    | D_ident _ | D_abstract | D_splice _ -> []
  in
  List.iter
    (fun p ->
      match p with
      | P_decl (specs, pd) -> (
          let base = of_specs senv specs in
          match of_declarator senv base pd with
          | "", _ -> ()
          | name, ty -> Senv.add_var senv name (Ctype.decay ty))
      | P_name id -> Senv.add_var senv id.id_name (kr_type id.id_name)
      | P_ellipsis | P_splice _ -> ())
    (params_of d)
