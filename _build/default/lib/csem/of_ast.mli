(** Conversion of C declaration syntax to object-level types, and
    binding of declarations into a symbol table.  Conversion registers
    struct/union layouts and enum constants as a side effect, like a C
    compiler processing declarations left to right. *)

open Ms2_syntax.Ast

val of_specs : Senv.t -> spec list -> Ctype.t
val of_declarator : Senv.t -> Ctype.t -> declarator -> string * Ctype.t
val of_type_name : Senv.t -> ctype -> Ctype.t

val bind_decl : Senv.t -> decl -> unit
(** Register tags, enum constants, typedefs, declared names. *)

val bind_params : Senv.t -> declarator -> decl list -> unit
(** Bind a function definition's parameters in the current scope (K&R
    names take their types from the K&R declarations). *)
