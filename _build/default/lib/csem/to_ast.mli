(** Rendering object-level types back into syntax, so semantic macros
    can splice inferred types into templates. *)

open Ms2_syntax.Ast

val specs_of : Ctype.t -> spec list option
(** The specifier list denoting a type, when expressible without a
    declarator part (no pointers/arrays/functions). *)

val is_anonymous : string -> bool

val declaration_of : Ctype.t -> ident -> decl option
(** A full declaration [t name;] — the declarator carries the
    pointer/array part.  [None] for function types. *)
