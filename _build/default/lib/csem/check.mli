(** Whole-program static checking of (expanded, pure-C) programs:
    findings are collected, not raised; [Unknown] silences checks. *)

open Ms2_syntax.Ast

type finding = { f_loc : Ms2_support.Loc.t; f_message : string }

val check_program : ?senv:Senv.t -> program -> finding list
(** Findings in source order. *)

val finding_to_string : finding -> string
