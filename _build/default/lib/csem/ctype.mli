(** Object-level C types, for the semantic-macro extension (paper §5).

    [Unknown] is the lenient default: undeclared identifiers type as
    [Unknown], which is compatible with everything — the analyzer only
    reports what it is sure about. *)

type rank = Rchar | Rshort | Rint | Rlong

type t =
  | Void
  | Integer of { unsigned : bool; rank : rank }
  | Floating of { double : bool }
  | Pointer of t
  | Array of t * int option
  | Func of t list option * t  (** [None] params: unprototyped *)
  | Enum_t of string
  | Struct_t of string  (** tag; field layouts live in {!Senv} *)
  | Union_t of string
  | Unknown

val int_t : t
val char_t : t
val string_t : t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val is_integer : t -> bool
val is_arithmetic : t -> bool
val is_pointer_like : t -> bool
val is_scalar : t -> bool

val decay : t -> t
(** Arrays become pointers, functions become function pointers. *)

val equal : t -> t -> bool

val compatible : dst:t -> src:t -> bool
(** Assignment compatibility, permissive in the C89 spirit. *)

val arithmetic_join : t -> t -> t
(** Usual arithmetic conversions, simplified. *)
