(** Object-level C types, for the semantic-macro extension.

    The paper's future work (§5): "semantic macros, which are an
    extension of syntax macros where the macro processor does static
    semantic analysis (e.g. type checking)".  This module is the type
    algebra of that analysis: enough of C's type system to type every
    construct our front end parses.

    [Unknown] is the lenient bottom/top: undeclared identifiers and
    unanalyzable constructs type as [Unknown], which is compatible with
    everything — the analyzer reports what it is sure about and stays
    silent otherwise, which is the right default for a macro processor
    working on incomplete programs. *)

type rank = Rchar | Rshort | Rint | Rlong

type t =
  | Void
  | Integer of { unsigned : bool; rank : rank }
  | Floating of { double : bool }
  | Pointer of t
  | Array of t * int option
  | Func of t list option * t  (** [None] params: unprototyped *)
  | Enum_t of string  (** tag, or a generated name for anonymous enums *)
  | Struct_t of string  (** tag; field layouts live in {!Senv} *)
  | Union_t of string
  | Unknown

let int_t = Integer { unsigned = false; rank = Rint }
let char_t = Integer { unsigned = false; rank = Rchar }
let string_t = Pointer char_t

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Integer { unsigned; rank } ->
      if unsigned then Fmt.string ppf "unsigned ";
      Fmt.string ppf
        (match rank with
        | Rchar -> "char"
        | Rshort -> "short"
        | Rint -> "int"
        | Rlong -> "long")
  | Floating { double } -> Fmt.string ppf (if double then "double" else "float")
  | Pointer t -> Fmt.pf ppf "%a *" pp t
  | Array (t, None) -> Fmt.pf ppf "%a []" pp t
  | Array (t, Some n) -> Fmt.pf ppf "%a [%d]" pp t n
  | Func (None, ret) -> Fmt.pf ppf "%a ()" pp ret
  | Func (Some params, ret) ->
      Fmt.pf ppf "%a (%a)" pp ret (Fmt.list ~sep:(Fmt.any ", ") pp) params
  | Enum_t tag -> Fmt.pf ppf "enum %s" tag
  | Struct_t tag -> Fmt.pf ppf "struct %s" tag
  | Union_t tag -> Fmt.pf ppf "union %s" tag
  | Unknown -> Fmt.string ppf "?"

let to_string t = Fmt.str "%a" pp t

let is_integer = function
  | Integer _ | Enum_t _ -> true
  | Unknown -> true
  | Void | Floating _ | Pointer _ | Array _ | Func _ | Struct_t _ | Union_t _
    ->
      false

let is_arithmetic = function
  | Floating _ -> true
  | t -> is_integer t

let is_pointer_like = function
  | Pointer _ | Array _ | Unknown -> true
  | _ -> false

let is_scalar t = is_arithmetic t || is_pointer_like t

(** Decayed type in expression position: arrays become pointers,
    functions become function pointers (C's usual conversions). *)
let decay = function
  | Array (t, _) -> Pointer t
  | Func _ as f -> Pointer f
  | t -> t

(** Structural equality, with [Unknown] equal to nothing but itself
    (use {!compatible} for assignment checking). *)
let rec equal a b =
  match (a, b) with
  | Void, Void | Unknown, Unknown -> true
  | Integer { unsigned = u1; rank = r1 }, Integer { unsigned = u2; rank = r2 }
    ->
      u1 = u2 && r1 = r2
  | Floating { double = d1 }, Floating { double = d2 } -> d1 = d2
  | Pointer a, Pointer b -> equal a b
  | Array (a, n), Array (b, m) -> equal a b && n = m
  | Func (None, ra), Func (None, rb) -> equal ra rb
  | Func (Some pa, ra), Func (Some pb, rb) ->
      List.length pa = List.length pb
      && List.for_all2 equal pa pb && equal ra rb
  | Enum_t a, Enum_t b | Struct_t a, Struct_t b | Union_t a, Union_t b ->
      a = b
  | _, _ -> false

(** May a value of type [src] be assigned to an lvalue of type [dst]?
    Permissive in the C89 spirit: arithmetic types interconvert,
    pointers want matching (or [void *], or [Unknown]) pointees, enums
    and integers interconvert. *)
let rec compatible ~(dst : t) ~(src : t) : bool =
  let src = decay src in
  match (dst, src) with
  | Unknown, _ | _, Unknown -> true
  | t1, t2 when is_arithmetic t1 && is_arithmetic t2 -> true
  | Pointer Void, Pointer _ | Pointer _, Pointer Void -> true
  | Pointer a, Pointer b -> compatible ~dst:a ~src:b
  | (Struct_t _ | Union_t _), _ -> equal dst src
  | Void, Void -> true
  | Func _, Func _ -> equal dst src
  | _, _ -> equal dst src

(** Usual arithmetic conversions, much simplified: floats dominate,
    otherwise everything computes at [int] rank or above. *)
let arithmetic_join a b =
  match (decay a, decay b) with
  | Unknown, t | t, Unknown -> t
  | Floating _, _ | _, Floating _ -> Floating { double = true }
  | Integer { unsigned = u1; rank = r1 }, Integer { unsigned = u2; rank = r2 }
    ->
      let rank = if r1 = Rlong || r2 = Rlong then Rlong else Rint in
      Integer { unsigned = u1 || u2; rank }
  | Enum_t _, t | t, Enum_t _ -> ( match t with Enum_t _ -> int_t | t -> t)
  | a, _ -> a
