(** Type inference for object-level C expressions.

    Lenient by design: anything the analysis cannot resolve types as
    {!Ctype.Unknown}.  This is the information source for semantic
    macros ([exp_typespec], [type_name_of], ...) and for the optional
    whole-program checker. *)

open Ms2_syntax.Ast
open Ctype

let rec type_of (senv : Senv.t) (expr : expr) : Ctype.t =
  match expr.e with
  | E_ident id -> (
      match Senv.find_var senv id.id_name with
      | Some ty -> ty
      | None -> Unknown)
  | E_const (Cint _) -> int_t
  | E_const (Cfloat _) -> Floating { double = true }
  | E_const (Cchar _) -> char_t
  | E_const (Cstring _) -> string_t
  | E_call (f, _args) -> (
      match decay (type_of senv f) with
      | Pointer (Func (_, ret)) | Func (_, ret) -> ret
      | _ -> Unknown)
  | E_index (a, _i) -> (
      match decay (type_of senv a) with
      | Pointer t -> t
      | _ -> Unknown)
  | E_member (e, f) -> member_type senv (type_of senv e) f
  | E_arrow (e, f) -> (
      match decay (type_of senv e) with
      | Pointer inner -> member_type senv inner f
      | Unknown -> Unknown
      | _ -> Unknown)
  | E_postincr e | E_postdecr e | E_unary ((Preincr | Predecr), e) ->
      decay (type_of senv e)
  | E_unary (Deref, e) -> (
      match decay (type_of senv e) with Pointer t -> t | _ -> Unknown)
  | E_unary (Addr, e) -> Pointer (type_of senv e)
  | E_unary ((Neg | Plus | Bitnot), e) ->
      arithmetic_join (type_of senv e) int_t
  | E_unary (Lognot, _) -> int_t
  | E_binary ((Add | Sub), a, b) -> (
      let ta = decay (type_of senv a) and tb = decay (type_of senv b) in
      match (ta, tb) with
      | Pointer _, Pointer _ -> int_t (* pointer difference *)
      | Pointer _, _ -> ta
      | _, Pointer _ -> tb
      | _ -> arithmetic_join ta tb)
  | E_binary ((Mul | Div | Mod | Band | Bxor | Bor | Shl | Shr), a, b) ->
      arithmetic_join (type_of senv a) (type_of senv b)
  | E_binary ((Lt | Gt | Le | Ge | Eq | Ne | Logand | Logor), _, _) -> int_t
  | E_cond (_, t, e) -> (
      match (decay (type_of senv t), decay (type_of senv e)) with
      | Unknown, ty | ty, Unknown -> ty
      | ta, tb -> if is_arithmetic ta && is_arithmetic tb then
            arithmetic_join ta tb
          else ta)
  | E_assign (_, l, _) -> decay (type_of senv l)
  | E_comma (_, b) -> type_of senv b
  | E_cast (ct, _) -> Of_ast.of_type_name senv ct
  | E_sizeof_expr _ | E_sizeof_type _ ->
      Integer { unsigned = true; rank = Rlong }
  | E_backquote _ | E_lambda _ | E_splice _ | E_macro _ -> Unknown

and member_type senv (t : Ctype.t) (f : id_or_splice) : Ctype.t =
  match (t, f) with
  | (Struct_t tag | Union_t tag), Ii_id id ->
      Senv.field_type senv tag id.id_name
  | _, _ -> Unknown
