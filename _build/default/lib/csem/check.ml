(** Whole-program static checking of (expanded, pure-C) programs.

    The paper (§5) envisions semantic macros doing "all relevant type
    checking in the macro itself ... programmers wouldn't end up having
    to track type errors in code they didn't write".  This checker is
    the downstream half of that story: run it over the expansion and the
    type errors are found before any C compiler sees the code.

    Diagnostics are collected, not raised; [Ctype.Unknown] silences
    checks (incomplete programs are normal for a macro processor). *)

open Ms2_syntax.Ast
module Loc = Ms2_support.Loc

type finding = { f_loc : Loc.t; f_message : string }

type t = {
  senv : Senv.t;
  mutable findings : finding list;
  mutable current_return : Ctype.t;  (** return type of enclosing fn *)
}

let create ?senv () =
  {
    senv = (match senv with Some s -> s | None -> Senv.create ());
    findings = [];
    current_return = Ctype.Unknown;
  }

let report t loc fmt =
  Format.kasprintf
    (fun f_message -> t.findings <- { f_loc = loc; f_message } :: t.findings)
    fmt

let typeof t e = Infer_c.type_of t.senv e

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec check_expr t (expr : expr) : unit =
  let loc = expr.eloc in
  match expr.e with
  | E_ident _ | E_const _ -> ()
  | E_call (f, args) -> (
      check_expr t f;
      List.iter (check_expr t) args;
      match Ctype.decay (typeof t f) with
      | Ctype.Pointer (Ctype.Func (proto, _)) | Ctype.Func (proto, _) -> (
          match proto with
          | None -> ()
          | Some params ->
              if List.length params <> List.length args then
                report t loc "call passes %d arguments where %d are expected"
                  (List.length args) (List.length params)
              else
                List.iteri
                  (fun i (p, a) ->
                    let ta = typeof t a in
                    if not (Ctype.compatible ~dst:p ~src:ta) then
                      report t a.eloc
                        "argument %d has type %s but %s is expected" (i + 1)
                        (Ctype.to_string ta) (Ctype.to_string p))
                  (List.combine params args))
      | Ctype.Unknown -> ()
      | ty ->
          report t loc "called value has type %s, not a function"
            (Ctype.to_string ty))
  | E_index (a, i) ->
      check_expr t a;
      check_expr t i;
      (match Ctype.decay (typeof t a) with
      | Ctype.Pointer _ | Ctype.Unknown -> ()
      | ty ->
          report t loc "indexed value has type %s, not an array or pointer"
            (Ctype.to_string ty));
      let ti = typeof t i in
      if not (Ctype.is_integer ti) then
        report t i.eloc "array index has type %s, not an integer"
          (Ctype.to_string ti)
  | E_member (e, _) ->
      check_expr t e;
      (match Ctype.decay (typeof t e) with
      | Ctype.Struct_t _ | Ctype.Union_t _ | Ctype.Unknown -> ()
      | ty ->
          report t loc "member access on a value of type %s"
            (Ctype.to_string ty))
  | E_arrow (e, _) ->
      check_expr t e;
      (match Ctype.decay (typeof t e) with
      | Ctype.Pointer (Ctype.Struct_t _ | Ctype.Union_t _ | Ctype.Unknown)
      | Ctype.Unknown ->
          ()
      | ty ->
          report t loc "-> applied to a value of type %s"
            (Ctype.to_string ty))
  | E_postincr e | E_postdecr e | E_unary ((Preincr | Predecr), e) ->
      check_expr t e;
      let ty = typeof t e in
      if not (Ctype.is_scalar ty) then
        report t loc "++/-- applied to a value of type %s"
          (Ctype.to_string ty)
  | E_unary (Deref, e) ->
      check_expr t e;
      (match Ctype.decay (typeof t e) with
      | Ctype.Pointer _ | Ctype.Unknown -> ()
      | ty ->
          report t loc "* applied to a value of type %s (not a pointer)"
            (Ctype.to_string ty))
  | E_unary (_, e) -> check_expr t e
  | E_binary (op, a, b) ->
      check_expr t a;
      check_expr t b;
      let ta = Ctype.decay (typeof t a) and tb = Ctype.decay (typeof t b) in
      (match op with
      | Mul | Div | Mod | Band | Bxor | Bor | Shl | Shr ->
          if not (Ctype.is_arithmetic ta) then
            report t a.eloc "arithmetic on a value of type %s"
              (Ctype.to_string ta);
          if not (Ctype.is_arithmetic tb) then
            report t b.eloc "arithmetic on a value of type %s"
              (Ctype.to_string tb)
      | Add | Sub | Lt | Gt | Le | Ge | Eq | Ne | Logand | Logor ->
          if not (Ctype.is_scalar ta) then
            report t a.eloc "operand has non-scalar type %s"
              (Ctype.to_string ta);
          if not (Ctype.is_scalar tb) then
            report t b.eloc "operand has non-scalar type %s"
              (Ctype.to_string tb))
  | E_cond (c, th, el) ->
      check_expr t c;
      check_expr t th;
      check_expr t el
  | E_assign (_, l, r) ->
      check_expr t l;
      check_expr t r;
      let tl = typeof t l and tr = typeof t r in
      if not (Ctype.compatible ~dst:tl ~src:tr) then
        report t loc "assigning a value of type %s to an lvalue of type %s"
          (Ctype.to_string tr) (Ctype.to_string tl)
  | E_comma (a, b) ->
      check_expr t a;
      check_expr t b
  | E_cast (_, e) | E_sizeof_expr e -> check_expr t e
  | E_sizeof_type _ -> ()
  | E_backquote _ | E_lambda _ | E_splice _ | E_macro _ ->
      report t loc "meta construct in object code"

(* ------------------------------------------------------------------ *)
(* Statements and declarations                                         *)
(* ------------------------------------------------------------------ *)

let check_scalar_cond t (e : expr) =
  check_expr t e;
  let ty = Ctype.decay (typeof t e) in
  if not (Ctype.is_scalar ty) then
    report t e.eloc "condition has non-scalar type %s" (Ctype.to_string ty)

let rec check_stmt t (stmt : stmt) : unit =
  match stmt.s with
  | St_expr e -> check_expr t e
  | St_compound items ->
      Senv.with_scope t.senv (fun () ->
          List.iter
            (function
              | Bi_decl d -> check_decl t d
              | Bi_stmt s -> check_stmt t s)
            items)
  | St_if (c, th, el) ->
      check_scalar_cond t c;
      check_stmt t th;
      Option.iter (check_stmt t) el
  | St_while (c, body) | St_do (body, c) ->
      check_scalar_cond t c;
      check_stmt t body
  | St_for (init, cond, step, body) ->
      Option.iter (check_expr t) init;
      Option.iter (check_scalar_cond t) cond;
      Option.iter (check_expr t) step;
      check_stmt t body
  | St_switch (e, body) ->
      check_expr t e;
      let ty = typeof t e in
      if not (Ctype.is_integer ty) then
        report t e.eloc "switch on a value of type %s" (Ctype.to_string ty);
      check_stmt t body
  | St_case (e, s) ->
      check_expr t e;
      check_stmt t s
  | St_default s | St_label (_, s) -> check_stmt t s
  | St_return None ->
      if
        not
          (Ctype.compatible ~dst:t.current_return ~src:Ctype.Void
          || t.current_return = Ctype.Unknown)
      then
        report t stmt.sloc "return without a value in a function returning %s"
          (Ctype.to_string t.current_return)
  | St_return (Some e) ->
      check_expr t e;
      let ty = typeof t e in
      if not (Ctype.compatible ~dst:t.current_return ~src:ty) then
        report t e.eloc "returning a value of type %s from a function \
                         returning %s"
          (Ctype.to_string ty)
          (Ctype.to_string t.current_return)
  | St_break | St_continue | St_goto _ | St_null -> ()
  | St_splice _ | St_macro _ ->
      report t stmt.sloc "meta construct in object code"

and check_init t ~(dst : Ctype.t) (init : init) : unit =
  match init with
  | I_expr e ->
      check_expr t e;
      let src = typeof t e in
      (* brace-less initialization of aggregates is not checked *)
      if
        (not (Ctype.compatible ~dst ~src))
        && not (match dst with Ctype.Array _ -> true | _ -> false)
      then
        report t e.eloc "initializing a %s with a value of type %s"
          (Ctype.to_string dst) (Ctype.to_string src)
  | I_list items ->
      let elem =
        match Ctype.decay dst with
        | Ctype.Pointer te -> te
        | _ -> Ctype.Unknown
      in
      List.iter (check_init t ~dst:elem) items

and check_decl t (decl : decl) : unit =
  match decl.d with
  | Decl_plain (specs, idecls) ->
      let base = Of_ast.of_specs t.senv specs in
      let is_typedef = List.mem S_typedef specs in
      List.iter
        (function
          | Init_decl (d, init) -> (
              let name, ty = Of_ast.of_declarator t.senv base d in
              (match init with
              | Some init when not is_typedef -> check_init t ~dst:ty init
              | Some _ | None -> ());
              match name with
              | "" -> ()
              | name ->
                  if is_typedef then Senv.add_typedef t.senv name ty
                  else Senv.add_var t.senv name ty)
          | Init_splice _ -> report t decl.dloc "meta construct in object code")
        idecls
  | Decl_fun (specs, d, kr, body) ->
      Of_ast.bind_decl t.senv decl;
      let ret =
        match snd (Of_ast.of_declarator t.senv (Of_ast.of_specs t.senv specs) d)
        with
        | Ctype.Func (_, ret) -> ret
        | _ -> Ctype.Unknown
      in
      Senv.with_scope t.senv (fun () ->
          Of_ast.bind_params t.senv d kr;
          let saved = t.current_return in
          t.current_return <- ret;
          Fun.protect
            ~finally:(fun () -> t.current_return <- saved)
            (fun () -> check_stmt t body))
  | Decl_metadcl _ | Decl_macro_def _ | Decl_splice _ | Decl_macro _ ->
      report t decl.dloc "meta construct in object code"

(** Check a whole program; returns findings in source order. *)
let check_program ?senv (prog : program) : finding list =
  let t = create ?senv () in
  List.iter (check_decl t) prog;
  List.rev t.findings

let finding_to_string f =
  if Loc.is_dummy f.f_loc then f.f_message
  else Fmt.str "%a: %s" Loc.pp f.f_loc f.f_message
