(** Rendering object-level {!Ctype}s back into syntax, so semantic
    macros can splice inferred types into templates (the paper's
    "the macro user wouldn't need to declare the type of name"). *)

open Ms2_syntax.Ast

(** The specifier list denoting a type, when the type is expressible as
    specifiers alone (no pointer/array/function declarator part). *)
let rec specs_of (t : Ctype.t) : spec list option =
  match t with
  | Ctype.Void -> Some [ S_void ]
  | Ctype.Integer { unsigned; rank } ->
      let base =
        match rank with
        | Ctype.Rchar -> [ S_char ]
        | Ctype.Rshort -> [ S_short ]
        | Ctype.Rint -> [ S_int ]
        | Ctype.Rlong -> [ S_long ]
      in
      Some (if unsigned then S_unsigned :: base else base)
  | Ctype.Floating { double } ->
      Some [ (if double then S_double else S_float) ]
  | Ctype.Enum_t tag when not (is_anonymous tag) ->
      Some [ S_enum { enum_tag = Some (Ii_id (ident tag)); enum_items = None } ]
  | Ctype.Struct_t tag when not (is_anonymous tag) ->
      Some [ S_struct (Some (Ii_id (ident tag)), None) ]
  | Ctype.Union_t tag when not (is_anonymous tag) ->
      Some [ S_union (Some (Ii_id (ident tag)), None) ]
  | Ctype.Enum_t _ | Ctype.Struct_t _ | Ctype.Union_t _
  | Ctype.Pointer _ | Ctype.Array _ | Ctype.Func _ | Ctype.Unknown ->
      None

and is_anonymous tag = String.length tag > 0 && tag.[0] = '<'

(** A full declaration [t name;] for any expressible type: the declarator
    carries the pointer/array part.  Function types are not declarable
    this way. *)
let declaration_of (t : Ctype.t) (name : ident) : decl option =
  let rec split (t : Ctype.t) (d : declarator) :
      (Ctype.t * declarator) option =
    match t with
    | Ctype.Pointer inner -> split inner (D_pointer d)
    | Ctype.Array (inner, n) ->
        let size =
          Option.map (fun n -> e_int n) n
        in
        split inner (D_array (d, size))
    | Ctype.Func _ -> None
    | base -> Some (base, d)
  in
  match split t (D_ident name) with
  | None -> None
  | Some (base, d) -> (
      match specs_of base with
      | Some specs ->
          Some (mk_decl (Decl_plain (specs, [ Init_decl (d, None) ])))
      | None -> None)
