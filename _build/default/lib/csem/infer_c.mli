(** Type inference for object-level C expressions: the information
    source for semantic macros and the whole-program checker. *)

open Ms2_syntax.Ast

val type_of : Senv.t -> expr -> Ctype.t
val member_type : Senv.t -> Ctype.t -> id_or_splice -> Ctype.t
