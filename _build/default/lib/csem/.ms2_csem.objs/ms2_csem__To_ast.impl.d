lib/csem/to_ast.ml: Ctype Ms2_syntax Option String
