lib/csem/senv.ml: Ctype Fun Hashtbl List Printf
