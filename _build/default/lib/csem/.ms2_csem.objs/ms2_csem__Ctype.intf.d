lib/csem/ctype.mli: Format
