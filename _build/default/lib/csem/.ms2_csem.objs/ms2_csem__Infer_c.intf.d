lib/csem/infer_c.mli: Ctype Ms2_syntax Senv
