lib/csem/to_ast.mli: Ctype Ms2_syntax
