lib/csem/infer_c.ml: Ctype Ms2_syntax Of_ast Senv
