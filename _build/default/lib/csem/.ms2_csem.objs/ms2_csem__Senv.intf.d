lib/csem/senv.mli: Ctype
