lib/csem/check.ml: Ctype Fmt Format Fun Infer_c List Ms2_support Ms2_syntax Of_ast Option Senv
