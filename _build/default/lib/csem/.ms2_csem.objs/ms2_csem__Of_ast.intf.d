lib/csem/of_ast.mli: Ctype Ms2_syntax Senv
