lib/csem/ctype.ml: Fmt List
