lib/csem/of_ast.ml: Ctype List Ms2_syntax Option Senv
