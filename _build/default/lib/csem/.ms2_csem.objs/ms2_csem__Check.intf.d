lib/csem/check.mli: Ms2_support Ms2_syntax Senv
