(** The MS² standard macro library: generally useful statement and
    declaration macros, written in MS² itself ([unless], [repeat],
    [for_range], [times], [swap], [with_cleanup], [assert_that],
    [log_value], [bitflags], [myenum]). *)

val source : string
(** The prelude's MS² source. *)

val load : Engine.t -> unit
(** Load the prelude (pure meta-program; emits no object code). *)

val macro_names : string list
