(** Regeneration of the paper's figures.

    - {!figure2}: the four parses of the code template [`[int $y;]] as
      the AST type of [y] ranges over init-declarator list,
      init-declarator, declarator and identifier (paper Figure 2);
    - {!figure3}: the four parses of [`{int x; $ph1 $ph2 return(x);}]
      over the (decl, stmt) type combinations of the two placeholders,
      including the syntactically illegal (stmt, decl) case (Figure 3);
    - {!figure1}: the two-dimensional categorization of macro systems,
      demonstrated live by running the same workload through the
      token-substitution baseline ([ms2.cpp]) and through MS². *)

open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
module Tenv = Ms2_typing.Tenv
module Parser = Ms2_parser.Parser
module Ast = Ms2_syntax.Ast
module Sexp = Ms2_syntax.Sexp

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

(** Parse the template under a typing of its placeholders and return the
    paper-style s-expression of the resulting tree, or the diagnostic
    when the parse is illegal. *)
let parse_template_with (bindings : (string * Mtype.t) list) (text : string) :
    (Ast.template, string) result =
  let tenv = Tenv.create () in
  List.iter (fun (n, ty) -> Tenv.add tenv n ty) bindings;
  match Parser.meta_expr_of_string ~tenv text with
  | { Ast.e = Ast.E_backquote t; _ } -> Ok t
  | _ -> Error "not a template"
  | exception Diag.Error d -> Error (Diag.to_string d)

let figure2_types : (string * Mtype.t) list =
  [ ("init-declarator[]", Mtype.List (Mtype.Ast Sort.Init_declarator));
    ("init-declarator", Mtype.Ast Sort.Init_declarator);
    ("declarator", Mtype.Ast Sort.Declarator);
    ("identifier", Mtype.Ast Sort.Id) ]

let figure2_template = "`[int $y;]"

(** Rows of Figure 2: (AST type of y, parse). *)
let figure2 () : (string * string) list =
  List.map
    (fun (name, ty) ->
      let parse =
        match parse_template_with [ ("y", ty) ] figure2_template with
        | Ok (Ast.T_decl d) -> Sexp.decl_to_string d
        | Ok _ -> "unexpected template kind"
        | Error e -> e
      in
      (name, parse))
    figure2_types

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let figure3_template = "`{int x; $ph1 $ph2 return(x);}"

let figure3_combinations : (string * Mtype.t * string * Mtype.t) list =
  let d = Mtype.Ast Sort.Decl and s = Mtype.Ast Sort.Stmt in
  [ ("decl", d, "decl", d);
    ("decl", d, "stmt", s);
    ("stmt", s, "stmt", s);
    ("stmt", s, "decl", d) ]

(** Rows of Figure 3: (type of ph1, type of ph2, parse or error). *)
let figure3 () : (string * string * string) list =
  List.map
    (fun (n1, t1, n2, t2) ->
      let parse =
        match
          parse_template_with [ ("ph1", t1); ("ph2", t2) ] figure3_template
        with
        | Ok (Ast.T_stmt s) -> Sexp.stmt_to_string s
        | Ok _ -> "unexpected template kind"
        | Error _ -> "Syntactically Illegal Program"
      in
      (n1, n2, parse))
    figure3_combinations

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

(** The character-level hazard witness: with [RE] defined as [x], blind
    character substitution corrupts the unrelated identifier [CORE] —
    why macro processors moved from characters to tokens. *)
let char_witness () : string =
  let c = Ms2_cpp.Charsub.create () in
  Ms2_cpp.Charsub.define c "RE" "x";
  Ms2_cpp.Charsub.expand_string c "int CORE = RE;"

(** The encapsulation witness, run through the token-substitution
    baseline: [MUL(A, B) = A * B] applied to [x + y] and [m + n]. *)
let cpp_witness () : string =
  let cpp = Ms2_cpp.Cpp.create () in
  Ms2_cpp.Cpp.define_function cpp "MUL" [ "A"; "B" ]
    (Ms2_cpp.Cpp.tokenize "A * B");
  Ms2_cpp.Cpp.expand_string cpp "MUL(x + y, m + n)"

(** The same workload through MS²: substitution happens at the tree
    level, and the pretty-printer reinserts the parentheses that the
    trees imply. *)
let ms2_witness () : string =
  let engine = Engine.create () in
  let prog =
    Engine.expand_source engine
      "syntax exp MUL {| ( $$exp::a , $$exp::b ) |} { return `($a * $b); }\n\
       int witness = MUL(x + y, m + n);"
  in
  match prog with
  | [ { Ast.d = Ast.Decl_plain (_, [ Ast.Init_decl (_, Some (Ast.I_expr e)) ]); _ } ] ->
      Ms2_syntax.Pretty.expr_to_string e
  | _ -> "unexpected expansion"

type fig1_row = {
  programmability : string;
  character : string;
  token : string;
  syntax : string;
  semantic : string;
}

(** The paper's two-dimensional categorization (Figure 1).  MS² is the
    syntax-based, fully programmable entry — this repository. *)
let figure1_table : fig1_row list =
  [ { programmability = "Full Programming Language";
      character = "GPM";
      token = "360 Assembler";
      syntax = "MS2 (this repo: ms2.core)";
      semantic = "Maddox" };
    { programmability = "Repetition";
      character = "Pre-ANSI CPP (this repo: Charsub)";
      token = "ANSI CPP (this repo: ms2.cpp)";
      syntax = "Hygienic Macros";
      semantic = "" };
    { programmability = "Substitution";
      character = "";
      token = "";
      syntax = "Vidart";
      semantic = "" } ]
