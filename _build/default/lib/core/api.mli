(** Public API of the MS² macro system.

    Typical use:
    {[
      match Ms2.Api.expand_string source with
      | Ok c_code -> print_string c_code
      | Error message -> prerr_endline message
    ]}

    For multi-file use, create an engine once and call {!expand}
    repeatedly: macro definitions, [metadcl] globals, meta functions and
    generated macros persist across calls. *)

type engine = Engine.t

val create_engine :
  ?max_depth:int ->
  ?compile_patterns:bool ->
  ?hygienic:bool ->
  ?prelude:bool ->
  unit ->
  engine
(** @param prelude load the standard macro library ({!Prelude}) *)

val expand_exn : ?engine:engine -> ?source:string -> string -> string
(** Parse and expand, rendering pure C.
    @raise Ms2_support.Diag.Error on any error. *)

val expand_string : ?engine:engine -> ?source:string -> string -> (string, string) result
val expand : engine -> ?source:string -> string -> (string, string) result

val expand_to_ast :
  ?engine:engine -> ?source:string -> string ->
  (Ms2_syntax.Ast.program, string) result

val stats : engine -> Engine.stats

val check_program : Ms2_syntax.Ast.program -> string list
(** Object-level static checking of a pure-C program (e.g. an
    expansion); human-readable findings. *)

val expand_checked :
  ?engine:engine -> ?source:string -> string ->
  (string * string list, string) result
(** Expand, then statically check the result: the rendered C plus any
    findings of the object-level type checker. *)
