(** Regeneration of the paper's figures: the Figure 2 and Figure 3 parse
    tables (verbatim, in the paper's s-expression notation) and Figure
    1's categorization with live witnesses. *)

module Mtype = Ms2_mtype.Mtype

val parse_template_with :
  (string * Mtype.t) list -> string -> (Ms2_syntax.Ast.template, string) result
(** Parse a template under a typing of its placeholders. *)

val figure2_types : (string * Mtype.t) list
val figure2_template : string

val figure2 : unit -> (string * string) list
(** Rows: (AST type of y, parse of [`[int $y;]]). *)

val figure3_template : string
val figure3_combinations : (string * Mtype.t * string * Mtype.t) list

val figure3 : unit -> (string * string * string) list
(** Rows: (type of ph1, type of ph2, parse or "Syntactically Illegal
    Program"). *)

val char_witness : unit -> string
(** [int CORE = RE;] under character substitution with [RE = x]: the
    unrelated identifier is corrupted. *)

val cpp_witness : unit -> string
(** [MUL(x + y, m + n)] through token substitution: mis-parenthesized. *)

val ms2_witness : unit -> string
(** The same through MS²: tree-level substitution. *)

type fig1_row = {
  programmability : string;
  character : string;
  token : string;
  syntax : string;
  semantic : string;
}

val figure1_table : fig1_row list
