(** The MS² standard macro library.

    The paper closes by noting that with programmable syntax macros "a
    new macro language with its own special syntax, operators,
    statements, and functions do not have to be invented" — the standard
    library of a macro system is just more macros.  This module is that
    library: a prelude of generally useful statement and declaration
    macros, written in MS² itself and loaded into an engine on request
    ([Api.create_engine ~prelude:true] or [ms2c expand --prelude]).

    Contents:

    - [unless (e) stmt] — inverted [if];
    - [repeat stmt until (e);] — [do]/[while] with inverted condition;
    - [for_range (i = lo to hi [by step]) stmt] — counted loops;
    - [times (n) stmt] — run a body [n] times with a gensym'd counter;
    - [swap(a, b);] — type-generic exchange (semantic macros:
      [declare_like] + a [types_compatible] guard);
    - [with_cleanup stmt stmt] — run a cleanup after a body;
    - [assert_that(e);] — runtime assertion carrying the *source text*
      of the asserted expression ([exp_string]/[make_string]);
    - [log_value(e);] — print an expression's text and value, with the
      format directive chosen from the expression's object-level type;
    - [bitflags name { a, b, c };] — an enum of power-of-two flags
      (computed enumerator values via [$flag = $(make_num(v))]);
    - [myenum name { a, b, c };] — the paper's enum with generated
      reader and writer functions. *)

let source =
  {src|
/* ---- control flow ---- */

syntax stmt unless {| ( $$exp::cond ) $$stmt::body |}
{
  return `{if (!($cond)) $body;};
}

syntax stmt repeat {| $$stmt::body until ( $$exp::cond ) ; |}
{
  return `{do $body while (!($cond));};
}

syntax stmt for_range
  {| ( $$id::var = $$exp::lo to $$exp::hi $$?by exp::step ) $$stmt::body |}
{
  if (length(step) == 0)
    return `{for ($var = $lo; $var <= $hi; $var++) $body};
  return `{for ($var = $lo; $var <= $hi; $var += $(*step)) $body};
}

syntax stmt times {| ( $$exp::n ) $$stmt::body |}
{
  @id i = gensym("times");
  return `{{int $i;
            for ($i = 0; $i < ($n); $i++) $body;}};
}

/* ---- values ---- */

syntax stmt swap {| ( $$exp::a , $$exp::b ) ; |}
{
  @id tmp = gensym("swap");
  if (!types_compatible(a, b))
    error("swap: incompatible operand types:", type_name_of(a),
          type_name_of(b));
  return `{{ $(declare_like(a, tmp)) $tmp = $a; $a = $b; $b = $tmp; }};
}

/* ---- resources and checking ---- */

syntax stmt with_cleanup {| $$stmt::body $$stmt::cleanup |}
{
  return `{{ $body; $cleanup; }};
}

syntax stmt assert_that {| ( $$exp::cond ) ; |}
{
  return `{if (!($cond))
             assert_fail($(make_string(exp_string(cond))));};
}

syntax stmt log_value {| ( $$exp::e ) ; |}
{
  @exp label = make_string(exp_string(e));
  if (is_pointer(e))
    return `{printf("%s = %p\n", $label, (void *)$e);};
  return `{printf("%s = %d\n", $label, $e);};
}

/* ---- declarations ---- */

metadcl @enumerator bf_no_items[];

@enumerator bf_items(@id ids[], int v)[]
{
  if (length(ids) == 0)
    return bf_no_items;
  return cons(`{| enumerator :: $(*ids) = $(make_num(v)) |},
              bf_items(ids + 1, 2 * v));
}

syntax decl bitflags [] {| $$id::name { $$+/, id::ids } ; |}
{
  return list(`[enum $name {$(bf_items(ids, 1))};]);
}

syntax decl myenum [] {| $$id::name { $$+/, id::ids } ; |}
{
  return list(
    `[enum $name {$ids};],
    `[void $(symbolconc("print_", name))(int arg)
      {
        switch (arg)
          {$(map((@id id;
                  `{case $id: {printf("%s", $(pstring(id))); break;}}),
                 ids))}
      }],
    `[int $(symbolconc("read_", name))()
      {
        char s[100];
        getline(s, 100);
        $(map((@id id;
               `{if (strcmp(s, $(pstring(id))) == 0) return $id;}),
              ids))
        return -1;
      }]);
}
|src}

(** Load the prelude into an engine.  The prelude is pure meta-program:
    loading emits no object code. *)
let load (engine : Engine.t) : unit =
  let produced = Engine.expand_source engine ~source:"<prelude>" source in
  assert (produced = [])

(** Names the prelude defines, for documentation and tests. *)
let macro_names =
  [ "unless"; "repeat"; "for_range"; "times"; "swap"; "with_cleanup";
    "assert_that"; "log_value"; "bitflags"; "myenum" ]
