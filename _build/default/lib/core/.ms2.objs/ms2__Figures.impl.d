lib/core/figures.ml: Diag Engine List Ms2_cpp Ms2_mtype Ms2_parser Ms2_support Ms2_syntax Ms2_typing
