lib/core/engine.ml: Diag Format Fun Gensym Hashtbl List Loc Ms2_csem Ms2_meta Ms2_mtype Ms2_parser Ms2_support Ms2_syntax Ms2_typing Option Pretty Printf String
