lib/core/api.mli: Engine Ms2_syntax
