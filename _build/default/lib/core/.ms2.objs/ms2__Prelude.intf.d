lib/core/prelude.mli: Engine
