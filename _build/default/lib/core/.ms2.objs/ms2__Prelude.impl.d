lib/core/prelude.ml: Engine
