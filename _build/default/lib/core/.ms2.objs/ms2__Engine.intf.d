lib/core/engine.mli: Format Hashtbl Ms2_csem Ms2_meta Ms2_parser Ms2_support Ms2_syntax Ms2_typing
