lib/core/figures.mli: Ms2_mtype Ms2_syntax
