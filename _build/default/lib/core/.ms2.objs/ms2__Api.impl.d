lib/core/api.ml: Diag Engine List Ms2_csem Ms2_support Ms2_syntax Prelude
