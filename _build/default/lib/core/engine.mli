(** The macro-expansion engine: records [syntax] definitions, runs the
    meta-program ([metadcl], meta functions), expands invocations
    recursively, maintains the object-level symbol table for semantic
    macros, and guarantees pure-C output. *)

open Ms2_syntax.Ast
module State = Ms2_parser.State
module Tenv = Ms2_typing.Tenv
module Value = Ms2_meta.Value
module Senv = Ms2_csem.Senv

type stats = {
  mutable invocations_expanded : int;
  mutable meta_declarations_run : int;
  mutable macros_defined : int;
}

type t = {
  macros : (string, State.macro_sig) Hashtbl.t;
  compiled : (string, State.compiled_pattern) Hashtbl.t;
  defs : (string, macro_def) Hashtbl.t;
  tenv : Tenv.t;
  env : Value.env;  (** persistent global meta environment *)
  senv : Senv.t;  (** object-level symbol table (semantic macros) *)
  gensym : Ms2_support.Gensym.t;
  max_depth : int;
  compile_patterns : bool;
  mutable trace : Format.formatter option;
      (** when set, every invocation expansion is logged *)
  stats : stats;
}

val create :
  ?max_depth:int -> ?compile_patterns:bool -> ?hygienic:bool -> unit -> t
(** @param max_depth recursive-expansion bound (default 200)
    @param compile_patterns compile invocation parsers at definition
    time (default true; disable for the ablation benchmark)
    @param hygienic automatic renaming of template-introduced block
    locals (default false) *)

val expand_invocation : t -> invocation -> Value.t
(** Run a macro body on pattern-bound actuals; checks the result against
    the declared return type. *)

val register_macro_def : t -> macro_def -> unit

val expand_program : t -> program -> program
(** Expand a parsed program to pure C. *)

val expand_source : t -> ?source:string -> string -> program
(** Parse with this engine's macro table and meta type environment
    (definitions from earlier calls remain in force), then expand. *)
