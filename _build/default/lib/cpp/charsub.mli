(** A character-level macro baseline (the GPM / pre-ANSI-CPP row of the
    paper's Figure 1): blind character substitution with rescanning,
    plus GPM-style explicit call markers. *)

type t

val create : unit -> t
val define : t -> string -> string -> unit

val expand_string : t -> string -> string
(** Blind substitution: a name is replaced wherever its characters
    occur, including inside identifiers and string literals — the
    hazard that motivated token- and syntax-based macros. *)

val expand_calls : t -> string -> string
(** Only explicit [$name$] occurrences are replaced. *)
