lib/cpp/charsub.ml: Buffer Hashtbl List String
