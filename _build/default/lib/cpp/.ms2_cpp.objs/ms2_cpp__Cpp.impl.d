lib/cpp/cpp.ml: Array Diag Hashtbl Lexer List Ms2_support Ms2_syntax String Token
