lib/cpp/charsub.mli:
