lib/cpp/cpp.mli: Ms2_syntax Token
