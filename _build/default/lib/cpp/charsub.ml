(** A character-level macro baseline (the GPM / pre-ANSI-CPP row of the
    paper's Figure 1): macros transform *streams of characters* into
    streams of characters.

    Definitions map a name to replacement text; expansion rescans the
    output (with a self-reference guard).  A macro name is replaced
    wherever its characters appear — including inside identifiers and
    string literals, which is precisely the failure mode that pushed
    macro processors first to tokens (ANSI CPP) and then to syntax
    (MS²).  [expand_string] reproduces those hazards on purpose;
    {!expand_calls} implements GPM-style explicit call markers
    ([$name$]), which fixes the corruption but still offers no syntactic
    guarantees. *)

type t = { table : (string, string) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }
let define t name replacement = Hashtbl.replace t.table name replacement

let find_first (t : t) ~(hide : string list) (text : string) (from : int) :
    (int * string * string) option =
  (* leftmost-then-longest definition occurring at or after [from] *)
  let best = ref None in
  Hashtbl.iter
    (fun name repl ->
      if not (List.mem name hide) then begin
        let ln = String.length name in
        let limit = String.length text - ln in
        let i = ref from in
        let found = ref false in
        while (not !found) && !i <= limit do
          if String.sub text !i ln = name then found := true else incr i
        done;
        if !found then
          match !best with
          | Some (j, n, _) when j < !i || (j = !i && String.length n >= ln)
            ->
              ()
          | _ -> best := Some (!i, name, repl)
      end)
    t.table;
  !best

(** Blind character substitution with rescanning.  [hide] guards
    self-reference like CPP does. *)
let rec expand_from (t : t) ~hide (text : string) (from : int) : string =
  match find_first t ~hide text from with
  | None -> text
  | Some (i, name, repl) ->
      let expanded_repl =
        expand_from t ~hide:(name :: hide) repl 0
      in
      let before = String.sub text 0 i in
      let after =
        String.sub text
          (i + String.length name)
          (String.length text - i - String.length name)
      in
      (* rescan after the replacement *)
      expand_from t ~hide
        (before ^ expanded_repl ^ after)
        (i + String.length expanded_repl)

let expand_string (t : t) (text : string) : string =
  expand_from t ~hide:[] text 0

(** GPM-style explicit calls: only [$name$] occurrences are replaced. *)
let expand_calls (t : t) (text : string) : string =
  let b = Buffer.create (String.length text) in
  let n = String.length text in
  let rec go i =
    if i >= n then ()
    else if text.[i] = '$' then begin
      match String.index_from_opt text (i + 1) '$' with
      | Some j ->
          let name = String.sub text (i + 1) (j - i - 1) in
          (match Hashtbl.find_opt t.table name with
          | Some repl -> Buffer.add_string b repl
          | None ->
              Buffer.add_char b '$';
              Buffer.add_string b name;
              Buffer.add_char b '$');
          go (j + 1)
      | None ->
          Buffer.add_char b '$';
          go (i + 1)
    end
    else begin
      Buffer.add_char b text.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b
