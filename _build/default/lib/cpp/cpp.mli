(** A CPP-style token-substitution macro baseline (the paper's Figure 1
    comparison point): object and function macros over token streams,
    with the ANSI self-reference guard — and, by construction, the
    encapsulation and double-evaluation hazards syntax macros remove. *)

open Ms2_syntax

type macro =
  | Object of Token.t list
  | Function of string list * Token.t list  (** parameters, body *)

type t

val create : unit -> t
val define_object : t -> string -> Token.t list -> unit
val define_function : t -> string -> string list -> Token.t list -> unit
val define : t -> string -> params:string list option -> Token.t list -> unit

val tokenize : string -> Token.t list
(** Lex to a plain token list (no locations, no EOF marker). *)

val split_args : Token.t list -> Token.t list list * Token.t list
(** Split a function-macro argument list (input starts after the open
    parenthesis); returns the comma-separated arguments and the rest. *)

val expand : t -> Token.t list -> Token.t list

val expand_string : t -> string -> string
(** Expand a source string and render the resulting token stream
    (space-separated spellings). *)
