(** A CPP-style token-substitution macro baseline.

    This is the comparison point of the paper's Figure 1: an ANSI-CPP
    style processor that operates on token streams, supporting object
    macros ([#define N tokens]) and function macros
    ([#define F(a, b) tokens]), with the standard self-reference guard
    (a macro name is not re-expanded inside its own expansion).

    It exhibits, by construction, the failure mode syntax macros
    eliminate: substituting [x + y] and [m + n] for [A] and [B] in
    [A * B] yields the token string [x + y * m + n], which parses as
    [x + (y * m) + n] — the paper's encapsulation-failure example, and
    the reason CPP macro writers are told to parenthesize everything.

    Tokens reuse {!Ms2_syntax.Token}; macros are defined through the API
    (no [#define] line parsing — the point of the baseline is expansion
    behavior, not directive syntax). *)

open Ms2_syntax
open Ms2_support

type macro =
  | Object of Token.t list
  | Function of string list * Token.t list  (** parameters, body *)

type t = { table : (string, macro) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let define_object t name body = Hashtbl.replace t.table name (Object body)

let define_function t name params body =
  Hashtbl.replace t.table name (Function (params, body))

let define t name ~params body =
  match params with
  | None -> define_object t name body
  | Some ps -> define_function t name ps body

let error fmt = Diag.error Diag.Expansion fmt

(** [tokenize text] lexes [text] to a plain token list (no locations, no
    EOF marker), for building macro bodies conveniently. *)
let tokenize (text : string) : Token.t list =
  Lexer.tokenize text |> Array.to_list
  |> List.filter_map (fun { Token.tok; _ } ->
         match tok with Token.EOF -> None | tok -> Some tok)

(** Split a function-macro argument list.  [toks] starts after the
    opening parenthesis; returns the comma-separated argument token
    lists (at depth 0) and the tokens after the closing parenthesis. *)
let split_args (toks : Token.t list) : Token.t list list * Token.t list =
  let rec go depth current acc toks =
    match toks with
    | [] -> error "unterminated macro argument list"
    | Token.RPAREN :: rest when depth = 0 ->
        (List.rev (List.rev current :: acc), rest)
    | Token.COMMA :: rest when depth = 0 ->
        go 0 [] (List.rev current :: acc) rest
    | (Token.LPAREN as tok) :: rest -> go (depth + 1) (tok :: current) acc rest
    | (Token.RPAREN as tok) :: rest -> go (depth - 1) (tok :: current) acc rest
    | tok :: rest -> go depth (tok :: current) acc rest
  in
  go 0 [] [] toks

(** Expand a token list.  [hide] is the set of macro names currently
    being expanded (the self-reference guard). *)
let rec expand_tokens t ~hide (toks : Token.t list) : Token.t list =
  match toks with
  | [] -> []
  | Token.IDENT name :: rest when not (List.mem name hide) -> (
      match Hashtbl.find_opt t.table name with
      | Some (Object body) ->
          expand_tokens t ~hide:(name :: hide) body
          @ expand_tokens t ~hide rest
      | Some (Function (params, body)) -> (
          match rest with
          | Token.LPAREN :: after ->
              let args, rest = split_args after in
              if List.length args <> List.length params then
                error "macro %s expects %d arguments, got %d" name
                  (List.length params) (List.length args);
              (* arguments are pre-expanded, as ANSI CPP does *)
              let args = List.map (expand_tokens t ~hide) args in
              let bound = List.combine params args in
              let substituted =
                List.concat_map
                  (function
                    | Token.IDENT p when List.mem_assoc p bound ->
                        List.assoc p bound
                    | tok -> [ tok ])
                  body
              in
              expand_tokens t ~hide:(name :: hide) substituted
              @ expand_tokens t ~hide rest
          | _ ->
              (* function macro without arguments: left alone, like CPP *)
              Token.IDENT name :: expand_tokens t ~hide rest)
      | None -> Token.IDENT name :: expand_tokens t ~hide rest)
  | tok :: rest -> tok :: expand_tokens t ~hide rest

let expand t (toks : Token.t list) : Token.t list =
  expand_tokens t ~hide:[] toks

(** Expand a source string and render the resulting token stream. *)
let expand_string t (text : string) : string =
  expand t (tokenize text) |> List.map Token.to_string |> String.concat " "
