(** Pretty-printer: AST back to concrete C.

    [strict] mode raises {!Meta_residue} on any meta construct — the
    expansion engine's guarantee that its output is pure C.  The relaxed
    mode prints meta constructs too (placeholders, templates, macro
    definitions), for diagnostics.

    Expression printing is precedence-aware: the printed form re-parses
    to a structurally identical tree. *)

open Ast

exception Meta_residue of string

type mode = { strict : bool }

val relaxed : mode
val strict : mode

(** {1 Token spellings} *)

val binop_prec : binop -> int
val expr_prec : expr_desc -> int
val unop_str : unop -> string
val binop_str : binop -> string
val assignop_str : assignop -> string
val constant_str : constant -> string

(** {1 Printers}

    [pp_expr mode min_prec] parenthesizes when the expression's
    precedence is below [min_prec]. *)

val pp_expr : mode -> int -> Format.formatter -> expr -> unit
val pp_splice : mode -> Format.formatter -> splice -> unit
val pp_invocation : mode -> Format.formatter -> invocation -> unit
val pp_node : mode -> Format.formatter -> node -> unit
val pp_spec : mode -> Format.formatter -> spec -> unit
val pp_specs : mode -> Format.formatter -> spec list -> unit
val pp_enum_spec : mode -> Format.formatter -> enum_spec -> unit
val pp_enumerator : mode -> Format.formatter -> enumerator -> unit
val pp_declarator : mode -> Format.formatter -> declarator -> unit
val pp_param : mode -> Format.formatter -> param -> unit
val pp_ctype : mode -> Format.formatter -> ctype -> unit
val pp_init_declarator : mode -> Format.formatter -> init_declarator -> unit
val pp_init : mode -> Format.formatter -> init -> unit
val pp_decl : mode -> Format.formatter -> decl -> unit
val pp_stmt : mode -> Format.formatter -> stmt -> unit
val pp_template : mode -> Format.formatter -> template -> unit
val pp_pspec : Format.formatter -> pspec -> unit
val pp_pattern : Format.formatter -> pattern -> unit
val pp_macro_def : mode -> Format.formatter -> macro_def -> unit
val pp_program : mode -> Format.formatter -> program -> unit

(** {1 String entry points} *)

val expr_to_string : ?mode:mode -> expr -> string
val stmt_to_string : ?mode:mode -> stmt -> string
val decl_to_string : ?mode:mode -> decl -> string
val node_to_string : ?mode:mode -> node -> string

val program_to_string : ?mode:mode -> program -> string
(** Render a whole program; with {!strict}, meta residue raises
    {!Meta_residue}. *)
