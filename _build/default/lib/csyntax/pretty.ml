(** Pretty-printer: AST back to concrete C.

    Two modes:
    - default mode prints meta constructs too (placeholders as [$(e)],
      templates with backquotes, ...), which is used for diagnostics and
      for displaying macro definitions;
    - [strict] mode raises {!Meta_residue} on any meta construct, which
      the expansion engine uses to guarantee its output is pure C.

    Expression printing is precedence-aware and re-parses to the same
    AST (a property test in [test/test_roundtrip.ml] checks this). *)

open Ast

exception Meta_residue of string

type mode = { strict : bool }

let residue mode what =
  if mode.strict then raise (Meta_residue what)

(* ------------------------------------------------------------------ *)
(* Precedence                                                          *)
(* ------------------------------------------------------------------ *)

let binop_prec = function
  | Mul | Div | Mod -> 13
  | Add | Sub -> 12
  | Shl | Shr -> 11
  | Lt | Gt | Le | Ge -> 10
  | Eq | Ne -> 9
  | Band -> 8
  | Bxor -> 7
  | Bor -> 6
  | Logand -> 5
  | Logor -> 4

let expr_prec = function
  | E_comma _ -> 1
  | E_assign _ -> 2
  | E_cond _ -> 3
  | E_binary (op, _, _) -> binop_prec op
  | E_cast _ -> 14
  | E_unary _ | E_sizeof_expr _ | E_sizeof_type _ -> 15
  | E_call _ | E_index _ | E_member _ | E_arrow _ | E_postincr _
  | E_postdecr _ ->
      16
  | E_ident _ | E_const _ | E_backquote _ | E_lambda _ | E_splice _
  | E_macro _ ->
      17

let unop_str = function
  | Neg -> "-"
  | Plus -> "+"
  | Lognot -> "!"
  | Bitnot -> "~"
  | Deref -> "*"
  | Addr -> "&"
  | Preincr -> "++"
  | Predecr -> "--"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bxor -> "^" | Bor -> "|"
  | Logand -> "&&" | Logor -> "||"

let assignop_str = function
  | A_eq -> "=" | A_add -> "+=" | A_sub -> "-=" | A_mul -> "*="
  | A_div -> "/=" | A_mod -> "%=" | A_shl -> "<<=" | A_shr -> ">>="
  | A_band -> "&=" | A_bxor -> "^=" | A_bor -> "|="

let constant_str = function
  | Cint (_, text) | Cfloat (_, text) -> text
  | Cchar c -> Printf.sprintf "'%s'" (Char.escaped c)
  | Cstring s -> Printf.sprintf "%S" s

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec pp_expr mode min_prec ppf expr =
  let prec = expr_prec expr.e in
  let atom fmt = Fmt.pf ppf fmt in
  let body ppf () =
    match expr.e with
    | E_ident id -> Fmt.string ppf id.id_name
    | E_const c -> Fmt.string ppf (constant_str c)
    | E_call (f, args) ->
        Fmt.pf ppf "%a(%a)" (pp_expr mode 16) f
          (Fmt.list ~sep:(Fmt.any ", ") (pp_expr mode 2))
          args
    | E_index (a, i) ->
        Fmt.pf ppf "%a[%a]" (pp_expr mode 16) a (pp_expr mode 0) i
    | E_member (e, f) ->
        Fmt.pf ppf "%a.%a" (pp_expr mode 16) e (pp_id_or_splice mode) f
    | E_arrow (e, f) ->
        Fmt.pf ppf "%a->%a" (pp_expr mode 16) e (pp_id_or_splice mode) f
    | E_postincr e -> Fmt.pf ppf "%a++" (pp_expr mode 16) e
    | E_postdecr e -> Fmt.pf ppf "%a--" (pp_expr mode 16) e
    | E_unary (op, e) ->
        (* avoid gluing "- -x" into "--x", "+ +x" into "++x", and
           "& &x" into "&&x": a space keeps the lexer from max-munching
           the two operators into one token *)
        let sep =
          match (op, e.e) with
          | Neg, E_unary ((Neg | Predecr), _) -> " "
          | Plus, E_unary ((Plus | Preincr), _) -> " "
          | Addr, E_unary (Addr, _) -> " "
          | _, _ -> ""
        in
        Fmt.pf ppf "%s%s%a" (unop_str op) sep (pp_expr mode 15) e
    | E_cast (ct, e) ->
        Fmt.pf ppf "(%a)%a" (pp_ctype mode) ct (pp_expr mode 14) e
    | E_sizeof_expr e -> Fmt.pf ppf "sizeof(%a)" (pp_expr mode 0) e
    | E_sizeof_type ct -> Fmt.pf ppf "sizeof(%a)" (pp_ctype mode) ct
    | E_binary (op, a, b) ->
        let p = binop_prec op in
        (* left-associative: right operand needs higher precedence *)
        Fmt.pf ppf "%a %s %a" (pp_expr mode p) a (binop_str op)
          (pp_expr mode (p + 1)) b
    | E_cond (c, t, e) ->
        Fmt.pf ppf "%a ? %a : %a" (pp_expr mode 4) c (pp_expr mode 2) t
          (pp_expr mode 3) e
    | E_assign (op, l, r) ->
        (* C restricts assignment targets to unary-expressions *)
        Fmt.pf ppf "%a %s %a" (pp_expr mode 15) l (assignop_str op)
          (pp_expr mode 2) r
    | E_comma (a, b) ->
        Fmt.pf ppf "%a, %a" (pp_expr mode 1) a (pp_expr mode 2) b
    | E_backquote t ->
        residue mode "backquote template";
        pp_template mode ppf t
    | E_lambda (params, body) ->
        residue mode "anonymous meta function";
        Fmt.pf ppf "(%a; %a)"
          (Fmt.list ~sep:(Fmt.any ", ") (pp_param mode))
          params (pp_expr mode 2) body
    | E_splice sp -> pp_splice mode ppf sp
    | E_macro inv ->
        residue mode "macro invocation";
        pp_invocation mode ppf inv
  in
  if prec < min_prec then atom "(%a)" body () else body ppf ()

and pp_id_or_splice mode ppf = function
  | Ii_id id -> Fmt.string ppf id.id_name
  | Ii_splice sp -> pp_splice mode ppf sp

and pp_splice mode ppf sp =
  residue mode "placeholder";
  match sp.sp_expr.e with
  | E_ident id -> Fmt.pf ppf "$%s" id.id_name
  | _ -> Fmt.pf ppf "$(%a)" (pp_expr mode 0) sp.sp_expr

and pp_invocation mode ppf inv =
  let rec actual ppf = function
    | Act_node n -> pp_node mode ppf n
    | Act_list l ->
        Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") actual) l
    | Act_tuple fields ->
        let f ppf (name, a) = Fmt.pf ppf "%s=%a" name actual a in
        Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") f) fields
  in
  let binding ppf (name, a) = Fmt.pf ppf "%s: %a" name actual a in
  Fmt.pf ppf "%s<<%a>>" inv.inv_name.id_name
    (Fmt.list ~sep:(Fmt.any ", ") binding)
    inv.inv_actuals

and pp_node mode ppf = function
  | N_id id -> Fmt.string ppf id.id_name
  | N_exp e -> pp_expr mode 0 ppf e
  | N_num c -> Fmt.string ppf (constant_str c)
  | N_stmt s -> pp_stmt mode ppf s
  | N_decl d -> pp_decl mode ppf d
  | N_typespec specs -> pp_specs mode ppf specs
  | N_declarator d -> pp_declarator mode ppf d
  | N_init_declarator d -> pp_init_declarator mode ppf d
  | N_param p -> pp_param mode ppf p
  | N_enumerator e -> pp_enumerator mode ppf e

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

and pp_spec mode ppf = function
  | S_void -> Fmt.string ppf "void"
  | S_char -> Fmt.string ppf "char"
  | S_int -> Fmt.string ppf "int"
  | S_float -> Fmt.string ppf "float"
  | S_double -> Fmt.string ppf "double"
  | S_short -> Fmt.string ppf "short"
  | S_long -> Fmt.string ppf "long"
  | S_signed -> Fmt.string ppf "signed"
  | S_unsigned -> Fmt.string ppf "unsigned"
  | S_named id -> Fmt.string ppf id.id_name
  | S_enum es -> pp_enum_spec mode ppf es
  | S_struct (tag, fields) -> pp_su mode "struct" ppf (tag, fields)
  | S_union (tag, fields) -> pp_su mode "union" ppf (tag, fields)
  | S_typedef -> Fmt.string ppf "typedef"
  | S_extern -> Fmt.string ppf "extern"
  | S_static -> Fmt.string ppf "static"
  | S_auto -> Fmt.string ppf "auto"
  | S_register -> Fmt.string ppf "register"
  | S_const -> Fmt.string ppf "const"
  | S_volatile -> Fmt.string ppf "volatile"
  | S_ast sort ->
      residue mode "AST type specifier";
      Fmt.pf ppf "@@%s" (Ms2_mtype.Sort.keyword sort)
  | S_splice sp -> pp_splice mode ppf sp

and pp_specs mode ppf specs =
  Fmt.list ~sep:(Fmt.any " ") (pp_spec mode) ppf specs

and pp_enum_spec mode ppf es =
  Fmt.string ppf "enum";
  Option.iter
    (function
      | Ii_id t -> Fmt.pf ppf " %s" t.id_name
      | Ii_splice sp -> Fmt.pf ppf " %a" (pp_splice mode) sp)
    es.enum_tag;
  match es.enum_items with
  | None -> ()
  | Some items ->
      Fmt.pf ppf " {%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (pp_enumerator mode))
        items

and pp_enumerator mode ppf = function
  | Enum_item (id, None) -> pp_id_or_splice mode ppf id
  | Enum_item (id, Some e) ->
      Fmt.pf ppf "%a = %a" (pp_id_or_splice mode) id (pp_expr mode 2) e
  | Enum_splice sp -> pp_splice mode ppf sp

and pp_su mode kw ppf (tag, fields) =
  Fmt.string ppf kw;
  Option.iter (fun t -> Fmt.pf ppf " %a" (pp_id_or_splice mode) t) tag;
  match fields with
  | None -> ()
  | Some fields ->
      let field ppf f =
        Fmt.pf ppf "%a %a;" (pp_specs mode) f.f_specs
          (Fmt.list ~sep:(Fmt.any ", ") (pp_declarator mode))
          f.f_declarators
      in
      Fmt.pf ppf " { %a }" (Fmt.list ~sep:Fmt.sp field) fields

(* Declarator printing uses the standard inside-out algorithm: pointers
   bind less tightly than array/function suffixes, so a pointer applied
   to an array or function declarator needs parentheses. *)
and pp_declarator mode ppf d = pp_declarator_prec mode 0 ppf d

and pp_declarator_prec mode min_prec ppf = function
  | D_ident id -> Fmt.string ppf id.id_name
  | D_abstract -> ()
  | D_splice sp -> pp_splice mode ppf sp
  | D_pointer d ->
      let body ppf () = Fmt.pf ppf "*%a" (pp_declarator_prec mode 0) d in
      if min_prec > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | D_array (d, size) ->
      Fmt.pf ppf "%a[%a]"
        (pp_declarator_prec mode 1)
        d
        (Fmt.option (pp_expr mode 0))
        size
  | D_func (d, params) ->
      Fmt.pf ppf "%a(%a)"
        (pp_declarator_prec mode 1)
        d
        (Fmt.list ~sep:(Fmt.any ", ") (pp_param mode))
        params

and pp_param mode ppf = function
  | P_decl (specs, D_abstract) -> pp_specs mode ppf specs
  | P_decl (specs, d) ->
      Fmt.pf ppf "%a %a" (pp_specs mode) specs (pp_declarator mode) d
  | P_name id -> Fmt.string ppf id.id_name
  | P_ellipsis -> Fmt.string ppf "..."
  | P_splice sp -> pp_splice mode ppf sp

and pp_ctype mode ppf ct =
  match ct.ct_decl with
  | D_abstract -> pp_specs mode ppf ct.ct_specs
  | d -> Fmt.pf ppf "%a %a" (pp_specs mode) ct.ct_specs (pp_declarator mode) d

and pp_init_declarator mode ppf = function
  | Init_decl (d, None) -> pp_declarator mode ppf d
  | Init_decl (d, Some i) ->
      Fmt.pf ppf "%a = %a" (pp_declarator mode) d (pp_init mode) i
  | Init_splice sp -> pp_splice mode ppf sp

and pp_init mode ppf = function
  | I_expr e -> pp_expr mode 2 ppf e
  | I_list items ->
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") (pp_init mode)) items

and pp_decl mode ppf decl =
  match decl.d with
  | Decl_plain (specs, []) -> Fmt.pf ppf "@[%a;@]" (pp_specs mode) specs
  | Decl_plain (specs, decls) ->
      Fmt.pf ppf "@[%a %a;@]" (pp_specs mode) specs
        (Fmt.list ~sep:(Fmt.any ", ") (pp_init_declarator mode))
        decls
  | Decl_fun (specs, d, kr_decls, body) ->
      let specs_part ppf () =
        if specs = [] then pp_declarator mode ppf d
        else Fmt.pf ppf "%a %a" (pp_specs mode) specs (pp_declarator mode) d
      in
      if kr_decls = [] then
        Fmt.pf ppf "@[<v>%a@,%a@]" specs_part () (pp_stmt mode) body
      else
        Fmt.pf ppf "@[<v>%a@,%a@,%a@]" specs_part ()
          (Fmt.list ~sep:Fmt.cut (pp_decl mode))
          kr_decls (pp_stmt mode) body
  | Decl_metadcl d ->
      residue mode "metadcl";
      Fmt.pf ppf "metadcl %a" (pp_decl mode) d
  | Decl_macro_def md ->
      residue mode "macro definition";
      pp_macro_def mode ppf md
  | Decl_splice sp -> pp_splice mode ppf sp
  | Decl_macro inv ->
      residue mode "macro invocation";
      pp_invocation mode ppf inv

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and pp_stmt mode ppf stmt =
  match stmt.s with
  | St_expr e -> Fmt.pf ppf "@[%a;@]" (pp_expr mode 0) e
  | St_compound items ->
      let item ppf = function
        | Bi_decl d -> pp_decl mode ppf d
        | Bi_stmt s -> pp_stmt mode ppf s
      in
      Fmt.pf ppf "@[<v>{@;<0 2>@[<v>%a@]@,}@]"
        (Fmt.list ~sep:Fmt.cut item)
        items
  | St_if (c, t, None) ->
      Fmt.pf ppf "@[<v 2>if (%a)@,%a@]" (pp_expr mode 0) c (pp_stmt mode) t
  | St_if (c, t, Some e) ->
      Fmt.pf ppf "@[<v>@[<v 2>if (%a)@,%a@]@,@[<v 2>else@,%a@]@]"
        (pp_expr mode 0) c (pp_stmt mode) t (pp_stmt mode) e
  | St_while (c, body) ->
      Fmt.pf ppf "@[<v 2>while (%a)@,%a@]" (pp_expr mode 0) c (pp_stmt mode)
        body
  | St_do (body, c) ->
      Fmt.pf ppf "@[<v 2>do@,%a@]@,while (%a);" (pp_stmt mode) body
        (pp_expr mode 0) c
  | St_for (init, cond, step, body) ->
      Fmt.pf ppf "@[<v 2>for (%a; %a; %a)@,%a@]"
        (Fmt.option (pp_expr mode 0))
        init
        (Fmt.option (pp_expr mode 0))
        cond
        (Fmt.option (pp_expr mode 0))
        step (pp_stmt mode) body
  | St_switch (e, body) ->
      Fmt.pf ppf "@[<v 2>switch (%a)@,%a@]" (pp_expr mode 0) e (pp_stmt mode)
        body
  | St_case (e, s) ->
      Fmt.pf ppf "@[<v 2>case %a:@,%a@]" (pp_expr mode 0) e (pp_stmt mode) s
  | St_default s -> Fmt.pf ppf "@[<v 2>default:@,%a@]" (pp_stmt mode) s
  | St_return None -> Fmt.string ppf "return;"
  | St_return (Some e) -> Fmt.pf ppf "@[return %a;@]" (pp_expr mode 0) e
  | St_break -> Fmt.string ppf "break;"
  | St_continue -> Fmt.string ppf "continue;"
  | St_goto id -> Fmt.pf ppf "goto %s;" id.id_name
  | St_label (id, s) -> Fmt.pf ppf "@[<v>%s:@,%a@]" id.id_name (pp_stmt mode) s
  | St_null -> Fmt.string ppf ";"
  | St_splice sp -> pp_splice mode ppf sp
  | St_macro inv ->
      residue mode "macro invocation";
      pp_invocation mode ppf inv

(* ------------------------------------------------------------------ *)
(* Meta constructs                                                     *)
(* ------------------------------------------------------------------ *)

and pp_template mode ppf = function
  | T_exp e -> Fmt.pf ppf "`(%a)" (pp_expr mode 0) e
  | T_stmt s -> Fmt.pf ppf "`{%a}" (pp_stmt { strict = false }) s
  | T_decl d -> Fmt.pf ppf "`[%a]" (pp_decl { strict = false }) d
  | T_general (ps, a) ->
      Fmt.pf ppf "`{|%a :: %a|}" pp_pspec ps
        (fun ppf a ->
          let rec actual ppf = function
            | Act_node n -> pp_node { strict = false } ppf n
            | Act_list l -> Fmt.list ~sep:(Fmt.any " ") actual ppf l
            | Act_tuple fs ->
                Fmt.list ~sep:(Fmt.any " ")
                  (fun ppf (_, a) -> actual ppf a)
                  ppf fs
          in
          actual ppf a)
        a

and pp_pspec ppf = function
  | Ps_sort s -> Fmt.string ppf (Ms2_mtype.Sort.keyword s)
  | Ps_plus (None, p) -> Fmt.pf ppf "+%a" pp_pspec p
  | Ps_plus (Some tok, p) -> Fmt.pf ppf "+/%s %a" (Token.to_string tok) pp_pspec p
  | Ps_star (None, p) -> Fmt.pf ppf "*%a" pp_pspec p
  | Ps_star (Some tok, p) -> Fmt.pf ppf "*/%s %a" (Token.to_string tok) pp_pspec p
  | Ps_opt (None, p) -> Fmt.pf ppf "?%a" pp_pspec p
  | Ps_opt (Some tok, p) -> Fmt.pf ppf "?%s %a" (Token.to_string tok) pp_pspec p
  | Ps_tuple pat -> Fmt.pf ppf ".(%a)" pp_pattern pat

and pp_pattern ppf pat =
  let elem ppf = function
    | Pe_token tok -> Fmt.string ppf (Token.to_string tok)
    | Pe_binder b ->
        Fmt.pf ppf "$$%a :: %s" pp_pspec b.b_spec b.b_name.id_name
  in
  Fmt.list ~sep:(Fmt.any " ") elem ppf pat

and pp_macro_def _mode ppf md =
  Fmt.pf ppf "@[<v>syntax %s %a {| %a |}@,%a@]"
    (Ms2_mtype.Mtype.to_string md.m_ret)
    (pp_id_or_splice { strict = false })
    md.m_name pp_pattern md.m_pattern
    (pp_stmt { strict = false })
    md.m_body

(* ------------------------------------------------------------------ *)
(* Programs / entry points                                             *)
(* ------------------------------------------------------------------ *)

let pp_program mode ppf (prog : program) =
  Fmt.pf ppf "@[<v>%a@]@."
    (Fmt.list ~sep:(Fmt.any "@,@,") (pp_decl mode))
    prog

let relaxed = { strict = false }
let strict = { strict = true }

let expr_to_string ?(mode = relaxed) e = Fmt.str "%a" (pp_expr mode 0) e
let stmt_to_string ?(mode = relaxed) s = Fmt.str "%a" (pp_stmt mode) s
let decl_to_string ?(mode = relaxed) d = Fmt.str "%a" (pp_decl mode) d
let node_to_string ?(mode = relaxed) n = Fmt.str "%a" (pp_node mode) n

(** Render a whole program as C source.  With [~strict:true] (the
    default for engine output) any surviving meta construct raises
    {!Meta_residue}. *)
let program_to_string ?(mode = relaxed) prog =
  Fmt.str "%a" (pp_program mode) prog
