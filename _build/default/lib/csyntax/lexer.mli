(** Hand-written lexer for the extended language (C plus the paper's
    meta-tokens, which are recognized by character adjacency). *)

val tokenize :
  ?source:string ->
  ?reject_reserved:bool ->
  string ->
  Token.located array
(** Lex a whole source into located tokens terminated by one [EOF].

    @param source name used in locations (default ["<string>"])
    @param reject_reserved reject identifiers that collide with
    generated (gensym) names; enable when lexing user programs so that
    hygiene by generated names is sound.
    @raise Ms2_support.Diag.Error on lexical errors. *)
