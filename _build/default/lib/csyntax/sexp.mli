(** S-expression rendering of ASTs in the paper's notation
    ([(node-name child1 ... childn)], with the Figure 3 abbreviations
    [c-s], [r-s], [decl-list], [stmt-list], ...), used to regenerate
    Figures 2 and 3 verbatim. *)

open Ast

type t = Atom of string | L of t list

val to_string : t -> string
val of_expr : expr -> t
val of_declarator_sexp : declarator -> t
val of_init_declarator : init_declarator -> t
val of_decl : decl -> t
val of_stmt : stmt -> t
val of_node : node -> t
val decl_to_string : decl -> string
val stmt_to_string : stmt -> string
val expr_to_string : expr -> string
val node_to_string : node -> string
