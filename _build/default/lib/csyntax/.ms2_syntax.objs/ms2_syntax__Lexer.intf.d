lib/csyntax/lexer.mli: Token
