lib/csyntax/lexer.ml: Array Buffer Diag Format Gensym List Loc Ms2_support Option String Token
