lib/csyntax/token.ml: Char Fmt List Ms2_support Printf
