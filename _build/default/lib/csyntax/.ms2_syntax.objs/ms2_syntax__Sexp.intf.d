lib/csyntax/sexp.mli: Ast
