lib/csyntax/sexp.ml: Ast Fmt Format List Ms2_mtype Pretty String
