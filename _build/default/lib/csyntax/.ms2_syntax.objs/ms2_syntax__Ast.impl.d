lib/csyntax/ast.ml: List Loc Ms2_mtype Ms2_support Token
