lib/csyntax/pretty.ml: Ast Char Fmt Ms2_mtype Option Printf Token
