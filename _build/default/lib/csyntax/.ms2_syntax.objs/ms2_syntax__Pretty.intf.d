lib/csyntax/pretty.mli: Ast Format
