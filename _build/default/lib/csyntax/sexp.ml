(** S-expression rendering of ASTs in the paper's notation.

    The paper displays parse trees as [(node-name child1 ... childn)]
    with list elements written within parentheses (Figure 2), and uses
    abbreviations in Figure 3: [c-s] compound-statement, [r-s]
    return-statement, [decl-list], [stmt-list], [exp], [id], [decl]
    (a declaration abbreviated to its quoted source text).  We follow
    both conventions so the regenerated figures can be compared with the
    paper line by line. *)

open Ast

type t = Atom of string | L of t list

let rec to_string = function
  | Atom s -> s
  | L items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let atom fmt = Format.kasprintf (fun s -> Atom s) fmt

(* A placeholder prints as its meta-variable name when it is a simple
   [$x]; otherwise as [$( ... )]. *)
let splice_atom sp =
  match sp.sp_expr.e with
  | E_ident id -> Atom id.id_name
  | _ -> atom "$(%s)" (Pretty.expr_to_string sp.sp_expr)

let rec of_expr expr =
  match expr.e with
  | E_ident id -> L [ Atom "id"; Atom id.id_name ]
  | E_const c -> L [ Atom "const"; Atom (Pretty.constant_str c) ]
  | E_splice sp -> splice_atom sp
  | E_call (f, args) -> L (Atom "call" :: of_expr f :: List.map of_expr args)
  | E_binary (op, a, b) ->
      L [ Atom (Pretty.binop_str op); of_expr a; of_expr b ]
  | E_unary (op, e) -> L [ Atom (Pretty.unop_str op); of_expr e ]
  | _ -> L [ Atom "exp"; Atom (Pretty.expr_to_string expr) ]

(* an expression in expression-statement / return position is wrapped in
   an (exp ...) node, as in the paper's "(r-s (exp (id x)))" *)
let of_expr_node e = L [ Atom "exp"; of_expr e ]

let of_declarator_sexp d =
  let rec go = function
    | D_ident id -> L [ Atom "direct-declarator"; Atom id.id_name ]
    | D_abstract -> Atom "<abstract>"
    | D_pointer d -> L [ Atom "pointer"; go d ]
    | D_array (d, _) -> L [ Atom "array"; go d ]
    | D_func (d, _) -> L [ Atom "function"; go d ]
    | D_splice sp -> (
        (* an identifier-typed placeholder in declarator position keeps
           its direct-declarator wrapper (paper Fig. 2, last row) *)
        match Ms2_mtype.Mtype.head_sort sp.sp_type with
        | Some Ms2_mtype.Sort.Id ->
            L [ Atom "direct-declarator"; splice_atom sp ]
        | _ -> splice_atom sp)
  in
  go d

let of_init_declarator = function
  | Init_splice sp -> splice_atom sp
  | Init_decl (d, init) ->
      let init_sexp =
        match init with
        | None -> L []
        | Some (I_expr e) -> of_expr e
        | Some (I_list _) -> Atom "<init-list>"
      in
      L [ Atom "init-declarator"; of_declarator_sexp d; init_sexp ]

(* The init-declarator list of a declaration: when the whole list is a
   single list-typed placeholder, the placeholder *is* the list (paper
   Fig. 2, first row); otherwise print the elements within parens. *)
let of_init_declarators = function
  | [ Init_splice sp ]
    when match sp.sp_type with Ms2_mtype.Mtype.List _ -> true | _ -> false ->
      splice_atom sp
  | decls -> L (List.map of_init_declarator decls)

let spec_atom spec = Atom (Fmt.str "%a" (Pretty.pp_spec Pretty.relaxed) spec)

let of_decl decl =
  match decl.d with
  | Decl_plain (specs, idecls) ->
      L
        [ Atom "declaration";
          L (List.map spec_atom specs);
          of_init_declarators idecls ]
  | Decl_splice sp -> splice_atom sp
  | Decl_fun _ -> atom "(function-definition %S)" (Pretty.decl_to_string decl)
  | Decl_metadcl _ | Decl_macro_def _ | Decl_macro _ ->
      atom "(meta %S)" (Pretty.decl_to_string decl)

(* Abbreviated declaration as in Figure 3: (decl "int x") *)
let of_decl_abbrev decl =
  match decl.d with
  | Decl_splice sp -> splice_atom sp
  | _ ->
      let text = Pretty.decl_to_string decl in
      (* drop the trailing ";" the pretty-printer adds, as the paper does *)
      let text =
        let n = String.length text in
        if n > 0 && text.[n - 1] = ';' then String.sub text 0 (n - 1) else text
      in
      L [ Atom "decl"; atom "%S" text ]

let rec of_stmt stmt =
  match stmt.s with
  | St_splice sp -> splice_atom sp
  | St_expr e -> L [ Atom "e-s"; of_expr_node e ]
  | St_return None -> L [ Atom "r-s" ]
  | St_return (Some e) -> L [ Atom "r-s"; of_expr_node e ]
  | St_compound items ->
      (* (c-s (decl-list (...)) (stmt-list (...))) — list-typed splices
         standing for a whole sublist print bare, elementwise otherwise *)
      let decls =
        List.filter_map
          (function Bi_decl d -> Some (of_decl_abbrev d) | Bi_stmt _ -> None)
          items
      and stmts =
        List.filter_map
          (function Bi_stmt s -> Some (of_stmt s) | Bi_decl _ -> None)
          items
      in
      L
        [ Atom "c-s";
          L [ Atom "decl-list"; L decls ];
          L [ Atom "stmt-list"; L stmts ] ]
  | St_if (c, t, None) -> L [ Atom "if"; of_expr c; of_stmt t ]
  | St_if (c, t, Some e) -> L [ Atom "if"; of_expr c; of_stmt t; of_stmt e ]
  | St_while (c, b) -> L [ Atom "while"; of_expr c; of_stmt b ]
  | St_do (b, c) -> L [ Atom "do"; of_stmt b; of_expr c ]
  | St_for _ -> atom "(for %S)" (Pretty.stmt_to_string stmt)
  | St_switch (e, b) -> L [ Atom "switch"; of_expr e; of_stmt b ]
  | St_case (e, s) -> L [ Atom "case"; of_expr e; of_stmt s ]
  | St_default s -> L [ Atom "default"; of_stmt s ]
  | St_break -> Atom "break"
  | St_continue -> Atom "continue"
  | St_goto id -> L [ Atom "goto"; Atom id.id_name ]
  | St_label (id, s) -> L [ Atom "label"; Atom id.id_name; of_stmt s ]
  | St_null -> Atom "null"
  | St_macro inv -> atom "(macro %s)" inv.inv_name.id_name

let of_node = function
  | N_id id -> L [ Atom "id"; Atom id.id_name ]
  | N_exp e -> of_expr e
  | N_num c -> L [ Atom "num"; Atom (Pretty.constant_str c) ]
  | N_stmt s -> of_stmt s
  | N_decl d -> of_decl d
  | N_typespec specs -> L (Atom "typespec" :: List.map spec_atom specs)
  | N_declarator d -> of_declarator_sexp d
  | N_init_declarator d -> of_init_declarator d
  | N_param p -> atom "(param %S)" (Fmt.str "%a" (Pretty.pp_param Pretty.relaxed) p)
  | N_enumerator e ->
      atom "(enumerator %S)"
        (Fmt.str "%a" (Pretty.pp_enumerator Pretty.relaxed) e)

let decl_to_string d = to_string (of_decl d)
let stmt_to_string s = to_string (of_stmt s)
let expr_to_string e = to_string (of_expr e)
let node_to_string n = to_string (of_node n)
