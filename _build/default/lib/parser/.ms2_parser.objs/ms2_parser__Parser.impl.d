lib/parser/parser.ml: Ast Diag Fun Hashtbl List Ms2_mtype Ms2_pattern Ms2_support Ms2_syntax Ms2_typing Option State Token
