lib/parser/state.ml: Array Ast Diag Fun Hashtbl Lexer List Loc Ms2_mtype Ms2_support Ms2_syntax Ms2_typing Token
