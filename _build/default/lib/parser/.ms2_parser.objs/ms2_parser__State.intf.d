lib/parser/state.mli: Ast Format Hashtbl Loc Ms2_mtype Ms2_support Ms2_syntax Ms2_typing Token
