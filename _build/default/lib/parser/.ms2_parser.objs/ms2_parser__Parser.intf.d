lib/parser/parser.mli: Ast Hashtbl Ms2_mtype Ms2_syntax Ms2_typing State
