(** The parser: hand-written recursive descent at the declaration and
    statement levels, bottom-up (precedence climbing) at the expression
    level — the architecture of the paper's §3.

    Context sensitivity is handled the way the paper prescribes: typedef
    names are tracked in scoped tables; macro names are "macro keywords"
    whose invocations are parsed pattern-directed and placed according
    to the macro's declared type; placeholders inside templates are
    parsed co-routine style into typed placeholder tokens whose AST
    types drive template disambiguation (Figures 2-3). *)

open Ms2_syntax
open Ast
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
module Tenv = Ms2_typing.Tenv

(** {1 Grammar entry points on a parser state} *)

val parse_expr : State.t -> expr
val parse_assignment : State.t -> expr
val parse_statement : State.t -> stmt
val parse_compound : State.t -> stmt
val parse_declaration : State.t -> top:bool -> decl
val parse_macro_def : State.t -> macro_def
val parse_template : State.t -> template
val parse_invocation : State.t -> State.macro_sig -> invocation
val parse_node : State.t -> Sort.t -> node
val parse_by_pspec : State.t -> pspec -> actual
val parse_program : State.t -> program

val compile_pattern : pattern -> State.compiled_pattern
(** Compile a macro pattern into a specialized invocation parser (the
    acceleration the paper suggests in §3). *)

(** {1 String entry points} *)

val program_of_string :
  ?macros:(string, State.macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?source:string ->
  ?reject_reserved:bool ->
  string ->
  program

val expr_of_string :
  ?macros:(string, State.macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?source:string ->
  string ->
  expr

val meta_expr_of_string :
  ?macros:(string, State.macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?source:string ->
  string ->
  expr
(** Parse an expression of the *meta* language (templates, placeholders
    and anonymous functions are live); [tenv] supplies the types of meta
    variables that placeholders may mention. *)

val stmt_of_string :
  ?macros:(string, State.macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?source:string ->
  string ->
  stmt

val decl_of_string :
  ?macros:(string, State.macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?source:string ->
  string ->
  decl
