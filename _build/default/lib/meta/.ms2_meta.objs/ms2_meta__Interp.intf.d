lib/meta/interp.mli: Ms2_support Ms2_syntax Value
