lib/meta/builtins.ml: Ast Char Gensym List Loc Ms2_csem Ms2_mtype Ms2_support Ms2_syntax Ms2_typing Pretty String Value
