lib/meta/builtins.mli: Loc Ms2_support Ms2_syntax Value
