lib/meta/interp.ml: Builtins Char Fill List Ms2_mtype Ms2_syntax Ms2_typing Option Value
