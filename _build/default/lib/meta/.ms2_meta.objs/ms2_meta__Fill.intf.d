lib/meta/fill.mli: Ms2_support Ms2_syntax Value
