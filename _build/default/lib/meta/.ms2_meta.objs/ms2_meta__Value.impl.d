lib/meta/value.ml: Ast Diag Fmt Fun Gensym Hashtbl List Loc Ms2_csem Ms2_mtype Ms2_support Ms2_syntax Option Pretty
