lib/meta/value.mli: Ast Format Gensym Hashtbl Loc Ms2_csem Ms2_mtype Ms2_support Ms2_syntax
