lib/meta/fill.ml: List Ms2_support Ms2_syntax Option Value
