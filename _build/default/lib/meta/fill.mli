(** Template instantiation: tree-level substitution of placeholder
    values into object code, with list flattening in every syntactic
    list position, and optional automatic hygiene (renaming of
    template-introduced block locals when [env.hygienic]). *)

open Ms2_syntax.Ast

val fill_template :
  eval:(Value.env -> expr -> Value.t) -> Value.env -> template -> Value.t
(** Evaluate a backquote template; [eval] is the interpreter's
    expression evaluator. *)

(** {1 Value-to-syntax coercions}

    Shared with the engine, which uses them to splice macro results. *)

val value_to_expr : loc:Ms2_support.Loc.t -> Value.t -> expr
val value_to_ident : loc:Ms2_support.Loc.t -> Value.t -> ident
val value_to_stmts : loc:Ms2_support.Loc.t -> Value.t -> stmt list

val value_to_stmt : loc:Ms2_support.Loc.t -> Value.t -> stmt
(** Singular statement position: several statements wrap in a block,
    zero become the null statement. *)

val value_to_decls : loc:Ms2_support.Loc.t -> Value.t -> decl list
val value_to_decl : loc:Ms2_support.Loc.t -> Value.t -> decl
val value_to_specs : loc:Ms2_support.Loc.t -> Value.t -> spec list
val value_to_declarator : loc:Ms2_support.Loc.t -> Value.t -> declarator

val value_to_init_declarators :
  loc:Ms2_support.Loc.t -> Value.t -> init_declarator list

val value_to_enumerators :
  loc:Ms2_support.Loc.t -> Value.t -> enumerator list

val value_to_params : loc:Ms2_support.Loc.t -> Value.t -> param list
val value_to_exprs : loc:Ms2_support.Loc.t -> Value.t -> expr list
val value_to_node : loc:Ms2_support.Loc.t -> Value.t -> node
