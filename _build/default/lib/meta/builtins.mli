(** Runtime implementations of the macro language's primitive functions,
    and the runtime mirror of the AST component table
    ([Ms2_typing.Component]). *)

open Ms2_syntax.Ast
open Ms2_support

val node_kind : node -> string
val component : loc:Loc.t -> node -> string -> Value.t
val simple_expression : expr -> bool
(** Identifiers and constants are "simple" (duplicable); the paper's
    [throw] uses this to skip the temporary. *)

val call :
  apply:(loc:Loc.t -> Value.t -> Value.t list -> Value.t) ->
  Value.env ->
  Loc.t ->
  string ->
  Value.t list ->
  Value.t
(** Run a primitive.  [apply] is the interpreter's application entry
    point (for [map]/[filter]). *)

val is_primitive : string -> bool
