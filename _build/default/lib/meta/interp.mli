(** The embedded interpreter for the macro language (the paper's
    "embedded interpreter for a subset of the C language"). *)

open Ms2_syntax.Ast

type outcome = Normal | Returned of Value.t | Broke | Continued

val eval : Value.env -> expr -> Value.t
val apply :
  Value.env -> loc:Ms2_support.Loc.t -> Value.t -> Value.t list -> Value.t

val exec_decl : Value.env -> decl -> unit
(** Execute a meta declaration: bind declared variables (evaluating
    initializers) and meta functions. *)

val exec_stmt : Value.env -> stmt -> outcome

val run_body : Value.env -> stmt -> Value.t
(** Run a macro / meta-function body for its [return] value ([Vvoid] if
    it falls off the end). *)
