(** Pattern well-formedness: the one-token-lookahead rule.

    "The pattern parser used to parse macro invocations requires that
    detecting the end of a repetition or the presence of an optional
    element require only one token lookahead.  It will report an error in
    the specification of a pattern if the end of a repetition cannot be
    uniquely determined by one token lookahead." (paper, §2)

    The check: at each repetition or optional element, the set of tokens
    that would *continue* the element must be disjoint from the set of
    tokens that would *follow* it in the rest of the pattern.  We compute
    follow sets pattern-locally; past the end of the pattern the
    repetition is greedy by definition, which is deterministic. *)

open Ms2_syntax
open Ms2_support
module Mtype = Ms2_mtype.Mtype

let error loc fmt = Diag.error ~loc Diag.Pattern_check fmt

(* FIRST of the remainder of a pattern (the follow set of the current
   element, within the pattern). *)
let follow_of_rest rest = Firstset.of_pattern rest

let check_disjoint ~loc ~what firsts follows =
  match Firstset.inter firsts follows with
  | [] -> ()
  | (a, _) :: _ ->
      error loc
        "%s cannot be delimited with one token of lookahead: %a can both \
         continue the element and follow it"
        what Firstset.pp_tclass a

let rec check_pspec ~loc ~follows (ps : Ast.pspec) : unit =
  match ps with
  | Ast.Ps_sort _ -> ()
  | Ast.Ps_plus (sep, p) | Ast.Ps_star (sep, p) -> (
      check_pspec ~loc ~follows:[] p;
      match sep with
      | Some sep_tok ->
          (* the separator decides continuation; it must not begin an
             element, or "sep" after an element would be ambiguous *)
          if Firstset.pspec_starts_with p sep_tok then
            error loc
              "repetition separator %S can begin an element of the \
               repetition"
              (Token.to_string sep_tok);
          (* and the separator must not be a legal follower *)
          if
            List.exists
              (fun c -> Firstset.matches c sep_tok)
              follows
          then
            error loc
              "repetition separator %S can also follow the repetition"
              (Token.to_string sep_tok)
      | None ->
          (* continuation is decided by FIRST(element) *)
          check_disjoint ~loc ~what:"this repetition"
            (Firstset.of_pspec p) follows)
  | Ast.Ps_opt (Some tok, p) ->
      check_pspec ~loc ~follows:[] p;
      (* the preamble token decides presence *)
      if List.exists (fun c -> Firstset.matches c tok) follows then
        error loc
          "optional-element token %S can also follow the optional element"
          (Token.to_string tok)
  | Ast.Ps_opt (None, p) ->
      check_pspec ~loc ~follows:[] p;
      check_disjoint ~loc ~what:"this optional element"
        (Firstset.of_pspec p) follows
  | Ast.Ps_tuple pat -> check_pattern_elems ~loc pat

and check_pattern_elems ~loc (pat : Ast.pattern) : unit =
  match pat with
  | [] -> ()
  | Ast.Pe_token _ :: rest -> check_pattern_elems ~loc rest
  | Ast.Pe_binder b :: rest ->
      check_pspec ~loc:b.b_name.id_loc ~follows:(follow_of_rest rest)
        b.b_spec;
      check_pattern_elems ~loc rest

(** Check a whole macro pattern; raises a [Pattern_check] diagnostic when
    the pattern violates the one-token-lookahead rule.  Also rejects
    duplicate binder names and patterns that cannot be told apart from an
    ordinary identifier (a macro whose pattern binds nothing and has no
    tokens). *)
let check_pattern ~loc (pat : Ast.pattern) : unit =
  (* duplicate binder names *)
  let rec binder_names acc = function
    | [] -> acc
    | Ast.Pe_token _ :: rest -> binder_names acc rest
    | Ast.Pe_binder b :: rest ->
        let rec tuple_names acc = function
          | Ast.Ps_tuple inner -> binder_names_of_pattern acc inner
          | Ast.Ps_plus (_, p) | Ast.Ps_star (_, p) | Ast.Ps_opt (_, p) ->
              tuple_names acc p
          | Ast.Ps_sort _ -> acc
        in
        binder_names (tuple_names ((b.b_name.id_name, b.b_name.id_loc) :: acc) b.b_spec) rest
  and binder_names_of_pattern acc pat = binder_names acc pat in
  let names = binder_names [] pat in
  let rec dup = function
    | [] -> ()
    | (n, l) :: rest ->
        if List.mem_assoc n rest then
          error l "duplicate binder name %s in pattern" n;
        dup rest
  in
  dup names;
  check_pattern_elems ~loc pat
