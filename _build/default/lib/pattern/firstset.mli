(** FIRST sets: which tokens can begin a phrase of a given sort — the
    information behind the paper's one-token-lookahead rule and the
    invocation parser's repetition decisions. *)

open Ms2_syntax
module Sort = Ms2_mtype.Sort

(** Token classes: exact tokens plus the unbounded families. *)
type tclass =
  | Exact of Token.t
  | Any_ident
  | Any_int
  | Any_char
  | Any_string

val matches : tclass -> Token.t -> bool
val overlap : tclass -> tclass -> bool
val inter : tclass list -> tclass list -> (tclass * tclass) list
val pp_tclass : Format.formatter -> tclass -> unit
val of_sort : Sort.t -> tclass list

val of_pspec : Ast.pspec -> tclass list
(** FIRST of a pattern specifier (repetitions/optionals may be empty —
    the caller must consider follows). *)

val of_pattern : Ast.pattern -> tclass list
(** FIRST of a pattern (skipping possibly-empty leading elements). *)

val sort_starts_with : Sort.t -> Token.t -> bool
val pspec_starts_with : Ast.pspec -> Token.t -> bool
