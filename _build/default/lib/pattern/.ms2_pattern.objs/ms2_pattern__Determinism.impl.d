lib/pattern/determinism.ml: Ast Diag Firstset List Ms2_mtype Ms2_support Ms2_syntax Token
