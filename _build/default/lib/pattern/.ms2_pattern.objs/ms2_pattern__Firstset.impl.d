lib/pattern/firstset.ml: Ast Fmt List Ms2_mtype Ms2_syntax Token
