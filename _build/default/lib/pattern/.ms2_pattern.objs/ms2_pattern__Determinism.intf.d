lib/pattern/determinism.mli: Ast Ms2_support Ms2_syntax
