lib/pattern/firstset.mli: Ast Format Ms2_mtype Ms2_syntax Token
