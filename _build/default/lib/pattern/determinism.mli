(** Pattern well-formedness: "the end of a repetition or the presence of
    an optional element [must] require only one token lookahead"
    (paper §2); also rejects duplicate binder names. *)

open Ms2_syntax

val check_pattern : loc:Ms2_support.Loc.t -> Ast.pattern -> unit
(** @raise Ms2_support.Diag.Error with phase [Pattern_check]. *)
