(** Diagnostics: located errors raised by every phase of the system.

    The paper's central safety claim is that a macro *user* only ever sees
    syntax errors in code they wrote themselves; errors in macro bodies are
    reported at macro *definition* time.  To support distinguishing these,
    every diagnostic records the phase that produced it. *)

type phase =
  | Lexing
  | Parsing
  | Pattern_check  (** pattern well-formedness (one-token-lookahead rule) *)
  | Type_check  (** parse-time meta type analysis *)
  | Expansion  (** running the meta-program *)

let phase_name = function
  | Lexing -> "lexical error"
  | Parsing -> "syntax error"
  | Pattern_check -> "pattern error"
  | Type_check -> "type error"
  | Expansion -> "expansion error"

type t = { phase : phase; loc : Loc.t; message : string }

exception Error of t

let error ?(loc = Loc.dummy) phase fmt =
  Format.kasprintf
    (fun message -> raise (Error { phase; loc; message }))
    fmt

let errorf = error

let pp ppf { phase; loc; message } =
  if Loc.is_dummy loc then Fmt.pf ppf "%s: %s" (phase_name phase) message
  else Fmt.pf ppf "%a: %s: %s" Loc.pp loc (phase_name phase) message

let to_string t = Fmt.str "%a" pp t

(** [protect f] runs [f ()] and converts a raised diagnostic into
    [Error string]; other exceptions propagate. *)
let protect f = try Ok (f ()) with Error _ as e -> Result.Error (to_string (match e with Error d -> d | _ -> assert false))
