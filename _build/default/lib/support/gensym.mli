(** Generated names: the paper's capture-avoidance mechanism.

    Generated names embed a reserved marker that the object-language
    lexer can be told to reject ({!is_reserved}), making them
    capture-free by construction. *)

type t

val create : ?prefix:string -> unit -> t

val fresh : t -> string -> string
(** [fresh t base] returns a new name embedding [base], unique for this
    generator (e.g. ["tmp__g1"]). *)

val reserved_marker : string

val is_reserved : string -> bool
(** Does this name collide with the generated-name space? *)

val count : t -> int
val reset : t -> unit
