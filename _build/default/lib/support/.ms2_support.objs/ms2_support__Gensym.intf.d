lib/support/gensym.mli:
