(** Source locations.

    A location is a half-open span [(start, stop)] within a named source
    (usually a file, or ["<string>"] for in-memory programs).  Positions
    count lines from 1 and columns from 0, like the OCaml compiler. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset from start of source *)
}

type t = {
  source : string;  (** source name, e.g. a file name *)
  start_pos : pos;
  end_pos : pos;
}

let dummy_pos = { line = 0; col = 0; offset = 0 }
let dummy = { source = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }
let is_dummy t = t.start_pos.line = 0

let make ~source ~start_pos ~end_pos = { source; start_pos; end_pos }

(** [merge a b] spans from the start of [a] to the end of [b].  If either
    side is the dummy location the other is returned unchanged. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { a with end_pos = b.end_pos }

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown location>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.source t.start_pos.line t.start_pos.col
      t.end_pos.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" t.source t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col

let to_string t = Fmt.str "%a" pp t
