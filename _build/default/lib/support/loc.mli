(** Source locations: half-open spans within a named source. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset from start of source *)
}

type t = { source : string; start_pos : pos; end_pos : pos }

val dummy_pos : pos

val dummy : t
(** The unknown location; {!is_dummy} recognizes it. *)

val is_dummy : t -> bool
val make : source:string -> start_pos:pos -> end_pos:pos -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]; dummy
    sides are ignored. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
