(** Generated names.

    The paper's answer to inadvertent variable capture is a [gensym]
    function producing names that cannot appear in user code.  We reserve
    the substring ["__g"] followed by a counter; the lexer of the object
    language never produces such identifiers from user source because we
    check and reject them (see {!is_reserved}). *)

type t = { mutable counter : int; prefix : string }

let create ?(prefix = "__g") () = { counter = 0; prefix }

(** [fresh t base] returns a new name, unique for this generator, that
    embeds [base] for readability: e.g. [fresh t "tmp"] gives
    ["tmp__g1"]. *)
let fresh t base =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%s%d" base t.prefix t.counter

let reserved_marker = "__g"

(** [is_reserved name] holds when [name] could collide with a generated
    name.  User programs containing such identifiers are rejected so that
    gensym'd names are guaranteed capture-free. *)
let is_reserved name =
  let marker = reserved_marker in
  let lm = String.length marker and ln = String.length name in
  let rec scan i =
    if i + lm > ln then false
    else if String.sub name i lm = marker then
      (* require marker followed by at least one digit *)
      i + lm < ln && name.[i + lm] >= '0' && name.[i + lm] <= '9'
    else scan (i + 1)
  in
  scan 0

let count t = t.counter
let reset t = t.counter <- 0
