(** Diagnostics: located errors raised by every phase of the system.

    Each diagnostic records the phase that produced it — in particular,
    errors in macro bodies carry definition-time phases
    ([Pattern_check], [Type_check]), supporting the paper's guarantee
    that macro users only see errors about code they wrote. *)

type phase =
  | Lexing
  | Parsing
  | Pattern_check  (** pattern well-formedness (one-token lookahead) *)
  | Type_check  (** parse-time meta type analysis *)
  | Expansion  (** running the meta-program *)

val phase_name : phase -> string

type t = { phase : phase; loc : Loc.t; message : string }

exception Error of t

val error : ?loc:Loc.t -> phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc phase fmt ...] raises {!Error}. *)

val errorf : ?loc:Loc.t -> phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val protect : (unit -> 'a) -> ('a, string) result
(** Run a computation, converting a raised diagnostic into [Error msg]. *)
