(** Definition-time checking of meta-code bodies.

    "Full type checking during macro processing guarantees syntactically
    valid transformations" (paper, §1): the body of every macro and meta
    function is checked when it is defined, so a macro user can never be
    handed an ill-typed transformation. *)

open Ms2_syntax.Ast
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort

let error loc fmt = Diag.error ~loc Diag.Type_check fmt

(** Process a declaration appearing in meta code: yields the (name, type)
    bindings it introduces, checking any initializers against the
    declared types.  The same routine handles [metadcl] globals. *)
let rec declare (env : Tenv.t) (decl : decl) : (string * Mtype.t) list =
  match decl.d with
  | Decl_plain (specs, idecls) ->
      List.concat_map
        (fun idecl ->
          match idecl with
          | Init_decl (d, init) ->
              let name, ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
              if name = "" then
                error decl.dloc "meta declaration needs a name";
              (match init with
              | None -> ()
              | Some (I_expr e) ->
                  Infer.check_subtype ~loc:e.eloc ~what:"initializer"
                    (Infer.type_of env e) ty
              | Some (I_list _) ->
                  error decl.dloc
                    "brace initializers are not part of the macro language");
              Tenv.add env name ty;
              [ (name, ty) ]
          | Init_splice _ ->
              error decl.dloc "placeholder in meta declaration")
        idecls
  | Decl_fun (specs, d, kr, body) ->
      if kr <> [] then
        error decl.dloc "K&R parameter declarations are object-level only";
      let name, ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
      (match ty with
      | Mtype.Fun (param_types, ret) ->
          (* bind the function name first so it can recurse *)
          Tenv.add env name ty;
          let params =
            match Of_cdecl.func_params d with
            | Some ps -> Of_cdecl.params_of_func ~loc:decl.dloc ps
            | None -> error decl.dloc "malformed meta function declarator"
          in
          assert (List.length params = List.length param_types);
          Tenv.with_scope env (fun () ->
              List.iter (fun (n, t) -> Tenv.add env n t) params;
              check_body env ~ret body);
          [ (name, ty) ]
      | _ -> error decl.dloc "meta function definition without function type")
  | Decl_metadcl inner -> declare env inner
  | Decl_macro_def _ ->
      error decl.dloc "macro definitions cannot be nested in meta code"
  | Decl_splice _ -> error decl.dloc "placeholder outside a template"
  | Decl_macro _ ->
      error decl.dloc
        "declaration-macro invocations are not allowed inside meta code"

(** Check a statement of meta code.  [ret] is the enclosing macro's or
    meta function's declared return type. *)
and check_stmt (env : Tenv.t) ~(ret : Mtype.t) (stmt : stmt) : unit =
  match stmt.s with
  | St_expr e -> ignore (Infer.type_of env e)
  | St_compound items ->
      Tenv.with_scope env (fun () ->
          List.iter
            (function
              | Bi_decl d -> ignore (declare env d)
              | Bi_stmt s -> check_stmt env ~ret s)
            items)
  | St_if (c, t, e) ->
      ignore (Infer.type_of env c);
      check_stmt env ~ret t;
      Option.iter (check_stmt env ~ret) e
  | St_while (c, body) | St_do (body, c) ->
      ignore (Infer.type_of env c);
      check_stmt env ~ret body
  | St_for (init, cond, step, body) ->
      let ign e = ignore (Infer.type_of env e) in
      Option.iter ign init;
      Option.iter ign cond;
      Option.iter ign step;
      check_stmt env ~ret body
  | St_switch (e, body) ->
      ignore (Infer.type_of env e);
      check_stmt env ~ret body
  | St_case (e, s) ->
      ignore (Infer.type_of env e);
      check_stmt env ~ret s
  | St_default s -> check_stmt env ~ret s
  | St_return None ->
      if not (Mtype.equal ret Mtype.Void) then
        error stmt.sloc "return without a value in a macro returning %s"
          (Mtype.to_string ret)
  | St_return (Some e) ->
      Infer.check_subtype ~loc:e.eloc ~what:"returned value"
        (Infer.type_of env e) ret
  | St_break | St_continue | St_null -> ()
  | St_goto _ | St_label _ ->
      error stmt.sloc "goto is not part of the macro language"
  | St_splice _ -> error stmt.sloc "placeholder outside a template"
  | St_macro inv ->
      (* a macro invocation in meta code must itself be meta code once
         expanded; its declared type must be stmt *)
      if not (Mtype.subtype inv.inv_ret (Mtype.Ast Sort.Stmt)) then
        error stmt.sloc
          "macro %s returns %s and cannot be used as a meta statement"
          inv.inv_name.id_name
          (Mtype.to_string inv.inv_ret)

and check_body env ~ret body = check_stmt env ~ret body
