(** Predefined member names for extracting components of ASTs.

    The paper: "We also have predefined member names for extracting
    components of ASTs such as stmt->declarations and
    declaration->type_spec."  This module is the *typing* side of that
    table; the runtime extraction lives in [ms2.meta] (Builtins) and must
    agree with it. *)

module Sort = Ms2_mtype.Sort
module Mtype = Ms2_mtype.Mtype

(** [type_of sort member] is the type of [x->member] when [x : @sort]. *)
let type_of (sort : Sort.t) (member : string) : Mtype.t option =
  let open Mtype in
  match (sort, member) with
  (* every AST value can report what kind of node it is *)
  | _, "kind" -> Some String
  | Sort.Decl, "type_spec" -> Some (Ast Sort.Typespec)
  | Sort.Decl, "init_declarators" -> Some (List (Ast Sort.Init_declarator))
  | Sort.Decl, "name" -> Some (Ast Sort.Id)  (* declared name, first declarator *)
  | Sort.Stmt, "declarations" -> Some (List (Ast Sort.Decl))
  | Sort.Stmt, "statements" -> Some (List (Ast Sort.Stmt))
  | Sort.Stmt, "expression" -> Some (Ast Sort.Exp)
  | Sort.Init_declarator, "declarator" -> Some (Ast Sort.Declarator)
  | Sort.Declarator, "name" -> Some (Ast Sort.Id)
  | Sort.Exp, "callee" -> Some (Ast Sort.Exp)
  | Sort.Exp, "args" -> Some (List (Ast Sort.Exp))
  | Sort.Typespec, "enumerators" -> Some (List (Ast Sort.Enumerator))
  | Sort.Typespec, "tag" -> Some (Ast Sort.Id)
  | Sort.Typespec, "field_names" -> Some (List (Ast Sort.Id))
  | Sort.Enumerator, "name" -> Some (Ast Sort.Id)
  | Sort.Num, "value" -> Some Int
  | Sort.Param, "name" -> Some (Ast Sort.Id)
  | _, _ -> None

(** Members available on a sort, for diagnostics. *)
let members (sort : Sort.t) : string list =
  let candidates =
    [ "kind"; "type_spec"; "init_declarators"; "name"; "declarations";
      "statements"; "expression"; "declarator"; "callee"; "args";
      "enumerators"; "tag"; "field_names"; "value" ]
  in
  List.filter (fun m -> Option.is_some (type_of sort m)) candidates
