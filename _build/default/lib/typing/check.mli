(** Definition-time checking of meta-code bodies: "full type checking
    during macro processing guarantees syntactically valid
    transformations" (paper §1). *)

open Ms2_syntax.Ast
module Mtype = Ms2_mtype.Mtype

val declare : Tenv.t -> decl -> (string * Mtype.t) list
(** Process a meta declaration: bind its names (checking initializers)
    and return the bindings.  Handles meta functions and [metadcl]. *)

val check_stmt : Tenv.t -> ret:Mtype.t -> stmt -> unit
val check_body : Tenv.t -> ret:Mtype.t -> stmt -> unit
(** Check a macro or meta-function body against its declared return
    type. *)
