(** Typing side of the paper's predefined AST component members
    ([stmt->declarations], [declaration->type_spec], ...).  Must agree
    with the runtime table in [Ms2_meta.Builtins.component]. *)

module Sort = Ms2_mtype.Sort
module Mtype = Ms2_mtype.Mtype

val type_of : Sort.t -> string -> Mtype.t option
(** Type of [x->member] when [x : @sort]. *)

val members : Sort.t -> string list
(** Members available on a sort, for diagnostics. *)
