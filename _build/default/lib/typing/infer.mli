(** Type inference for meta-language expressions — the semantic analysis
    the parser performs while parsing, which types placeholders and so
    drives template disambiguation (paper §3, Figures 2-3).

    All failures raise {!Ms2_support.Diag.Error} with phase
    [Type_check]. *)

open Ms2_syntax.Ast
module Mtype = Ms2_mtype.Mtype

val fixed_builtins : (string * Mtype.t) list
(** Primitive functions with fixed signatures ([concat_ids], [pstring],
    the semantic-macro primitives, ...). *)

val is_builtin : string -> bool
(** Including the specially-typed ones ([list], [map], [length], ...). *)

val join : loc:Ms2_support.Loc.t -> Mtype.t -> Mtype.t -> Mtype.t
(** Least upper bound under subtyping, or a diagnostic. *)

val check_subtype :
  loc:Ms2_support.Loc.t -> what:string -> Mtype.t -> Mtype.t -> unit

val type_of : Tenv.t -> expr -> Mtype.t
val type_of_template : template -> Mtype.t
