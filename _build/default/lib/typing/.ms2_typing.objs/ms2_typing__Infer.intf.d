lib/typing/infer.mli: Ms2_mtype Ms2_support Ms2_syntax Tenv
