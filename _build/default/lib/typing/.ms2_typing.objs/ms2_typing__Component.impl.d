lib/typing/component.ml: List Ms2_mtype Option
