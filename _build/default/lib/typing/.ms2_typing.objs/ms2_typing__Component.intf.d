lib/typing/component.mli: Ms2_mtype
