lib/typing/tenv.mli: Ms2_mtype
