lib/typing/of_cdecl.ml: Diag Fmt List Ms2_mtype Ms2_support Ms2_syntax
