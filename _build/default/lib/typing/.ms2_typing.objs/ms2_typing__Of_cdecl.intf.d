lib/typing/of_cdecl.mli: Ms2_mtype Ms2_support Ms2_syntax
