lib/typing/check.ml: Diag Infer List Ms2_mtype Ms2_support Ms2_syntax Of_cdecl Option Tenv
