lib/typing/tenv.ml: Fun Hashtbl List Ms2_mtype Option
