lib/typing/infer.ml: Component Diag Lazy List Ms2_mtype Ms2_support Ms2_syntax Of_cdecl Printf String Tenv
