lib/typing/check.mli: Ms2_mtype Ms2_syntax Tenv
