(** Conversion of C declaration syntax to meta types.

    The macro language reuses C declaration syntax for meta declarations:
    [@id ids[]] declares a list of identifiers (array syntax), struct
    declarations declare tuples, [@stmt f(@stmt s) {...}] declares a meta
    function, and [char *s] declares a meta string.  This module turns
    (specifier list, declarator) pairs into {!Ms2_mtype.Mtype.t}
    values. *)

open Ms2_syntax.Ast
open Ms2_support
module Mtype = Ms2_mtype.Mtype

let error loc fmt = Diag.error ~loc Diag.Type_check fmt

(* The base of a declaration: we must remember whether it was [char]
   so that exactly one pointer layer turns it into the string type. *)
type base = Scalar of Mtype.t | Char

let strip_storage specs =
  List.filter
    (function
      | S_typedef | S_extern | S_static | S_auto | S_register | S_const
      | S_volatile ->
          false
      | _ -> true)
    specs

let rec base_of_specs ~loc (specs : spec list) : base =
  match strip_storage specs with
  | [ S_ast sort ] -> Scalar (Mtype.Ast sort)
  | [ S_void ] -> Scalar Mtype.Void
  | [ S_char ] -> Char
  | [ S_struct (_, Some fields) ] ->
      let tuple_field f =
        List.map
          (fun d ->
            let name, ty = of_declarator ~loc (base_of_specs ~loc f.f_specs) d in
            { Mtype.fld_name = name; fld_type = ty })
          f.f_declarators
      in
      Scalar (Mtype.Tuple (List.concat_map tuple_field fields))
  | [] -> error loc "missing type specifier in meta declaration"
  | rest
    when List.for_all
           (function
             | S_int | S_short | S_long | S_signed | S_unsigned -> true
             | _ -> false)
           rest ->
      Scalar Mtype.Int
  | rest ->
      error loc "these specifiers do not form a meta-level type: %s"
        (Fmt.str "%a" (Ms2_syntax.Pretty.pp_specs Ms2_syntax.Pretty.relaxed)
           rest)

(** [of_declarator base d] applies the declarator [d] to the base type
    using the standard C inside-out reading: the type constructor is
    threaded down through the declarator, so [@id ids[]] is a list of
    identifiers, [char *argv[]] is a list of strings, and
    [@stmt f(@id x)[]] is a meta function returning a *list* of
    statements.  Returns the declared name (empty for abstract
    declarators) and the resulting type. *)
and of_declarator ~loc (base : base) (d : declarator) : string * Mtype.t =
  let scalar = function
    | Scalar t -> t
    | Char -> Mtype.Int (* bare char is an int at the meta level *)
  in
  let param_type p =
    match p with
    | P_decl (specs, pd) ->
        let _, ty = of_declarator ~loc (base_of_specs ~loc specs) pd in
        ty
    | P_name id ->
        error id.id_loc
          "meta function parameters need declared types (K&R style is \
           object-level only)"
    | P_ellipsis ->
        error loc "variadic parameters are object-level only"
    | P_splice _ -> error loc "placeholder in meta function parameters"
  in
  let rec go d (t : base) : string * Mtype.t =
    match d with
    | D_ident id -> (id.id_name, scalar t)
    | D_abstract -> ("", scalar t)
    | D_array (inner, _size) -> go inner (Scalar (Mtype.List (scalar t)))
    | D_pointer inner -> (
        match t with
        | Char -> go inner (Scalar Mtype.String)
        | Scalar _ ->
            error loc
              "pointer declarators are not meaningful at the meta level \
               (except char *)")
    | D_func (inner, params) ->
        (* the paper's anonymous functions "may only be passed
           downwards": no function-returning meta functions *)
        (match t with
        | Scalar (Mtype.Fun _) ->
            error loc
              "meta functions cannot return functions (anonymous functions \
               may only be passed downward)"
        | Scalar _ | Char -> ());
        go inner (Scalar (Mtype.Fun (List.map param_type params, scalar t)))
    | D_splice _ -> error loc "placeholder in meta declarator"
  in
  go d base

(** Meta type and name declared by [specs d], e.g. [@id ids[]] gives
    [("ids", List (Ast Id))] and [char *s] gives [("s", String)]. *)
let of_decl ~loc (specs : spec list) (d : declarator) : string * Mtype.t =
  of_declarator ~loc (base_of_specs ~loc specs) d

(** The parameter list of a function declarator, looking through array
    and pointer layers (so [f(@id x)[]], a function returning a list,
    yields [x]'s declaration). *)
let rec func_params : declarator -> param list option = function
  | D_func ((D_ident _ | D_abstract), ps) -> Some ps
  | D_func (inner, ps) -> (
      match func_params inner with Some ps' -> Some ps' | None -> Some ps)
  | D_array (d, _) | D_pointer d -> func_params d
  | D_ident _ | D_abstract | D_splice _ -> None

(** Named parameters of a meta function declarator, in order. *)
let params_of_func ~loc (params : param list) : (string * Mtype.t) list =
  List.map
    (function
      | P_decl (specs, pd) -> of_decl ~loc specs pd
      | P_name id ->
          error id.id_loc "meta function parameters need declared types"
      | P_ellipsis ->
        error loc "variadic parameters are object-level only"
    | P_splice _ -> error loc "placeholder in meta function parameters")
    params

(** Does a specifier list mention an AST type anywhere (directly or in a
    struct field)?  Used to classify top-level definitions as meta
    functions. *)
let rec specs_mention_ast specs =
  List.exists
    (function
      | S_ast _ -> true
      | S_struct (_, Some fields) | S_union (_, Some fields) ->
          List.exists (fun f -> specs_mention_ast f.f_specs) fields
      | _ -> false)
    specs

let rec declarator_mentions_ast = function
  | D_ident _ | D_abstract | D_splice _ -> false
  | D_pointer d | D_array (d, _) -> declarator_mentions_ast d
  | D_func (d, params) ->
      declarator_mentions_ast d
      || List.exists
           (function
             | P_decl (specs, pd) ->
                 specs_mention_ast specs || declarator_mentions_ast pd
             | P_name _ | P_ellipsis | P_splice _ -> false)
           params
