(** Conversion of C declaration syntax to meta types: array syntax
    declares lists, struct syntax declares tuples, [char *] is the meta
    string type, function declarators (including list-returning
    [f(...)[] ]) declare meta functions. *)

open Ms2_syntax.Ast
module Mtype = Ms2_mtype.Mtype

val of_decl :
  loc:Ms2_support.Loc.t -> spec list -> declarator -> string * Mtype.t
(** Declared name (empty for abstract declarators) and meta type.
    @raise Ms2_support.Diag.Error on non-meta-expressible declarations. *)

val func_params : declarator -> param list option
(** Parameter list of a function declarator, looking through array and
    pointer layers. *)

val params_of_func :
  loc:Ms2_support.Loc.t -> param list -> (string * Mtype.t) list
(** Named, typed parameters of a meta function. *)

val specs_mention_ast : spec list -> bool
(** Used to classify top-level definitions as meta functions. *)

val declarator_mentions_ast : declarator -> bool
