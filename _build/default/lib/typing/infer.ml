(** Type inference for meta-language expressions.

    This is the semantic analysis the parser performs while parsing: the
    type of a placeholder expression decides how the surrounding template
    is parsed (paper §3, Figures 2 and 3), and full checking of macro
    bodies at definition time is what guarantees macros only build
    syntactically valid fragments.

    All failures raise {!Ms2_support.Diag.Error} with phase
    [Type_check]. *)

open Ms2_syntax.Ast
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort

let error loc fmt = Diag.error ~loc Diag.Type_check fmt

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

(** Fixed-signature primitive functions of the macro language. *)
let fixed_builtins : (string * Mtype.t) list =
  let open Mtype in
  [ ("concat_ids", Fun ([ Ast Sort.Id; Ast Sort.Id ], Ast Sort.Id));
    ("pstring", Fun ([ Ast Sort.Id ], Ast Sort.Exp));
    (* string <-> identifier <-> number conversions *)
    ("make_id", Fun ([ String ], Ast Sort.Id));
    ("id_string", Fun ([ Ast Sort.Id ], String));
    ("make_string", Fun ([ String ], Ast Sort.Exp));
    ("exp_string", Fun ([ Ast Sort.Exp ], String));
    ("make_num", Fun ([ Int ], Ast Sort.Num));
    ("num_value", Fun ([ Ast Sort.Num ], Int));
    ("int_string", Fun ([ Int ], String));
    (* predicates *)
    ("simple_expression", Fun ([ Ast Sort.Exp ], Int));
    (* strings *)
    ("strcmp", Fun ([ String; String ], Int));
    ("strcat", Fun ([ String; String ], String));
    (* semantic-macro primitives: the object-level type of an expression
       at the expansion point (paper §5, "semantic macros") *)
    ("exp_typespec", Fun ([ Ast Sort.Exp ], Ast Sort.Typespec));
    ("declare_like", Fun ([ Ast Sort.Exp; Ast Sort.Id ], Ast Sort.Decl));
    ("type_name_of", Fun ([ Ast Sort.Exp ], String));
    ("is_pointer", Fun ([ Ast Sort.Exp ], Int));
    ("is_integer", Fun ([ Ast Sort.Exp ], Int));
    ("types_compatible", Fun ([ Ast Sort.Exp; Ast Sort.Exp ], Int)) ]

let is_builtin name =
  List.mem_assoc name fixed_builtins
  || List.mem name
       [ "gensym"; "symbolconc"; "length"; "list"; "append"; "cons"; "map";
         "filter"; "reverse"; "nth"; "error"; "print" ]

(** Least upper bound under the subtype order, or an error. *)
let join ~loc a b =
  if Mtype.subtype a b then b
  else if Mtype.subtype b a then a
  else
    error loc "incompatible types %s and %s" (Mtype.to_string a)
      (Mtype.to_string b)

let check_subtype ~loc ~what actual expected =
  if not (Mtype.subtype actual expected) then
    error loc "%s has type %s but %s was expected" what
      (Mtype.to_string actual) (Mtype.to_string expected)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec type_of (env : Tenv.t) (expr : expr) : Mtype.t =
  let loc = expr.eloc in
  match expr.e with
  | E_ident id -> (
      match Tenv.find env id.id_name with
      | Some ty -> ty
      | None -> (
          match List.assoc_opt id.id_name fixed_builtins with
          | Some ty -> ty
          | None ->
              error id.id_loc "unbound meta variable %s" id.id_name))
  | E_const (Cint _ | Cchar _) -> Mtype.Int
  | E_const (Cstring _) -> Mtype.String
  | E_const (Cfloat _) ->
      error loc "floating-point literals are not part of the macro language"

  | E_call ({ e = E_ident f; _ }, args) when special_builtin f.id_name ->
      type_of_special env loc f.id_name args
  | E_call (f, args) -> (
      match type_of env f with
      | Mtype.Fun (params, ret) ->
          if List.length params <> List.length args then
            error loc "wrong number of arguments: expected %d, got %d"
              (List.length params) (List.length args);
          List.iteri
            (fun i (p, a) ->
              check_subtype ~loc:a.eloc
                ~what:(Printf.sprintf "argument %d" (i + 1))
                (type_of env a) p)
            (List.combine params args);
          ret
      | ty ->
          error loc "this is not a function (it has type %s)"
            (Mtype.to_string ty))
  | E_index (l, i) -> (
      match type_of env l with
      | Mtype.List t ->
          check_subtype ~loc:i.eloc ~what:"index" (type_of env i) Mtype.Int;
          t
      | Mtype.Tuple fields -> (
          match i.e with
          | E_const (Cint (n, _)) when n >= 0 && n < List.length fields ->
              (List.nth fields n).Mtype.fld_type
          | E_const (Cint (n, _)) ->
              error loc "tuple index %d out of range (size %d)" n
                (List.length fields)
          | _ -> error loc "tuples may only be indexed by constants")
      | ty -> error loc "cannot index a value of type %s" (Mtype.to_string ty))
  | E_member (e, f) | E_arrow (e, f) -> (
      let f =
        match f with
        | Ii_id id -> id
        | Ii_splice sp ->
            error sp.sp_loc
              "placeholders cannot name components of meta values"
      in
      match type_of env e with
      | Mtype.Tuple fields -> (
          match
            List.find_opt (fun x -> x.Mtype.fld_name = f.id_name) fields
          with
          | Some x -> x.Mtype.fld_type
          | None -> error f.id_loc "tuple has no field %s" f.id_name)
      | Mtype.Ast sort -> (
          match Component.type_of sort f.id_name with
          | Some ty -> ty
          | None ->
              error f.id_loc "@%s values have no component %s (available: %s)"
                (Sort.keyword sort) f.id_name
                (String.concat ", " (Component.members sort)))
      | ty ->
          error loc "cannot select a component from a value of type %s"
            (Mtype.to_string ty))
  | E_unary (Deref, e) -> (
      (* *l is the head of list l (the paper's car) *)
      match type_of env e with
      | Mtype.List t -> t
      | ty -> error loc "cannot dereference a value of type %s"
                (Mtype.to_string ty))
  | E_unary (Addr, _) ->
      error loc
        "it is illegal to take the address of a meta value (paper, §2)"
  | E_unary ((Neg | Plus | Bitnot), e) ->
      check_subtype ~loc ~what:"operand" (type_of env e) Mtype.Int;
      Mtype.Int
  | E_unary (Lognot, e) ->
      ignore (type_of env e);
      Mtype.Int
  | E_unary ((Preincr | Predecr), e) | E_postincr e | E_postdecr e ->
      check_lvalue env e;
      check_subtype ~loc ~what:"operand" (type_of env e) Mtype.Int;
      Mtype.Int
  | E_binary (Add, l, r) -> (
      (* l + 1 is the tail of list l (the paper's cdr); s + t is string
         concatenation *)
      match type_of env l with
      | Mtype.List _ as t ->
          check_subtype ~loc ~what:"list offset" (type_of env r) Mtype.Int;
          t
      | Mtype.String ->
          check_subtype ~loc ~what:"right operand" (type_of env r)
            Mtype.String;
          Mtype.String
      | tl ->
          check_subtype ~loc ~what:"left operand" tl Mtype.Int;
          check_subtype ~loc ~what:"right operand" (type_of env r) Mtype.Int;
          Mtype.Int)
  | E_binary ((Eq | Ne), l, r) ->
      let tl = type_of env l and tr = type_of env r in
      ignore (join ~loc tl tr);
      Mtype.Int
  | E_binary ((Logand | Logor), l, r) ->
      ignore (type_of env l);
      ignore (type_of env r);
      Mtype.Int
  | E_binary (_, l, r) ->
      check_subtype ~loc ~what:"left operand" (type_of env l) Mtype.Int;
      check_subtype ~loc ~what:"right operand" (type_of env r) Mtype.Int;
      Mtype.Int
  | E_cond (c, t, e) ->
      ignore (type_of env c);
      join ~loc (type_of env t) (type_of env e)
  | E_assign (A_eq, l, r) ->
      check_lvalue env l;
      let tl = type_of env l in
      check_subtype ~loc ~what:"assigned value" (type_of env r) tl;
      tl
  | E_assign (_, l, r) ->
      check_lvalue env l;
      check_subtype ~loc ~what:"left operand" (type_of env l) Mtype.Int;
      check_subtype ~loc ~what:"right operand" (type_of env r) Mtype.Int;
      Mtype.Int
  | E_comma (a, b) ->
      ignore (type_of env a);
      type_of env b
  | E_sizeof_expr _ | E_sizeof_type _ -> Mtype.Int
  | E_cast (_, _) -> error loc "casts are not part of the macro language"
  | E_backquote t -> type_of_template t
  | E_lambda (params, body) ->
      let bindings = Of_cdecl.params_of_func ~loc params in
      Tenv.with_scope env (fun () ->
          List.iter (fun (n, ty) -> Tenv.add env n ty) bindings;
          let ret = type_of env body in
          Mtype.Fun (List.map snd bindings, ret))
  | E_splice sp ->
      (* a depth-1 splice has already been typed by the parser; deeper
         splices are opaque until the enclosing template is filled *)
      sp.sp_type
  | E_macro inv -> inv.inv_ret

and type_of_template = function
  | T_exp _ -> Mtype.Ast Sort.Exp
  | T_stmt _ -> Mtype.Ast Sort.Stmt
  | T_decl _ -> Mtype.Ast Sort.Decl
  | T_general (ps, _) -> pspec_type ps

and check_lvalue env e =
  match e.e with
  | E_ident id ->
      if Tenv.find env id.id_name = None then
        error id.id_loc "unbound meta variable %s" id.id_name
  | E_index _ | E_member _ | E_arrow _ | E_unary (Deref, _) -> ()
  | _ -> error e.eloc "this meta expression is not assignable"

and special_builtin = function
  | "gensym" | "symbolconc" | "length" | "list" | "append" | "cons" | "map"
  | "filter" | "reverse" | "nth" | "error" | "print" ->
      true
  | _ -> false

and type_of_special env loc name args : Mtype.t =
  let targs = lazy (List.map (type_of env) args) in
  let arg i = List.nth (Lazy.force targs) i in
  let argloc i = (List.nth args i).eloc in
  let arity ns =
    if not (List.mem (List.length args) ns) then
      error loc "%s: wrong number of arguments (%d)" name (List.length args)
  in
  match name with
  | "gensym" ->
      arity [ 0; 1 ];
      if List.length args = 1 then (
        match arg 0 with
        | Mtype.String | Mtype.Ast Sort.Id -> ()
        | ty ->
            error (argloc 0) "gensym: expected a string or @id, got %s"
              (Mtype.to_string ty));
      Mtype.Ast Sort.Id
  | "symbolconc" ->
      if args = [] then error loc "symbolconc: needs at least one argument";
      List.iteri
        (fun i ty ->
          match ty with
          | Mtype.String | Mtype.Ast Sort.Id | Mtype.Int -> ()
          | ty ->
              error (argloc i)
                "symbolconc: arguments must be strings, @id or int, got %s"
                (Mtype.to_string ty))
        (Lazy.force targs);
      Mtype.Ast Sort.Id
  | "length" -> (
      arity [ 1 ];
      match arg 0 with
      | Mtype.List _ -> Mtype.Int
      | ty ->
          error (argloc 0) "length: expected a list, got %s"
            (Mtype.to_string ty))
  | "list" ->
      if args = [] then
        error loc
          "list: cannot type an empty list (declare a list meta variable \
           instead)";
      let elem =
        List.fold_left (join ~loc) (arg 0) (List.tl (Lazy.force targs))
      in
      Mtype.List elem
  | "append" -> (
      arity [ 2 ];
      match (arg 0, arg 1) with
      | Mtype.List a, Mtype.List b -> Mtype.List (join ~loc a b)
      | ta, tb ->
          error loc "append: expected two lists, got %s and %s"
            (Mtype.to_string ta) (Mtype.to_string tb))
  | "cons" -> (
      arity [ 2 ];
      match arg 1 with
      | Mtype.List b -> Mtype.List (join ~loc (arg 0) b)
      | ty ->
          error (argloc 1) "cons: expected a list, got %s" (Mtype.to_string ty))
  | "map" -> (
      arity [ 2 ];
      match (arg 0, arg 1) with
      | Mtype.Fun ([ p ], r), Mtype.List elem ->
          check_subtype ~loc:(argloc 1) ~what:"list elements" elem p;
          Mtype.List r
      | ta, tb ->
          error loc "map: expected a one-argument function and a list, got %s \
                     and %s"
            (Mtype.to_string ta) (Mtype.to_string tb))
  | "filter" -> (
      arity [ 2 ];
      match (arg 0, arg 1) with
      | Mtype.Fun ([ p ], _), (Mtype.List elem as tl) ->
          check_subtype ~loc:(argloc 1) ~what:"list elements" elem p;
          tl
      | ta, tb ->
          error loc
            "filter: expected a one-argument function and a list, got %s and \
             %s"
            (Mtype.to_string ta) (Mtype.to_string tb))
  | "reverse" -> (
      arity [ 1 ];
      match arg 0 with
      | Mtype.List _ as t -> t
      | ty ->
          error (argloc 0) "reverse: expected a list, got %s"
            (Mtype.to_string ty))
  | "nth" -> (
      arity [ 2 ];
      match arg 0 with
      | Mtype.List t ->
          check_subtype ~loc:(argloc 1) ~what:"index" (arg 1) Mtype.Int;
          t
      | ty ->
          error (argloc 0) "nth: expected a list, got %s" (Mtype.to_string ty))
  | "error" | "print" ->
      ignore (Lazy.force targs);
      Mtype.Void
  | _ -> assert false
