(** ms2c — command-line driver for the MS² macro expander.

    - [ms2c expand file.mc]: expand macros, print pure C (or [-o out.c]);
    - [ms2c check file.mc]: parse and type check only;
    - [ms2c figures]: regenerate the paper's Figures 1-3. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Each input file is a separate fragment pushed through the same
   engine — "meta-programming constructs and regular programs that
   invoke macros can either be located in separate files, or mixed
   together" (paper §2).  Diagnostics carry per-file source names. *)
let with_fragments files k =
  let fragments =
    match files with
    | [] ->
        let b = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel b stdin 4096
           done
         with End_of_file -> ());
        [ ("<stdin>", Buffer.contents b) ]
    | files -> List.map (fun f -> (f, read_file f)) files
  in
  k fragments


(* ------------------------------------------------------------------ *)
(* expand                                                              *)
(* ------------------------------------------------------------------ *)

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Input files \
       (concatenated in order; reads stdin when none given).")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
       ~doc:"Write the expansion to $(docv) instead of stdout.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
       ~doc:"Print expansion statistics to stderr.")

let hygienic_arg =
  Arg.(value & flag & info [ "hygienic" ]
       ~doc:"Rename template-introduced block locals automatically \
             (automatic hygiene).")

let semantic_check_arg =
  Arg.(value & flag & info [ "check"; "semantic-check" ]
       ~doc:"Run the object-level static checker over the expansion and \
             print findings to stderr (exit 1 when any are found).")

let prelude_arg =
  Arg.(value & flag & info [ "prelude" ]
       ~doc:"Load the standard macro library (unless, repeat, for_range, \
             times, swap, with_cleanup, assert_that, log_value, bitflags, \
             myenum) before the input.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
       ~doc:"Log every macro expansion (name, actuals, result) to stderr.")

let expand_cmd =
  let run files output stats hygienic semantic_check prelude trace =
    with_fragments files (fun fragments ->
        let engine = Ms2.Api.create_engine ~hygienic ~prelude () in
        if trace then
          engine.Ms2.Engine.trace <- Some Format.err_formatter;
        let prog =
          match
            Ms2_support.Diag.protect (fun () ->
                List.concat_map
                  (fun (source, text) ->
                    Ms2.Engine.expand_source engine ~source text)
                  fragments)
          with
          | Ok prog -> prog
          | Error msg ->
              prerr_endline msg;
              exit 1
        in
        let out =
          Ms2_syntax.Pretty.program_to_string ~mode:Ms2_syntax.Pretty.strict
            prog
        in
        (match output with
        | None -> print_string out
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc out));
        if stats then begin
          let s = Ms2.Api.stats engine in
          Printf.eprintf
            "macros defined: %d\nmeta declarations run: %d\ninvocations \
             expanded: %d\n"
            s.Ms2.Engine.macros_defined s.Ms2.Engine.meta_declarations_run
            s.Ms2.Engine.invocations_expanded
        end;
        if semantic_check then begin
          match Ms2.Api.check_program prog with
          | [] -> ()
          | findings ->
              List.iter prerr_endline findings;
              exit 1
        end)
  in
  Cmd.v
    (Cmd.info "expand" ~doc:"Expand syntax macros to pure C")
    Term.(
      const run $ files_arg $ output_arg $ stats_arg $ hygienic_arg
      $ semantic_check_arg $ prelude_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run files =
    with_fragments files (fun fragments ->
        let engine = Ms2.Api.create_engine () in
        match
          Ms2_support.Diag.protect (fun () ->
              List.iter
                (fun (source, text) ->
                  ignore (Ms2.Engine.expand_source engine ~source text))
                fragments)
        with
        | Ok () -> prerr_endline "ok"
        | Error msg ->
            prerr_endline msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse, type check and expand without printing the result")
    Term.(const run $ files_arg)

(* ------------------------------------------------------------------ *)
(* figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures_cmd =
  let run () =
    print_endline "Figure 2: parses of `[int $y;] by the AST type of y";
    List.iter
      (fun (ty, parse) -> Printf.printf "  %-20s %s\n" ty parse)
      (Ms2.Figures.figure2 ());
    print_endline "";
    print_endline
      "Figure 3: parses of `{int x; $ph1 $ph2 return(x);} by placeholder \
       types";
    List.iter
      (fun (t1, t2, parse) -> Printf.printf "  %-5s %-5s %s\n" t1 t2 parse)
      (Ms2.Figures.figure3 ());
    print_endline "";
    print_endline "Figure 1 witnesses (token substitution vs syntax macros):";
    Printf.printf "  CPP  MUL(x + y, m + n) -> %s\n" (Ms2.Figures.cpp_witness ());
    Printf.printf "  MS2  MUL(x + y, m + n) -> %s\n" (Ms2.Figures.ms2_witness ())
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "ms2c" ~version:"1.0.0"
       ~doc:"Programmable syntax macros for C (Weise & Crew, PLDI 1993)")
    [ expand_cmd; check_cmd; figures_cmd ]

let () = exit (Cmd.eval main)
