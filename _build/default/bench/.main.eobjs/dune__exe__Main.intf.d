bench/main.mli:
