bench/workloads.ml: Buffer List Ms2 Printf String
