(** Shared plumbing for the examples: expand an MS² source string and
    show the input program and the pure-C expansion side by side. *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let run ~title ~(source : string) () =
  rule title;
  print_endline "--- input (C + macros) ---";
  print_string source;
  print_endline "--- expansion (pure C) ---";
  match Ms2.Api.expand_string ~source:title source with
  | Ok out -> print_string out
  | Error e ->
      Printf.eprintf "expansion failed: %s\n" e;
      exit 1

(** Run several fragments through one engine, so macro definitions and
    meta state persist across fragments (multi-file usage). *)
let run_staged ~title (stages : (string * string) list) () =
  rule title;
  let engine = Ms2.Api.create_engine () in
  List.iter
    (fun (stage_title, source) ->
      Printf.printf "\n--- %s ---\n" stage_title;
      print_string source;
      match Ms2.Api.expand ~source:stage_title engine source with
      | Ok out when String.trim out = "" ->
          print_endline "(meta-program only: no object code produced)"
      | Ok out ->
          print_endline "--- expands to ---";
          print_string out
      | Error e ->
          Printf.eprintf "expansion failed: %s\n" e;
          exit 1)
    stages
