(** Code rearrangement: the paper's non-local transformation.

    The dispatch table of a window procedure is written in a distributed
    fashion — one [window_proc_dispatch] per message, next to the code it
    belongs with — and a final [emit_window_proc] glues the accumulated
    fragments into one dispatch routine.  The accumulation lives in
    [metadcl] meta globals, which persist across macro invocations (and
    across fragments pushed through the same engine).

    Run with: [dune exec examples/window_proc.exe] *)

let machinery =
  {src|
metadcl @id wp_names[];
metadcl @id wp_defaults[];
metadcl @id wp_procs[];
metadcl @id wp_messages[];
metadcl @stmt wp_bodies[];
metadcl @decl wp_no_decls[];
metadcl @stmt wp_no_stmts[];

syntax decl new_window_proc [] {| $$id::name default $$id::default_proc ; |}
{
  wp_names = append(wp_names, list(name));
  wp_defaults = append(wp_defaults, list(default_proc));
  return wp_no_decls;
}

syntax decl window_proc_dispatch []
  {| ( $$id::proc , $$id::message ) $$stmt::body |}
{
  wp_procs = append(wp_procs, list(proc));
  wp_messages = append(wp_messages, list(message));
  wp_bodies = append(wp_bodies, list(body));
  return wp_no_decls;
}

@stmt wp_cases(@id proc, @id procs[], @id messages[], @stmt bodies[])[]
{
  if (length(procs) == 0)
    return wp_no_stmts;
  if (*procs == proc)
    return cons(`{case $(*messages): { $(*bodies) break; }},
                wp_cases(proc, procs + 1, messages + 1, bodies + 1));
  return wp_cases(proc, procs + 1, messages + 1, bodies + 1);
}

@id wp_default(@id proc, @id names[], @id defaults[])
{
  if (length(names) == 0)
    error("emit_window_proc: unknown window procedure", proc);
  if (*names == proc)
    return *defaults;
  return wp_default(proc, names + 1, defaults + 1);
}

syntax decl emit_window_proc [] {| $$id::name ; |}
{
  return list(
    `[int $name(int hWnd, int message, int wParam, int lParam)
      {
        switch (message)
          {
            $(wp_cases(name, wp_procs, wp_messages, wp_bodies))
            default:
              return $(wp_default(name, wp_names, wp_defaults))
                       (hWnd, message, wParam, lParam);
          }
      }]);
}
|src}

let usage =
  {src|
new_window_proc wproc default DefWindowProc;

window_proc_dispatch(wproc, WM_DESTROY)
{
  KillTimer(hWnd, idTimer);
  PostQuitMessage(0);
}

window_proc_dispatch(wproc, WM_CREATE)
{
  idTimer = SetTimer(hWnd, 77, 5000, 0);
}

emit_window_proc wproc;
|src}

let two_procs =
  {src|
new_window_proc dialog_proc default DefDlgProc;

window_proc_dispatch(dialog_proc, WM_INITDIALOG)
{
  center_window(hWnd);
}

window_proc_dispatch(dialog_proc, WM_COMMAND)
{
  handle_command(hWnd, wParam);
}

emit_window_proc dialog_proc;
|src}

let () =
  Util.run_staged ~title:"Code rearrangement: distributed dispatch tables"
    [ ("machinery (meta-program)", machinery);
      ("distributed dispatch code", usage);
      ("a second, independent window procedure", two_procs) ]
    ()
