(** Deriving boilerplate from data declarations (paper §4:
    "Generalizations of this example are quite useful.  Persistence
    code, RPC code, dialog boxes, etc., can be automatically created
    when data is declared.")

    [derive_io struct tag {...};] declares the struct and generates a
    printer and a field-by-field serializer, by iterating the struct's
    field list at expansion time ([type_spec->field_names]).

    Run with: [dune exec examples/derive.exe] *)

let source =
  {src|
syntax decl derive_io [] {| $$decl::d ; |}
{
  @typespec t = d->type_spec;
  @id tag = t->tag;
  @id fields[] = t->field_names;
  return list(
    d,
    `[void $(symbolconc("print_", tag))(struct $tag *v)
      {
        printf("%s {", $(pstring(tag)));
        $(map((@id f; `{printf(" %s=%d", $(pstring(f)), v->$f);}), fields))
        printf(" }\n");
      }],
    `[void $(symbolconc("save_", tag))(struct $tag *v, int fd)
      {
        $(map((@id f; `{write_int(fd, v->$f);}), fields))
      }],
    `[void $(symbolconc("load_", tag))(struct $tag *v, int fd)
      {
        $(map((@id f; `{v->$f = read_int(fd);}), fields))
      }]);
}

derive_io struct point { int x; int y; int z; }; ;

derive_io struct rect { int left; int top; int right; int bottom; }; ;

int roundtrip(int fd)
{
  struct point p;
  p.x = 1;
  p.y = 2;
  p.z = 3;
  save_point(&p, fd);
  load_point(&p, fd);
  print_point(&p);
  return p.x;
}
|src}

let () =
  Util.run ~title:"Deriving printers and serializers from declarations"
    ~source ()
