(** Macro-generating macros: templates that contain [syntax] macro
    definitions.

    The paper's portability discussion (§4) imagines implementing "a
    common virtual machine as a series of macros".  A natural pattern in
    such layers is a *family* of similar macros; a macro-generating
    macro captures the family once.  [def_resource] defines, for each
    named resource, a bracketing statement macro in the style of
    [Painting].

    Because parsing precedes expansion within a fragment, a generated
    macro becomes invocable in the *next* fragment pushed through the
    engine — exactly how definitions-in-one-file, uses-in-another
    compile units work.

    Run with: [dune exec examples/metamacros.exe] *)

let generator =
  {src|
metadcl @decl mm_nothing[];

syntax decl def_resource [] {| $$id::name ; |}
{
  return list(
    `[syntax stmt $(symbolconc("with_", name)) {| $$stmt::body |}
      {
        return `{acquire(); $body; release();};
      }]);
}
|src}

let generate = {src|
def_resource file;
def_resource socket;
|src}

let use =
  {src|
int copy(int in, int out)
{
  with_file {
    with_socket {
      pump(in, out);
    }
  }
  return 0;
}
|src}

let () =
  Util.run_staged ~title:"Macro-generating macros: resource families"
    [ ("the generator (meta-program)", generator);
      ("generating two bracketing macros", generate);
      ("using the generated macros", use) ]
    ()
