(** The paper's exception-handling system: three statement macros —
    [throw], [catch] and [unwind_protect] — built on setjmp/longjmp,
    plus the [Painting] macro rebuilt on top of [unwind_protect] so the
    painting resource is released even when an exception unwinds the
    stack.

    Note the programmability on display in [throw]: the macro *decides at
    expansion time* (via the [simple_expression] primitive) whether the
    thrown value needs a temporary.

    Run with: [dune exec examples/exceptions.exe] *)

let definitions =
  {src|
syntax stmt throw {| $$exp::value |}
{
  if (simple_expression(value))
    return `{if (exception_ptr == 0)
               no_handler($value);
             else
               longjmp(exception_ptr, $value);};
  else
    return `{{int the_value = $value;
              if (exception_ptr == 0)
                no_handler(the_value);
              else
                longjmp(exception_ptr, the_value);}};
}

syntax stmt catch {| $$exp::tag $$stmt::handler $$stmt::body |}
{
  return `{{int *old_exception_ptr = exception_ptr;
            int jmp_buffer[2];
            int result;
            result = setjump(jmp_buffer);
            if (result == 0)
              {exception_ptr = jmp_buffer; $body}
            else
              {exception_ptr = old_exception_ptr;
               if (result == $tag)
                 $handler;
               else
                 throw result;}}};
}

syntax stmt unwind_protect {| $$stmt::body $$stmt::cleanup |}
{
  return `{{int *old_exception_ptr = exception_ptr;
            int jmp_buffer[2];
            int result;
            result = setjump(jmp_buffer);
            if (result == 0)
              {exception_ptr = jmp_buffer; $body}
            exception_ptr = old_exception_ptr;
            $cleanup;
            if (result != 0)
              throw result;}};
}
|src}

let usage =
  {src|
myenum error_types {division_by_zero, file_closed, using_unix};

int foo(int a, int b, int *c)
{
  int z;
  z = a + b;
  catch division_by_zero
    {printf("%s", "You lose, division by zero.");}
    {*c = freq(z, a);}
  unwind_protect
    {start_faucet_running();}
    {stop_faucet();}
  return z;
}
|src}

(* the enum-defining macro from the enum_io example, needed by [usage] *)
let myenum =
  {src|
syntax decl myenum [] {| $$id::name { $$+/, id::ids } ; |}
{
  return list(`[enum $name {$ids};]);
}
|src}

let painting_v2 =
  {src|
syntax stmt Painting {| $$stmt::body |}
{
  return `{BeginPaint(hDC, &ps);
           unwind_protect
             { $body; }
             { EndPaint(hDC, &ps); }};
}

int repaint(int hDC)
{
  Painting { draw_everything(hDC); throw paint_failure; }
  return 0;
}
|src}

let () =
  Util.run_staged ~title:"Exception handling with syntax macros"
    [ ("definitions (meta-program)", definitions);
      ("myenum helper", myenum);
      ("user code", usage);
      ("Painting on top of unwind_protect", painting_v2) ]
    ()
