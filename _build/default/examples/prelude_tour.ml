(** A tour of the standard macro library (the prelude).

    Run with: [dune exec examples/prelude_tour.exe] *)

let source =
  {src|
bitflags open_modes {om_read, om_write, om_append, om_create};

myenum level {debug, info, warning};

int fd_flags;
char *path;

int process(int n)
{
  int i;
  int total = 0;

  unless (n > 0) return -1;

  for_range (i = 1 to n) { total += i; }
  for_range (i = 0 to n by 8) { prefetch(i); }

  times (2) { flush_caches(); }

  repeat { total = total / 2; } until (total < 100);

  assert_that(total >= 0);
  log_value(total);
  log_value(path);

  swap(fd_flags, total);

  with_cleanup { write_all(path, total); }
               { report(total); }

  print_level(read_level());
  return total;
}
|src}

let () =
  Util.rule "A tour of the standard macro library";
  print_endline "--- input (C + prelude macros) ---";
  print_string source;
  print_endline "--- expansion (pure C) ---";
  let engine = Ms2.Api.create_engine ~prelude:true () in
  match Ms2.Api.expand ~source:"prelude-tour" engine source with
  | Ok out -> print_string out
  | Error e ->
      Printf.eprintf "expansion failed: %s\n" e;
      exit 1
