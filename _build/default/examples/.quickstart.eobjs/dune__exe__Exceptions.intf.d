examples/exceptions.mli:
