examples/enum_io.mli:
