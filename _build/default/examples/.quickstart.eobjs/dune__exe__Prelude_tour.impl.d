examples/prelude_tour.ml: Ms2 Printf Util
