examples/derive.ml: Util
