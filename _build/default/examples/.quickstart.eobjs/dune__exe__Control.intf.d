examples/control.mli:
