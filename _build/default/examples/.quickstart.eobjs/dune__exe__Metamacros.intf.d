examples/metamacros.mli:
