examples/control.ml: Util
