examples/embedded_query.mli:
