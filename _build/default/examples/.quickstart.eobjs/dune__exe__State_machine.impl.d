examples/state_machine.ml: Util
