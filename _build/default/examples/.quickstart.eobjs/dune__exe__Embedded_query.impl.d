examples/embedded_query.ml: Util
