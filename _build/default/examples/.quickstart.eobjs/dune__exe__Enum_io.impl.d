examples/enum_io.ml: Util
