examples/quickstart.ml: Util
