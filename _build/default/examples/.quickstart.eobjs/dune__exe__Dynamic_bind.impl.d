examples/dynamic_bind.ml: Util
