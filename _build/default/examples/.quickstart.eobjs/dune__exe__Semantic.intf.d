examples/semantic.mli:
