examples/window_proc.ml: Util
