examples/exceptions.ml: Util
