examples/window_proc.mli:
