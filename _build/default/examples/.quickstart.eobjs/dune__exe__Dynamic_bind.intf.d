examples/dynamic_bind.mli:
