examples/util.ml: List Ms2 Printf String
