examples/prelude_tour.mli:
