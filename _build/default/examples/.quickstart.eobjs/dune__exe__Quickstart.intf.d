examples/quickstart.mli:
