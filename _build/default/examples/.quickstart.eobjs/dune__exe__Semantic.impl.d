examples/semantic.ml: List Ms2 Printf Util
