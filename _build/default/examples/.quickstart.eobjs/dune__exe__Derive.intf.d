examples/derive.mli:
