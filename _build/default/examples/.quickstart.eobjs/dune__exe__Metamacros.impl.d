examples/metamacros.ml: Util
