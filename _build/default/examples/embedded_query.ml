(** A domain-specific preprocessor in one macro (paper §4: "Many
    software projects, especially in the database field, extend a
    language to incorporate domain specific data types and statements.
    The first task of these projects is to write a preprocessor, a task
    that would be trivial if a suitable macro facility were available.")

    [query (result) select f1, f2 from table where expr;] is new
    statement syntax; the macro compiles it to calls against a plain C
    cursor API, using the field list twice (once to declare column
    bindings, once to fetch) — the kind of duplication such
    preprocessors exist to eliminate.

    Run with: [dune exec examples/embedded_query.exe] *)

let source =
  {src|
/* The typedef must precede the macro definition: templates parse with
   the typedef context of the *definition* site, so without it
   "db_cursor *cur" would parse as a multiplication — the exact
   limitation the paper documents in "Dealing with Context
   Sensitivity". */
typedef int db_cursor;

metadcl @stmt q_no_stmts[];

@stmt q_bind_columns(@id table, @id fields[], int i)[]
{
  if (length(fields) == 0)
    return q_no_stmts;
  return cons(
    `{db_bind_column(cur, $(make_num(i)),
                     $(pstring(table)), $(pstring(*fields)));},
    q_bind_columns(table, fields + 1, i + 1));
}

@stmt q_fetch_columns(@id fields[], int i)[]
{
  if (length(fields) == 0)
    return q_no_stmts;
  return cons(
    `{row.$(*fields) = db_column_int(cur, $(make_num(i)));},
    q_fetch_columns(fields + 1, i + 1));
}

syntax stmt query
  {| ( $$id::row ) select $$+/, id::fields from $$id::table
     $$?where exp::cond ; |}
{
  @exp filter;
  if (length(cond) == 0)
    filter = `(1);
  else
    filter = *cond;
  return `{{
    db_cursor *cur = db_open($(pstring(table)));
    $(q_bind_columns(table, fields, 0))
    while (db_next(cur))
      {
        $(q_fetch_columns(fields, 0))
        if ($filter)
          db_emit(&row);
      }
    db_close(cur);
  }};
}

struct user_row { int id; int age; int score; };

void report(void)
{
  struct user_row row;
  query (row) select id, age, score from users where row.age > 30;
  query (row) select id, score from admins;
}
|src}

let () = Util.run ~title:"An embedded query language" ~source ()
