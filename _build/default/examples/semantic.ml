(** Semantic macros (the paper's §5 future work, implemented here).

    "Semantic macros are an extension of syntax macros that have access
    to, and can make decisions based upon, semantic information
    maintained by the static semantic analyzer."  This example shows the
    two powers the paper promises:

    - macros that condition their output on the *object-level types* of
      the expressions they manipulate (a compile-time form of
      object-oriented dispatch);
    - [dynamic_bind] without the type annotation: "in a semantic macro
      system ... the macro user wouldn't need to declare the type of
      name".

    Run with: [dune exec examples/semantic.exe] *)

let dynamic_bind2 =
  {src|
syntax stmt dynamic_bind2 {| ( $$id::name = $$exp::init ) $$stmt::body |}
{
  @id newname = gensym(name);
  @typespec t = exp_typespec(name);
  return `{{$t $newname = $name;
            $name = $init;
            $body;
            $name = $newname;}};
}

unsigned long printlength = 10;
enum verbosity {quiet, chatty} level;

void f()
{
  dynamic_bind2 (printlength = 80) { print_gym_class(); }
  dynamic_bind2 (level = chatty) { print_gym_class(); }
}
|src}

let dispatch =
  {src|
syntax stmt show {| ( $$exp::e ) ; |}
{
  if (is_pointer(e))
    return `{printf("%p", (void *)$e);};
  if (is_integer(e))
    return `{printf("%d", $e);};
  return `{printf("<value of type %s>", $(pstring(make_id(type_name_of(e)))));};
}

struct point {int x; int y;};
int counter;
char *name;
double ratio;

void g(struct point *p)
{
  show(counter);
  show(name);
  show(p->x);
  show(&counter);
  show(ratio);
}
|src}

let generic_swap =
  {src|
syntax stmt swap {| ( $$exp::a , $$exp::b ) ; |}
{
  @id tmp = gensym("swap");
  if (!types_compatible(a, b))
    error("swap: incompatible operand types", type_name_of(a),
          type_name_of(b));
  return `{{ $(declare_like(a, tmp)) $tmp = $a; $a = $b; $b = $tmp; }};
}

int i, j;
char *p, *q;

void h()
{
  swap(i, j);
  swap(p, q);
}
|src}

let () =
  Util.run ~title:"Semantic macros 1: dynamic_bind without the type"
    ~source:dynamic_bind2 ();
  Util.run ~title:"Semantic macros 2: dispatch on object-level types"
    ~source:dispatch ();
  Util.run
    ~title:
      "Semantic macros 3: a generic swap (declare_like + compatibility \
       check)"
    ~source:generic_swap ();

  (* the downstream half: the object-level checker over an expansion *)
  Util.rule "Checked expansion: type errors found before any C compiler";
  let buggy =
    "int f(int a) { return a; }\nchar *s;\nint bad() { s = 3 + f(1, 2); \
     return *s(); }"
  in
  print_endline "--- input ---";
  print_endline buggy;
  match Ms2.Api.expand_checked buggy with
  | Ok (_, findings) ->
      print_endline "--- findings ---";
      List.iter print_endline findings
  | Error e ->
      Printf.eprintf "unexpected failure: %s\n" e;
      exit 1
