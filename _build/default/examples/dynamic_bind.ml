(** Dynamic binding (paper §4): a statement macro that saves an integer
    variable, rebinds it around a body, and restores it afterwards — the
    fluid-let of Lisp, in C.  The saved-value temporary is created with
    [gensym], so it cannot capture or be captured by user identifiers.

    Run with: [dune exec examples/dynamic_bind.exe] *)

let source =
  {src|
syntax stmt dynamic_bind
  {| ( $$typespec::type $$id::name = $$exp::init ) $$stmt::body |}
{
  @id newname = gensym(name);
  return `{{$type $newname = $name;
            $name = $init;
            $body;
            $name = $newname;}};
}

int printlength = 10;

void print_gym()
{
  dynamic_bind (int printlength = 2 * printlength)
  {
    print_class_structure(gym_class);
  }
}

void nested()
{
  dynamic_bind (int printlength = 1)
  {
    dynamic_bind (int printlength = 2)
    {
      print_class_structure(gym_class);
    }
  }
}
|src}

let () = Util.run ~title:"Dynamic binding" ~source ()
