(** New control constructs (paper §4): "specialized looping constructs
    ... are easily implemented in a programmable syntax macro system."

    Three constructs showing off the pattern language:

    - [for_range (i = lo to hi by step) body] — an optional pattern
      element with a preamble token ([$$?by exp::step]); the macro
      generates different code depending on whether [by] was given;
    - [repeat body until (cond);] — a do/while with inverted condition;
    - [swap (a, b);] — an expression-level idiom using gensym. *)

let source =
  {src|
syntax stmt for_range
  {| ( $$id::var = $$exp::lo to $$exp::hi $$?by exp::step ) $$stmt::body |}
{
  if (length(step) == 0)
    return `{for ($var = $lo; $var <= $hi; $var++) $body};
  return `{for ($var = $lo; $var <= $hi; $var += $(*step)) $body};
}

syntax stmt repeat {| $$stmt::body until ( $$exp::cond ) ; |}
{
  return `{do $body while (!($cond));};
}

syntax stmt swap {| ( $$id::a , $$id::b ) ; |}
{
  @id tmp = gensym("swap");
  return `{{int $tmp = $a; $a = $b; $b = $tmp;}};
}

int sum_to(int n)
{
  int i;
  int total = 0;
  for_range (i = 1 to n) { total += i; }
  return total;
}

int sum_odds(int n)
{
  int i;
  int total = 0;
  for_range (i = 1 to n by 2) { total += i; }
  return total;
}

int collatz_steps(int n)
{
  int steps = 0;
  repeat {
    if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
    steps++;
  } until (n == 1);
  return steps;
}

void sort2(int *x, int *y)
{
  int a = *x;
  int b = *y;
  if (a > b) swap(a, b);
  *x = a;
  *y = b;
}
|src}

let () = Util.run ~title:"New control constructs" ~source ()
