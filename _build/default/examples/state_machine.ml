(** Syntactic abstraction at full power: a state-machine DSL.

    "Many software projects ... extend a language to incorporate domain
    specific data types and statements.  The first task of these
    projects is to write a preprocessor, a task that would be trivial if
    a suitable macro facility were available." (paper, §4)

    [state_machine] adds a declaration form with *nested tuple
    repetitions* in its pattern: a machine is one-or-more states, each
    with one-or-more transitions.  The macro generates the state enum
    and a dispatch function, using recursive meta functions over the
    tuple lists.

    Run with: [dune exec examples/state_machine.exe] *)

let source =
  {src|
metadcl @stmt sm_no_stmts[];

@id sm_first_state(struct {@id st;
                           struct {@id ev; @id target;} transitions[];}
                   states[])
{
  return (*states)->st;
}

@id sm_state_names(struct {@id st;
                           struct {@id ev; @id target;} transitions[];}
                   states[])[]
{
  metadcl @id sm_no_ids[];
  if (length(states) == 0)
    return sm_no_ids;
  return cons((*states)->st, sm_state_names(states + 1));
}

@stmt sm_transition_cases(struct {@id ev; @id target;} ts[])[]
{
  if (length(ts) == 0)
    return sm_no_stmts;
  return cons(`{case $((*ts)->ev): return $((*ts)->target);},
              sm_transition_cases(ts + 1));
}

@stmt sm_state_cases(struct {@id st;
                             struct {@id ev; @id target;} transitions[];}
                     states[])[]
{
  if (length(states) == 0)
    return sm_no_stmts;
  return cons(
    `{case $((*states)->st):
        switch (event)
          {$(sm_transition_cases((*states)->transitions))}
        return state;},
    sm_state_cases(states + 1));
}

syntax decl state_machine []
  {| $$id::name {
       $$+.( state $$id::st :
             $$+.( on $$id::ev goto $$id::target ; )::transitions )::states
     } |}
{
  return list(
    `[enum $(symbolconc(name, "_states")) {$(sm_state_names(states))};],
    `[int $(symbolconc(name, "_initial"))()
      { return $(sm_first_state(states)); }],
    `[int $(symbolconc(name, "_step"))(int state, int event)
      {
        switch (state)
          {$(sm_state_cases(states))}
        return state;
      }]);
}

state_machine door {
  state closed:
    on open_cmd goto opening;
    on lock_cmd goto locked;
  state opening:
    on opened_sensor goto open_state;
    on obstruction goto closed;
  state open_state:
    on close_cmd goto closed;
  state locked:
    on unlock_cmd goto closed;
}

int main()
{
  int s = door_initial();
  s = door_step(s, open_cmd);
  s = door_step(s, opened_sensor);
  return s == open_state;
}
|src}

let () = Util.run ~title:"A state-machine DSL" ~source ()
