(** Readers and writers for enumerated types (paper §4).

    [myenum fruit {apple, banana, kiwi};] expands into the [enum]
    declaration *plus* generated [print_fruit] and [read_fruit]
    functions.  The macro exercises most of the macro language: a
    repetition pattern with separator ([$$+/, id::ids]), [map] with the
    paper's anonymous functions, [symbolconc] to build the function
    names, [pstring] to turn identifiers into string literals, and
    list-typed placeholders spliced into statement lists and enumerator
    lists.

    Run with: [dune exec examples/enum_io.exe] *)

let source =
  {src|
syntax decl myenum [] {| $$id::name { $$+/, id::ids } ; |}
{
  return list(
    `[enum $name {$ids};],
    `[void $(symbolconc("print_", name))(int arg)
      {
        switch (arg)
          {$(map((@id id;
                  `{case $id: {printf("%s", $(pstring(id))); break;}}),
                 ids))}
      }],
    `[int $(symbolconc("read_", name))()
      {
        char s[100];
        getline(s, 100);
        $(map((@id id;
               `{if (strcmp(s, $(pstring(id))) == 0) return $id;}),
              ids))
        return -1;
      }]);
}

myenum fruit {apple, banana, kiwi};

myenum color {red, green, blue, white, black};

int demo()
{
  print_fruit(read_fruit());
  print_color(read_color());
  return 0;
}
|src}

let () =
  Util.run ~title:"Generated readers and writers for enumerated types"
    ~source ()
