(** Quickstart: the paper's [Painting] macro.

    A window system requires painting operations to be bracketed with
    [BeginPaint]/[EndPaint].  The [Painting] statement macro captures the
    allocate/use/deallocate idiom: its single actual parameter is a
    statement (discovered by the parser), and the macro returns a
    statement AST built with a code template.

    Run with: [dune exec examples/quickstart.exe] *)

let source =
  {src|
syntax stmt Painting {| $$stmt::body |}
{
  return `{BeginPaint(hDC, &ps);
           $body;
           EndPaint(hDC, &ps);};
}

int repaint(int hDC)
{
  int width = query_width(hDC);
  Painting {
    draw_line(hDC, 0, 0, width, 0);
    draw_line(hDC, 0, 10, width, 10);
  }
  return width;
}
|src}

let () = Util.run ~title:"Quickstart: the Painting macro" ~source ()

(* A taste of the programmable part: the same abstraction written as a
   meta *function* used by a macro, as in the paper's paint_function. *)
let source2 =
  {src|
@stmt paint_function(@stmt s)
{
  return `{BeginPaint(hDC, &ps);
           $s;
           EndPaint(hDC, &ps);};
}

syntax stmt Painting2 {| $$stmt::body |}
{
  return paint_function(body);
}

int repaint2(int hDC)
{
  Painting2 { flood_fill(hDC); }
  return 0;
}
|src}

let () =
  Util.run ~title:"Quickstart 2: macros calling meta functions"
    ~source:source2 ()
