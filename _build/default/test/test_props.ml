(** Property-based tests (qcheck): printer/parser round trips, lexer
    round trips, interpreter arithmetic vs. OCaml, gensym freshness,
    expansion identity on macro-free code. *)

open QCheck
module Token = Ms2_syntax.Token
module Lexer = Ms2_syntax.Lexer
module Ast = Ms2_syntax.Ast

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_ident_name =
  Gen.oneofl [ "a"; "b"; "c"; "x"; "yy"; "foo"; "tmp_1" ]

let gen_small_int = Gen.int_range 0 1000

(* Arithmetic-only expressions over literals, for interpreter
   comparison.  Division is generated with a +1 guard on the divisor. *)
type aexp =
  | L of int
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp
  | Div of aexp * aexp
  | Neg of aexp
  | Cmp of aexp * aexp

let gen_aexp =
  Gen.sized
    (Gen.fix (fun self n ->
         if n = 0 then Gen.map (fun i -> L i) gen_small_int
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ Gen.map (fun i -> L i) gen_small_int;
               Gen.map2 (fun a b -> Add (a, b)) sub sub;
               Gen.map2 (fun a b -> Sub (a, b)) sub sub;
               Gen.map2 (fun a b -> Mul (a, b)) sub sub;
               Gen.map2 (fun a b -> Div (a, b)) sub sub;
               Gen.map (fun a -> Neg a) sub;
               Gen.map2 (fun a b -> Cmp (a, b)) sub sub ]))

let rec aexp_to_c = function
  | L i -> string_of_int i
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (aexp_to_c a) (aexp_to_c b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (aexp_to_c a) (aexp_to_c b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (aexp_to_c a) (aexp_to_c b)
  | Div (a, b) ->
      (* divisor forced strictly positive; operands are pure, so the
         double evaluation of b is harmless *)
      let bs = aexp_to_c b in
      Printf.sprintf "(%s / ((%s < 0 ? -%s : %s) + 1))" (aexp_to_c a) bs bs
        bs
  | Neg a -> Printf.sprintf "(-%s)" (aexp_to_c a)
  | Cmp (a, b) -> Printf.sprintf "(%s < %s)" (aexp_to_c a) (aexp_to_c b)

let rec aexp_eval = function
  | L i -> i
  | Add (a, b) -> aexp_eval a + aexp_eval b
  | Sub (a, b) -> aexp_eval a - aexp_eval b
  | Mul (a, b) -> aexp_eval a * aexp_eval b
  | Div (a, b) ->
      let d = aexp_eval b in
      aexp_eval a / ((if d < 0 then -d else d) + 1)
  | Neg a -> -aexp_eval a
  | Cmp (a, b) -> if aexp_eval a < aexp_eval b then 1 else 0

(* C surface expressions (as strings), built compositionally so that
   every generated string is valid C. *)
let gen_cexp_string =
  Gen.sized
    (Gen.fix (fun self n ->
         if n = 0 then
           Gen.oneof
             [ gen_ident_name;
               Gen.map string_of_int gen_small_int;
               Gen.oneofl [ "\"str\""; "'c'" ] ]
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ sub;
               Gen.map2 (Printf.sprintf "%s + %s") sub sub;
               Gen.map2 (Printf.sprintf "%s * %s") sub sub;
               Gen.map2 (Printf.sprintf "%s - %s") sub sub;
               Gen.map2 (Printf.sprintf "(%s) / (%s)") sub sub;
               Gen.map2 (Printf.sprintf "%s < %s") sub sub;
               Gen.map2 (Printf.sprintf "%s == %s") sub sub;
               Gen.map2 (Printf.sprintf "%s && %s") sub sub;
               Gen.map (Printf.sprintf "-(%s)") sub;
               Gen.map (Printf.sprintf "!(%s)") sub;
               Gen.map (Printf.sprintf "*(%s)") sub;
               Gen.map (Printf.sprintf "&(%s)") sub;
               Gen.map2 (Printf.sprintf "f(%s, %s)") sub sub;
               Gen.map2 (Printf.sprintf "(%s)[%s]") sub sub;
               Gen.map (Printf.sprintf "(%s).m") sub;
               Gen.map (Printf.sprintf "(%s)->m") sub;
               Gen.map3 (Printf.sprintf "(%s) ? (%s) : (%s)") sub sub sub;
               Gen.map2 (Printf.sprintf "%s = %s" )
                 gen_ident_name sub ]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* print . parse is idempotent: parse(print(parse(s))) prints the same *)
let prop_print_parse_roundtrip =
  Test.make ~name:"print/parse round trip on expressions" ~count:500
    (make gen_cexp_string)
    (fun src ->
      let e1 = Ms2_parser.Parser.expr_of_string src in
      let p1 = Ms2_syntax.Pretty.expr_to_string e1 in
      let e2 = Ms2_parser.Parser.expr_of_string p1 in
      let p2 = Ms2_syntax.Pretty.expr_to_string e2 in
      p1 = p2)

(* the printed form parses to a structurally identical tree: compare via
   the s-expression rendering, which ignores locations *)
let prop_reparse_preserves_structure =
  Test.make ~name:"re-parsing the printed form preserves structure"
    ~count:500 (make gen_cexp_string) (fun src ->
      let e1 = Ms2_parser.Parser.expr_of_string src in
      let p1 = Ms2_syntax.Pretty.expr_to_string e1 in
      let e2 = Ms2_parser.Parser.expr_of_string p1 in
      Ms2_syntax.Sexp.expr_to_string e1 = Ms2_syntax.Sexp.expr_to_string e2)

(* lexing the space-joined spellings of a token stream gives it back *)
let gen_token =
  Gen.oneof
    [ Gen.map (fun s -> Token.IDENT s) gen_ident_name;
      Gen.map (fun i -> Token.INT_LIT (i, string_of_int i)) gen_small_int;
      Gen.oneofl
        [ Token.LPAREN; Token.RPAREN; Token.LBRACE; Token.RBRACE;
          Token.SEMI; Token.COMMA; Token.PLUS; Token.MINUS; Token.STAR;
          Token.SLASH; Token.LT; Token.GT; Token.LE; Token.GE; Token.EQEQ;
          Token.NE; Token.ANDAND; Token.OROR; Token.ASSIGN; Token.ARROW;
          Token.DOT; Token.AMP; Token.BAR; Token.CARET; Token.BANG;
          Token.QUESTION; Token.COLON; Token.SHL; Token.SHR;
          Token.KW Token.Kint; Token.KW Token.Kreturn; Token.KW Token.Kif;
          Token.LMETA; Token.RMETA; Token.DOLLAR; Token.DOLLARDOLLAR;
          Token.COLONCOLON; Token.BACKQUOTE; Token.AT ] ]

let prop_lexer_roundtrip =
  Test.make ~name:"lexer round trip on spelled-out token streams"
    ~count:500
    (make (Gen.list_size (Gen.int_range 0 30) gen_token))
    (fun toks ->
      let text = String.concat " " (List.map Token.to_string toks) in
      let relexed =
        Lexer.tokenize text |> Array.to_list
        |> List.filter_map (fun { Token.tok; _ } ->
               match tok with Token.EOF -> None | t -> Some t)
      in
      relexed = toks)

(* interpreter arithmetic agrees with OCaml *)
let prop_interp_arith =
  Test.make ~name:"meta arithmetic agrees with OCaml" ~count:200
    (make gen_aexp)
    (fun a ->
      let src =
        Printf.sprintf
          "syntax exp calc {| |} { return make_num(%s); }\nint r = calc;"
          (aexp_to_c a)
      in
      match Ms2.Api.expand_string src with
      | Error _ -> false
      | Ok out -> (
          let expected = aexp_eval a in
          match Ms2_parser.Parser.program_of_string out with
          | [ { Ast.d = Ast.Decl_plain
                    (_, [ Ast.Init_decl (_, Some (Ast.I_expr e)) ]); _ } ]
            -> (
              match e.Ast.e with
              | Ast.E_const (Ast.Cint (v, _)) -> v = expected
              | Ast.E_unary
                  (Ast.Neg, { e = Ast.E_const (Ast.Cint (v, _)); _ }) ->
                  -v = expected
              | _ -> false)
          | _ -> false))

(* expanding a macro-free program is the identity (modulo layout) *)
let prop_expand_identity =
  Test.make ~name:"expansion is the identity on macro-free programs"
    ~count:200 (make gen_cexp_string)
    (fun src ->
      let prog = Printf.sprintf "int seed = %s;" src in
      match Ms2.Api.expand_string prog with
      | Error _ -> false
      | Ok out -> Tutil.norm out = Tutil.canon prog)

(* gensym never repeats and is always flagged reserved *)
let prop_gensym =
  Test.make ~name:"gensym freshness and reservedness" ~count:100
    (make (Gen.list_size (Gen.int_range 1 50) gen_ident_name))
    (fun bases ->
      let g = Ms2_support.Gensym.create () in
      let names = List.map (Ms2_support.Gensym.fresh g) bases in
      List.length (List.sort_uniq compare names) = List.length names
      && List.for_all Ms2_support.Gensym.is_reserved names)

(* pattern value types: repetitions and optionals are list-typed *)
let gen_pspec =
  let open Ms2_syntax.Ast in
  Gen.sized
    (Gen.fix (fun self n ->
         let sort =
           Gen.map (fun s -> Ps_sort s) (Gen.oneofl Ms2_mtype.Sort.all)
         in
         if n = 0 then sort
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ sort;
               Gen.map (fun p -> Ps_plus (Some Token.COMMA, p)) sub;
               Gen.map (fun p -> Ps_star (None, p)) sub;
               Gen.map (fun p -> Ps_opt (None, p)) sub ]))

let prop_pspec_types =
  Test.make ~name:"repetition pattern types are lists" ~count:200
    (make gen_pspec)
    (fun ps ->
      let open Ms2_syntax.Ast in
      let ty = pspec_type ps in
      match ps with
      | Ps_plus _ | Ps_star _ | Ps_opt _ -> (
          match ty with Ms2_mtype.Mtype.List _ -> true | _ -> false)
      | Ps_sort s -> Ms2_mtype.Mtype.equal ty (Ms2_mtype.Mtype.Ast s)
      | Ps_tuple _ -> true)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_print_parse_roundtrip;
        prop_reparse_preserves_structure;
        prop_lexer_roundtrip;
        prop_interp_arith;
        prop_expand_identity;
        prop_gensym;
        prop_pspec_types ]
  in
  Alcotest.run "props" [ ("properties", suite) ]
