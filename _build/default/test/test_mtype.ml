(** Tests for the AST type language: equality, subtyping, printing. *)

open Tutil
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
open Mtype

let exp = Ast Sort.Exp
let num = Ast Sort.Num
let id = Ast Sort.Id
let stmt = Ast Sort.Stmt

let sorts () =
  Alcotest.(check int) "ten sorts" 10 (List.length Sort.all);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Sort.keyword s ^ " round-trips")
        true
        (Sort.of_keyword (Sort.keyword s) = Some s))
    Sort.all;
  Alcotest.(check bool) "unknown keyword" true (Sort.of_keyword "foo" = None)

let subsorts () =
  Alcotest.(check bool) "num <= exp" true (Sort.subsort Sort.Num Sort.Exp);
  Alcotest.(check bool) "id <= exp" true (Sort.subsort Sort.Id Sort.Exp);
  Alcotest.(check bool) "exp </= num" false (Sort.subsort Sort.Exp Sort.Num);
  Alcotest.(check bool) "stmt </= exp" false (Sort.subsort Sort.Stmt Sort.Exp);
  Alcotest.(check bool) "reflexive" true (Sort.subsort Sort.Decl Sort.Decl)

let equality () =
  Alcotest.(check bool) "list eq" true (equal (List exp) (List exp));
  Alcotest.(check bool) "list neq" false (equal (List exp) (List stmt));
  Alcotest.(check bool) "nested" true
    (equal (List (List id)) (List (List id)));
  let t1 = Tuple [ { fld_name = "a"; fld_type = id } ] in
  let t2 = Tuple [ { fld_name = "b"; fld_type = id } ] in
  Alcotest.(check bool) "tuple field names matter" false (equal t1 t2);
  Alcotest.(check bool) "fun eq" true
    (equal (Fun ([ id ], stmt)) (Fun ([ id ], stmt)))

let subtyping () =
  Alcotest.(check bool) "num <= exp" true (subtype num exp);
  Alcotest.(check bool) "num[] <= exp[]" true (subtype (List num) (List exp));
  Alcotest.(check bool) "exp[] </= num[]" false (subtype (List exp) (List num));
  (* functions: contravariant parameters, covariant results *)
  Alcotest.(check bool) "fun co/contra" true
    (subtype (Fun ([ exp ], num)) (Fun ([ num ], exp)));
  Alcotest.(check bool) "fun not the reverse" false
    (subtype (Fun ([ num ], exp)) (Fun ([ exp ], num)));
  Alcotest.(check bool) "int not exp" false (subtype Int exp)

let printing () =
  Alcotest.(check string) "sort" "@stmt" (to_string stmt);
  Alcotest.(check string) "list" "@id[]" (to_string (List id));
  Alcotest.(check string) "int" "int" (to_string Int);
  Alcotest.(check string) "string" "char *" (to_string String);
  check_contains ~msg:"tuple shows fields"
    (to_string (Tuple [ { fld_name = "k"; fld_type = id } ]))
    "@id k"

let head_sorts () =
  Alcotest.(check bool) "sort" true (head_sort exp = Some Sort.Exp);
  Alcotest.(check bool) "list" true (head_sort (List stmt) = Some Sort.Stmt);
  Alcotest.(check bool) "nested list" true
    (head_sort (List (List id)) = Some Sort.Id);
  Alcotest.(check bool) "int has none" true (head_sort Int = None);
  Alcotest.(check bool) "ast-like" true (is_ast_like (List exp));
  Alcotest.(check bool) "not ast-like" false (is_ast_like String)

let () =
  Alcotest.run "mtype"
    [ ( "mtype",
        [ tc "sorts" sorts;
          tc "subsort order" subsorts;
          tc "type equality" equality;
          tc "subtyping" subtyping;
          tc "printing" printing;
          tc "head sorts" head_sorts ] ) ]
