test/test_builtins.ml: Alcotest Printf Tutil
