test/test_hygiene.mli:
