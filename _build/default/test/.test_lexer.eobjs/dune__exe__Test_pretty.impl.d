test/test_pretty.ml: Alcotest List Ms2_syntax Tutil
