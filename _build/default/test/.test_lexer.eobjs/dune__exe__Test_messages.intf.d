test/test_messages.mli:
