test/test_value.ml: Alcotest Ms2_meta Ms2_mtype Ms2_syntax Tutil
