test/test_props_stmt.ml: Alcotest Gen List Ms2 Printf QCheck QCheck_alcotest String Test Tutil
