test/test_hygiene2.ml: Alcotest Ms2 String Tutil
