test/test_support.ml: Alcotest Diag List Loc Ms2_support Tutil
