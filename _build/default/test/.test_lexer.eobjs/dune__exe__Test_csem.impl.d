test/test_csem.ml: Alcotest List Ms2 Ms2_csem String Tutil
