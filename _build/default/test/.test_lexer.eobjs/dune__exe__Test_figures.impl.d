test/test_figures.ml: Alcotest List Ms2 Tutil
