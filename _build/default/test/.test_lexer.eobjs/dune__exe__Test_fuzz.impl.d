test/test_fuzz.ml: Alcotest Char Gen List Ms2 Ms2_mtype Ms2_parser Ms2_pattern Ms2_support Ms2_syntax Ms2_typing Mtype Printf QCheck QCheck_alcotest Sort String Test
