test/test_lexer.ml: Alcotest Array Fmt Lexer List Ms2_support Ms2_syntax Token Tutil
