test/test_infer.ml: Alcotest List Ms2_mtype Ms2_parser Ms2_support Ms2_typing Tutil
