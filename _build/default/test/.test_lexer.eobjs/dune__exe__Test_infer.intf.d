test/test_infer.mli:
