test/test_metamacros.mli:
