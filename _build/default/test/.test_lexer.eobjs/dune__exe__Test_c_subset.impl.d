test/test_c_subset.ml: Alcotest Filename Ms2_syntax Printf Sys Tutil
