test/test_semantic.ml: Alcotest Tutil
