test/test_fill.mli:
