test/test_examples_paper.ml: Alcotest String Tutil
