test/test_corpus.ml: Alcotest Array Filename Fun List Ms2 String Sys Tutil
