test/test_of_cdecl.ml: Alcotest Ms2_mtype Ms2_support Ms2_syntax Ms2_typing Tutil
