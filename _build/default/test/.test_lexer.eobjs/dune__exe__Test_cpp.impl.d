test/test_cpp.ml: Alcotest List Ms2_cpp Ms2_support Tutil
