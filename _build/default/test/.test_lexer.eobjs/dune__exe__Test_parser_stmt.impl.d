test/test_parser_stmt.ml: Alcotest List Ms2_parser Ms2_support Ms2_syntax Tutil
