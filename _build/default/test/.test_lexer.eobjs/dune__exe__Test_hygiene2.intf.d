test/test_hygiene2.mli:
