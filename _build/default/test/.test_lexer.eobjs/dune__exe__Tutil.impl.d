test/tutil.ml: Alcotest Buffer Ms2 Ms2_parser Ms2_support Ms2_syntax String
