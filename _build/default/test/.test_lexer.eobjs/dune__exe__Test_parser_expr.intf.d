test/test_parser_expr.mli:
