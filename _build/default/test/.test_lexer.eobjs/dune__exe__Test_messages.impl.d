test/test_messages.ml: Alcotest List Tutil
