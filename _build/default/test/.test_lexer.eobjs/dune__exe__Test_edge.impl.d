test/test_edge.ml: Alcotest Buffer List Ms2 Printf String Tutil
