test/test_c_subset.mli:
