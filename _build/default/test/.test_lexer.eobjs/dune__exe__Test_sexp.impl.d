test/test_sexp.ml: Alcotest Ms2_syntax Tutil
