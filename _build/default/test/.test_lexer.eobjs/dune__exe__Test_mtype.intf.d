test/test_mtype.mli:
