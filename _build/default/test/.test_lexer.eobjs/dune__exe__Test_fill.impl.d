test/test_fill.ml: Alcotest Tutil
