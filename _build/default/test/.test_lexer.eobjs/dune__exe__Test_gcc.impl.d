test/test_gcc.ml: Alcotest Filename Ms2 Printf Sys Tutil
