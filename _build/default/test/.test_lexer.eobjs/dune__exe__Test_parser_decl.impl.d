test/test_parser_decl.ml: Alcotest List Ms2_parser Ms2_support Ms2_syntax Tutil
