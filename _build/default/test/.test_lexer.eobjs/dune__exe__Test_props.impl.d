test/test_props.ml: Alcotest Array Gen List Ms2 Ms2_mtype Ms2_parser Ms2_support Ms2_syntax Printf QCheck QCheck_alcotest String Test Tutil
