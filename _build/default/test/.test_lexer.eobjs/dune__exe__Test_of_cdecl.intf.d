test/test_of_cdecl.mli:
