test/test_mtype.ml: Alcotest List Ms2_mtype Tutil
