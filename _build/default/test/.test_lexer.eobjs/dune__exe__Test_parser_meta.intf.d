test/test_parser_meta.mli:
