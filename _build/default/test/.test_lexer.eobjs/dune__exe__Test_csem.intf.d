test/test_csem.mli:
