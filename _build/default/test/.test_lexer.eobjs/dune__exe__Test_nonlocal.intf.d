test/test_nonlocal.mli:
