test/test_hygiene.ml: Alcotest List Ms2_parser Ms2_support Tutil
