test/test_parser_expr.ml: Alcotest Ms2_parser Ms2_support Tutil
