test/test_nonlocal.ml: Alcotest Tutil
