test/test_check.ml: Alcotest Ms2_parser Ms2_support Tutil
