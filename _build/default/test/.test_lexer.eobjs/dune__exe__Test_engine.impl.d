test/test_engine.ml: Alcotest Buffer Format List Ms2 Ms2_syntax String Tutil
