test/test_parser_stmt.mli:
