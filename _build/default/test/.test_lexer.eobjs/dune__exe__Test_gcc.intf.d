test/test_gcc.mli:
