test/test_examples_paper.mli:
