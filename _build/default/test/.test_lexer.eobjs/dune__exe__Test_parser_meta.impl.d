test/test_parser_meta.ml: Alcotest List Ms2_mtype Ms2_syntax Tutil
