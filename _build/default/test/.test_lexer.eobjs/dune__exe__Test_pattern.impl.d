test/test_pattern.ml: Alcotest Ast List Ms2_mtype Ms2_pattern Ms2_support Ms2_syntax Token Tutil
