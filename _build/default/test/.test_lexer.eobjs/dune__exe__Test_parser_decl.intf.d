test/test_parser_decl.mli:
