test/test_props_stmt.mli:
