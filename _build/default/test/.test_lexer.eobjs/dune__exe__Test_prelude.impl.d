test/test_prelude.ml: Alcotest List Ms2 Tutil
