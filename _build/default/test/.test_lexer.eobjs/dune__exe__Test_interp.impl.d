test/test_interp.ml: Alcotest Ms2_syntax Printf Tutil
