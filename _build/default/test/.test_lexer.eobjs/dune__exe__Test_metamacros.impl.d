test/test_metamacros.ml: Alcotest Ms2 String Tutil
