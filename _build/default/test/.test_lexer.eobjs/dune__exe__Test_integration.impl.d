test/test_integration.ml: Alcotest Filename Ms2 Ms2_support Printf String Sys Tutil
