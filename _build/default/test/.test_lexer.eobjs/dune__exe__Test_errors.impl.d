test/test_errors.ml: Alcotest Ms2 Ms2_support Tutil
