test/test_semantic.mli:
