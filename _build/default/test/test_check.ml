(** Definition-time checking of macro bodies: return types, meta
    declarations, rejected constructs.  These errors surface when the
    macro is *defined* — the macro user never sees them (the paper's
    syntactic-safety property). *)

open Tutil

let accepts src = ignore (pprog src)

let rejects src sub =
  match Ms2_parser.Parser.program_of_string src with
  | exception Ms2_support.Diag.Error d ->
      check_contains ~msg:src (Ms2_support.Diag.to_string d) sub
  | _ -> Alcotest.failf "accepted: %s" src

let return_types () =
  accepts "syntax stmt m {| $$stmt::s |} { return s; }";
  (* subsort: an @id may be returned where @exp is promised *)
  accepts "syntax exp m {| $$id::i |} { return i; }";
  rejects "syntax exp m {| $$stmt::s |} { return s; }" "returned value";
  rejects "syntax stmt m {| $$stmt::s |} { return 1; }" "returned value";
  rejects "syntax stmt m {| $$stmt::s |} { return; }" "return without a value"

let body_declarations () =
  accepts
    "syntax stmt m {| $$exp::e |} {\n\
     @id tmp = gensym();\n\
     int n = 3;\n\
     char *msg = \"hi\";\n\
     return `{int $tmp = $e;};\n\
     }";
  rejects "syntax stmt m {| $$exp::e |} { @id x = 1; return `{;}; }"
    "initializer";
  rejects "syntax stmt m {| $$exp::e |} { int a[2] = {1, 2}; return `{;}; }"
    "brace initializers"

let scoping () =
  (* compound scopes nest and pop *)
  accepts
    "syntax stmt m {| $$exp::e |} {\n\
     if (1) { @id t = gensym(); return `{f($t);}; }\n\
     return `{g($e);};\n\
     }";
  (* t is out of scope after its block *)
  rejects
    "syntax stmt m {| $$exp::e |} {\n\
     if (1) { @id t = gensym(); return `{f($t);}; }\n\
     return `{g($t);};\n\
     }"
    "unbound meta variable"

let meta_statements () =
  accepts
    "syntax stmt m {| $$+/, exp::es |} {\n\
     int i;\n\
     int n = length(es);\n\
     for (i = 0; i < n; i++) print(es[i]);\n\
     while (n > 0) n--;\n\
     do n++; while (n < 2);\n\
     switch (n) { case 2: break; default: break; }\n\
     return `{;};\n\
     }";
  rejects "syntax stmt m {| $$exp::e |} { lab: return `{;}; }"
    "goto is not part"

let meta_statements_cond () =
  (* expansion-time dispatch on simple_expression type checks *)
  accepts
    "syntax stmt m {| $$exp::e |} {\n\
     if (simple_expression(e)) return `{a();};\n\
     else return `{b();};\n\
     }"

let nested_functions () =
  (* nested function definitions are not part of the macro language *)
  rejects
    "syntax stmt m {| $$exp::e |} { @stmt f(@stmt s) { return s; } return \
     `{;}; }"
    "expected";
  accepts
    "@stmt bracket(@stmt s) { return `{enter(); $s; leave();}; }\n\
     syntax stmt m {| $$stmt::s |} { return bracket(s); }"

let downward_only_closures () =
  (* the paper: anonymous functions "may only be passed downwards" *)
  rejects
    "metadcl @stmt mk(@id n)(@stmt s) { return `{;}; }"
    "passed downward";
  accepts
    "metadcl int apply_twice(@stmt s) { return 0; }"

let placeholders_outside () =
  rejects "int f() { return $x; }" "placeholder outside";
  rejects "syntax stmt m {| $$exp::e |} { $e; return `{;}; }"
    "placeholder outside"

let () =
  Alcotest.run "check"
    [ ( "check",
        [ tc "return type checking" return_types;
          tc "meta declarations in bodies" body_declarations;
          tc "scoping" scoping;
          tc "meta statements" meta_statements;
          tc "conditions" meta_statements_cond;
          tc "nested and top-level meta functions" nested_functions;
          tc "downward-only closures" downward_only_closures;
          tc "placeholders outside templates" placeholders_outside ] ) ]
