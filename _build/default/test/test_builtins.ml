(** Builtin primitives observed through expansion: identifier surgery,
    pstring, component extraction. *)

open Tutil

let symbolconc () =
  check_expands
    "syntax decl mk [] {| $$id::n ; |} {\n\
     return list(`[int $(symbolconc(\"get_\", n, 2))();]);\n\
     }\n\
     mk width;"
    "int get_width2();"

let concat_ids () =
  check_expands
    "syntax decl mk [] {| $$id::a $$id::b ; |} {\n\
     return list(`[int $(concat_ids(a, b));]);\n\
     }\n\
     mk foo bar;"
    "int foobar;"

let make_id () =
  check_expands
    "syntax decl mk [] {| $$id::n ; |} {\n\
     char *s = strcat(id_string(n), \"_t\");\n\
     return list(`[typedef int $(make_id(s));]);\n\
     }\n\
     mk size;"
    "typedef int size_t;"

let pstring () =
  check_expands
    "syntax stmt say {| $$id::n ; |} { return `{puts($(pstring(n)));}; }\n\
     int f() { say hello; return 0; }"
    "int f() { puts(\"hello\"); return 0; }"

let num_conversions () =
  check_expands
    "syntax exp double_of {| ( $$num::n ) |} {\n\
     return make_num(2 * num_value(n));\n\
     }\n\
     int x = double_of(21);"
    "int x = 42;"

let simple_expression () =
  (* the throw-style dispatch: constants and identifiers are simple *)
  let src which =
    Printf.sprintf
      "syntax stmt once {| $$exp::e ; |} {\n\
       if (simple_expression(e)) return `{use($e);};\n\
       return `{{int t = $e; use(t);}};\n\
       }\n\
       int f() { once %s; return 0; }"
      which
  in
  check_expands (src "x") "int f() { use(x); return 0; }";
  check_expands (src "42") "int f() { use(42); return 0; }";
  check_expands (src "g()")
    "int f() { { int t = g(); use(t); } return 0; }"

let components () =
  (* pull a declaration apart and rebuild it with a renamed variable *)
  check_expands
    "syntax decl shadow [] {| $$decl::d ; |} {\n\
     @id n = d->name;\n\
     return list(d, `[int $(symbolconc(n, \"_copy\"));]);\n\
     }\n\
     shadow int counter; ;"
    "int counter; int counter_copy;"

let stmt_components () =
  (* count declarations and statements of a compound at expansion time *)
  check_expands
    "syntax exp shape {| $$stmt::s |} {\n\
     return make_num(100 * length(s->declarations) + \
     length(s->statements));\n\
     }\n\
     int x = shape { int a; int b; f(); };"
    "int x = 201;"

let struct_fields () =
  (* the paper's "persistence code, RPC code ... can be automatically
     created when data is declared": generate a field-by-field printer
     for a struct from its declaration *)
  check_expands
    "syntax decl printable [] {| $$decl::d ; |} {\n\
     @typespec t = d->type_spec;\n\
     return list(d,\n\
     `[void $(symbolconc(\"print_\", t->tag))(struct $(t->tag) *v)\n\
     {\n\
     $(map((@id f; `{printf(\"%s=%d \", $(pstring(f)), v->$f);}),\n\
     t->field_names))\n\
     }]);\n\
     }\n\
     printable struct point { int x; int y; int z; }; ;"
    "struct point { int x; int y; int z; };\n\
     void print_point(struct point *v)\n\
     {\n\
     printf(\"%s=%d \", \"x\", v->x);\n\
     printf(\"%s=%d \", \"y\", v->y);\n\
     printf(\"%s=%d \", \"z\", v->z);\n\
     }"

let kind () =
  check_expands
    "syntax exp kind_of {| ( $$stmt::s ) |} {\n\
     if (strcmp(s->kind, \"while\") == 0) return make_num(1);\n\
     return make_num(0);\n\
     }\n\
     int a = kind_of(while (1) f(););\n\
     int b = kind_of({ f(); });"
    "int a = 1;\nint b = 0;"

let () =
  Alcotest.run "builtins"
    [ ( "builtins",
        [ tc "symbolconc" symbolconc;
          tc "concat_ids" concat_ids;
          tc "make_id / id_string / strcat" make_id;
          tc "pstring" pstring;
          tc "num conversions" num_conversions;
          tc "simple_expression dispatch" simple_expression;
          tc "decl components" components;
          tc "stmt components" stmt_components;
          tc "struct field iteration" struct_fields;
          tc "kind" kind ] ) ]
