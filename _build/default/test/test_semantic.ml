(** Semantic-macro tests: macros that query the object-level types of
    their actual parameters (the paper's §5 extension). *)

open Tutil

let typespec_query () =
  (* exp_typespec sees globals, locals, parameters, and scopes *)
  check_expands
    "syntax stmt clone {| ( $$id::v ) ; |} {\n\
     @id c = gensym(v);\n\
     return `{{$(exp_typespec(v)) $c = $v; use($c);}};\n\
     }\n\
     unsigned long big;\n\
     void f(short s) {\n\
     char c;\n\
     clone(big);\n\
     clone(s);\n\
     clone(c);\n\
     }"
    "unsigned long big;\n\
     void f(short s) {\n\
     char c;\n\
     { unsigned long big__g1 = big; use(big__g1); }\n\
     { short s__g2 = s; use(s__g2); }\n\
     { char c__g3 = c; use(c__g3); }\n\
     }"

let dispatch_on_type () =
  check_expands
    "syntax exp fmt_of {| ( $$exp::e ) |} {\n\
     if (is_pointer(e)) return `(\"%p\");\n\
     return `(\"%d\");\n\
     }\n\
     int i;\n\
     char *s;\n\
     void f() { printf(fmt_of(i), i); printf(fmt_of(s), s); }"
    "int i;\n\
     char *s;\n\
     void f() { printf(\"%d\", i); printf(\"%p\", s); }"

let struct_members () =
  (* the analysis follows struct layouts through pointers *)
  check_expands
    "syntax exp fmt_of {| ( $$exp::e ) |} {\n\
     if (is_pointer(e)) return `(\"%p\");\n\
     return `(\"%d\");\n\
     }\n\
     struct node {int value; struct node *next;};\n\
     void f(struct node *n) {\n\
     printf(fmt_of(n->value), n->value);\n\
     printf(fmt_of(n->next), n->next);\n\
     }"
    "struct node { int value; struct node *next; };\n\
     void f(struct node *n) {\n\
     printf(\"%d\", n->value);\n\
     printf(\"%p\", n->next);\n\
     }"

let scope_sensitivity () =
  (* the same macro sees different types for the same name in different
     scopes — the expansion point's environment decides *)
  check_expands
    "syntax exp fmt_of {| ( $$exp::e ) |} {\n\
     if (is_pointer(e)) return `(\"%p\");\n\
     return `(\"%d\");\n\
     }\n\
     int x;\n\
     void f() { printf(fmt_of(x), x); { char *x; printf(fmt_of(x), x); } }"
    "int x;\n\
     void f() { printf(\"%d\", x); { char *x; printf(\"%p\", x); } }"

let declare_like_pointers () =
  (* declare_like handles types a bare typespec cannot express *)
  let out =
    expand
      "syntax stmt stash {| ( $$exp::e ) ; |} {\n\
       @id t = gensym(\"stash\");\n\
       return `{{ $(declare_like(e, t)) $t = $e; consume($t); }};\n\
       }\n\
       char *argv[4];\n\
       void f() { stash(argv[0]); stash(argv); }"
  in
  let out = norm out in
  check_contains ~msg:"element type" out "char *stash__g1";
  check_contains ~msg:"decayed array type" out "char **stash__g2"

let type_name_strings () =
  check_expands
    "syntax exp tn {| ( $$exp::e ) |} {\n\
     return `($(pstring(make_id(type_name_of(e)))));\n\
     }\n\
     struct p {int x;} v;\n\
     char *f() { return tn(v); }"
    "struct p { int x; } v;\nchar *f() { return \"struct p\"; }"

let compatibility_guard () =
  (* a macro can reject invocations on semantic grounds *)
  check_error
    "syntax stmt swap {| ( $$exp::a , $$exp::b ) ; |} {\n\
     @id t = gensym(\"t\");\n\
     if (!types_compatible(a, b))\n\
     error(\"swap: incompatible types\", type_name_of(a), type_name_of(b));\n\
     return `{{ $(declare_like(a, t)) $t = $a; $a = $b; $b = $t; }};\n\
     }\n\
     int i;\n\
     char *s;\n\
     void f() { swap(i, s); }"
    "incompatible types";
  check_expands
    "syntax stmt swap {| ( $$exp::a , $$exp::b ) ; |} {\n\
     @id t = gensym(\"t\");\n\
     if (!types_compatible(a, b))\n\
     error(\"swap: incompatible types\");\n\
     return `{{ $(declare_like(a, t)) $t = $a; $a = $b; $b = $t; }};\n\
     }\n\
     int i, j;\n\
     void f() { swap(i, j); }"
    "int i, j;\n\
     void f() { { int t__g1; t__g1 = i; i = j; j = t__g1; } }"

let enum_types () =
  check_expands
    "syntax stmt clone {| ( $$id::v ) ; |} {\n\
     @id c = gensym(v);\n\
     return `{{$(exp_typespec(v)) $c = $v; use($c);}};\n\
     }\n\
     enum color {red, green} tint;\n\
     void f() { clone(tint); }"
    "enum color {red, green} tint;\n\
     void f() { { enum color tint__g1 = tint; use(tint__g1); } }"

let unknown_types () =
  (* querying an undeclared identifier is not an error, but splicing its
     unknown type is *)
  check_error
    "syntax stmt clone {| ( $$id::v ) ; |} {\n\
     return `{{$(exp_typespec(v)) copy = $v;}};\n\
     }\n\
     void f() { clone(mystery); }"
    "cannot be written as a type specifier"

let () =
  Alcotest.run "semantic"
    [ ( "semantic macros",
        [ tc "exp_typespec across scopes" typespec_query;
          tc "dispatch on object types" dispatch_on_type;
          tc "struct member types" struct_members;
          tc "scope sensitivity" scope_sensitivity;
          tc "declare_like for pointer types" declare_like_pointers;
          tc "type_name_of" type_name_strings;
          tc "compatibility guards" compatibility_guard;
          tc "enum types round-trip" enum_types;
          tc "unknown types" unknown_types ] ) ]
