(** Tricky interactions: macros vs typedefs, macros in odd positions,
    templates referring to typedefs, scale smoke tests. *)

open Tutil

let exp_macro_as_statement () =
  (* an expression macro used as an expression statement *)
  check_expands
    "syntax exp bump {| |} { return `(counter++); }\n\
     int counter;\n\
     int f() { bump; bump; return counter; }"
    "int counter;\nint f() { counter++; counter++; return counter; }"

let exp_macro_in_condition_position () =
  check_expands
    "syntax exp limit {| |} { return make_num(10); }\n\
     int f(int x) { while (x < limit) x++; do x--; while (x > limit); \
     return x ? limit : -limit; }"
    "int f(int x) { while (x < 10) x++; do x--; while (x > 10); return x ? \
     10 : -10; }"

let typedefs_in_templates () =
  (* a template may use typedef names from the definition site *)
  check_expands
    "typedef unsigned long word;\n\
     syntax stmt declare_word {| $$id::n ; |} {\n\
     return `{word $n = 0;};\n\
     }\n\
     int f() { declare_word w; return 0; }"
    (* declarations are not statements in C89, so the macro's result
       stays a (one-declaration) block *)
    "typedef unsigned long word;\n\
     int f() { { word w = 0; } return 0; }"

let paper_typedef_limitation () =
  (* the paper, "Dealing with Context Sensitivity": fragments parse
     independently of the context they will appear in, so a template
     using a name that is *not* a typedef at the definition site parses
     it as an ordinary identifier — "db_cursor *cur" becomes a
     multiplication.  We reproduce the limitation faithfully. *)
  let out =
    expand
      "syntax stmt open_it {| ; |} { return `{db_cursor *cur = open();}; }\n\
       int f() { open_it; return 0; }"
  in
  check_contains ~msg:"parsed as multiplication/assignment" (norm out)
    "(db_cursor * cur) = open();";
  (* with the typedef in scope at definition time, it is a declaration *)
  check_expands
    "typedef int db_cursor;\n\
     syntax stmt open_it {| ; |} { return `{db_cursor *cur = open();}; }\n\
     int f() { open_it; return 0; }"
    "typedef int db_cursor;\n\
     int f() { { db_cursor *cur = open(); } return 0; }"

let macro_name_shadows_nothing () =
  (* a macro keyword does not interfere with same-named struct tags or
     members (different namespaces in C) *)
  check_expands
    "syntax exp size {| ( $$exp::e ) |} { return `(($e) * 2); }\n\
     struct box { int size; };\n\
     int f(struct box *b) { return size(b->size); }"
    "struct box { int size; };\n\
     int f(struct box *b) { return b->size * 2; }"

let nested_invocations_in_actuals () =
  check_expands
    "syntax exp twice {| ( $$exp::e ) |} { return `(($e) + ($e)); }\n\
     int x = twice(twice(twice(1)));"
    "int x = ((1 + 1) + (1 + 1)) + ((1 + 1) + (1 + 1));"

let pattern_with_brackets_and_keywords () =
  (* buzz tokens may be keywords and brackets *)
  check_expands
    "metadcl @decl edge_none[];\n\
     syntax decl shape [] {| struct $$id::n [ $$num::sz ] while ; |} {\n\
     return list(`[char $n[$sz];]);\n\
     }\n\
     shape struct buffer [ 128 ] while ;"
    "char buffer[128];"

let template_building_templates () =
  (* a meta function result spliced into another template repeatedly *)
  check_expands
    "@exp wrapn(int n, @exp e) {\n\
     if (n == 0) return e;\n\
     return wrapn(n - 1, `(w($e)));\n\
     }\n\
     syntax exp deep {| ( $$num::n , $$exp::e ) |} {\n\
     return wrapn(num_value(n), e);\n\
     }\n\
     int x = deep(3, seed);"
    "int x = w(w(w(seed)));"

let metadcl_initializer_runs_once () =
  check_expands
    "metadcl int base = 40 + 2;\n\
     syntax exp basis {| |} { return make_num(base); }\n\
     int a = basis;\n\
     int b = basis;"
    "int a = 42;\nint b = 42;"

let scale_smoke () =
  (* a sizeable generated workload expands and stays pure C *)
  let n = 200 in
  let ids = List.init n (fun i -> Printf.sprintf "c%d" i) in
  let src =
    "syntax decl colors [] {| { $$+/, id::ids } ; |} {\n\
     return list(`[enum palette {$ids};]);\n\
     }\n\
     colors {" ^ String.concat ", " ids ^ "};"
  in
  let out = expand src in
  check_contains ~msg:"first" out "c0";
  check_contains ~msg:"last" out (Printf.sprintf "c%d" (n - 1));
  ignore (pprog out)

let deep_nesting_smoke () =
  let d = 60 in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "syntax stmt w {| $$stmt::s |} { return `{pre(); $s; post();}; }\n\
     int f() { ";
  for _ = 1 to d do
    Buffer.add_string b "w { "
  done;
  Buffer.add_string b "core();";
  for _ = 1 to d do
    Buffer.add_string b " }"
  done;
  Buffer.add_string b " return 0; }";
  let out = expand (Buffer.contents b) in
  check_contains ~msg:"innermost survives" out "core();";
  ignore (pprog out)

let engine_reuse_after_error () =
  (* an expansion error leaves the engine usable *)
  let engine = Ms2.Api.create_engine () in
  (match
     Ms2.Api.expand ~source:"bad" engine
       "syntax stmt boom {| |} { error(\"no\"); return `{;}; }\n\
        int f() { boom }"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure");
  match Ms2.Api.expand ~source:"good" engine "int ok_after_error;" with
  | Ok out ->
      Alcotest.(check string) "engine still works"
        (canon "int ok_after_error;") (norm out)
  | Error e -> Alcotest.failf "engine unusable after error: %s" e

let independent_engines () =
  (* two engines interleaved share nothing: same macro name, different
     bodies, independent gensym counters and meta state *)
  let e1 = Ms2.Api.create_engine () and e2 = Ms2.Api.create_engine () in
  let ok e src =
    match Ms2.Api.expand ~source:"t" e src with
    | Ok out -> norm out
    | Error err -> Alcotest.fail err
  in
  ignore (ok e1 "metadcl int n;\nsyntax exp c {| |} { n = n + 1; return make_num(n); }");
  ignore (ok e2 "metadcl int n;\nsyntax exp c {| |} { n = n + 10; return make_num(n); }");
  Alcotest.(check string) "e1 first" (canon "int a = 1;") (ok e1 "int a = c;");
  Alcotest.(check string) "e2 first" (canon "int a = 10;") (ok e2 "int a = c;");
  Alcotest.(check string) "e1 second" (canon "int b = 2;") (ok e1 "int b = c;");
  Alcotest.(check string) "e2 second" (canon "int b = 20;") (ok e2 "int b = c;")

let () =
  Alcotest.run "edge"
    [ ( "edge",
        [ tc "exp macro as statement" exp_macro_as_statement;
          tc "exp macro in conditions" exp_macro_in_condition_position;
          tc "typedefs in templates" typedefs_in_templates;
          tc "the paper's typedef limitation" paper_typedef_limitation;
          tc "macro vs member namespaces" macro_name_shadows_nothing;
          tc "nested invocations in actuals" nested_invocations_in_actuals;
          tc "keyword/bracket buzz tokens" pattern_with_brackets_and_keywords;
          tc "recursive template building" template_building_templates;
          tc "metadcl initializers run once" metadcl_initializer_runs_once;
          tc "scale smoke (200 enumerators)" scale_smoke;
          tc "deep nesting smoke (60 levels)" deep_nesting_smoke;
          tc "engine reuse after errors" engine_reuse_after_error;
          tc "interleaved engines are independent" independent_engines ] ) ]
