(** Template-filling tests: tree-level substitution, list flattening in
    every syntactic list position, and coercions. *)

open Tutil

let encapsulation () =
  (* the paper's A * B example: substitution at the tree level cannot
     change the parse *)
  check_expands
    "syntax exp mul {| ( $$exp::a , $$exp::b ) |} { return `($a * $b); }\n\
     int r = mul(x + y, m + n);"
    "int r = (x + y) * (m + n);";
  (* and the symmetric case: a low-precedence context around the use *)
  check_expands
    "syntax exp inc {| ( $$exp::e ) |} { return `($e + 1); }\n\
     int r = 2 * inc(3);"
    "int r = 2 * (3 + 1);"

let stmt_list_flatten () =
  check_expands
    "syntax stmt seq {| [ $$+stmt::body ] |} {\n\
     return `{begin_tx(); $body; commit_tx();};\n\
     }\n\
     int f() { seq [ a(); b(); c(); ] return 0; }"
    "int f() { { begin_tx(); a(); b(); c(); commit_tx(); } return 0; }"

let stmt_single_positions () =
  (* a list-valued placeholder in an if-branch gets wrapped in a block *)
  check_expands
    "syntax stmt when2 {| ( $$exp::c ) [ $$+stmt::body ] |} {\n\
     return `{if ($c) $body;};\n\
     }\n\
     int f() { when2 (x) [ a(); b(); ] return 0; }"
    "int f() { if (x) { a(); b(); } return 0; }"

let arg_list_flatten () =
  check_expands
    "syntax stmt call_all {| $$id::f ( $$+/, exp::args ) twice ; |} {\n\
     return `{$f($args); $f($args, extra);};\n\
     }\n\
     int g() { call_all h(1, 2) twice; return 0; }"
    "int g() { { h(1, 2); h(1, 2, extra); } return 0; }"

let enum_flatten () =
  check_expands
    "syntax decl colors [] {| $$+/, id::ids ; |} {\n\
     return list(`[enum color {$ids};]);\n\
     }\n\
     colors red, green, blue;"
    "enum color {red, green, blue};"

let init_declarator_flatten () =
  (* the paper's "enum color $ids;" example: an @id[] in init-declarator
     position *)
  check_expands
    "syntax decl declare_all [] {| $$typespec::t : $$+/, id::vars ; |} {\n\
     return list(`[$t $vars;]);\n\
     }\n\
     declare_all int : a, b, c;"
    "int a, b, c;"

let param_splices () =
  check_expands
    "syntax decl fwd [] {| $$id::name ( $$*/, param::ps ) ; |} {\n\
     return list(`[int $name($ps);]);\n\
     }\n\
     fwd handler(int sig, char *info);"
    "int handler(int sig, char *info);"

let typespec_splice () =
  check_expands
    "syntax stmt declare {| $$typespec::t $$id::n = $$exp::e ; |} {\n\
     return `{$t $n = $e;};\n\
     }\n\
     int f() { declare unsigned long x = 3; return 0; }"
    "int f() { { unsigned long x = 3; } return 0; }"

let declarator_splices () =
  check_expands
    "syntax decl defun [] {| $$declarator::d ; |} {\n\
     return list(`[int $d { return 0; }]);\n\
     }\n\
     defun get_count(void);"
    "int get_count() { return 0; }"

let id_in_expr_and_case () =
  check_expands
    "syntax stmt dispatch {| on $$+/, id::tags : $$stmt::s |} {\n\
     return `{switch (tag)\n\
     {$(map((@id t; `{case $t: $s;}), tags))}};\n\
     }\n\
     int f() { dispatch on A, B : handle(); return 0; }"
    "int f() { switch (tag) { case A: handle(); case B: handle(); } \
     return 0; }"

let decl_template_with_body () =
  check_expands
    "syntax decl getter [] {| $$id::field ; |} {\n\
     return list(`[int $(symbolconc(\"get_\", field))(struct obj *o)\n\
     { return o->$field; }]);\n\
     }\n\
     getter size;"
    "int get_size(struct obj *o) { return o->size; }"

let singleton_unwrap () =
  (* `{single statement} denotes the statement, not a compound *)
  check_expands
    "syntax stmt pass {| $$exp::e ; |} { return `{use($e);}; }\n\
     int f() { if (c) pass x; return 0; }"
    "int f() { if (c) use(x); return 0; }"

let wrong_value_shape () =
  (* a typespec placeholder cannot stand in expression position; the
     type system rejects it at definition time *)
  check_error
    "syntax stmt m {| $$typespec::t |} { return `{ f($t); }; }"
    "cannot stand for"

let () =
  Alcotest.run "fill"
    [ ( "fill",
        [ tc "encapsulation (A * B)" encapsulation;
          tc "statement lists flatten" stmt_list_flatten;
          tc "single-statement positions wrap" stmt_single_positions;
          tc "argument lists flatten" arg_list_flatten;
          tc "enumerator lists flatten" enum_flatten;
          tc "init-declarator lists flatten" init_declarator_flatten;
          tc "parameter splices" param_splices;
          tc "typespec splices" typespec_splice;
          tc "declarator splices" declarator_splices;
          tc "ids in case labels" id_in_expr_and_case;
          tc "members named by placeholders" decl_template_with_body;
          tc "singleton statement templates unwrap" singleton_unwrap;
          tc "ill-typed placeholder positions" wrong_value_shape ] ) ]
