(** Lexer unit tests: token recognition, adjacency-sensitive meta tokens,
    literals, comments, locations and error cases. *)

open Ms2_syntax

let toks src =
  Lexer.tokenize src |> Array.to_list
  |> List.filter_map (fun { Token.tok; _ } ->
         match tok with Token.EOF -> None | t -> Some t)

let tok = Alcotest.testable (Fmt.of_to_string Token.to_string) Token.equal

let check_toks name src expected =
  Alcotest.(check (list tok)) name expected (toks src)

let lex_error src =
  match Lexer.tokenize src with
  | exception Ms2_support.Diag.Error d ->
      Alcotest.(check bool) "phase" true (d.phase = Ms2_support.Diag.Lexing)
  | _ -> Alcotest.fail "expected a lexical error"

open Token

let basic () =
  check_toks "idents and ints" "foo bar42 7 0x1f"
    [ IDENT "foo"; IDENT "bar42"; INT_LIT (7, "7"); INT_LIT (31, "0x1f") ];
  check_toks "keywords" "int return sizeof syntax metadcl"
    [ KW Kint; KW Kreturn; KW Ksizeof; KW Ksyntax; KW Kmetadcl ];
  check_toks "suffixed int" "10UL" [ INT_LIT (10, "10UL") ]

let floats () =
  check_toks "simple float" "1.5" [ FLOAT_LIT (1.5, "1.5") ];
  check_toks "exponent" "2e3" [ FLOAT_LIT (2000., "2e3") ];
  check_toks "signed exponent" "1.5e-2" [ FLOAT_LIT (0.015, "1.5e-2") ];
  check_toks "float suffix" "1.0f" [ FLOAT_LIT (1.0, "1.0f") ];
  (* member access on an integer literal is not a float *)
  check_toks "int then dot" "1 .m" [ INT_LIT (1, "1"); DOT; IDENT "m" ];
  check_toks "paren int member" "(1).m"
    [ LPAREN; INT_LIT (1, "1"); RPAREN; DOT; IDENT "m" ];
  (* a float literal re-parses through expressions *)
  let d = Tutil.pdecl "double x = 1.25e2;" in
  Tutil.check_contains ~msg:"printed float"
    (Tutil.print_decl d) "1.25e2"

let operators () =
  check_toks "compound ops" "<<= >>= ... -> ++ -- && || == != <= >="
    [ SHL_ASSIGN; SHR_ASSIGN; ELLIPSIS; ARROW; PLUSPLUS; MINUSMINUS; ANDAND;
      OROR; EQEQ; NE; LE; GE ];
  check_toks "shift vs relational" "a << b < c >> d"
    [ IDENT "a"; SHL; IDENT "b"; LT; IDENT "c"; SHR; IDENT "d" ];
  check_toks "assign ops" "= += -= *= /= %= &= ^= |="
    [ ASSIGN; PLUS_ASSIGN; MINUS_ASSIGN; STAR_ASSIGN; SLASH_ASSIGN;
      PERCENT_ASSIGN; AMP_ASSIGN; CARET_ASSIGN; BAR_ASSIGN ]

let meta_tokens () =
  check_toks "meta braces" "{| |}" [ LMETA; RMETA ];
  check_toks "dollars" "$ $$ $x"
    [ DOLLAR; DOLLARDOLLAR; DOLLAR; IDENT "x" ];
  check_toks "colons" ":: : ::" [ COLONCOLON; COLON; COLONCOLON ];
  check_toks "backquote and at" "`( @stmt"
    [ BACKQUOTE; LPAREN; AT; IDENT "stmt" ];
  (* adjacency: separated characters lex as ordinary C tokens *)
  check_toks "separated braces" "{ | | }"
    [ LBRACE; BAR; BAR; RBRACE ];
  check_toks "bar-brace adjacency" "a|}b"
    [ IDENT "a"; RMETA; IDENT "b" ]

let literals () =
  check_toks "string" "\"hello\"" [ STRING_LIT "hello" ];
  check_toks "string escapes" "\"a\\n\\t\\\"b\\\\\""
    [ STRING_LIT "a\n\t\"b\\" ];
  check_toks "char" "'x'" [ CHAR_LIT 'x' ];
  check_toks "char escape" "'\\n'" [ CHAR_LIT '\n' ];
  check_toks "char quote" "'\\''" [ CHAR_LIT '\'' ]

let comments () =
  check_toks "block comment" "a /* b c */ d" [ IDENT "a"; IDENT "d" ];
  check_toks "line comment" "a // b c\nd" [ IDENT "a"; IDENT "d" ];
  check_toks "comment with stars" "a /* * ** */ b" [ IDENT "a"; IDENT "b" ];
  check_toks "division not comment" "a / b" [ IDENT "a"; SLASH; IDENT "b" ]

let locations () =
  let located = Lexer.tokenize ~source:"t.c" "ab\n  cd" in
  let second = located.(1) in
  Alcotest.(check string) "token" "cd" (Token.to_string second.Token.tok);
  Alcotest.(check int) "line" 2 second.Token.loc.Ms2_support.Loc.start_pos.line;
  Alcotest.(check int) "col" 2 second.Token.loc.Ms2_support.Loc.start_pos.col;
  Alcotest.(check string) "source" "t.c" second.Token.loc.Ms2_support.Loc.source

let eof_marker () =
  let located = Lexer.tokenize "x" in
  Alcotest.(check int) "two tokens" 2 (Array.length located);
  Alcotest.(check bool) "last is eof" true
    (located.(1).Token.tok = Token.EOF)

let errors () =
  lex_error "\"unterminated";
  lex_error "'a";
  lex_error "/* unterminated";
  lex_error "#";
  lex_error "'\\q'"

(* reserved gensym-style names are rejected only when asked *)
let reserved () =
  ignore (Lexer.tokenize "x__g1");
  match Lexer.tokenize ~reject_reserved:true "x__g1" with
  | exception Ms2_support.Diag.Error _ -> ()
  | _ -> Alcotest.fail "reserved identifier accepted"

let () =
  ignore errors;
  Alcotest.run "lexer"
    [ ( "lexer",
        [ Tutil.tc "basic tokens" basic;
          Tutil.tc "float literals" floats;
          Tutil.tc "operators" operators;
          Tutil.tc "meta tokens" meta_tokens;
          Tutil.tc "literals" literals;
          Tutil.tc "comments" comments;
          Tutil.tc "locations" locations;
          Tutil.tc "eof marker" eof_marker;
          Tutil.tc "lexical errors" errors;
          Tutil.tc "reserved generated names" reserved ] ) ]
