(** End-to-end validation with a real C compiler: expand MS² programs to
    C, compile the output with gcc, run the binaries, and check their
    stdout.  This closes the loop on the paper's central claim — macro
    abstraction with *no runtime penalty* means the expansion is just an
    ordinary C program.

    Skipped (trivially passing) when gcc is not available. *)

open Tutil

let gcc_available = Sys.command "gcc --version > /dev/null 2>&1" = 0

let run_c (c_code : string) : string =
  let src = Filename.temp_file "ms2prog" ".c" in
  let exe = Filename.chop_suffix src ".c" ^ ".exe" in
  let out = src ^ ".out" in
  let oc = open_out src in
  output_string oc "#include <stdio.h>\n#include <string.h>\n";
  output_string oc c_code;
  close_out oc;
  let compile =
    Printf.sprintf "gcc -std=c89 -w -o %s %s 2> %s.cc" exe src src
  in
  if Sys.command compile <> 0 then begin
    let errors =
      try
        let ic = open_in (src ^ ".cc") in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with _ -> "?"
    in
    Alcotest.failf "gcc rejected the expansion:\n%s\n--- code ---\n%s" errors
      c_code
  end;
  if Sys.command (Printf.sprintf "%s > %s" exe out) <> 0 then
    Alcotest.fail "compiled program exited nonzero";
  let ic = open_in out in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_runs ?(prelude = false) ?(hygienic = false) name src expected_stdout
    =
  if gcc_available then begin
    let engine = Ms2.Api.create_engine ~prelude ~hygienic () in
    match Ms2.Api.expand ~source:name engine src with
    | Error e -> Alcotest.failf "expansion failed: %s" e
    | Ok c_code ->
        Alcotest.(check string) name expected_stdout (run_c c_code)
  end

let quickstart () =
  check_runs "painting"
    "syntax stmt Painting {| $$stmt::body |} {\n\
     return `{printf(\"begin\\n\"); $body; printf(\"end\\n\");};\n\
     }\n\
     int main() {\n\
     Painting { printf(\"paint\\n\"); }\n\
     return 0;\n\
     }"
    "begin\npaint\nend\n"

let prelude_loops () =
  check_runs ~prelude:true "prelude arithmetic"
    "int main() {\n\
     int i;\n\
     int total = 0;\n\
     for_range (i = 1 to 10) { total += i; }\n\
     printf(\"%d\\n\", total);\n\
     for_range (i = 0 to 10 by 2) { total += 1; }\n\
     printf(\"%d\\n\", total);\n\
     times (4) { total = total * 2; }\n\
     printf(\"%d\\n\", total);\n\
     repeat { total = total - 100; } until (total < 300);\n\
     printf(\"%d\\n\", total);\n\
     unless (total == 0) printf(\"nonzero\\n\");\n\
     return 0;\n\
     }"
    "55\n61\n976\n276\nnonzero\n"

let prelude_swap_assert () =
  check_runs ~prelude:true "swap and assert"
    "int checked;\n\
     void assert_fail(char *what) { printf(\"ASSERT %s\\n\", what); }\n\
     int main() {\n\
     int a = 1;\n\
     int b = 2;\n\
     swap(a, b);\n\
     printf(\"%d %d\\n\", a, b);\n\
     assert_that(a == 2);\n\
     assert_that(a == 3);\n\
     return 0;\n\
     }"
    "2 1\nASSERT a == 3\n"

let enum_io () =
  (* myenum generates top-level decls, so invoke it at top level *)
  check_runs ~prelude:true "myenum printer"
    "myenum fruit {apple, banana, kiwi};\n\
     int getline(char *s, int n) { strcpy(s, \"banana\"); return 0; }\n\
     int main() {\n\
     print_fruit(apple);\n\
     printf(\"\\n\");\n\
     printf(\"%d\\n\", read_fruit() == banana);\n\
     return 0;\n\
     }"
    "apple\n1\n"

let bitflags_run () =
  check_runs ~prelude:true "bitflags"
    "bitflags modes {m_r, m_w, m_x};\n\
     int main() {\n\
     printf(\"%d %d %d %d\\n\", m_r, m_w, m_x, m_r | m_x);\n\
     return 0;\n\
     }"
    "1 2 4 5\n"

let state_machine_run () =
  check_runs "state machine"
    "metadcl @stmt sm_no_stmts[];\n\
     @stmt sm_transition_cases(struct {@id ev; @id target;} ts[])[] {\n\
     if (length(ts) == 0) return sm_no_stmts;\n\
     return cons(`{case $((*ts)->ev): return $((*ts)->target);},\n\
     sm_transition_cases(ts + 1));\n\
     }\n\
     @stmt sm_state_cases(struct {@id st;\n\
     struct {@id ev; @id target;} transitions[];} states[])[] {\n\
     if (length(states) == 0) return sm_no_stmts;\n\
     return cons(\n\
     `{case $((*states)->st):\n\
     switch (event) {$(sm_transition_cases((*states)->transitions))}\n\
     return state;},\n\
     sm_state_cases(states + 1));\n\
     }\n\
     @id sm_names(struct {@id st;\n\
     struct {@id ev; @id target;} transitions[];} states[])[] {\n\
     metadcl @id sm_no_ids[];\n\
     if (length(states) == 0) return sm_no_ids;\n\
     return cons((*states)->st, sm_names(states + 1));\n\
     }\n\
     syntax decl state_machine []\n\
     {| $$id::name {\n\
     $$+.( state $$id::st :\n\
     $$+.( on $$id::ev goto $$id::target ; )::transitions )::states\n\
     } |} {\n\
     return list(\n\
     `[enum $(symbolconc(name, \"_states\")) {$(sm_names(states))};],\n\
     `[int $(symbolconc(name, \"_step\"))(int state, int event)\n\
     { switch (state) {$(sm_state_cases(states))} return state; }]);\n\
     }\n\
     enum events {ev_go, ev_stop};\n\
     state_machine light {\n\
     state red: on ev_go goto green;\n\
     state green: on ev_stop goto red;\n\
     }\n\
     int main() {\n\
     int s = red;\n\
     s = light_step(s, ev_go);\n\
     printf(\"%d\\n\", s == green);\n\
     s = light_step(s, ev_stop);\n\
     printf(\"%d\\n\", s == red);\n\
     s = light_step(s, ev_stop);\n\
     printf(\"%d\\n\", s == red);\n\
     return 0;\n\
     }"
    "1\n1\n1\n"

let hygiene_correctness () =
  (* the capture bug is *observable* without hygiene and gone with it *)
  let src =
    "syntax stmt swap2 {| ( $$exp::a , $$exp::b ) ; |} {\n\
     return `{{int tmp = $a; $a = $b; $b = tmp;}};\n\
     }\n\
     int main() {\n\
     int tmp = 10;\n\
     int other = 20;\n\
     swap2(tmp, other);\n\
     printf(\"%d %d\\n\", tmp, other);\n\
     return 0;\n\
     }"
  in
  (* without hygiene the macro's [tmp] shadows the user's: every write
     lands on the shadow and the swap silently does nothing *)
  check_runs "unhygienic capture observable" src "10 20\n";
  (* with hygiene: the swap actually swaps *)
  check_runs ~hygienic:true "hygiene fixes it" src "20 10\n"

let dynamic_bind_run () =
  check_runs "dynamic_bind"
    "syntax stmt dynamic_bind\n\
     {| ( $$typespec::type $$id::name = $$exp::init ) $$stmt::body |} {\n\
     @id newname = gensym(name);\n\
     return `{{$type $newname = $name;\n\
     $name = $init;\n\
     $body;\n\
     $name = $newname;}};\n\
     }\n\
     int depth = 1;\n\
     void show() { printf(\"%d\\n\", depth); }\n\
     int main() {\n\
     show();\n\
     dynamic_bind (int depth = 99) { show(); }\n\
     show();\n\
     return 0;\n\
     }"
    "1\n99\n1\n"

let () =
  if not gcc_available then prerr_endline "gcc not found: skipping";
  Alcotest.run "gcc"
    [ ( "compile and run expansions",
        [ tc "quickstart" quickstart;
          tc "prelude loops" prelude_loops;
          tc "swap and assert" prelude_swap_assert;
          tc "enum readers/writers" enum_io;
          tc "bitflags" bitflags_run;
          tc "state machine" state_machine_run;
          tc "hygiene observable at run time" hygiene_correctness;
          tc "dynamic_bind" dynamic_bind_run ] ) ]
