(** Tests for the object-level semantic substrate: C types, symbol
    tables, expression typing, and the whole-program checker. *)

open Tutil
module Ctype = Ms2_csem.Ctype
module Senv = Ms2_csem.Senv
module Of_ast = Ms2_csem.Of_ast
module Infer_c = Ms2_csem.Infer_c
module Check = Ms2_csem.Check

(* ------------------------------------------------------------------ *)
(* Ctype algebra                                                       *)
(* ------------------------------------------------------------------ *)

let ctype_basics () =
  Alcotest.(check string) "int" "int" (Ctype.to_string Ctype.int_t);
  Alcotest.(check string) "string" "char *" (Ctype.to_string Ctype.string_t);
  Alcotest.(check bool) "int is integer" true (Ctype.is_integer Ctype.int_t);
  Alcotest.(check bool) "enum is integer" true
    (Ctype.is_integer (Ctype.Enum_t "e"));
  Alcotest.(check bool) "pointer is scalar" true
    (Ctype.is_scalar Ctype.string_t);
  Alcotest.(check bool) "struct is not scalar" false
    (Ctype.is_scalar (Ctype.Struct_t "s"))

let ctype_decay () =
  Alcotest.(check string) "array decays" "int *"
    (Ctype.to_string (Ctype.decay (Ctype.Array (Ctype.int_t, Some 4))));
  Alcotest.(check bool) "function decays to pointer" true
    (match Ctype.decay (Ctype.Func (None, Ctype.int_t)) with
    | Ctype.Pointer (Ctype.Func _) -> true
    | _ -> false)

let ctype_compat () =
  let open Ctype in
  Alcotest.(check bool) "int <- char" true
    (compatible ~dst:int_t ~src:char_t);
  Alcotest.(check bool) "int <- enum" true
    (compatible ~dst:int_t ~src:(Enum_t "e"));
  Alcotest.(check bool) "char* <- int" false
    (compatible ~dst:string_t ~src:int_t);
  Alcotest.(check bool) "void* <- char*" true
    (compatible ~dst:(Pointer Void) ~src:string_t);
  Alcotest.(check bool) "char* <- array of char" true
    (compatible ~dst:string_t ~src:(Array (char_t, Some 10)));
  Alcotest.(check bool) "unknown is compatible" true
    (compatible ~dst:(Struct_t "s") ~src:Unknown);
  Alcotest.(check bool) "distinct structs incompatible" false
    (compatible ~dst:(Struct_t "a") ~src:(Struct_t "b"))

(* ------------------------------------------------------------------ *)
(* Expression typing in a program context                              *)
(* ------------------------------------------------------------------ *)

(* build an env from a program prefix, then type an expression *)
let type_in (prefix : string) (expr : string) : string =
  let senv = Senv.create () in
  List.iter (Of_ast.bind_decl senv) (pprog prefix);
  Ctype.to_string (Infer_c.type_of senv (pexpr expr))

let typing () =
  let prefix =
    "int i; char *s; double d; int a[10]; char *argv[4];\n\
     struct point {int x; int y;} pt;\n\
     struct point *pp;\n\
     enum color {red, green} c;\n\
     typedef unsigned long size_t;\n\
     size_t n;\n\
     int f(int, char *);\n\
     int (*handler)(int);"
  in
  let check name e ty = Alcotest.(check string) name ty (type_in prefix e) in
  check "var" "i" "int";
  check "string var" "s" "char *";
  check "literal" "42" "int";
  check "string literal" "\"x\"" "char *";
  check "index" "a[2]" "int";
  check "index pointer array" "argv[0]" "char *";
  check "member" "pt.x" "int";
  check "arrow" "pp->y" "int";
  check "enum constant" "red" "enum color";
  check "enum var" "c" "enum color";
  check "typedef" "n" "unsigned long";
  check "call" "f(i, s)" "int";
  check "call through pointer" "handler(3)" "int";
  check "addr" "&i" "int *";
  check "deref" "*s" "char";
  check "arith joins" "i + c" "int";
  check "float dominates" "i + d" "double";
  check "pointer plus int" "s + 3" "char *";
  check "pointer difference" "s - s" "int";
  check "comparison" "i < d" "int";
  check "assignment" "i = 3" "int";
  check "cast" "(char *)i" "char *";
  check "sizeof" "sizeof(i)" "unsigned long";
  check "conditional" "i ? d : i" "double";
  check "unknown identifier" "mystery" "?";
  check "unknown propagates" "mystery(i) + mystery2" "?"

let scoping () =
  let senv = Senv.create () in
  List.iter (Of_ast.bind_decl senv) (pprog "int x;");
  Alcotest.(check string) "global" "int"
    (Ctype.to_string (Infer_c.type_of senv (pexpr "x")));
  Senv.push_scope senv;
  List.iter (Of_ast.bind_decl senv) (pprog "char *x;");
  Alcotest.(check string) "shadowed" "char *"
    (Ctype.to_string (Infer_c.type_of senv (pexpr "x")));
  Senv.pop_scope senv;
  Alcotest.(check string) "restored" "int"
    (Ctype.to_string (Infer_c.type_of senv (pexpr "x")))

(* ------------------------------------------------------------------ *)
(* The whole-program checker                                           *)
(* ------------------------------------------------------------------ *)

let findings src = Check.check_program (pprog src)

let clean src =
  match findings src with
  | [] -> ()
  | fs ->
      Alcotest.failf "expected no findings, got: %s"
        (String.concat "; " (List.map Check.finding_to_string fs))

let flags src sub =
  match findings src with
  | [] -> Alcotest.failf "expected a finding mentioning %S" sub
  | fs ->
      let all = String.concat "; " (List.map Check.finding_to_string fs) in
      check_contains ~msg:"finding" all sub

let checker_accepts () =
  clean "int add(int a, int b) { return a + b; }";
  clean
    "struct point {int x; int y;};\n\
     int get_x(struct point *p) { return p->x; }";
  clean "int f(void) { int i; for (i = 0; i < 10; i++) ; return i; }";
  clean "char *id(char *s) { return s; }";
  clean "int g(); int h() { return g(); }" (* unprototyped: no arg checks *);
  clean "enum e {a, b}; int f(enum e x) { return x == a; }";
  (* unknown identifiers silence checks *)
  clean "int f() { return undeclared(1, 2, 3); }"

let checker_rejects () =
  flags "int f(int a) { return a; }\nint g() { return f(1, 2); }"
    "2 arguments where 1";
  flags "char *s; int f() { s = 42; return 0; }" "char *";
  flags "int x; int f() { return x(); }" "not a function";
  flags "struct p {int x;}; struct p v; int f() { return v->x; }" "->";
  flags "int f() { int i; return *i; }" "not a pointer";
  flags "struct p {int x;}; struct p v; int f() { if (v) return 1; return \
         0; }"
    "non-scalar";
  flags "char *f() { return 42; }" "returning a value of type int";
  flags "int f(char *s) { return s; }" "returning a value of type char *"

let checker_on_expansion () =
  (* macro output is checked like any other code: a macro that produces
     an ill-typed assignment for a struct operand is caught *)
  (match
     Ms2.Api.expand_checked
       "syntax stmt zero {| ( $$exp::e ) ; |} { return `{$e = 0;}; }\n\
        struct p {int x;};\n\
        struct p v;\n\
        int f() { zero(v); return 0; }"
   with
  | Ok (_, fs) ->
      check_contains ~msg:"finding"
        (String.concat "; " fs)
        "struct p"
  | Error e -> Alcotest.fail e);
  (* and clean macro output produces no findings *)
  match
    Ms2.Api.expand_checked
      "syntax stmt zero {| ( $$exp::e ) ; |} { return `{$e = 0;}; }\n\
       int v;\n\
       int f() { zero(v); return v; }"
  with
  | Ok (_, []) -> ()
  | Ok (_, fs) -> Alcotest.failf "unexpected: %s" (String.concat "; " fs)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "csem"
    [ ( "csem",
        [ tc "ctype basics" ctype_basics;
          tc "decay" ctype_decay;
          tc "compatibility" ctype_compat;
          tc "expression typing" typing;
          tc "scoping" scoping;
          tc "checker accepts valid programs" checker_accepts;
          tc "checker rejects type errors" checker_rejects;
          tc "checker over expansions" checker_on_expansion ] ) ]
