(** Automatic hygiene (the paper's future-work direction, §5): with a
    hygienic engine, block locals introduced by a template's own text
    are renamed automatically, so the macro writer does not need to call
    gensym at all. *)

open Tutil

let expand_hygienic src =
  let engine = Ms2.Engine.create ~hygienic:true () in
  match Ms2.Api.expand ~source:"t" engine src with
  | Ok out -> out
  | Error e -> Alcotest.failf "hygienic expansion failed: %s" e

(* The classic capture bug: a swap macro whose temporary is named [tmp],
   used on a user variable that is itself named [tmp]. *)
let swap_src =
  "syntax stmt swap {| ( $$exp::a , $$exp::b ) ; |} {\n\
   return `{{int tmp = $a; $a = $b; $b = tmp;}};\n\
   }\n\
   int f() {\n\
   int tmp = 1;\n\
   int other = 2;\n\
   swap(tmp, other);\n\
   return tmp;\n\
   }"

let unhygienic_captures () =
  (* without hygiene the expansion is silently wrong: the user's [tmp]
     is captured by the macro's [tmp] *)
  let out = norm (expand swap_src) in
  check_contains ~msg:"macro temp collides" out "int tmp = tmp;"

let hygienic_renames () =
  let out = norm (expand_hygienic swap_src) in
  (* the macro's temporary got a fresh name... *)
  check_contains ~msg:"fresh temp declared" out "int tmp__g";
  (* ...all its template uses were renamed consistently... *)
  check_contains ~msg:"restore uses fresh temp" out "other = tmp__g";
  (* ...and the user's own identifiers were left alone *)
  check_contains ~msg:"user args untouched" out "tmp = other;"

let catch_scenario () =
  (* the paper's exception system: [catch]'s internal [result] must not
     capture a user variable named [result] *)
  let src =
    "syntax stmt catch {| $$exp::tag $$stmt::handler $$stmt::body |} {\n\
     return `{{int result;\n\
     result = setjump(buf);\n\
     if (result == 0) $body; else { if (result == $tag) $handler; }}};\n\
     }\n\
     int f() {\n\
     int result = 42;\n\
     catch bad_tag { fix(result); } { result = risky(result); }\n\
     return result;\n\
     }"
  in
  let out = norm (expand_hygienic src) in
  check_contains ~msg:"internal result renamed" out "int result__g";
  check_contains ~msg:"user body untouched" out "result = risky(result);";
  check_contains ~msg:"handler untouched" out "fix(result);"

let free_identifiers_untouched () =
  (* identifiers the template uses but does not declare refer to the
     surrounding program and must not be renamed *)
  let out =
    norm
      (expand_hygienic
         "syntax stmt log_it {| $$exp::e ; |} {\n\
          return `{{int v = $e; logger(v, log_level);}};\n\
          }\n\
          int f() { log_it compute(); return 0; }")
  in
  check_contains ~msg:"declared local renamed" out "int v__g";
  check_contains ~msg:"free identifier kept" out "log_level"

let intentional_capture_survives () =
  (* a macro that *wants* to bind a user-visible name declares it
     through a placeholder; hygiene leaves splice-named declarators
     alone *)
  let out =
    norm
      (expand_hygienic
         "syntax stmt let_var {| $$id::name = $$exp::e in $$stmt::body |} {\n\
          return `{{int $name = $e; $body;}};\n\
          }\n\
          int f() { let_var x = 3 in { use(x); } return 0; }")
  in
  check_contains ~msg:"binder keeps its user name" out "int x = 3;";
  check_contains ~msg:"body sees it" out "use(x);"

let nested_blocks () =
  (* each template block gets its own fresh names *)
  let out =
    norm
      (expand_hygienic
         "syntax stmt twice {| $$stmt::s |} {\n\
          return `{{int i = 0; { int i = 1; inner(i); } outer(i); $s;}};\n\
          }\n\
          int f() { twice { user(); } return 0; }")
  in
  check_contains ~msg:"outer renamed" out "int i__g";
  (* inner block's [i] gets a different fresh name than the outer one *)
  let count_decls needle s =
    let n = ref 0 and i = ref 0 in
    let len = String.length needle in
    while !i + len <= String.length s do
      if String.sub s !i len = needle then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "two distinct declarations" 2
    (count_decls "int i__g" out)

let gensym_still_works () =
  (* explicit gensym and automatic hygiene coexist *)
  let out =
    norm
      (expand_hygienic
         "syntax stmt m {| $$exp::e |} {\n\
          @id t = gensym(\"explicit\");\n\
          return `{{int $t = $e; int implicit = $t + 1; use(implicit);}};\n\
          }\n\
          int f() { m 5; return 0; }")
  in
  check_contains ~msg:"explicit gensym name" out "int explicit__g";
  check_contains ~msg:"implicit renamed too" out "int implicit__g"

let off_by_default () =
  let out = norm (expand swap_src) in
  check_contains ~msg:"default engine does not rename" out "int tmp = tmp;"

let () =
  Alcotest.run "hygiene2"
    [ ( "automatic hygiene",
        [ tc "capture without hygiene (baseline)" unhygienic_captures;
          tc "template locals renamed" hygienic_renames;
          tc "catch scenario" catch_scenario;
          tc "free identifiers untouched" free_identifiers_untouched;
          tc "intentional capture via placeholders" intentional_capture_survives;
          tc "nested blocks rename independently" nested_blocks;
          tc "explicit gensym coexists" gensym_still_works;
          tc "off by default" off_by_default ] ) ]
