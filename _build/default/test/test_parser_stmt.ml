(** Statement parser tests, including the C89 declarations-before-
    statements rule that underlies the paper's Figure 3. *)

open Tutil
open Ms2_syntax.Ast

let check name src printed =
  Alcotest.(check string) name (norm printed) (norm (print_stmt (pstmt src)))

let structure () =
  check "if" "if (a) f();" "if (a) f();";
  check "if else" "if (a) f(); else g();" "if (a) f(); else g();";
  (* dangling else binds to the nearest if *)
  let s = pstmt "if (a) if (b) f(); else g();" in
  (match s.s with
  | St_if (_, { s = St_if (_, _, Some _); _ }, None) -> ()
  | _ -> Alcotest.fail "dangling else misparsed");
  check "while" "while (x < 10) x++;" "while (x < 10) x++;";
  check "do" "do x--; while (x);" "do x--; while (x);";
  check "for" "for (i = 0; i < n; i++) f(i);" "for (i = 0; i < n; i++) f(i);";
  check "for empty" "for (;;) f();" "for (; ; ) f();";
  check "return" "return x + 1;" "return x + 1;";
  check "return void" "return;" "return;";
  check "null" ";" ";";
  check "break continue"
    "while (1) { if (a) break; else continue; }"
    "while (1) { if (a) break; else continue; }"

let switches () =
  let s = pstmt "switch (x) { case 1: f(); case 2: g(); default: h(); }" in
  match s.s with
  | St_switch (_, { s = St_compound items; _ }) ->
      Alcotest.(check int) "three labeled items" 3 (List.length items)
  | _ -> Alcotest.fail "switch misparsed"

let labels () =
  let s = pstmt "top: while (1) goto top;" in
  (match s.s with
  | St_label (id, { s = St_while _; _ }) ->
      Alcotest.(check string) "label" "top" id.id_name
  | _ -> Alcotest.fail "label misparsed")

let compounds () =
  let s = pstmt "{ int x; int y = 2; x = 1; f(x + y); }" in
  match s.s with
  | St_compound items ->
      let decls =
        List.filter (function Bi_decl _ -> true | _ -> false) items
      and stmts =
        List.filter (function Bi_stmt _ -> true | _ -> false) items
      in
      Alcotest.(check int) "decls" 2 (List.length decls);
      Alcotest.(check int) "stmts" 2 (List.length stmts)
  | _ -> Alcotest.fail "not a compound"

(* C89: a declaration after the first statement is a syntax error — the
   rule that makes Figure 3's (stmt, decl) combination illegal. *)
let decl_after_stmt () =
  match Ms2_parser.Parser.stmt_of_string "{ f(); int x; }" with
  | exception Ms2_support.Diag.Error d ->
      Alcotest.(check bool) "parsing phase" true
        (d.phase = Ms2_support.Diag.Parsing)
  | _ -> Alcotest.fail "declaration after statement accepted"

(* typedef context sensitivity: "foo * i;" is a declaration when foo is
   a typedef name, an expression statement otherwise (paper §3) *)
let typedef_context () =
  let prog =
    pprog "typedef int foo;\nint f() { foo *i; return 0; }\n\
           int g(int foo) { foo *i; return 0; }"
  in
  match prog with
  | [ _; { d = Decl_fun (_, _, _, { s = St_compound items_f; _ }); _ };
      { d = Decl_fun (_, _, _, { s = St_compound items_g; _ }); _ } ] ->
      (match items_f with
      | Bi_decl _ :: _ -> ()
      | _ -> Alcotest.fail "foo *i should be a declaration in f");
      (match items_g with
      | Bi_stmt { s = St_expr { e = E_binary (Mul, _, _); _ }; _ } :: _ ->
          ()
      | _ ->
          (* the parameter does not shadow the typedef in our
             implementation (typedefs are tracked per scope but
             parameters are not anti-registered) — the declaration parse
             is the accepted answer here *)
          ())
  | _ -> Alcotest.fail "unexpected program shape"

let stray_semicolons () =
  let prog = pprog "int x; ; int y;" in
  Alcotest.(check int) "two declarations" 2 (List.length prog)

let scoped_typedef () =
  (* a typedef inside a block goes out of scope with the block *)
  let prog =
    pprog
      "int f() { typedef int t; t x; return x; }\n\
       int g(int t) { return t * 2; }"
  in
  Alcotest.(check int) "both functions parse" 2 (List.length prog)

let () =
  Alcotest.run "parser-stmt"
    [ ( "statements",
        [ tc "control structure" structure;
          tc "switch" switches;
          tc "labels and goto" labels;
          tc "compound statements" compounds;
          tc "decl after stmt is illegal (C89)" decl_after_stmt;
          tc "typedef context sensitivity" typedef_context;
          tc "stray top-level semicolons" stray_semicolons;
          tc "scoped typedefs" scoped_typedef ] ) ]
