(** Hygiene by generated names: gensym'd identifiers cannot collide with
    user identifiers, because the marker they embed is rejected by the
    user-program lexer. *)

open Tutil
module Gensym = Ms2_support.Gensym

let freshness () =
  let g = Gensym.create () in
  let names = List.init 100 (fun _ -> Gensym.fresh g "t") in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "100 distinct names" 100 (List.length sorted);
  Alcotest.(check int) "count" 100 (Gensym.count g)

let reserved_marker () =
  let g = Gensym.create () in
  List.iter
    (fun base ->
      let n = Gensym.fresh g base in
      Alcotest.(check bool) (n ^ " is reserved") true (Gensym.is_reserved n))
    [ "t"; "printlength"; "x_y"; "" ];
  Alcotest.(check bool) "plain name not reserved" false
    (Gensym.is_reserved "printlength");
  Alcotest.(check bool) "marker without digits not reserved" false
    (Gensym.is_reserved "foo__g");
  Alcotest.(check bool) "marker with digit reserved" true
    (Gensym.is_reserved "foo__g7bar")

let no_capture () =
  (* the dynamic_bind scenario: the user's own variable named like the
     temporary cannot exist, so the expansion cannot capture *)
  let out =
    expand
      "syntax stmt save_around {| $$id::v $$stmt::body |} {\n\
       @id tmp = gensym(v);\n\
       return `{{int $tmp = $v; $body; $v = $tmp;}};\n\
       }\n\
       int f() { int x = 1; save_around x { x = 2; } return x; }"
  in
  check_contains ~msg:"temp used" (norm out) "int x__g";
  (* two invocations get distinct temporaries *)
  let out2 =
    expand
      "syntax stmt save_around {| $$id::v $$stmt::body |} {\n\
       @id tmp = gensym(v);\n\
       return `{{int $tmp = $v; $body; $v = $tmp;}};\n\
       }\n\
       int f() { int x = 1;\n\
       save_around x { save_around x { x = 2; } }\n\
       return x; }"
  in
  check_contains ~msg:"first temp" (norm out2) "x__g1";
  check_contains ~msg:"second temp" (norm out2) "x__g2"

let user_cannot_forge () =
  (* a user program containing a reserved name is rejected up front, at
     lexing time *)
  match
    Ms2_parser.State.of_string ~reject_reserved:true "int x__g1 = 0;"
  with
  | exception Ms2_support.Diag.Error d ->
      check_contains ~msg:"reserved" (Ms2_support.Diag.to_string d)
        "reserved"
  | _ -> Alcotest.fail "reserved name accepted"

let gensym_in_meta_functions () =
  (* each call to a meta function gets fresh names from the same engine
     counter *)
  let out =
    expand
      "@stmt with_tmp(@exp e) {\n\
       @id t = gensym(\"v\");\n\
       return `{{int $t = $e; use($t);}};\n\
       }\n\
       syntax stmt tmp2 {| $$exp::a $$exp::b ; |} {\n\
       return `{ $(with_tmp(a)) $(with_tmp(b)) };\n\
       }\n\
       int f() { tmp2 1 2; return 0; }"
  in
  check_contains ~msg:"first" (norm out) "v__g1";
  check_contains ~msg:"second" (norm out) "v__g2"

let () =
  Alcotest.run "hygiene"
    [ ( "hygiene",
        [ tc "gensym freshness" freshness;
          tc "reserved marker" reserved_marker;
          tc "no capture in expansions" no_capture;
          tc "users cannot forge generated names" user_cannot_forge;
          tc "fresh names in meta functions" gensym_in_meta_functions ] ) ]
