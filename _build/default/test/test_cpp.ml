(** Tests for the token-substitution baseline (the paper's comparison
    point), including the failure modes that motivate syntax macros. *)

open Tutil
module Cpp = Ms2_cpp.Cpp

let expand_str defs src =
  let cpp = Cpp.create () in
  List.iter
    (fun (name, params, body) ->
      Cpp.define cpp name ~params (Cpp.tokenize body))
    defs;
  Cpp.expand_string cpp src

let object_macros () =
  Alcotest.(check string) "simple" "3 + 4"
    (expand_str [ ("N", None, "3") ] "N + 4");
  Alcotest.(check string) "multi-token" "( 1 + 2 ) * x"
    (expand_str [ ("PAIR", None, "(1 + 2)") ] "PAIR * x");
  Alcotest.(check string) "chained" "5"
    (expand_str [ ("A", None, "B"); ("B", None, "5") ] "A")

let function_macros () =
  Alcotest.(check string) "substitution" "x + x"
    (expand_str [ ("DOUBLE", Some [ "a" ], "a + a") ] "DOUBLE(x)");
  Alcotest.(check string) "two params" "x * y + 1"
    (expand_str [ ("MA", Some [ "a"; "b" ], "a * b + 1") ] "MA(x, y)");
  Alcotest.(check string) "nested call args" "f ( 1 , 2 ) + g ( 3 )"
    (expand_str
       [ ("ADD", Some [ "a"; "b" ], "a + b") ]
       "ADD(f(1, 2), g(3))");
  Alcotest.(check string) "name without parens left alone" "DOUBLE ;"
    (expand_str [ ("DOUBLE", Some [ "a" ], "a + a") ] "DOUBLE;")

let encapsulation_failure () =
  (* the paper's motivating bug, reproduced on purpose *)
  Alcotest.(check string) "A * B mis-parenthesizes" "x + y * m + n"
    (expand_str [ ("MUL", Some [ "A"; "B" ], "A * B") ] "MUL(x + y, m + n)");
  (* the standard CPP workaround: parenthesize everything by hand *)
  Alcotest.(check string) "manual parens fix it"
    "( x + y ) * ( m + n )"
    (expand_str
       [ ("MUL", Some [ "A"; "B" ], "(A) * (B)") ]
       "MUL(x + y, m + n)")

let double_evaluation () =
  (* token substitution duplicates argument tokens — the other classic
     CPP hazard (MS² macros can decide with simple_expression) *)
  Alcotest.(check string) "side effect duplicated" "i ++ * i ++"
    (expand_str [ ("SQ", Some [ "a" ], "a * a") ] "SQ(i++)")

let self_reference_guard () =
  Alcotest.(check string) "self-reference stops" "FOO + 1"
    (expand_str [ ("FOO", None, "FOO + 1") ] "FOO");
  Alcotest.(check string) "mutual recursion stops" "A + 1 + 1"
    (expand_str
       [ ("A", None, "B + 1"); ("B", None, "A + 1") ]
       "A")

let recursive_expansion_in_args () =
  Alcotest.(check string) "args pre-expanded" "2 + 2"
    (expand_str
       [ ("TWO", None, "2"); ("ADD", Some [ "a"; "b" ], "a + b") ]
       "ADD(TWO, TWO)")

let errors () =
  let cpp = Cpp.create () in
  Cpp.define_function cpp "F" [ "a"; "b" ] (Cpp.tokenize "a + b");
  (match Cpp.expand_string cpp "F(1)" with
  | exception Ms2_support.Diag.Error d ->
      check_contains ~msg:"arity" (Ms2_support.Diag.to_string d) "arguments"
  | s -> Alcotest.failf "accepted arity mismatch: %s" s);
  match Cpp.expand_string cpp "F(1, 2" with
  | exception Ms2_support.Diag.Error d ->
      check_contains ~msg:"unterminated" (Ms2_support.Diag.to_string d)
        "unterminated"
  | s -> Alcotest.failf "accepted unterminated args: %s" s

(* ------------------------------------------------------------------ *)
(* The character-level baseline (Figure 1's leftmost column)           *)
(* ------------------------------------------------------------------ *)

module Charsub = Ms2_cpp.Charsub

let char_level_basics () =
  let c = Charsub.create () in
  Charsub.define c "N" "16";
  Alcotest.(check string) "substitutes" "int x = 16;"
    (Charsub.expand_string c "int x = N;")

let char_level_corruption () =
  (* blind character substitution corrupts identifiers and strings —
     why macro processors moved to tokens, then to syntax *)
  let c = Charsub.create () in
  Charsub.define c "RE" "x";
  Alcotest.(check string) "identifier corrupted" "int COx = 1;"
    (Charsub.expand_string c "int CORE = 1;");
  let c2 = Charsub.create () in
  Charsub.define c2 "max" "MAX_VALUE";
  Alcotest.(check string) "string corrupted"
    "puts(\"MAX_VALUE size\");"
    (Charsub.expand_string c2 "puts(\"max size\");")

let char_level_rescan () =
  let c = Charsub.create () in
  Charsub.define c "A" "B1";
  Charsub.define c "B" "C";
  Alcotest.(check string) "rescans output" "C11"
    (Charsub.expand_string c "A1");
  (* self-reference guarded *)
  let c2 = Charsub.create () in
  Charsub.define c2 "X" "X+Y";
  Alcotest.(check string) "no infinite loop" "X+Y" (Charsub.expand_string c2 "X")

let char_level_explicit_calls () =
  let c = Charsub.create () in
  Charsub.define c "RE" "x";
  Alcotest.(check string) "explicit calls leave words alone"
    "int CORE = x;"
    (Charsub.expand_calls c "int CORE = $RE$;");
  Alcotest.(check string) "unknown names kept" "$nope$"
    (Charsub.expand_calls c "$nope$")

let () =
  Alcotest.run "cpp"
    [ ( "cpp",
        [ tc "object macros" object_macros;
          tc "function macros" function_macros;
          tc "encapsulation failure (paper's example)" encapsulation_failure;
          tc "double evaluation hazard" double_evaluation;
          tc "self-reference guard" self_reference_guard;
          tc "arguments pre-expanded" recursive_expansion_in_args;
          tc "errors" errors;
          tc "character-level substitution" char_level_basics;
          tc "character-level corruption" char_level_corruption;
          tc "character-level rescanning" char_level_rescan;
          tc "GPM-style explicit calls" char_level_explicit_calls ] ) ]
