(** Pretty-printer tests: fixed-point property on concrete cases, strict
    mode (meta-residue detection), declarator printing. *)

open Tutil

(* parse → print → parse → print must be a fixed point *)
let fixed_point_cases =
  [ "int x = (a + b) * (c + d);";
    "int f(int a, char *b) { return a ? *b : 0; }";
    "int g() { for (i = 0; i < 10; i++) if (a[i] > m) m = a[i]; return m; }";
    "char *(*handler)(int, char **);";
    "struct s { int x; struct s *next; };";
    "enum e {a = 1, b, c = a + 5};";
    "int h() { do { x <<= 1, y++; } while (x < (1 << 20)); return x; }";
    "int k() { switch (c) { case 'a': return 1; default: break; } return 0; }";
    "typedef int (*cb)(void); cb table[10];";
    "int m() { return sizeof(struct s) + sizeof(x); }";
    "int n() { lab: if (--x) goto lab; return x; }" ]

let fixed_point () =
  List.iter
    (fun src ->
      let once = canon src in
      let twice = canon once in
      Alcotest.(check string) src once twice)
    fixed_point_cases

let precedence_parens () =
  let cases =
    [ ("(a + b) * c", "(a + b) * c");
      ("a + b * c", "a + b * c");
      ("-(a + b)", "-(a + b)");
      ("*(p + 1)", "*(p + 1)");
      ("(a = b) + 1", "(a = b) + 1");
      ("a == (b & c)", "a == (b & c)");
      ("(a, b)", "a, b");
      ("f((a, b), c)", "f((a, b), c)") ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string) src expected (print_expr (pexpr src)))
    cases

let strict_rejects_meta () =
  let prog =
    pprog "syntax stmt m {| $$stmt::s |} { return s; }\nint f() { m {x;} }"
  in
  match
    Ms2_syntax.Pretty.program_to_string ~mode:Ms2_syntax.Pretty.strict prog
  with
  | exception Ms2_syntax.Pretty.Meta_residue what ->
      check_contains ~msg:"residue names the construct" what "macro"
  | s -> Alcotest.failf "strict printing accepted meta residue: %s" s

let relaxed_prints_meta () =
  let prog =
    pprog "syntax stmt m {| $$stmt::s |} { return `{ $s; f(); }; }"
  in
  let out = Ms2_syntax.Pretty.program_to_string prog in
  check_contains ~msg:"macro header" out "syntax";
  check_contains ~msg:"placeholder" out "$s"

let declarators_roundtrip () =
  (* inside-out declarator syntax must survive a round trip *)
  List.iter
    (fun src ->
      Alcotest.(check string) src (canon src) (canon (canon src |> fun s -> s)))
    [ "int (*f(int))(char);" (* function returning function pointer *);
      "int (*a[3])(void);" (* array of function pointers *);
      "char *(*(*p)[4])(int);" ]

let escapes () =
  Alcotest.(check string) "string escape survives round trip"
    (canon {|char *s = "a\n\"b\"\\";|})
    (canon (canon {|char *s = "a\n\"b\"\\";|}))

let () =
  Alcotest.run "pretty"
    [ ( "pretty",
        [ tc "print/parse fixed point" fixed_point;
          tc "minimal parenthesization" precedence_parens;
          tc "strict mode rejects meta residue" strict_rejects_meta;
          tc "relaxed mode prints meta constructs" relaxed_prints_meta;
          tc "complex declarators" declarators_roundtrip;
          tc "string escapes" escapes ] ) ]
