(** Tests for the pattern machinery: FIRST sets and the one-token-
    lookahead determinism rule the paper requires of macro patterns. *)

open Tutil
open Ms2_syntax
open Ms2_syntax.Ast
module Sort = Ms2_mtype.Sort
module Firstset = Ms2_pattern.Firstset
module Determinism = Ms2_pattern.Determinism

let first_sets () =
  let starts sort tok = Firstset.sort_starts_with sort tok in
  Alcotest.(check bool) "id starts with ident" true
    (starts Sort.Id (Token.IDENT "x"));
  Alcotest.(check bool) "id not with int" false
    (starts Sort.Id (Token.INT_LIT (1, "1")));
  Alcotest.(check bool) "exp with int" true
    (starts Sort.Exp (Token.INT_LIT (1, "1")));
  Alcotest.(check bool) "exp with lparen" true (starts Sort.Exp Token.LPAREN);
  Alcotest.(check bool) "exp not with rbrace" false
    (starts Sort.Exp Token.RBRACE);
  Alcotest.(check bool) "stmt with lbrace" true (starts Sort.Stmt Token.LBRACE);
  Alcotest.(check bool) "stmt with if" true
    (starts Sort.Stmt (Token.KW Token.Kif));
  Alcotest.(check bool) "decl with int kw" true
    (starts Sort.Decl (Token.KW Token.Kint));
  Alcotest.(check bool) "decl with at" true (starts Sort.Decl Token.AT);
  Alcotest.(check bool) "declarator with star" true
    (starts Sort.Declarator Token.STAR);
  (* placeholders can begin any phrase inside templates *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Sort.keyword s ^ " with $")
        true (starts s Token.DOLLAR))
    Sort.all

let overlap () =
  Alcotest.(check bool) "exact ident overlaps ident class" true
    (Firstset.overlap (Firstset.Exact (Token.IDENT "when")) Firstset.Any_ident);
  Alcotest.(check bool) "distinct exacts" false
    (Firstset.overlap (Firstset.Exact Token.SEMI) (Firstset.Exact Token.COMMA))

(* build patterns directly *)
let binder spec name =
  Pe_binder { b_spec = spec; b_name = Ast.ident name }

let ok pat = Determinism.check_pattern ~loc:Ms2_support.Loc.dummy pat

let bad pat sub =
  match Determinism.check_pattern ~loc:Ms2_support.Loc.dummy pat with
  | exception Ms2_support.Diag.Error d ->
      Alcotest.(check bool) "pattern-check phase" true
        (d.phase = Ms2_support.Diag.Pattern_check);
      check_contains ~msg:"message" (Ms2_support.Diag.to_string d) sub
  | () -> Alcotest.fail "non-deterministic pattern accepted"

let deterministic_patterns () =
  (* separated repetition followed by a distinct token *)
  ok
    [ binder (Ps_plus (Some Token.COMMA, Ps_sort Sort.Id)) "ids";
      Pe_token Token.SEMI ];
  (* unseparated statement repetition delimited by a bracket *)
  ok
    [ Pe_token Token.LBRACKET;
      binder (Ps_star (None, Ps_sort Sort.Stmt)) "body";
      Pe_token Token.RBRACKET ];
  (* optional with deciding token distinct from what follows *)
  ok
    [ binder (Ps_opt (Some (Token.IDENT "by"), Ps_sort Sort.Exp)) "step";
      Pe_token Token.RPAREN ];
  (* greedy repetition at the end of the pattern is fine *)
  ok [ binder (Ps_plus (None, Ps_sort Sort.Stmt)) "body" ]

let nondeterministic_patterns () =
  (* an expression can follow an expression repetition: ambiguous *)
  bad
    [ binder (Ps_star (None, Ps_sort Sort.Exp)) "xs";
      binder (Ps_sort Sort.Exp) "y" ]
    "one token";
  (* the separator can begin an element: "," is not a problem for ids,
     but an ident separator is *)
  bad
    [ binder (Ps_plus (Some (Token.IDENT "x"), Ps_sort Sort.Id)) "ids" ]
    "can begin an element";
  (* the optional's deciding token also follows it *)
  bad
    [ binder (Ps_opt (Some Token.SEMI, Ps_sort Sort.Exp)) "e";
      Pe_token Token.SEMI ]
    "also follow";
  (* optional element whose FIRST collides with what follows *)
  bad
    [ binder (Ps_opt (None, Ps_sort Sort.Exp)) "e";
      binder (Ps_sort Sort.Num) "n" ]
    "one token";
  (* separator is also a legal follower *)
  bad
    [ binder (Ps_plus (Some Token.COMMA, Ps_sort Sort.Id)) "ids";
      Pe_token Token.COMMA ]
    "also follow"

let duplicate_binders () =
  bad
    [ binder (Ps_sort Sort.Exp) "x"; binder (Ps_sort Sort.Stmt) "x" ]
    "duplicate binder";
  (* duplicates inside tuple sub-patterns are caught too *)
  bad
    [ binder
        (Ps_tuple [ binder (Ps_sort Sort.Id) "x" ])
        "x" ]
    "duplicate binder"

let through_the_parser () =
  (* the determinism check fires at macro definition time *)
  check_error
    "syntax stmt m {| $$*exp::xs $$exp::y |} { return `{;}; }"
    "one token";
  check_error
    "syntax stmt m {| $$exp::x $$exp::x |} { return `{;}; }"
    "duplicate binder"

let pspec_types () =
  let ty spec = Ast.pspec_type spec in
  Alcotest.(check string) "sort" "@exp"
    (Ms2_mtype.Mtype.to_string (ty (Ps_sort Sort.Exp)));
  Alcotest.(check string) "repetition" "@id[]"
    (Ms2_mtype.Mtype.to_string (ty (Ps_plus (Some Token.COMMA, Ps_sort Sort.Id))));
  Alcotest.(check string) "optional is a list" "@exp[]"
    (Ms2_mtype.Mtype.to_string (ty (Ps_opt (None, Ps_sort Sort.Exp))));
  check_contains ~msg:"tuple type"
    (Ms2_mtype.Mtype.to_string
       (ty
          (Ps_tuple
             [ binder (Ps_sort Sort.Id) "k"; binder (Ps_sort Sort.Exp) "v" ])))
    "@id k"

let () =
  Alcotest.run "pattern"
    [ ( "pattern",
        [ tc "first sets" first_sets;
          tc "token-class overlap" overlap;
          tc "deterministic patterns accepted" deterministic_patterns;
          tc "non-deterministic patterns rejected" nondeterministic_patterns;
          tc "duplicate binders rejected" duplicate_binders;
          tc "checked at definition time" through_the_parser;
          tc "pattern value types" pspec_types ] ) ]
