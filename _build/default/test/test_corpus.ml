(** File-driven golden tests: every [corpus/*.mc] file is expanded and
    compared against its [corpus/*.expected.c] sibling.

    The first line of each [.mc] file selects engine options:
    [// ms2: prelude hygienic].

    Regenerate the expected outputs (after reviewing a diff!) with
    [MS2_CORPUS_BLESS=1 dune test]. *)

open Tutil

let corpus_dir = "corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let options_of_source (src : string) : bool * bool =
  (* (prelude, hygienic) from the first-line "// ms2: ..." marker *)
  match String.index_opt src '\n' with
  | None -> (false, false)
  | Some i ->
      let first = String.sub src 0 i in
      let has word = contains ~sub:word first in
      if contains ~sub:"ms2:" first then (has "prelude", has "hygienic")
      else (false, false)

let bless = Sys.getenv_opt "MS2_CORPUS_BLESS" = Some "1"

let check_file name () =
  let mc_path = Filename.concat corpus_dir name in
  let expected_path =
    Filename.concat corpus_dir (Filename.chop_suffix name ".mc" ^ ".expected.c")
  in
  let src = read_file mc_path in
  let prelude, hygienic = options_of_source src in
  let engine = Ms2.Api.create_engine ~prelude ~hygienic () in
  match Ms2.Api.expand ~source:name engine src with
  | Error e -> Alcotest.failf "%s failed to expand: %s" name e
  | Ok out ->
      if bless then write_file expected_path out
      else if Sys.file_exists expected_path then
        Alcotest.(check string) name (read_file expected_path) out
      else
        Alcotest.failf
          "%s has no expected output; run with MS2_CORPUS_BLESS=1 to create \
           it"
          expected_path

let () =
  let cases =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
    |> List.map (fun f -> tc f (check_file f))
  in
  Alcotest.run "corpus" [ ("corpus", cases) ]
