(** Declaration parser tests: declarators, initializers, enums, structs,
    typedefs, function definitions (ANSI and K&R). *)

open Tutil
open Ms2_syntax.Ast

let check name src printed =
  Alcotest.(check string) name (norm printed) (norm (print_decl (pdecl src)))

let declarators () =
  check "simple" "int x;" "int x;";
  check "pointer" "int *p;" "int *p;";
  check "pointer to pointer" "char **argv;" "char **argv;";
  check "array" "int a[10];" "int a[10];";
  check "unsized array" "int a[];" "int a[];";
  check "array of pointers" "char *names[3];" "char *names[3];";
  check "pointer to array" "int (*pa)[10];" "int (*pa)[10];";
  check "function pointer" "int (*f)(int, char *);" "int (*f)(int, char *);";
  check "multi" "int x, *y, z[2];" "int x, *y, z[2];"

let initializers () =
  check "scalar" "int x = 1 + 2;" "int x = 1 + 2;";
  check "list" "int a[3] = {1, 2, 3};" "int a[3] = {1, 2, 3};";
  check "nested list" "int m[2][2] = {{1, 2}, {3, 4}};"
    "int m[2][2] = {{1, 2}, {3, 4}};";
  check "trailing comma swallowed" "int a[2] = {1, 2,};" "int a[2] = {1, 2};"

let enums () =
  check "anonymous" "enum {a, b, c} e;" "enum {a, b, c} e;";
  check "tagged" "enum color {red, green = 3, blue};"
    "enum color {red, green = 3, blue};";
  check "reference" "enum color c;" "enum color c;"

let structs () =
  check "definition" "struct point {int x; int y;};"
    "struct point { int x; int y; };";
  check "reference" "struct point p;" "struct point p;";
  check "nested declarators" "struct s {int *p; char name[8];};"
    "struct s { int *p; char name[8]; };";
  check "union" "union u {int i; char c;};" "union u { int i; char c; };"

let typedefs () =
  let prog = pprog "typedef unsigned long size_t;\nsize_t n;" in
  match prog with
  | [ _; { d = Decl_plain (specs, _); _ } ] ->
      (match specs with
      | [ S_named id ] -> Alcotest.(check string) "typedef use" "size_t" id.id_name
      | _ -> Alcotest.fail "typedef name not used as specifier")
  | _ -> Alcotest.fail "unexpected program shape"

let functions () =
  let prog = pprog "int max(int a, int b) { if (a > b) return a; return b; }" in
  (match prog with
  | [ { d = Decl_fun ([ S_int ], D_func (D_ident f, params), [], _); _ } ] ->
      Alcotest.(check string) "name" "max" f.id_name;
      Alcotest.(check int) "params" 2 (List.length params)
  | _ -> Alcotest.fail "ANSI function definition misparsed");
  (* K&R style, as in the paper's foo example *)
  let prog =
    pprog "int foo(a, b, c) int a, b; int *c; { return a + b; }"
  in
  match prog with
  | [ { d = Decl_fun (_, D_func (_, params), kr, _); _ } ] ->
      Alcotest.(check int) "K&R names" 3 (List.length params);
      Alcotest.(check int) "K&R decls" 2 (List.length kr)
  | _ -> Alcotest.fail "K&R function definition misparsed"

let implicit_int () =
  (* C89 implicit-int function definitions *)
  let prog = pprog "main() { return 0; }" in
  match prog with
  | [ { d = Decl_fun ([], D_func (D_ident f, []), [], _); _ } ] ->
      Alcotest.(check string) "name" "main" f.id_name
  | _ -> Alcotest.fail "implicit-int definition misparsed"

let void_params () =
  let prog = pprog "int f(void) { return 0; }" in
  match prog with
  | [ { d = Decl_fun (_, D_func (_, []), _, _); _ } ] -> ()
  | _ -> Alcotest.fail "void parameter list should be empty"

let prototypes () =
  check "prototype" "int f(int, char *);" "int f(int, char *);";
  check "named prototype" "int f(int a, char *b);" "int f(int a, char *b);";
  check "extern" "extern int errno;" "extern int errno;";
  check "static function pointer" "static int (*handler)(int);"
    "static int (*handler)(int);"

let varargs () =
  let open Tutil in
  Alcotest.(check string) "variadic prototype"
    (norm "int printf(char *fmt, ...);")
    (norm (print_decl (pdecl "int printf(char *fmt, ...);")));
  (* a variadic prototype disables arity checking but keeps parsing *)
  (match Ms2_parser.Parser.decl_of_string "int f(..., int x);" with
  | exception Ms2_support.Diag.Error _ -> ()
  | _ -> Alcotest.fail "... must be last");
  check "variadic def" "int log_all(char *fmt, ...) { return 0; }"
    "int log_all(char *fmt, ...) { return 0; }"

let storage_errors () =
  match Ms2_parser.Parser.expr_of_string "(static int)x" with
  | exception Ms2_support.Diag.Error _ -> ()
  | _ -> Alcotest.fail "storage class in cast accepted"

let () =
  Alcotest.run "parser-decl"
    [ ( "declarations",
        [ tc "declarators" declarators;
          tc "initializers" initializers;
          tc "enums" enums;
          tc "structs and unions" structs;
          tc "typedef registration" typedefs;
          tc "function definitions" functions;
          tc "implicit int" implicit_int;
          tc "void parameters" void_params;
          tc "prototypes and storage" prototypes;
          tc "variadic parameters" varargs;
          tc "storage class misuse" storage_errors ] ) ]
