(** Interpreter tests: running meta code directly through the engine, by
    defining macros whose bodies compute and checking what they expand
    to.  An expression-macro [calc] that returns [make_num(...)] turns
    interpreter results into observable C constants. *)

open Tutil

(* Run meta code: wrap [body] (which must return an int) into an
   exp-macro returning make_num of it and read the constant back. *)
let run_int ?(prelude = "") body =
  let src =
    Printf.sprintf
      "%s\nsyntax exp calc {| ( ) |} {\n%s\n}\nint result = calc();" prelude
      body
  in
  let out = expand src in
  match pprog out with
  | [ { d = Ms2_syntax.Ast.Decl_plain
            (_, [ Ms2_syntax.Ast.Init_decl
                    (_, Some (Ms2_syntax.Ast.I_expr e)) ]); _ } ] -> (
      match e.Ms2_syntax.Ast.e with
      | Ms2_syntax.Ast.E_const (Ms2_syntax.Ast.Cint (v, _)) -> v
      | Ms2_syntax.Ast.E_unary
          (Ms2_syntax.Ast.Neg,
           { e = Ms2_syntax.Ast.E_const (Ms2_syntax.Ast.Cint (v, _)); _ }) ->
          -v
      | _ -> Alcotest.failf "not a constant: %s" out)
  | _ -> Alcotest.failf "unexpected expansion: %s" out

let check_int ?prelude name body expected =
  Alcotest.(check int) name expected (run_int ?prelude body)

let arithmetic () =
  check_int "arith" "return make_num(2 + 3 * 4);" 14;
  check_int "div mod" "return make_num(17 / 5 * 10 + 17 % 5);" 32;
  check_int "shift" "return make_num(1 << 4 >> 1);" 8;
  check_int "bitops" "return make_num((12 & 10) | (1 ^ 3));" 10;
  check_int "negative" "return make_num(-(3 - 8));" 5;
  check_int "comparison" "return make_num((3 < 5) + (5 <= 5) + (6 > 7));" 2;
  check_int "logical short circuit" "return make_num(0 && (1 / 0) || 1);" 1;
  check_int "bitnot" "return make_num(~0 + 1);" 0

let control_flow () =
  check_int "while"
    "int i = 0;\nint total = 0;\nwhile (i < 10) { total += i; i++; }\n\
     return make_num(total);"
    45;
  check_int "for with break/continue"
    "int i;\nint total = 0;\n\
     for (i = 0; i < 100; i++) {\n\
     if (i % 2 == 0) continue;\n\
     if (i > 10) break;\n\
     total += i;\n\
     }\nreturn make_num(total);"
    25;
  check_int "do while" "int i = 0;\ndo i++; while (i < 5);\nreturn make_num(i);" 5;
  check_int "switch"
    "int x = 2;\nint r = 0;\n\
     switch (x) { case 1: r = 10; break; case 2: r = 20; break; default: r \
     = 30; }\nreturn make_num(r);"
    20;
  check_int "switch fallthrough"
    "int r = 0;\nswitch (1) { case 1: r += 1; case 2: r += 2; break; case \
     3: r += 4; }\nreturn make_num(r);"
    3;
  check_int "switch default"
    "int r = 0;\nswitch (9) { case 1: r = 1; break; default: r = 7; }\n\
     return make_num(r);"
    7;
  check_int "conditional" "return make_num(3 > 2 ? 10 : 20);" 10

let incr_decr () =
  check_int "incr decr"
    "int x = 5;\nint a = x++;\nint b = ++x;\nint c = x--;\nint d = --x;\n\
     return make_num(1000 * a + 100 * b + 10 * c + d);"
    (1000 * 5 + 100 * 7 + 10 * 7 + 5)

let lists () =
  check_int "length" "return make_num(length(list(1, 2, 3)));" 3;
  check_int "head" "return make_num(*list(7, 8));" 7;
  check_int "tail" "return make_num(*(list(7, 8, 9) + 1));" 8;
  check_int "offset 2" "return make_num(*(list(7, 8, 9) + 2));" 9;
  check_int "index" "return make_num(list(4, 5, 6)[2]);" 6;
  check_int "append"
    "return make_num(length(append(list(1), list(2, 3))));" 3;
  check_int "cons" "return make_num(*cons(42, list(1)));" 42;
  check_int "reverse" "return make_num(*reverse(list(1, 2, 3)));" 3;
  check_int "nth" "return make_num(nth(list(10, 20), 1));" 20

let strings () =
  check_int "strcmp equal" "return make_num(strcmp(\"ab\", \"ab\") == 0);" 1;
  check_int "strcmp order" "return make_num(strcmp(\"a\", \"b\") < 0);" 1;
  check_int "strcat"
    "return make_num(strcmp(strcat(\"ab\", \"cd\"), \"abcd\") == 0);" 1;
  check_int "string +"
    "char *s = \"x\" + \"y\";\nreturn make_num(strcmp(s, \"xy\") == 0);" 1

let functions () =
  (* int-typed meta helpers are declared with metadcl (a function whose
     type mentions @ is a meta function even without it) *)
  check_int ~prelude:"metadcl int square(int x) { return x * x; }"
    "meta function" "return make_num(square(7));" 49;
  check_int
    ~prelude:
      "metadcl int fact(int n) { if (n <= 1) return 1; return n * fact(n - \
       1); }"
    "recursion" "return make_num(fact(6));" 720;
  check_int "lambda" "return make_num(length(map((int x; x), list(1, 2))));" 2;
  check_int "lambda captures"
    "int base = 100;\n\
     return make_num(*map((int x; x + base), list(5)));"
    105;
  check_int "filter"
    "return make_num(length(filter((int x; x > 2), list(1, 2, 3, 4))));" 2

let defaults () =
  (* uninitialized meta variables: lists are empty, ints zero *)
  check_int ~prelude:"metadcl @stmt frags[]; metadcl int counter;"
    "defaults" "return make_num(length(frags) + counter);" 0

let runtime_errors () =
  check_error
    "syntax exp c {| ( ) |} { return make_num(1 / 0); }\nint x = c();"
    "division by zero";
  check_error
    "metadcl @exp empty[];\n\
     syntax exp c {| ( ) |} { return *empty; }\n\
     int x = c();"
    "empty list";
  check_error
    "metadcl @exp ids[];\n\
     syntax exp c {| ( ) |} { return ids[4]; }\n\
     int x = c();"
    "out of bounds";
  check_error
    "syntax exp c {| ( ) |} { error(\"boom\"); return make_num(0); }\n\
     int x = c();"
    "boom"

let closures_and_mutation () =
  (* the paper's anonymous functions close over meta variables by
     reference: mutation inside map is visible outside *)
  check_int
    "closure sees mutation"
    "int acc = 0;\nmap((int x; acc = acc + x), list(1, 2, 3));\n\
     return make_num(acc);"
    6;
  (* a closure passed to a meta function still sees its environment *)
  check_int
    ~prelude:"metadcl int apply3(int f(int x)) { return f(3); }"
    "closure through meta function"
    "int base = 100;\nreturn make_num(apply3((int y; y + base)));"
    103

let scoping_semantics () =
  check_int "block scoping"
    "int x = 1;\nif (1) { int x = 2; x = x + 1; }\nreturn make_num(x);" 1;
  check_int "loop variable persists"
    "int i;\nint last = 0;\nfor (i = 0; i < 3; i++) last = i;\n\
     return make_num(last);"
    2

let comparisons_on_ids () =
  (* identifier equality compares names (the window_proc mechanism) *)
  check_int
    ~prelude:"metadcl int same(@id a, @id b) { if (a == b) return 1; \
              return 0; }"
    "id equality"
    "return make_num(same(gensym(\"q\"), gensym(\"q\")) * 10 + \
     same(make_id(\"k\"), make_id(\"k\")));"
    1

let tuple_values () =
  (* tuple field access and construction through patterns *)
  let out =
    expand
      "syntax exp pick {| ( $$.( $$num::a , $$num::b )::p ) |} {\n\
       return make_num(num_value(p->a) * 10 + num_value(p->b));\n\
       }\n\
       int x = pick(3, 7);"
  in
  Alcotest.(check string) "tuple access" (canon "int x = 37;") (norm out)

let uninitialized_ast () =
  check_error
    "syntax stmt m {| $$exp::e |} { @stmt s; return s; }\n\
     int f() { m 1; return 0; }"
    "uninitialized"

let () =
  Alcotest.run "interp"
    [ ( "interp",
        [ tc "arithmetic" arithmetic;
          tc "control flow" control_flow;
          tc "increment/decrement" incr_decr;
          tc "list operations" lists;
          tc "strings" strings;
          tc "functions and lambdas" functions;
          tc "default values" defaults;
          tc "runtime errors" runtime_errors;
          tc "closures and mutation" closures_and_mutation;
          tc "scoping semantics" scoping_semantics;
          tc "identifier equality" comparisons_on_ids;
          tc "tuple values" tuple_values;
          tc "uninitialized AST variables" uninitialized_ast ] ) ]
