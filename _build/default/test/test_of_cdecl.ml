(** Tests for C-declaration-to-meta-type conversion: array syntax makes
    lists, struct syntax makes tuples, [char *] is the string type, and
    function declarators (including list-returning ones) make function
    types. *)

open Tutil
open Ms2_syntax.Ast
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
module Of_cdecl = Ms2_typing.Of_cdecl

(* parse "specs declarator ;" and convert *)
let conv src =
  match (pdecl src).d with
  | Decl_plain (specs, [ Init_decl (d, _) ]) ->
      Of_cdecl.of_decl ~loc:Ms2_support.Loc.dummy specs d
  | Decl_fun (specs, d, _, _) ->
      Of_cdecl.of_decl ~loc:Ms2_support.Loc.dummy specs d
  | _ -> Alcotest.fail "unexpected declaration shape"

let check src name ty =
  let n, t = conv src in
  Alcotest.(check string) (src ^ " name") name n;
  Alcotest.(check string) (src ^ " type") (Mtype.to_string ty)
    (Mtype.to_string t)

let scalars () =
  check "int n;" "n" Mtype.Int;
  check "char c;" "c" Mtype.Int;
  check "unsigned long u;" "u" Mtype.Int;
  check "char *s;" "s" Mtype.String

let ast_types () =
  check "@stmt s;" "s" (Mtype.Ast Sort.Stmt);
  check "@exp e;" "e" (Mtype.Ast Sort.Exp);
  check "@init_declarator d;" "d" (Mtype.Ast Sort.Init_declarator)

let lists () =
  check "@id ids[];" "ids" (Mtype.List (Mtype.Ast Sort.Id));
  check "@stmt ss[10];" "ss" (Mtype.List (Mtype.Ast Sort.Stmt));
  check "@decl ds[][];" "ds" (Mtype.List (Mtype.List (Mtype.Ast Sort.Decl)));
  check "char *names[];" "names" (Mtype.List Mtype.String)

let tuples () =
  check "struct {@id k; @exp v;} pair;" "pair"
    (Mtype.Tuple
       [ { Mtype.fld_name = "k"; fld_type = Mtype.Ast Sort.Id };
         { Mtype.fld_name = "v"; fld_type = Mtype.Ast Sort.Exp } ])

let functions () =
  check "@stmt f(@stmt s) { return s; }" "f"
    (Mtype.Fun ([ Mtype.Ast Sort.Stmt ], Mtype.Ast Sort.Stmt));
  check "@id g(@id a, @id b) { return a; }" "g"
    (Mtype.Fun
       ([ Mtype.Ast Sort.Id; Mtype.Ast Sort.Id ], Mtype.Ast Sort.Id));
  (* function returning a list: the window_proc helper shape *)
  check "@stmt h(@id x)[] { return list(`{;}); }" "h"
    (Mtype.Fun ([ Mtype.Ast Sort.Id ], Mtype.List (Mtype.Ast Sort.Stmt)))

let errors () =
  let fails src =
    match conv src with
    | exception Ms2_support.Diag.Error d ->
        Alcotest.(check bool) "type-check phase" true
          (d.phase = Ms2_support.Diag.Type_check)
    | n, t ->
        Alcotest.failf "accepted %s as %s : %s" src n (Mtype.to_string t)
  in
  fails "int *p;" (* only char may be pointed to *);
  fails "float f;" (* no floats at the meta level *);
  fails "char **pp;" (* no pointer to string *)

let mention_detection () =
  let mentions src =
    match (pdecl src).d with
    | Decl_plain (specs, [ Init_decl (d, _) ]) | Decl_fun (specs, d, _, _) ->
        Of_cdecl.specs_mention_ast specs
        || Of_cdecl.declarator_mentions_ast d
    | _ -> Alcotest.fail "unexpected shape"
  in
  Alcotest.(check bool) "plain C" false (mentions "int f(int x) { return x; }");
  Alcotest.(check bool) "ast return" true
    (mentions "@stmt f(@stmt s) { return s; }");
  Alcotest.(check bool) "ast param only" true
    (mentions "int f(@stmt s) { return 0; }")

let () =
  Alcotest.run "of-cdecl"
    [ ( "of-cdecl",
        [ tc "scalar types" scalars;
          tc "AST types" ast_types;
          tc "array syntax is lists" lists;
          tc "struct syntax is tuples" tuples;
          tc "function types" functions;
          tc "rejected declarations" errors;
          tc "meta-mention detection" mention_detection ] ) ]
