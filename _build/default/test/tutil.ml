(** Shared helpers for the test suite. *)

let fail_diag f =
  try f ()
  with Ms2_support.Diag.Error d ->
    Alcotest.failf "unexpected diagnostic: %s" (Ms2_support.Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Parsing helpers                                                     *)
(* ------------------------------------------------------------------ *)

let pexpr src = fail_diag (fun () -> Ms2_parser.Parser.expr_of_string src)
let pstmt src = fail_diag (fun () -> Ms2_parser.Parser.stmt_of_string src)
let pdecl src = fail_diag (fun () -> Ms2_parser.Parser.decl_of_string src)
let pprog src = fail_diag (fun () -> Ms2_parser.Parser.program_of_string src)

let print_expr e = Ms2_syntax.Pretty.expr_to_string e
let print_stmt s = Ms2_syntax.Pretty.stmt_to_string s
let print_decl d = Ms2_syntax.Pretty.decl_to_string d

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(** Collapse all whitespace runs to single spaces (and trim), so tests
    compare code modulo layout. *)
let norm (s : string) : string =
  let b = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> pending := true
      | c ->
          if !pending && Buffer.length b > 0 then Buffer.add_char b ' ';
          pending := false;
          Buffer.add_char b c)
    s;
  Buffer.contents b

(** Canonical form of a C (or C+meta) program: parse then pretty-print,
    normalized.  Comparing canonical forms tests AST equality without
    being whitespace- or layout-sensitive. *)
let canon (src : string) : string =
  norm (Ms2_syntax.Pretty.program_to_string (pprog src))

(* ------------------------------------------------------------------ *)
(* Expansion helpers                                                   *)
(* ------------------------------------------------------------------ *)

let expand src =
  match Ms2.Api.expand_string src with
  | Ok out -> out
  | Error e -> Alcotest.failf "expansion failed: %s" e

let expand_err src =
  match Ms2.Api.expand_string src with
  | Ok out -> Alcotest.failf "expected an error, got:\n%s" out
  | Error e -> e

(** Check that [src] expands to the same AST as the pure-C [expected]
    program (both sides canonicalized). *)
let check_expands ?(msg = "expansion") src expected =
  Alcotest.(check string) msg (canon expected) (norm (expand src))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains ?(msg = "contains") s sub =
  if not (contains ~sub s) then
    Alcotest.failf "%s: %S does not contain %S" msg s sub

(** Check that expanding [src] fails with a message containing [sub]. *)
let check_error ?(msg = "error message") src sub =
  let err = expand_err src in
  if not (contains ~sub err) then
    Alcotest.failf "%s: %S does not mention %S" msg err sub

let tc name f = Alcotest.test_case name `Quick f
