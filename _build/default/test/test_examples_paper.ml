(** Golden tests for the paper's Section 4 examples: each worked example
    must expand to the code the paper prints (modulo identifier spelling
    of generated names and layout). *)

open Tutil

let painting () =
  check_expands
    "syntax stmt Painting {| $$stmt::body |} {\n\
     return `{BeginPaint(hDC, &ps);\n\
     $body;\n\
     EndPaint(hDC, &ps);};\n\
     }\n\
     int draw(int hDC) { Painting { blit(); } return 0; }"
    "int draw(int hDC) {\n\
     { BeginPaint(hDC, &ps); { blit(); } EndPaint(hDC, &ps); }\n\
     return 0; }"

let dynamic_bind () =
  let out =
    expand
      "syntax stmt dynamic_bind\n\
       {| ( $$typespec::type $$id::name = $$exp::init ) $$stmt::body |} {\n\
       @id newname = gensym(name);\n\
       return `{{$type $newname = $name;\n\
       $name = $init;\n\
       $body;\n\
       $name = $newname;}};\n\
       }\n\
       int f() {\n\
       dynamic_bind (int printlength = 10)\n\
       { print_class_structure(gym_class); }\n\
       return 0; }"
  in
  (* shape: save, set, body, restore — with a generated temporary *)
  check_contains ~msg:"save" (norm out) "= printlength;";
  check_contains ~msg:"set" (norm out) "printlength = 10;";
  check_contains ~msg:"body" (norm out) "print_class_structure(gym_class);";
  check_contains ~msg:"restore" (norm out) "printlength = printlength__g";
  (* the temporary embeds the variable name and the gensym marker *)
  check_contains ~msg:"gensym name" (norm out) "int printlength__g"

let exceptions_throw_simple () =
  (* paper: throw of a simple expression produces the direct form *)
  let defs =
    "syntax stmt throw {| $$exp::value |} {\n\
     if (simple_expression(value))\n\
     return `{if (exception_ptr == 0) no_handler($value);\n\
     else longjmp(exception_ptr, $value);};\n\
     else\n\
     return `{{int the_value = $value;\n\
     if (exception_ptr == 0) no_handler(the_value);\n\
     else longjmp(exception_ptr, the_value);}};\n\
     }\n"
  in
  check_expands
    (defs ^ "int f() { throw err_code; return 0; }")
    "int f() {\n\
     if (exception_ptr == 0) no_handler(err_code);\n\
     else longjmp(exception_ptr, err_code);\n\
     return 0; }";
  check_expands
    (defs ^ "int f() { throw compute(); return 0; }")
    "int f() {\n\
     { int the_value = compute();\n\
     if (exception_ptr == 0) no_handler(the_value);\n\
     else longjmp(exception_ptr, the_value); }\n\
     return 0; }"

let exceptions_catch () =
  let out =
    expand
      "syntax stmt throw {| $$exp::value |} {\n\
       return `{longjmp(exception_ptr, $value);};\n\
       }\n\
       syntax stmt catch {| $$exp::tag $$stmt::handler $$stmt::body |} {\n\
       return `{{int *old_exception_ptr = exception_ptr;\n\
       int jmp_buffer[2];\n\
       int result;\n\
       result = setjump(jmp_buffer);\n\
       if (result == 0)\n\
       {exception_ptr = jmp_buffer; $body}\n\
       else\n\
       {exception_ptr = old_exception_ptr;\n\
       if (result == $tag) $handler;\n\
       else throw result;}}};\n\
       }\n\
       int foo() {\n\
       catch division_by_zero\n\
       {printf(\"%s\", \"You lose, division by zero.\");}\n\
       {c = freq(z, a);}\n\
       return z; }"
  in
  let out = norm out in
  check_contains ~msg:"setjmp" out "result = setjump(jmp_buffer);";
  check_contains ~msg:"install" out "exception_ptr = jmp_buffer;";
  check_contains ~msg:"body" out "c = freq(z, a);";
  check_contains ~msg:"tag test" out "if (result == division_by_zero)";
  check_contains ~msg:"rethrow expanded" out
    "longjmp(exception_ptr, result);"

let myenum_full () =
  (* the paper's full myenum example: enum + print_fruit + read_fruit *)
  let out =
    expand
      "syntax decl myenum [] {| $$id::name { $$+/, id::ids } ; |} {\n\
       return list(\n\
       `[enum $name {$ids};],\n\
       `[void $(symbolconc(\"print_\", name))(int arg)\n\
       { switch (arg)\n\
       {$(map((@id id; `{case $id: printf(\"%s\", $(pstring(id)));}),\n\
       ids))} }],\n\
       `[int $(symbolconc(\"read_\", name))()\n\
       { char s[100];\n\
       getline(s, 100);\n\
       $(map((@id id;\n\
       `{if (strcmp(s, $(pstring(id)))) return $id;}), ids))\n\
       return -1; }]);\n\
       }\n\
       myenum fruit {apple, banana, kiwi};"
  in
  let out = norm out in
  check_contains ~msg:"enum" out "enum fruit {apple, banana, kiwi};";
  check_contains ~msg:"printer name" out "void print_fruit(int arg)";
  check_contains ~msg:"case" out "case apple: printf(\"%s\", \"apple\");";
  check_contains ~msg:"reader name" out "int read_fruit()";
  check_contains ~msg:"read test" out
    "if (strcmp(s, \"banana\")) return banana;";
  check_contains ~msg:"buffer" out "char s[100];"

let window_proc () =
  let out =
    expand
      "metadcl @id wp_procs[];\n\
       metadcl @id wp_messages[];\n\
       metadcl @stmt wp_bodies[];\n\
       metadcl @decl wp_no_decls[];\n\
       metadcl @stmt wp_no_stmts[];\n\
       syntax decl window_proc_dispatch []\n\
       {| ( $$id::proc , $$id::message ) $$stmt::body |} {\n\
       wp_procs = append(wp_procs, list(proc));\n\
       wp_messages = append(wp_messages, list(message));\n\
       wp_bodies = append(wp_bodies, list(body));\n\
       return wp_no_decls;\n\
       }\n\
       @stmt wp_cases(@id proc, @id procs[], @id messages[], @stmt \
       bodies[])[] {\n\
       if (length(procs) == 0) return wp_no_stmts;\n\
       if (*procs == proc)\n\
       return cons(`{case $(*messages): { $(*bodies) break; }},\n\
       wp_cases(proc, procs + 1, messages + 1, bodies + 1));\n\
       return wp_cases(proc, procs + 1, messages + 1, bodies + 1);\n\
       }\n\
       syntax decl emit_window_proc [] {| $$id::name ; |} {\n\
       return list(\n\
       `[int $name(int hWnd, int message, int wParam, int lParam)\n\
       { switch (message)\n\
       { $(wp_cases(name, wp_procs, wp_messages, wp_bodies))\n\
       default: return DefWindowProc(hWnd, message, wParam, lParam);\n\
       } }]);\n\
       }\n\
       window_proc_dispatch(wproc, WM_DESTROY)\n\
       { KillTimer(hWnd, idTimer); PostQuitMessage(0); }\n\
       window_proc_dispatch(wproc, WM_CREATE)\n\
       { idTimer = SetTimer(hWnd, 77, 5000, 0); }\n\
       emit_window_proc wproc;"
  in
  let out = norm out in
  check_contains ~msg:"signature" out
    "int wproc(int hWnd, int message, int wParam, int lParam)";
  check_contains ~msg:"destroy case" out "case WM_DESTROY:";
  check_contains ~msg:"destroy body" out "KillTimer(hWnd, idTimer);";
  check_contains ~msg:"create case" out "case WM_CREATE:";
  check_contains ~msg:"create body" out
    "idTimer = SetTimer(hWnd, 77, 5000, 0);";
  check_contains ~msg:"default" out
    "default: return DefWindowProc(hWnd, message, wParam, lParam);";
  (* order: WM_DESTROY was dispatched first *)
  let destroy = ref 0 and create = ref 0 in
  String.iteri
    (fun i _ ->
      if i + 10 < String.length out then begin
        if String.sub out i 10 = "WM_DESTROY" && !destroy = 0 then
          destroy := i;
        if i + 9 < String.length out && String.sub out i 9 = "WM_CREATE"
           && !create = 0
        then create := i
      end)
    out;
  Alcotest.(check bool) "destroy before create" true (!destroy < !create)

let enum_color_separator () =
  (* paper §2: the macro writer never touches separator commas *)
  check_expands
    "syntax decl colordecl [] {| $$+/, id::ids ; |} {\n\
     return list(`[enum color $ids;]);\n\
     }\n\
     colordecl red, blue, green;"
    "enum color red, blue, green;"

let () =
  Alcotest.run "examples-paper"
    [ ( "paper",
        [ tc "Painting" painting;
          tc "dynamic_bind" dynamic_bind;
          tc "throw: simple_expression dispatch" exceptions_throw_simple;
          tc "catch with rethrow" exceptions_catch;
          tc "myenum readers and writers" myenum_full;
          tc "window_proc rearrangement" window_proc;
          tc "enum color separator handling" enum_color_separator ] ) ]
