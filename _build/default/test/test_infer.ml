(** Tests for meta-expression type inference — the parse-time semantic
    analysis that drives template disambiguation. *)

open Tutil
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
module Tenv = Ms2_typing.Tenv
module Infer = Ms2_typing.Infer

let exp = Mtype.Ast Sort.Exp
let id = Mtype.Ast Sort.Id
let stmt = Mtype.Ast Sort.Stmt

let tenv bindings =
  let env = Tenv.create () in
  List.iter (fun (n, ty) -> Tenv.add env n ty) bindings;
  env

let infer ?(env = []) src =
  (* share the environment with the parser, so placeholders inside
     templates are typed against the same bindings *)
  let te = tenv env in
  Infer.type_of te (Ms2_parser.Parser.meta_expr_of_string ~tenv:te src)

let check ?env name src ty =
  Alcotest.(check string) name (Mtype.to_string ty)
    (Mtype.to_string (infer ?env src))

let fails ?env src sub =
  match infer ?env src with
  | exception Ms2_support.Diag.Error d ->
      check_contains ~msg:src (Ms2_support.Diag.to_string d) sub
  | ty ->
      Alcotest.failf "%s typed as %s" src (Mtype.to_string ty)

let scalars () =
  check "int literal" "1 + 2 * 3" Mtype.Int;
  check "string literal" "\"x\"" Mtype.String;
  check "char literal" "'c'" Mtype.Int;
  check "comparison" "1 < 2" Mtype.Int;
  check "logical" "1 && 0 || 2" Mtype.Int;
  check "conditional" "1 ? 2 : 3" Mtype.Int;
  check "comma" "1, \"s\"" Mtype.String

let variables () =
  check ~env:[ ("s", stmt) ] "variable" "s" stmt;
  check ~env:[ ("x", Mtype.Int) ] "assignment" "x = 3" Mtype.Int;
  fails "nope" "unbound meta variable";
  fails ~env:[ ("s", stmt) ] "s = 1" "has type"

let list_ops () =
  let env = [ ("ids", Mtype.List id) ] in
  check ~env "car" "*ids" id;
  check ~env "cdr" "ids + 1" (Mtype.List id);
  check ~env "index" "ids[2]" id;
  check ~env "length" "length(ids)" Mtype.Int;
  check ~env "cons" "cons(*ids, ids + 1)" (Mtype.List id);
  check ~env "append" "append(ids, ids)" (Mtype.List id);
  check ~env "reverse" "reverse(ids)" (Mtype.List id);
  check ~env "nth" "nth(ids, 0)" id;
  fails ~env "length(1)" "expected a list";
  fails ~env "*length(ids)" "cannot dereference"

let list_join () =
  let env = [ ("e", exp); ("n", Mtype.Ast Sort.Num); ("i", id) ] in
  (* list() joins element types upward: num and id join at exp *)
  check ~env "join to exp" "list(e, n, i)" (Mtype.List exp);
  check ~env "singleton" "list(n)" (Mtype.List (Mtype.Ast Sort.Num));
  fails ~env "list(e, length(list(e)))" "incompatible types";
  fails "list()" "empty list"

let builtin_sigs () =
  check "gensym" "gensym()" id;
  check "gensym with base" "gensym(\"tmp\")" id;
  check ~env:[ ("i", id) ] "gensym with id" "gensym(i)" id;
  check ~env:[ ("i", id) ] "symbolconc" "symbolconc(\"print_\", i)" id;
  check ~env:[ ("i", id) ] "concat_ids" "concat_ids(i, i)" id;
  check ~env:[ ("i", id) ] "pstring is an exp" "pstring(i)" exp;
  check "make_num" "make_num(3)" (Mtype.Ast Sort.Num);
  check ~env:[ ("e", exp) ] "simple_expression" "simple_expression(e)"
    Mtype.Int;
  fails "gensym(1)" "expected a string or @id";
  fails "gensym(\"a\", \"b\")" "wrong number";
  fails ~env:[ ("s", stmt) ] "symbolconc(s)" "must be strings"

let higher_order () =
  let env = [ ("ids", Mtype.List id) ] in
  check ~env "map with lambda" "map((@id x; pstring(x)), ids)"
    (Mtype.List exp);
  check ~env "filter" "filter((@id x; 1), ids)" (Mtype.List id);
  fails ~env "map((@stmt s; s), ids)" "list elements";
  fails ~env "map(ids, ids)" "one-argument function"

let components () =
  let env = [ ("d", Mtype.Ast Sort.Decl); ("s", stmt) ] in
  check ~env "decl type_spec" "d->type_spec" (Mtype.Ast Sort.Typespec);
  check ~env "decl init_declarators" "d->init_declarators"
    (Mtype.List (Mtype.Ast Sort.Init_declarator));
  check ~env "stmt declarations" "s->declarations"
    (Mtype.List (Mtype.Ast Sort.Decl));
  check ~env "kind is a string" "d->kind" Mtype.String;
  fails ~env "d->bogus" "no component";
  fails ~env "d->bogus" "available"

let tuples () =
  let pair =
    Mtype.Tuple
      [ { Mtype.fld_name = "k"; fld_type = id };
        { Mtype.fld_name = "v"; fld_type = exp } ]
  in
  let env = [ ("p", pair) ] in
  check ~env "field" "p->k" id;
  check ~env "index" "p[1]" exp;
  fails ~env "p->w" "no field";
  fails ~env "p[5]" "out of range"

let templates () =
  let env = [ ("e", exp); ("s", stmt) ] in
  check ~env "exp template" "`($e + 1)" exp;
  check ~env "stmt template" "`{f($e);}" stmt;
  check ~env "decl template" "`[int x = $e;]" (Mtype.Ast Sort.Decl);
  check ~env "general template" "`{| +/, id :: a, b |}" (Mtype.List id)

let forbidden () =
  fails ~env:[ ("s", stmt) ] "&s" "illegal to take the address";
  fails "(int)1" "casts are not part of the macro language";
  fails ~env:[ ("s", stmt) ] "s + s" "has type"

let () =
  Alcotest.run "infer"
    [ ( "infer",
        [ tc "scalar expressions" scalars;
          tc "variables and assignment" variables;
          tc "list operators" list_ops;
          tc "list joins" list_join;
          tc "builtin signatures" builtin_sigs;
          tc "higher-order builtins" higher_order;
          tc "AST components" components;
          tc "tuples" tuples;
          tc "template types" templates;
          tc "forbidden constructs" forbidden ] ) ]
