int foo(int a, int b, int *c)
{
  int z;
  z = a + b;
  {
    int *old_exception_ptr = exception_ptr;
    int jmp_buffer[2];
    int result;
    result = setjump(jmp_buffer);
    if (result == 0)
      {
        exception_ptr = jmp_buffer;
        {
          *c = freq(z, a);
        }
      }
    else
      {
        exception_ptr = old_exception_ptr;
        if (result == division_by_zero)
          {
            printf("%s", "You lose, division by zero.");
          }
        else
          longjmp(exception_ptr, result);
      }
  }
  {
    int the_value = z + 1;
    longjmp(exception_ptr, the_value);
  }
  return z;
}
