void f()
{
  int tmp = 1;
  int other = 2;
  {
    int tmp__g1 = tmp;
    tmp = other;
    other = tmp__g1;
  }
}
