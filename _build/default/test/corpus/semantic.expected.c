struct point { int x; int y; };

int counter;

char *name;

double ratio;

void g(struct point *p)
{
  printf("%d", counter);
  printf("%p", (void *)name);
  printf("%d", p->x);
  printf("%p", (void *)&counter);
  printf("<%s>", "double");
}
