int repaint(int hDC)
{
  {
    BeginPaint(hDC, &ps);
    {
      draw_line(hDC, 0, 0);
    }
    EndPaint(hDC, &ps);
  }
  {
    BeginPaint(hDC, &ps);
    {
      flood_fill(hDC);
    }
    EndPaint(hDC, &ps);
  }
  return 0;
}
