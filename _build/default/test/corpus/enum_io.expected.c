enum fruit {apple, banana, kiwi};

void print_fruit(int arg)
{
  switch (arg)
    {
      case apple:
        {
          printf("%s", "apple");
          break;
        }
      case banana:
        {
          printf("%s", "banana");
          break;
        }
      case kiwi:
        {
          printf("%s", "kiwi");
          break;
        }
    }
}

int read_fruit()
{
  char s[100];
  getline(s, 100);
  if (strcmp(s, "apple") == 0)
    return apple;
  if (strcmp(s, "banana") == 0)
    return banana;
  if (strcmp(s, "kiwi") == 0)
    return kiwi;
  return -1;
}

enum caps {c_read = 1, c_write = 2};
