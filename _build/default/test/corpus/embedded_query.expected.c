typedef int db_cursor;

struct user_row { int id; int age; };

void report()
{
  struct user_row row;
  {
    db_cursor *cur = db_open("users");
    while (db_next(cur))
      {
        row.id = db_column_int(cur, 0);
        row.age = db_column_int(cur, 1);
        if (row.age > 30)
          db_emit(&row);
      }
    db_close(cur);
  }
}
