enum open_modes {om_read = 1, om_write = 2, om_append = 4};

int fd_flags;

int process(int n)
{
  int i;
  int total = 0;
  if (!(n > 0))
    return -1;
  for (i = 1; i <= n; i++)
    {
      total += i;
    }
  {
    int times__g1;
    for (times__g1 = 0; times__g1 < 2; times__g1++)
      {
        total = total * 2;
      }
  }
  do
    {
      total = total - 1;
    }
  while (!(total < 100));
  if (!(total >= 0))
    assert_fail("total >= 0");
  printf("%s = %d\n", "total", total);
  {
    int swap__g2;
    swap__g2 = fd_flags;
    fd_flags = total;
    total = swap__g2;
  }
  return total;
}
