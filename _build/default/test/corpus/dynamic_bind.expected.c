int printlength = 10;

void print_gym()
{
  {
    int printlength__g1 = printlength;
    printlength = 2 * printlength;
    {
      print_class_structure(gym_class);
    }
    printlength = printlength__g1;
  }
}
