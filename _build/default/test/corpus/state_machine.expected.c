enum turnstile_states {locked, unlocked};

int turnstile_step(int state, int event)
{
  switch (state)
    {
      {
        case locked:
          switch (event)
            {
              case coin:
                return unlocked;
            }
        return state;
      }
      {
        case unlocked:
          switch (event)
            {
              case push:
                return locked;
            }
        return state;
      }
    }
  return state;
}
