int wproc(int hWnd, int message, int wParam, int lParam)
{
  switch (message)
    {
      case WM_DESTROY:
        {
          {
            KillTimer(hWnd, idTimer);
            PostQuitMessage(0);
          }
          break;
        }
      case WM_CREATE:
        {
          {
            idTimer = SetTimer(hWnd, 77, 5000, 0);
          }
          break;
        }
      default:
        return DefWindowProc(hWnd, message, wParam, lParam);
    }
}
