int sum_odds(int n)
{
  int i;
  int total = 0;
  for (i = 1; i <= n; i += 2)
    {
      total += i;
    }
  if (!(total > 0))
    return -1;
  return total;
}
