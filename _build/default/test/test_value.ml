(** Unit tests for meta values: conversions, conformance, environments,
    printing. *)

open Tutil
module Value = Ms2_meta.Value
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
open Ms2_syntax.Ast

let vnode_id name = Value.Vnode (N_id (ident name))

let of_actual () =
  let a =
    Act_list
      [ Act_node (N_id (ident "a"));
        Act_tuple [ ("k", Act_node (N_id (ident "b"))) ] ]
  in
  match Value.of_actual a with
  | Value.Vlist [ Value.Vnode (N_id x); Value.Vtuple [ ("k", _) ] ] ->
      Alcotest.(check string) "first element" "a" x.id_name
  | v -> Alcotest.failf "unexpected shape: %s" (Value.type_name v)

let conforms () =
  let open Value in
  let check name v ty expected =
    Alcotest.(check bool) name expected (conforms v ty)
  in
  check "int" (Vint 3) Mtype.Int true;
  check "string" (Vstring "s") Mtype.String true;
  check "id as id" (vnode_id "x") (Mtype.Ast Sort.Id) true;
  (* subsort: an id conforms to @exp *)
  check "id as exp" (vnode_id "x") (Mtype.Ast Sort.Exp) true;
  check "id not stmt" (vnode_id "x") (Mtype.Ast Sort.Stmt) false;
  check "empty list conforms to any list" (Vlist [])
    (Mtype.List (Mtype.Ast Sort.Decl)) true;
  check "homogeneous list" (Vlist [ vnode_id "a"; vnode_id "b" ])
    (Mtype.List (Mtype.Ast Sort.Id)) true;
  check "heterogeneous list fails"
    (Vlist [ vnode_id "a"; Vint 1 ])
    (Mtype.List (Mtype.Ast Sort.Id))
    false;
  check "tuple field names matter"
    (Vtuple [ ("k", vnode_id "a") ])
    (Mtype.Tuple [ { Mtype.fld_name = "w"; fld_type = Mtype.Ast Sort.Id } ])
    false;
  check "tuple ok"
    (Vtuple [ ("k", vnode_id "a") ])
    (Mtype.Tuple [ { Mtype.fld_name = "k"; fld_type = Mtype.Ast Sort.Id } ])
    true

let defaults () =
  let open Value in
  Alcotest.(check bool) "list default empty" true
    (default_of_type (Mtype.List Mtype.Int) = Vlist []);
  Alcotest.(check bool) "int default zero" true
    (default_of_type Mtype.Int = Vint 0);
  Alcotest.(check bool) "ast default void" true
    (default_of_type (Mtype.Ast Sort.Stmt) = Vvoid);
  match default_of_type
          (Mtype.Tuple
             [ { Mtype.fld_name = "n"; fld_type = Mtype.Int };
               { Mtype.fld_name = "l"; fld_type = Mtype.List Mtype.Int } ])
  with
  | Vtuple [ ("n", Vint 0); ("l", Vlist []) ] -> ()
  | v -> Alcotest.failf "tuple default: %s" (Value.to_string v)

let environments () =
  let open Value in
  let env = create_env () in
  bind env "x" (Vint 1);
  Alcotest.(check bool) "lookup" true (lookup env "x" = Some (Vint 1));
  with_scope env (fun () ->
      bind env "x" (Vint 2);
      Alcotest.(check bool) "shadowed" true (lookup env "x" = Some (Vint 2)));
  Alcotest.(check bool) "popped" true (lookup env "x" = Some (Vint 1));
  (* derived environments share only the global scope *)
  bind_global env "g" (Vint 9);
  push_scope env;
  bind env "local" (Vint 5);
  let child = derived env in
  Alcotest.(check bool) "global visible" true
    (lookup child "g" = Some (Vint 9));
  Alcotest.(check bool) "locals hidden" true (lookup child "local" = None);
  pop_scope env

let printing () =
  let open Value in
  Alcotest.(check string) "int" "3" (to_string (Vint 3));
  Alcotest.(check string) "string" "\"s\"" (to_string (Vstring "s"));
  Alcotest.(check string) "list" "[1; 2]"
    (to_string (Vlist [ Vint 1; Vint 2 ]));
  check_contains ~msg:"tuple" (to_string (Vtuple [ ("k", Vint 1) ])) "k = 1";
  Alcotest.(check string) "node type name" "@id"
    (type_name (vnode_id "x"));
  Alcotest.(check string) "builtin" "<builtin map>"
    (to_string (Vbuiltin "map"))

let () =
  Alcotest.run "value"
    [ ( "value",
        [ tc "of_actual" of_actual;
          tc "conforms" conforms;
          tc "default values" defaults;
          tc "environments" environments;
          tc "printing" printing ] ) ]
