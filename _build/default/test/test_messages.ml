(** Error-message quality: every class of diagnostic must name the
    offending construct precisely (table-driven, one row per failure
    class).  These lock in the user experience: a regression that makes
    a message vaguer fails here. *)

open Tutil

(* (name, source, substrings the message must contain) *)
let cases =
  [ (* lexing *)
    ("unknown character", "int x = #;", [ "unexpected character"; "'#'" ]);
    ("unterminated string", "char *s = \"abc", [ "unterminated string" ]);
    ("unterminated comment", "/* hm", [ "unterminated comment" ]);
    ("bad escape", "char c = '\\q';", [ "unknown escape" ]);
    (* parsing *)
    ("missing rparen", "int x = (1 + 2;", [ "expected \")\"" ]);
    ("missing semicolon", "int f() { return 0 }", [ "expected" ]);
    ("decl after stmt", "int f() { g(); int x; return 0; }",
     [ "declaration after the first statement" ]);
    ("bad template opener",
     "syntax stmt m {| |} { return `@; }",
     [ "after backquote" ]);
    ("placeholder outside template", "int x = $y;",
     [ "placeholder outside" ]);
    (* pattern checking *)
    ("ambiguous repetition",
     "syntax stmt m {| $$*exp::xs $$exp::y |} { return `{;}; }",
     [ "one token"; "lookahead" ]);
    ("duplicate binders",
     "syntax stmt m {| $$exp::a $$stmt::a |} { return `{;}; }",
     [ "duplicate binder"; "a" ]);
    ("separator starts element",
     "syntax stmt m {| $$+/x id::xs |} { return `{;}; }",
     [ "separator"; "begin an element" ]);
    (* meta typing *)
    ("unbound meta variable",
     "syntax stmt m {| $$exp::e |} { return `{$oops;}; }",
     [ "unbound meta variable"; "oops" ]);
    ("sort mismatch in template",
     "syntax stmt m {| $$stmt::s |} { return `($s + 1); }",
     [ "placeholder of type @stmt"; "cannot stand for" ]);
    ("wrong return sort",
     "syntax exp m {| $$stmt::s |} { return s; }",
     [ "returned value"; "@stmt"; "@exp" ]);
    ("arity of meta function",
     "metadcl @stmt f(@stmt s) { return s; }\n\
      syntax stmt m {| $$stmt::s |} { return f(s, s); }",
     [ "wrong number of arguments"; "expected 1"; "got 2" ]);
    ("list of mixed sorts",
     "syntax stmt m {| $$stmt::s $$exp::e |} { return \
      `{f($(*list(s, e)));}; }",
     [ "incompatible types" ]);
    ("unknown component",
     "syntax stmt m {| $$decl::d |} { return `{f($(d->wat));}; }",
     [ "no component"; "wat"; "available" ]);
    ("address of meta value",
     "syntax stmt m {| $$stmt::s |} { print(&s); return `{;}; }",
     [ "illegal to take the address" ]);
    (* invocation placement *)
    ("decl macro in expression",
     "metadcl @decl none[];\n\
      syntax decl gen [] {| $$id::n ; |} { return none; }\n\
      int x = gen y;;",
     [ "gen"; "cannot be invoked"; "expression" ]);
    (* expansion *)
    ("macro error()",
     "syntax stmt m {| $$exp::e |} { error(\"bad operand\", \
      exp_string(e)); return `{;}; }\n\
      int f() { m 1 + 2; return 0; }",
     [ "bad operand"; "1 + 2" ]);
    ("runaway recursion",
     "syntax stmt loop {| |} { return `{loop}; }\nint f() { loop }",
     [ "nesting depth" ]);
    ("head of empty list",
     "metadcl @exp none[];\n\
      syntax exp m {| |} { return *none; }\nint x = m;",
     [ "empty list" ]);
    ("uninitialized ast variable",
     "syntax stmt m {| |} { @stmt s; return s; }\nint f() { m }",
     [ "uninitialized"; "s" ]) ]

let run_case (name, src, needles) () =
  let err = expand_err src in
  List.iter (fun needle -> check_contains ~msg:name err needle) needles

let locations_point_at_the_use () =
  (* expansion errors carry the invocation's location *)
  let err =
    expand_err
      "syntax stmt m {| |} { error(\"x\"); return `{;}; }\n\
       int f() {\n\
       m\n\
       return 0; }"
  in
  check_contains ~msg:"line of the invocation" err ":3:"

let () =
  Alcotest.run "messages"
    [ ( "diagnostic quality",
        List.map (fun c -> let n, _, _ = c in tc n (run_case c)) cases
        @ [ tc "expansion errors point at the use" locations_point_at_the_use ]
      ) ]
