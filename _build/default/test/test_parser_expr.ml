(** Expression parser tests: the bottom-up precedence parser.

    Strategy: parse and compare the pretty-printed form, whose
    parenthesization reflects the tree shape. *)

open Tutil

let check name src printed =
  Alcotest.(check string) name printed (print_expr (pexpr src))

let precedence () =
  check "mul over add" "a + b * c" "a + b * c";
  check "explicit parens survive as shape" "(a + b) * c" "(a + b) * c";
  check "left assoc sub" "a - b - c" "a - b - c";
  check "right nesting needs parens" "a - (b - c)" "a - (b - c)";
  check "shift vs relational" "a << 2 < b" "a << 2 < b";
  (* C precedence: == binds tighter than &, so "a & b == c" already
     means a & (b == c) and needs no parentheses when printed *)
  check "bitand vs eq" "a & b == c" "a & b == c";
  check "bitand of eq forced left" "(a & b) == c" "(a & b) == c";
  check "and-or" "a && b || c && d" "a && b || c && d";
  check "or assoc" "(a || b) && c" "(a || b) && c"

let conditional () =
  check "cond" "a ? b : c" "a ? b : c";
  check "nested cond right" "a ? b : c ? d : e" "a ? b : c ? d : e";
  (* the middle operand extends to the colon, so no parens are needed *)
  check "nested cond middle" "a ? b ? c : d : e" "a ? b ? c : d : e";
  check "assign in middle" "a ? b = c : d" "a ? b = c : d"

let assignment () =
  check "simple" "x = y" "x = y";
  check "chained right" "x = y = z" "x = y = z";
  check "compound" "x += y * 2" "x += y * 2";
  check "deref lhs" "*p = 3" "*p = 3";
  check "index lhs" "a[i] = b" "a[i] = b"

let comma () =
  check "comma" "a, b, c" "a, b, c";
  check "comma under parens in call" "f((a, b))" "f((a, b))";
  check "call args are not comma" "f(a, b)" "f(a, b)"

let unary_postfix () =
  check "deref deref" "**p" "**p";
  check "addr of deref" "&*p" "&*p";
  check "neg literal" "-1" "-1";
  check "double neg spaced" "- -x" "- -x";
  check "not" "!x" "!x";
  check "preincr" "++x" "++x";
  check "postincr" "x++" "x++";
  check "postfix chain" "a.b->c[0](x)++" "a.b->c[0](x)++";
  check "sizeof expr" "sizeof(x + 1)" "sizeof(x + 1)";
  check "sizeof type" "sizeof(int)" "sizeof(int)";
  check "sizeof pointer type" "sizeof(char *)" "sizeof(char *)"

let casts () =
  check "cast int" "(int)x" "(int)x";
  check "cast pointer" "(char *)p" "(char *)p";
  check "cast binds tighter than mul" "(int)x * y" "(int)x * y";
  (* (foo)(x) is a call when foo is not a typedef name *)
  check "call not cast" "(foo)(x)" "foo(x)"

let literals () =
  check "string" "\"hi\"" "\"hi\"";
  check "char" "'a'" "'a'";
  check "hex keeps spelling" "0x10" "0x10"

let calls () =
  check "nested calls" "f(g(x), h(y, z))" "f(g(x), h(y, z))";
  check "zero arg" "f()" "f()";
  (* the deref in "( *fp)(x)" has prec 15 < 16, so it keeps its parens *)
  check "call of expr" "(*fp)(x)" "(*fp)(x)"

let errors () =
  let syntax_err src =
    match Ms2_parser.Parser.expr_of_string src with
    | exception Ms2_support.Diag.Error d ->
        Alcotest.(check bool) "phase is parsing" true
          (d.phase = Ms2_support.Diag.Parsing)
    | e -> Alcotest.failf "parsed: %s" (print_expr e)
  in
  syntax_err "a +";
  syntax_err "(a";
  syntax_err "a ? b";
  syntax_err "f(a,)";
  syntax_err "";
  syntax_err "a b" (* trailing input *)

let () =
  Alcotest.run "parser-expr"
    [ ( "expressions",
        [ tc "precedence" precedence;
          tc "conditional" conditional;
          tc "assignment" assignment;
          tc "comma" comma;
          tc "unary and postfix" unary_postfix;
          tc "casts" casts;
          tc "literals" literals;
          tc "calls" calls;
          tc "syntax errors" errors ] ) ]
