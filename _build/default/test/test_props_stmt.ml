(** Property tests at the statement, declaration and program levels:
    compositional generators of valid C, round-tripped through the
    printer/parser, the expansion engine (identity on macro-free code),
    and the object-level checker (no findings on well-typed programs
    built only from declared [int] variables). *)

open QCheck

let gen_var = Gen.oneofl [ "v0"; "v1"; "v2"; "v3" ]

(* expressions over the fixed int variables v0..v3 — every generated
   expression is well-typed C *)
let gen_int_exp =
  Gen.sized
    (Gen.fix (fun self n ->
         if n = 0 then
           Gen.oneof [ gen_var; Gen.map string_of_int (Gen.int_range 0 99) ]
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ sub;
               Gen.map2 (Printf.sprintf "(%s + %s)") sub sub;
               Gen.map2 (Printf.sprintf "(%s * %s)") sub sub;
               Gen.map2 (Printf.sprintf "(%s < %s)") sub sub;
               Gen.map2 (Printf.sprintf "(%s == %s)") sub sub;
               Gen.map (Printf.sprintf "(-%s)") sub;
               Gen.map (Printf.sprintf "(!%s)") sub;
               Gen.map3 (Printf.sprintf "(%s ? %s : %s)") sub sub sub ]))

(* statements over those variables; all loops syntactic only *)
let gen_stmt =
  Gen.sized
    (Gen.fix (fun self n ->
         let assign =
           Gen.map2 (Printf.sprintf "%s = %s;") gen_var gen_int_exp
         in
         if n = 0 then
           Gen.oneof [ assign; Gen.return ";"; Gen.return "break_counter++;" ]
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ assign;
               Gen.map2 (Printf.sprintf "if (%s) %s") gen_int_exp sub;
               Gen.map3 (Printf.sprintf "if (%s) %s else %s") gen_int_exp sub
                 sub;
               Gen.map2 (Printf.sprintf "while (%s) %s") gen_int_exp sub;
               Gen.map2 (Printf.sprintf "do %s while (%s);") sub gen_int_exp;
               Gen.map2 (Printf.sprintf "{ %s %s }") sub sub;
               Gen.map
                 (fun (v, e, s) ->
                   Printf.sprintf "for (%s = 0; %s < %s; %s++) %s" v v e v s)
                 (Gen.triple gen_var gen_int_exp sub);
               Gen.map2
                 (Printf.sprintf
                    "switch (%s) { case 1: %s break; default: ; }")
                 gen_int_exp sub ]))

let gen_program =
  Gen.map
    (fun stmts ->
      "int v0, v1, v2, v3;\nint break_counter;\nint f()\n{\n"
      ^ String.concat "\n" stmts
      ^ "\nreturn v0;\n}")
    (Gen.list_size (Gen.int_range 1 6) gen_stmt)

(* print/parse round trip at the program level *)
let prop_program_roundtrip =
  Test.make ~name:"print/parse round trip on programs" ~count:300
    (make gen_program)
    (fun src ->
      let p1 = Tutil.canon src in
      Tutil.canon p1 = p1)

(* expansion is the identity on macro-free programs *)
let prop_expand_identity =
  Test.make ~name:"expansion is the identity on macro-free programs"
    ~count:300 (make gen_program)
    (fun src ->
      match Ms2.Api.expand_string src with
      | Error _ -> false
      | Ok out -> Tutil.norm out = Tutil.canon src)

(* hygiene does not touch user programs *)
let prop_hygiene_inert =
  Test.make ~name:"hygienic engines do not rewrite macro-free programs"
    ~count:150 (make gen_program)
    (fun src ->
      let engine = Ms2.Engine.create ~hygienic:true () in
      match Ms2.Api.expand ~source:"p" engine src with
      | Error _ -> false
      | Ok out -> Tutil.norm out = Tutil.canon src)

(* the object-level checker accepts these well-typed programs *)
let prop_checker_clean =
  Test.make ~name:"checker finds nothing in well-typed generated programs"
    ~count:300 (make gen_program)
    (fun src ->
      match Ms2.Api.expand_checked src with
      | Error _ -> false
      | Ok (_, findings) -> findings = [])

(* wrapping every generated statement in a trivial stmt macro and
   expanding gives back the original statement *)
let prop_identity_macro =
  Test.make ~name:"the identity macro is the identity" ~count:200
    (make gen_stmt)
    (fun stmt ->
      let with_macro =
        Printf.sprintf
          "syntax stmt id_macro {| [ $$stmt::s ] |} { return s; }\n\
           int v0, v1, v2, v3;\nint break_counter;\n\
           int f() { id_macro [ %s ] return v0; }"
          stmt
      and plain =
        Printf.sprintf
          "int v0, v1, v2, v3;\nint break_counter;\n\
           int f() { %s return v0; }"
          stmt
      in
      match Ms2.Api.expand_string with_macro with
      | Error _ -> false
      | Ok out -> Tutil.norm out = Tutil.canon plain)

(* a bracketing macro adds exactly its bracket and preserves the body *)
let prop_bracket_macro =
  Test.make ~name:"bracketing macros preserve their bodies" ~count:200
    (make gen_stmt)
    (fun stmt ->
      let src =
        Printf.sprintf
          "syntax stmt guard {| [ $$stmt::s ] |} { return `{enter(); $s; \
           leave();}; }\n\
           int v0, v1, v2, v3;\nint break_counter;\n\
           int f() { guard [ %s ] return v0; }"
          stmt
      and expected =
        Printf.sprintf
          "int v0, v1, v2, v3;\nint break_counter;\n\
           int f() { { enter(); %s leave(); } return v0; }"
          stmt
      in
      match Ms2.Api.expand_string src with
      | Error _ -> false
      | Ok out -> Tutil.norm out = Tutil.canon expected)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_program_roundtrip;
        prop_expand_identity;
        prop_hygiene_inert;
        prop_checker_clean;
        prop_identity_macro;
        prop_bracket_macro ]
  in
  Alcotest.run "props-stmt" [ ("program-level properties", suite) ]
