(** Parser tests for the meta extensions: macro definitions, patterns,
    templates, placeholder typing, and pattern-directed invocation
    parsing. *)

open Tutil
open Ms2_syntax.Ast
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort

let get_macro_def src =
  match pprog src with
  | [ { d = Decl_macro_def md; _ } ] -> md
  | _ -> Alcotest.fail "expected exactly one macro definition"

let header_basic () =
  let md =
    get_macro_def "syntax stmt foo {| $$stmt::body |} { return body; }"
  in
  (match md.m_name with
  | Ii_id id -> Alcotest.(check string) "name" "foo" id.id_name
  | Ii_splice _ -> Alcotest.fail "unexpected name placeholder");
  Alcotest.(check bool) "ret" true (Mtype.equal md.m_ret (Mtype.Ast Sort.Stmt));
  match md.m_pattern with
  | [ Pe_binder { b_spec = Ps_sort Sort.Stmt; b_name } ] ->
      Alcotest.(check string) "binder" "body" b_name.id_name
  | _ -> Alcotest.fail "pattern misparsed"

let header_list_return () =
  match
    pprog
      "metadcl @decl none[];\n\
       syntax decl gen [] {| $$id::name ; |} { return none; }"
  with
  | [ _; { d = Decl_macro_def md; _ } ] ->
      Alcotest.(check bool) "ret is decl list" true
        (Mtype.equal md.m_ret (Mtype.List (Mtype.Ast Sort.Decl)))
  | _ -> Alcotest.fail "unexpected shape"

let patterns () =
  let md =
    get_macro_def
      "syntax stmt m {| begin $$+/, exp::args ; $$?when exp::guard end \
       $$.( $$id::k , $$num::v )::pair |} { return `{;}; }"
  in
  match md.m_pattern with
  | [ Pe_token (Ms2_syntax.Token.IDENT "begin");
      Pe_binder
        { b_spec = Ps_plus (Some Ms2_syntax.Token.COMMA, Ps_sort Sort.Exp); _ };
      Pe_token Ms2_syntax.Token.SEMI;
      Pe_binder
        { b_spec =
            Ps_opt (Some (Ms2_syntax.Token.IDENT "when"), Ps_sort Sort.Exp);
          _ };
      Pe_token (Ms2_syntax.Token.IDENT "end");
      Pe_binder { b_spec = Ps_tuple _; b_name } ] ->
      Alcotest.(check string) "tuple binder" "pair" b_name.id_name
  | _ -> Alcotest.fail "rich pattern misparsed"

let star_pattern () =
  let md =
    get_macro_def
      "syntax stmt m {| [ $$*stmt::body ] |} { return `{;}; }"
  in
  match md.m_pattern with
  | [ Pe_token Ms2_syntax.Token.LBRACKET;
      Pe_binder { b_spec = Ps_star (None, Ps_sort Sort.Stmt); _ };
      Pe_token Ms2_syntax.Token.RBRACKET ] ->
      ()
  | _ -> Alcotest.fail "star pattern misparsed"

let pattern_bindings_type md =
  match md.m_pattern with
  | [ Pe_binder b ] -> Some (pspec_type b.b_spec)
  | _ -> None

let binder_types () =
  (* binder types flow into the meta type environment: a repetition of
     ids gives @id[], so length(ids) type checks at definition time *)
  let md =
    get_macro_def
      "syntax stmt m {| $$+/, id::ids |} {\n\
       int n = length(ids);\n\
       if (n == 0) return `{;};\n\
       return `{f($(make_num(n)));};\n\
       }"
  in
  Alcotest.(check bool) "pattern binds a list" true
    (match pattern_bindings_type md with
    | Some ty -> Mtype.equal ty (Mtype.List (Mtype.Ast Sort.Id))
    | None -> false)

let template_kinds () =
  (* all four backquote forms in one macro body *)
  let md =
    get_macro_def
      "syntax stmt m {| $$exp::e |} {\n\
       @exp x = `($e + 1);\n\
       @decl d = `[int v;];\n\
       @id ids[] = `{| +/, id :: a, b, c |};\n\
       if (length(ids) == 3) return `{f($x);};\n\
       return `{g($(d->name));};\n\
       }"
  in
  ignore md

let placeholder_typing_errors () =
  (* the (stmt, decl) illegality of Figure 3 *)
  check_error
    "syntax stmt m {| $$exp::e |} { return `{ $e; int x; }; }"
    "declaration after the first statement";
  (* a statement placeholder cannot stand in an expression *)
  check_error "syntax stmt m {| $$stmt::s |} { return `(1 + $s); }"
    "cannot stand for";
  (* unknown meta variables are definition-time errors *)
  check_error "syntax stmt m {| $$exp::e |} { return `{ $nosuch; }; }"
    "unbound meta variable"

let invocation_actuals () =
  (* star with separator: zero, one, many *)
  let parse_inv src =
    match
      pprog
        ("metadcl @decl none[];\n\
          syntax decl reg [] {| $$id::name ( $$*/, exp::args ) ; |} { \
          return none; }\n" ^ src)
    with
    | [ _; _; { d = Decl_macro inv; _ } ] -> inv
    | _ -> Alcotest.fail "expected an invocation"
  in
  let args_of inv =
    match List.assoc "args" inv.inv_actuals with
    | Act_list l -> List.length l
    | _ -> Alcotest.fail "args not a list"
  in
  Alcotest.(check int) "zero args" 0 (args_of (parse_inv "reg empty();"));
  Alcotest.(check int) "one arg" 1 (args_of (parse_inv "reg one(42);"));
  Alcotest.(check int) "three args" 3
    (args_of (parse_inv "reg three(a, b + 1, f(c));"))

let invocation_optional () =
  let parse_inv src =
    match
      pprog
        ("metadcl @decl none[];\n\
          syntax decl opt [] {| $$id::name $$?at num::pos ; |} { return \
          none; }\n" ^ src)
    with
    | [ _; _; { d = Decl_macro inv; _ } ] -> inv
    | _ -> Alcotest.fail "expected an invocation"
  in
  let pos_of inv =
    match List.assoc "pos" inv.inv_actuals with
    | Act_list l -> List.length l
    | _ -> Alcotest.fail "optional not a list"
  in
  Alcotest.(check int) "absent" 0 (pos_of (parse_inv "opt x;"));
  Alcotest.(check int) "present" 1 (pos_of (parse_inv "opt x at 3;"))

let invocation_tuple () =
  let prog =
    pprog
      "metadcl @decl none[];\n\
       syntax decl pairs [] {| $$+/, .( $$id::k = $$exp::v )::ps ; |} { \
       return none; }\n\
       pairs a = 1, b = 2 + 3;"
  in
  match prog with
  | [ _; _; { d = Decl_macro inv; _ } ] -> (
      match List.assoc "ps" inv.inv_actuals with
      | Act_list [ Act_tuple t1; Act_tuple _ ] ->
          Alcotest.(check (list string)) "tuple fields" [ "k"; "v" ]
            (List.map fst t1)
      | _ -> Alcotest.fail "tuple repetition misparsed")
  | _ -> Alcotest.fail "unexpected shape"

let invocation_wrong_position () =
  (* a decl-returning macro is fine at block level (block-scope
     declarations)... *)
  check_expands
    "metadcl @decl none[];\n\
     syntax decl gen [] {| $$id::n ; |} { return none; }\n\
     int f() { gen x; return 0; }"
    "int f() { return 0; }";
  (* ...but not where an expression is expected *)
  check_error
    "metadcl @decl none[];\n\
     syntax decl gen [] {| $$id::n ; |} { return none; }\n\
     int x = gen y;;"
    "cannot be invoked";
  (* a stmt-returning macro cannot appear where an expression is
     expected *)
  check_error
    "syntax stmt s {| $$stmt::b |} { return b; }\n\
     int x = s { f(); };"
    "cannot be invoked"

let buzz_tokens () =
  check_error
    "syntax stmt m {| $$exp::c then $$stmt::s |} { return s; }\n\
     int f() { m 1 els {g();} return 0; }"
    "expected"

let undefined_macro () =
  (* without a definition, "mymac x;" is just a broken expression
     statement: the user sees an error in their own code *)
  check_error "int f() { mymac x; return 0; }\n" "expected"

let () =
  Alcotest.run "parser-meta"
    [ ( "meta",
        [ tc "macro header" header_basic;
          tc "list-returning header" header_list_return;
          tc "pattern language" patterns;
          tc "star pattern" star_pattern;
          tc "binder types" binder_types;
          tc "template kinds" template_kinds;
          tc "placeholder typing errors" placeholder_typing_errors;
          tc "repetition actuals" invocation_actuals;
          tc "optional actuals" invocation_optional;
          tc "tuple actuals" invocation_tuple;
          tc "invocations in wrong positions" invocation_wrong_position;
          tc "buzz token mismatch" buzz_tokens;
          tc "undefined macro" undefined_macro ] ) ]
