(** Golden tests for the regenerated paper figures (the paper's
    "evaluation"): the rows must match the paper symbol for symbol. *)

open Tutil

let figure2 () =
  let rows = Ms2.Figures.figure2 () in
  let expected =
    [ ("init-declarator[]", "(declaration (int) y)");
      ("init-declarator", "(declaration (int) (y))");
      ("declarator", "(declaration (int) ((init-declarator y ())))");
      ("identifier",
       "(declaration (int) ((init-declarator (direct-declarator y) ())))") ]
  in
  Alcotest.(check (list (pair string string))) "figure 2" expected rows

let figure3 () =
  let rows = Ms2.Figures.figure3 () in
  let expected =
    [ ("decl", "decl",
       "(c-s (decl-list ((decl \"int x\") ph1 ph2)) (stmt-list ((r-s (exp \
        (id x))))))");
      ("decl", "stmt",
       "(c-s (decl-list ((decl \"int x\") ph1)) (stmt-list (ph2 (r-s (exp \
        (id x))))))");
      ("stmt", "stmt",
       "(c-s (decl-list ((decl \"int x\"))) (stmt-list (ph1 ph2 (r-s (exp \
        (id x))))))");
      ("stmt", "decl", "Syntactically Illegal Program") ]
  in
  Alcotest.(check (list (triple string string string))) "figure 3" expected
    rows

let figure1_witnesses () =
  (* character substitution corrupts tokens; CPP token substitution
     mis-parenthesizes; MS² does neither *)
  Alcotest.(check string) "char" "int COx = x;"
    (Ms2.Figures.char_witness ());
  Alcotest.(check string) "cpp" "x + y * m + n" (Ms2.Figures.cpp_witness ());
  Alcotest.(check string) "ms2" "(x + y) * (m + n)"
    (Ms2.Figures.ms2_witness ())

let figure1_table () =
  let rows = Ms2.Figures.figure1_table in
  Alcotest.(check int) "three programmability rows" 3 (List.length rows);
  let top = List.hd rows in
  check_contains ~msg:"MS2 is the programmable syntax entry"
    top.Ms2.Figures.syntax "MS2"

let deterministic () =
  (* regenerating the figures twice gives identical rows *)
  Alcotest.(check (list (pair string string)))
    "figure 2 deterministic" (Ms2.Figures.figure2 ()) (Ms2.Figures.figure2 ());
  Alcotest.(check (list (triple string string string)))
    "figure 3 deterministic" (Ms2.Figures.figure3 ()) (Ms2.Figures.figure3 ())

let () =
  Alcotest.run "figures"
    [ ( "figures",
        [ tc "figure 2 rows" figure2;
          tc "figure 3 rows" figure3;
          tc "figure 1 witnesses" figure1_witnesses;
          tc "figure 1 table" figure1_table;
          tc "determinism" deterministic ] ) ]
