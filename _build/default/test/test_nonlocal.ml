(** Non-local transformations: meta state persisting across invocations
    (the mechanism behind the paper's window-procedure example), and
    related engine behaviors. *)

open Tutil

let accumulate_and_emit () =
  check_expands
    "metadcl @stmt inits[];\n\
     metadcl @decl nothing[];\n\
     syntax decl at_startup [] {| $$stmt::s |} {\n\
     inits = append(inits, list(s));\n\
     return nothing;\n\
     }\n\
     syntax decl emit_startup [] {| ; |} {\n\
     return list(`[void startup(void) { $inits; }]);\n\
     }\n\
     at_startup { open_log(); }\n\
     at_startup { init_allocator(); }\n\
     at_startup { spawn_workers(4); }\n\
     emit_startup;"
    "void startup() { { open_log(); } { init_allocator(); } { \
     spawn_workers(4); } }"

let counter_macros () =
  (* unique numbering across a compilation unit *)
  check_expands
    "metadcl int n;\n\
     syntax exp unique_id {| |} { n = n + 1; return make_num(n); }\n\
     int a = unique_id;\n\
     int b = unique_id;\n\
     int f() { return unique_id; }"
    "int a = 1;\nint b = 2;\nint f() { return 3; }"

let registry () =
  (* register names, then generate a dispatcher over all of them *)
  check_expands
    "metadcl @id commands[];\n\
     metadcl @decl nothing[];\n\
     metadcl @stmt no_stmts[];\n\
     syntax decl command [] {| $$id::name ; |} {\n\
     commands = append(commands, list(name));\n\
     return nothing;\n\
     }\n\
     @stmt dispatch_cases(@id names[])[] {\n\
     if (length(names) == 0) return no_stmts;\n\
     return cons(\n\
     `{if (strcmp(arg, $(pstring(*names))) == 0) return \
     $(concat_ids(*names, make_id(\"_cmd\")))();},\n\
     dispatch_cases(names + 1));\n\
     }\n\
     syntax decl emit_dispatcher [] {| ; |} {\n\
     return list(`[int dispatch(char *arg)\n\
     { $(dispatch_cases(commands)) return -1; }]);\n\
     }\n\
     command help;\n\
     command version;\n\
     emit_dispatcher;"
    "int dispatch(char *arg) {\n\
     if (strcmp(arg, \"help\") == 0) return help_cmd();\n\
     if (strcmp(arg, \"version\") == 0) return version_cmd();\n\
     return -1; }"

let block_scope_metadcl () =
  (* metadcl inside a function body runs at expansion time, can update
     meta state, and emits no object code *)
  check_expands
    "metadcl int counter;\n\
     syntax exp peek_counter {| |} { return make_num(counter); }\n\
     int f() {\n\
     metadcl int counter = 5;\n\
     return peek_counter;\n\
     }"
    "int f() { return 5; }"

let state_mutation_between_uses () =
  check_expands
    "metadcl @id last;\n\
     syntax decl remember [] {| $$id::n ; |} {\n\
     metadcl @decl nothing[];\n\
     last = n;\n\
     return nothing;\n\
     }\n\
     syntax decl recall [] {| ; |} { return list(`[int $last;]); }\n\
     remember treasure;\n\
     recall;"
    "int treasure;"

let () =
  Alcotest.run "nonlocal"
    [ ( "nonlocal",
        [ tc "accumulate and emit" accumulate_and_emit;
          tc "compile-time counters" counter_macros;
          tc "registries and dispatchers" registry;
          tc "block-scope metadcl" block_scope_metadcl;
          tc "state mutation between uses" state_mutation_between_uses ] ) ]
