(** Robustness fuzzing: on *arbitrary* input the system must either
    succeed or raise a located diagnostic — never crash, hang, or throw
    anything else.  [Api.expand_string] already converts diagnostics to
    [Error]; any other exception fails the property. *)

open QCheck
module Token = Ms2_syntax.Token

let no_crash (f : unit -> unit) : bool =
  match f () with
  | () -> true
  | exception Ms2_support.Diag.Error _ -> true
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Random token soup                                                   *)
(* ------------------------------------------------------------------ *)

let token_spellings =
  [ "int"; "char"; "return"; "if"; "else"; "while"; "enum"; "struct";
    "typedef"; "syntax"; "metadcl"; "stmt"; "exp"; "id"; "x"; "foo";
    "0"; "42"; "\"s\""; "'c'"; "1.5";
    "{"; "}"; "("; ")"; "["; "]"; ";"; ","; ":"; "?"; ".";
    "+"; "-"; "*"; "/"; "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|";
    "->"; "++"; "--";
    "{|"; "|}"; "$"; "$$"; "::"; "`"; "@" ]

let gen_token_soup =
  Gen.map (String.concat " ")
    (Gen.list_size (Gen.int_range 0 60) (Gen.oneofl token_spellings))

let prop_token_soup =
  Test.make ~name:"no crash on token soup" ~count:2000 (make gen_token_soup)
    (fun src ->
      match Ms2.Api.expand_string src with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Random bytes                                                        *)
(* ------------------------------------------------------------------ *)

let gen_ascii =
  Gen.map
    (fun l -> String.init (List.length l) (List.nth l))
    (Gen.list_size (Gen.int_range 0 80)
       (Gen.map Char.chr (Gen.int_range 32 126)))

let prop_random_bytes =
  Test.make ~name:"no crash on random printable bytes" ~count:2000
    (make gen_ascii)
    (fun src ->
      match Ms2.Api.expand_string src with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Random patterns through the determinism checker                     *)
(* ------------------------------------------------------------------ *)

let gen_pattern =
  let open Ms2_syntax.Ast in
  let gen_sort = Gen.oneofl Ms2_mtype.Sort.all in
  let gen_tok =
    Gen.oneofl
      [ Token.SEMI; Token.COMMA; Token.LPAREN; Token.RPAREN;
        Token.LBRACKET; Token.RBRACKET; Token.IDENT "kw"; Token.COLON ]
  in
  let gen_pspec =
    Gen.sized
      (Gen.fix (fun self n ->
           if n = 0 then Gen.map (fun s -> Ps_sort s) gen_sort
           else
             let sub = self (n / 2) in
             Gen.oneof
               [ Gen.map (fun s -> Ps_sort s) gen_sort;
                 Gen.map2 (fun t p -> Ps_plus (Some t, p)) gen_tok sub;
                 Gen.map (fun p -> Ps_plus (None, p)) sub;
                 Gen.map2 (fun t p -> Ps_star (Some t, p)) gen_tok sub;
                 Gen.map (fun p -> Ps_star (None, p)) sub;
                 Gen.map2 (fun t p -> Ps_opt (Some t, p)) gen_tok sub;
                 Gen.map (fun p -> Ps_opt (None, p)) sub ]))
  in
  let counter = ref 0 in
  let gen_elem =
    Gen.oneof
      [ Gen.map (fun t -> Pe_token t) gen_tok;
        Gen.map
          (fun spec ->
            incr counter;
            Pe_binder
              { b_spec = spec;
                b_name = Ms2_syntax.Ast.ident (Printf.sprintf "b%d" !counter)
              })
          gen_pspec ]
  in
  Gen.list_size (Gen.int_range 0 8) gen_elem

let prop_determinism_total =
  Test.make ~name:"determinism checker is total" ~count:2000
    (make gen_pattern)
    (fun pat ->
      no_crash (fun () ->
          Ms2_pattern.Determinism.check_pattern ~loc:Ms2_support.Loc.dummy
            pat))

(* ------------------------------------------------------------------ *)
(* Random meta expressions through the type checker                    *)
(* ------------------------------------------------------------------ *)

let gen_meta_exp =
  Gen.sized
    (Gen.fix (fun self n ->
         if n = 0 then
           Gen.oneofl
             [ "e"; "s"; "ids"; "n"; "str"; "1"; "\"t\""; "gensym()";
               "length(ids)"; "*ids" ]
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ sub;
               Gen.map2 (Printf.sprintf "%s + %s") sub sub;
               Gen.map2 (Printf.sprintf "list(%s, %s)") sub sub;
               Gen.map2 (Printf.sprintf "cons(%s, %s)") sub sub;
               Gen.map (Printf.sprintf "length(%s)") sub;
               Gen.map (Printf.sprintf "reverse(%s)") sub;
               Gen.map (Printf.sprintf "map((@id x; x), %s)") sub;
               Gen.map (Printf.sprintf "symbolconc(\"p\", %s)") sub;
               Gen.map2 (Printf.sprintf "%s == %s") sub sub;
               Gen.map (Printf.sprintf "(%s)") sub;
               Gen.map (Printf.sprintf "`($e + %s)") sub ]))

let prop_infer_total =
  Test.make ~name:"meta type inference is total" ~count:1000
    (make gen_meta_exp)
    (fun src ->
      no_crash (fun () ->
          let tenv = Ms2_typing.Tenv.create () in
          let open Ms2_mtype in
          Ms2_typing.Tenv.add tenv "e" (Mtype.Ast Sort.Exp);
          Ms2_typing.Tenv.add tenv "s" (Mtype.Ast Sort.Stmt);
          Ms2_typing.Tenv.add tenv "ids" (Mtype.List (Mtype.Ast Sort.Id));
          Ms2_typing.Tenv.add tenv "n" Mtype.Int;
          Ms2_typing.Tenv.add tenv "str" Mtype.String;
          ignore (Ms2_parser.Parser.meta_expr_of_string ~tenv src)))

(* ------------------------------------------------------------------ *)
(* Random macro definitions end to end                                 *)
(* ------------------------------------------------------------------ *)

let gen_macro_program =
  let gen_sorts = Gen.oneofl [ "exp"; "stmt"; "id" ] in
  Gen.map2
    (fun sort body ->
      Printf.sprintf
        "syntax stmt m {| ( $$%s::a ) ; |} { %s }\nint f() { m (x); return \
         0; }"
        sort body)
    gen_sorts
    (Gen.oneofl
       [ "return `{use($a);};" (* ok when a is exp-like *);
         "return `{$a;};";
         "return a;" (* ok when a is stmt *);
         "return `{;};";
         "error(\"give up\"); return `{;};";
         "@id t = gensym(); return `{int $t = 1;};" ])

let prop_macro_defs_total =
  Test.make ~name:"random macro definitions never crash the pipeline"
    ~count:500 (make gen_macro_program)
    (fun src ->
      match Ms2.Api.expand_string src with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_token_soup; prop_random_bytes; prop_determinism_total;
        prop_infer_total; prop_macro_defs_total ]
  in
  Alcotest.run "fuzz" [ ("robustness", suite) ]
