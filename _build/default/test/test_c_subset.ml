(** Deep C front-end edge cases, cross-validated with gcc where
    available: every self-contained program here must (a) round-trip
    through our parser/printer and (b) be accepted by gcc in C89 mode
    after printing. *)

open Tutil

let gcc_available = Sys.command "gcc --version > /dev/null 2>&1" = 0

let gcc_accepts (c_code : string) : unit =
  if gcc_available then begin
    let src = Filename.temp_file "ms2sub" ".c" in
    let oc = open_out src in
    output_string oc c_code;
    close_out oc;
    let cmd =
      Printf.sprintf "gcc -std=c89 -w -fsyntax-only %s 2> %s.log" src src
    in
    if Sys.command cmd <> 0 then begin
      let log =
        try
          let ic = open_in (src ^ ".log") in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        with _ -> "?"
      in
      Alcotest.failf "gcc rejected printed output:\n%s\n---\n%s" log c_code
    end
  end

(* parse, print, re-parse (fixed point), then let gcc judge the print *)
let roundtrip src =
  let printed = Ms2_syntax.Pretty.program_to_string (pprog src) in
  Alcotest.(check string) "fixed point" (canon src) (norm printed);
  gcc_accepts printed

let declarators () =
  roundtrip
    "typedef int (*binop)(int, int);\n\
     int add(int a, int b) { return a + b; }\n\
     binop table[4];\n\
     int (*pick(int i))(int, int) { return table[i]; }\n\
     int use(void) { return pick(0)(1, 2); }"

let struct_recursion () =
  roundtrip
    "struct node { int value; struct node *next; };\n\
     int sum(struct node *n)\n\
     {\n\
     int total = 0;\n\
     while (n != 0) { total += n->value; n = n->next; }\n\
     return total;\n\
     }"

let unions_enums () =
  roundtrip
    "enum tag { t_int, t_ptr = 5, t_next };\n\
     union payload { int i; char *p; };\n\
     struct boxed { enum tag tag; union payload u; };\n\
     int unbox(struct boxed *b)\n\
     {\n\
     switch (b->tag) {\n\
     case t_int: return b->u.i;\n\
     default: return 0;\n\
     }\n\
     }"

let expressions () =
  roundtrip
    "int f(int a, int b, int c)\n\
     {\n\
     int r;\n\
     r = a ? b ? 1 : 2 : c ? 3 : 4;\n\
     r += (a, b, c);\n\
     r -= -a - -b;\n\
     r <<= a & 3;\n\
     r = sizeof(int) + sizeof(r);\n\
     r = (a < b) == (b < c);\n\
     return r % (c | 1);\n\
     }"

let pointer_arithmetic () =
  roundtrip
    "int first(int *a, int n)\n\
     {\n\
     int *p = a;\n\
     int **pp = &p;\n\
     while (p - a < n && *p == 0) p++;\n\
     return **pp;\n\
     }"

let kr_and_ansi () =
  roundtrip
    "int mul(a, b) int a; int b; { return a * b; }\n\
     int apply(int (*f)(), int x) { return f(x, x); }\n\
     int go(void) { return apply(mul, 3); }"

let floats () =
  roundtrip
    "double area(double r) { return 3.14159 * r * r; }\n\
     float half(float x) { return x / 2.0f; }\n\
     double sci(void) { return 1.5e-3 + 2e4; }"

let scoped_shadowing () =
  roundtrip
    "int x;\n\
     int f(void)\n\
     {\n\
     int x = 1;\n\
     {\n\
     char x = 'a';\n\
     { int y = x + 1; x = y; }\n\
     }\n\
     return x;\n\
     }"

let labels_goto () =
  roundtrip
    "int gcd(int a, int b)\n\
     {\n\
     again:\n\
     if (b == 0) return a;\n\
     { int t = a % b; a = b; b = t; }\n\
     goto again;\n\
     }"

let string_escapes () =
  roundtrip
    "char *lines = \"a\\nb\\tc\\\\d\\\"e\";\n\
     char nl = '\\n';\n\
     char quote = '\\'';"

let expansion_through_gcc () =
  (* the *expansion* of a macro-using program is gcc-valid too *)
  let out =
    expand
      "syntax stmt guard {| ( $$exp::c ) $$stmt::s |} {\n\
       return `{if ($c) $s;};\n\
       }\n\
       int clamp(int x, int hi)\n\
       {\n\
       guard (x > hi) { x = hi; }\n\
       guard (x < 0) { x = 0; }\n\
       return x;\n\
       }"
  in
  gcc_accepts out

let () =
  Alcotest.run "c-subset"
    [ ( "c-subset",
        [ tc "function pointers and typedefs" declarators;
          tc "self-referential structs" struct_recursion;
          tc "unions and valued enums" unions_enums;
          tc "expression zoo" expressions;
          tc "pointer arithmetic" pointer_arithmetic;
          tc "K&R and ANSI mixed" kr_and_ansi;
          tc "float literals" floats;
          tc "scoped shadowing" scoped_shadowing;
          tc "labels and goto" labels_goto;
          tc "string escapes" string_escapes;
          tc "expansions are gcc-valid" expansion_through_gcc ] ) ]
