(** Tests for the paper-notation s-expression printer used by the
    regenerated figures. *)

open Tutil
module Sexp = Ms2_syntax.Sexp

let decl_sexp () =
  Alcotest.(check string) "plain declaration"
    "(declaration (int) ((init-declarator (direct-declarator x) ())))"
    (Sexp.decl_to_string (pdecl "int x;"));
  Alcotest.(check string) "with initializer"
    "(declaration (int) ((init-declarator (direct-declarator x) (const 1))))"
    (Sexp.decl_to_string (pdecl "int x = 1;"))

let stmt_sexp () =
  Alcotest.(check string) "return" "(r-s (exp (id x)))"
    (Sexp.stmt_to_string (pstmt "return (x);"));
  let s = Sexp.stmt_to_string (pstmt "{ int x; f(x); }") in
  check_contains ~msg:"compound head" s "(c-s (decl-list ((decl \"int x\")))";
  check_contains ~msg:"stmt list" s "(stmt-list"

let expr_sexp () =
  Alcotest.(check string) "binary" "(+ (id a) (id b))"
    (Sexp.expr_to_string (pexpr "a + b"));
  Alcotest.(check string) "call" "(call (id f) (id x) (const 1))"
    (Sexp.expr_to_string (pexpr "f(x, 1)"))

let () =
  Alcotest.run "sexp"
    [ ( "sexp",
        [ tc "declarations" decl_sexp;
          tc "statements" stmt_sexp;
          tc "expressions" expr_sexp ] ) ]
