(** Template instantiation: evaluating a backquote expression.

    Filling walks the template's object-code AST, evaluates every
    placeholder (splice) in the meta environment, and substitutes the
    resulting AST values *at the tree level* — the encapsulation property
    that makes [A * B] with [A = x + y] expand to [(x + y) * ...] rather
    than token soup.

    List-typed placeholder values are flattened into their surrounding
    syntactic lists (statement lists, declaration lists, argument lists,
    init-declarator lists, enumerator lists, parameter lists), and
    separators are reconstructed by the pretty-printer — "because our
    syntax macro system explicitly constructs ASTs, and not concrete
    code, these extraneous concerns vanish" (paper, §2).

    [fill_template] is parameterized by the interpreter's [eval] to break
    the mutual dependence between filling and evaluation. *)

open Ms2_syntax.Ast
open Value

module Loc = Ms2_support.Loc
module Failpoint = Ms2_support.Failpoint

type ctx = {
  eval : env -> expr -> Value.t;
  env : env;
  renames : (string * string) list;
      (** hygienic alpha-renaming of template-introduced block locals:
          innermost binding first.  Populated only when
          [env.hygienic]. *)
  origin : Loc.origin;
      (** the invocation frame this template is being filled for
          (captured from [env.provenance] at entry); stamped onto every
          produced node so diagnostics in expanded code carry a
          backtrace *)
}

let error = Value.error

(** Stamp the current invocation's provenance onto a template span.
    Template text keeps its own (definition-site) span but gains the
    [Macro] origin; a node with no span at all degrades to the call
    site, which is the best location we have.  Locations that already
    carry an origin (code produced by an *earlier* expansion, flowing
    through this one) are left alone — their chain is already longer
    than anything we could write. *)
let stamp ctx (loc : Loc.t) : Loc.t =
  match ctx.origin with
  | Loc.User -> loc
  | Loc.Macro f -> (
      if Loc.is_dummy loc then f.Loc.call_site
      else
        match Loc.origin loc with
        | Loc.User -> Loc.set_origin loc ctx.origin
        | Loc.Macro _ -> loc)

let stamp_ident ctx (id : ident) : ident =
  { id with id_loc = stamp ctx id.id_loc }

let eval_splice ctx (sp : splice) : Value.t = ctx.eval ctx.env sp.sp_expr

(* ------------------------------------------------------------------ *)
(* Hygiene                                                             *)
(* ------------------------------------------------------------------ *)

let rename_ident ctx (id : ident) : ident =
  match List.assoc_opt id.id_name ctx.renames with
  | Some fresh ->
      (* the fresh name keeps the template ident's span but gains the
         invocation origin, so hygiene renames stay traceable *)
      { (stamp_ident ctx id) with id_name = fresh }
  | None -> id

let rec declarator_name = function
  | D_ident id -> Some id.id_name
  | D_abstract | D_splice _ -> None
  | D_pointer d | D_array (d, _) | D_func (d, _) -> declarator_name d

(** Names declared by the template's own text at the top of a compound
    (splice-introduced declarations come from the macro user and are
    never renamed; splice-named declarators, e.g. [int $tmp = ...], are
    the macro writer's *intentional* captures and are left alone too). *)
let template_locals (items : block_item list) : string list =
  List.concat_map
    (function
      | Bi_decl { d = Decl_plain (_, idecls); _ } ->
          List.filter_map
            (function
              | Init_decl (d, _) -> declarator_name d
              | Init_splice _ -> None)
            idecls
      | Bi_decl _ | Bi_stmt _ -> [])
    items

(* ------------------------------------------------------------------ *)
(* Value -> syntax coercions                                           *)
(* ------------------------------------------------------------------ *)

(* AST values built by the meta primitives (make_id, gensym, make_num,
   ...) carry no span of their own; give such nodes the splice's
   (already provenance-stamped) location as they enter object code, so
   every node in expanded output is locatable.  Values that do carry a
   span — user-written actuals above all — keep it untouched: errors in
   the user's own code point at the user's own code. *)
let patch_id ~loc (id : ident) : ident =
  if Loc.is_dummy id.id_loc then { id with id_loc = loc } else id

let patch_expr ~loc (e : expr) : expr =
  if Loc.is_dummy e.eloc then { e with eloc = loc } else e

let patch_stmt ~loc (s : stmt) : stmt =
  if Loc.is_dummy s.sloc then { s with sloc = loc } else s

let patch_decl ~loc (d : decl) : decl =
  if Loc.is_dummy d.dloc then { d with dloc = loc } else d

let rec value_to_expr ~loc (v : Value.t) : expr =
  match v with
  | Vnode (N_exp e) -> patch_expr ~loc e
  | Vnode (N_id id) -> mk_expr ~loc (E_ident (patch_id ~loc id))
  | Vnode (N_num c) -> mk_expr ~loc (E_const c)
  | Vlist [ v ] -> value_to_expr ~loc v
  | v -> error ~loc "placeholder produced a %s where an expression was \
                     expected" (type_name v)

let value_to_ident ~loc (v : Value.t) : ident =
  match v with
  | Vnode (N_id id) -> patch_id ~loc id
  | v -> error ~loc "placeholder produced a %s where an identifier was \
                     expected" (type_name v)

let rec value_to_stmts ~loc (v : Value.t) : stmt list =
  match v with
  | Vnode (N_stmt s) -> [ patch_stmt ~loc s ]
  | Vlist items -> List.concat_map (value_to_stmts ~loc) items
  | v -> error ~loc "placeholder produced a %s where statements were \
                     expected" (type_name v)

(** A statement splice in a position that holds exactly one statement
    (e.g. a branch of [if]): several statements are wrapped in a block,
    zero become the null statement. *)
let value_to_stmt ~loc (v : Value.t) : stmt =
  match value_to_stmts ~loc v with
  | [ s ] -> s
  | [] -> mk_stmt ~loc St_null
  | many -> mk_stmt ~loc (St_compound (List.map (fun s -> Bi_stmt s) many))

let rec value_to_decls ~loc (v : Value.t) : decl list =
  match v with
  | Vnode (N_decl d) -> [ patch_decl ~loc d ]
  | Vlist items -> List.concat_map (value_to_decls ~loc) items
  | v -> error ~loc "placeholder produced a %s where declarations were \
                     expected" (type_name v)

let value_to_decl ~loc (v : Value.t) : decl =
  match value_to_decls ~loc v with
  | [ d ] -> d
  | ds ->
      error ~loc "placeholder produced %d declarations where exactly one \
                  was expected" (List.length ds)

let value_to_specs ~loc (v : Value.t) : spec list =
  match v with
  | Vnode (N_typespec specs) -> specs
  | v -> error ~loc "placeholder produced a %s where a type specifier was \
                     expected" (type_name v)

let value_to_declarator ~loc (v : Value.t) : declarator =
  match v with
  | Vnode (N_declarator d) -> d
  | Vnode (N_id id) -> D_ident (patch_id ~loc id)
  | v -> error ~loc "placeholder produced a %s where a declarator was \
                     expected" (type_name v)

let rec value_to_init_declarators ~loc (v : Value.t) : init_declarator list =
  match v with
  | Vnode (N_init_declarator d) -> [ d ]
  | Vnode (N_declarator d) -> [ Init_decl (d, None) ]
  | Vnode (N_id id) -> [ Init_decl (D_ident (patch_id ~loc id), None) ]
  | Vlist items -> List.concat_map (value_to_init_declarators ~loc) items
  | v -> error ~loc "placeholder produced a %s where init-declarators were \
                     expected" (type_name v)

let rec value_to_enumerators ~loc (v : Value.t) : enumerator list =
  match v with
  | Vnode (N_enumerator e) -> [ e ]
  | Vnode (N_id id) -> [ Enum_item (Ii_id (patch_id ~loc id), None) ]
  | Vlist items -> List.concat_map (value_to_enumerators ~loc) items
  | v -> error ~loc "placeholder produced a %s where enumeration constants \
                     were expected" (type_name v)

let rec value_to_params ~loc (v : Value.t) : param list =
  match v with
  | Vnode (N_param p) -> [ p ]
  | Vnode (N_id id) -> [ P_name (patch_id ~loc id) ]
  | Vlist items -> List.concat_map (value_to_params ~loc) items
  | v -> error ~loc "placeholder produced a %s where parameters were \
                     expected" (type_name v)

let rec value_to_exprs ~loc (v : Value.t) : expr list =
  match v with
  | Vlist items -> List.concat_map (value_to_exprs ~loc) items
  | v -> [ value_to_expr ~loc v ]

let value_to_node ~loc (v : Value.t) : node =
  match v with
  | Vnode n -> n
  | v -> error ~loc "placeholder produced a %s where an AST value was \
                     expected" (type_name v)

(* ------------------------------------------------------------------ *)
(* Walk                                                                *)
(* ------------------------------------------------------------------ *)

let rec fill_expr ctx (expr : expr) : expr =
  let loc = stamp ctx expr.eloc in
  Value.charge_node ctx.env ~loc;
  let re e = { e; eloc = loc } in
  match expr.e with
  | E_splice sp -> value_to_expr ~loc (eval_splice ctx sp)
  | E_ident id when ctx.renames <> [] -> re (E_ident (rename_ident ctx id))
  | E_ident _ | E_const _ -> re expr.e
  | E_call (f, args) ->
      let args =
        List.concat_map
          (fun (a : expr) ->
            match a.e with
            | E_splice sp ->
                value_to_exprs ~loc:(stamp ctx a.eloc) (eval_splice ctx sp)
            | _ -> [ fill_expr ctx a ])
          args
      in
      re (E_call (fill_expr ctx f, args))
  | E_index (a, i) -> re (E_index (fill_expr ctx a, fill_expr ctx i))
  | E_member (e, f) ->
      re (E_member (fill_expr ctx e, fill_id_or_splice ctx f))
  | E_arrow (e, f) ->
      re (E_arrow (fill_expr ctx e, fill_id_or_splice ctx f))
  | E_postincr e -> re (E_postincr (fill_expr ctx e))
  | E_postdecr e -> re (E_postdecr (fill_expr ctx e))
  | E_unary (op, e) -> re (E_unary (op, fill_expr ctx e))
  | E_cast (ct, e) -> re (E_cast (fill_ctype ctx ct, fill_expr ctx e))
  | E_sizeof_expr e -> re (E_sizeof_expr (fill_expr ctx e))
  | E_sizeof_type ct -> re (E_sizeof_type (fill_ctype ctx ct))
  | E_binary (op, a, b) -> re (E_binary (op, fill_expr ctx a, fill_expr ctx b))
  | E_cond (c, t, e) ->
      re (E_cond (fill_expr ctx c, fill_expr ctx t, fill_expr ctx e))
  | E_assign (op, l, r) -> re (E_assign (op, fill_expr ctx l, fill_expr ctx r))
  | E_comma (a, b) -> re (E_comma (fill_expr ctx a, fill_expr ctx b))
  | E_backquote _ | E_lambda _ ->
      (* meta code embedded in a template (inside a generated macro
         definition); its placeholders belong to the generated macro and
         fire at *its* expansion time, so leave it untouched *)
      re expr.e
  | E_macro inv -> re (E_macro (fill_invocation ctx inv))

and fill_id_or_splice ctx = function
  | Ii_id id -> Ii_id (stamp_ident ctx id)
  | Ii_splice sp ->
      Ii_id (value_to_ident ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp))

and fill_ctype ctx ct =
  { ct_specs = fill_specs ctx ct.ct_specs;
    ct_decl = fill_declarator ctx ct.ct_decl }

and fill_specs ctx (specs : spec list) : spec list =
  List.concat_map
    (function
      | S_splice sp ->
          value_to_specs ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp)
      | S_enum es -> [ S_enum (fill_enum_spec ctx es) ]
      | S_struct (tag, fields) ->
          [ S_struct
              (Option.map (fill_id_or_splice ctx) tag,
               fill_fields ctx fields) ]
      | S_union (tag, fields) ->
          [ S_union
              (Option.map (fill_id_or_splice ctx) tag,
               fill_fields ctx fields) ]
      | s -> [ s ])
    specs

and fill_fields ctx = function
  | None -> None
  | Some fields ->
      Some
        (List.map
           (fun f ->
             { f_specs = fill_specs ctx f.f_specs;
               f_declarators = List.map (fill_declarator ctx) f.f_declarators
             })
           fields)

and fill_enum_spec ctx (es : enum_spec) : enum_spec =
  let tag =
    Option.map
      (function
        | Ii_id id -> Ii_id (stamp_ident ctx id)
        | Ii_splice sp ->
            Ii_id
              (value_to_ident ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp)))
      es.enum_tag
  in
  let items =
    Option.map
      (List.concat_map (function
        | Enum_item (id, value) ->
            [ Enum_item
                (fill_id_or_splice ctx id, Option.map (fill_expr ctx) value)
            ]
        | Enum_splice sp ->
            value_to_enumerators ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp)))
      es.enum_items
  in
  { enum_tag = tag; enum_items = items }

and fill_declarator ctx (d : declarator) : declarator =
  match d with
  | D_ident id when ctx.renames <> [] -> D_ident (rename_ident ctx id)
  | D_ident id -> D_ident (stamp_ident ctx id)
  | D_abstract -> d
  | D_pointer d -> D_pointer (fill_declarator ctx d)
  | D_array (d, size) ->
      D_array (fill_declarator ctx d, Option.map (fill_expr ctx) size)
  | D_func (d, params) -> D_func (fill_declarator ctx d, fill_params ctx params)
  | D_splice sp ->
      value_to_declarator ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp)

and fill_params ctx (params : param list) : param list =
  List.concat_map
    (function
      | P_decl (specs, d) ->
          [ P_decl (fill_specs ctx specs, fill_declarator ctx d) ]
      | P_name id -> [ P_name (stamp_ident ctx id) ]
      | P_ellipsis -> [ P_ellipsis ]
      | P_splice sp ->
          value_to_params ~loc:(stamp ctx sp.sp_loc) (eval_splice ctx sp))
    params

and fill_init ctx = function
  | I_expr e -> I_expr (fill_expr ctx e)
  | I_list items -> I_list (List.map (fill_init ctx) items)

and fill_init_declarators ctx (idecls : init_declarator list) :
    init_declarator list =
  List.concat_map
    (function
      | Init_decl (d, init) ->
          [ Init_decl (fill_declarator ctx d, Option.map (fill_init ctx) init)
          ]
      | Init_splice sp ->
          value_to_init_declarators ~loc:(stamp ctx sp.sp_loc)
            (eval_splice ctx sp))
    idecls

and fill_stmt ctx (stmt : stmt) : stmt =
  let loc = stamp ctx stmt.sloc in
  Value.charge_node ctx.env ~loc;
  let rs s = { s; sloc = loc } in
  match stmt.s with
  | St_splice sp -> value_to_stmt ~loc (eval_splice ctx sp)
  | St_expr e -> rs (St_expr (fill_expr ctx e))
  | St_compound items ->
      (* hygiene: block locals introduced by the template text get fresh
         names, so they can neither capture nor be captured by spliced
         user code *)
      let ctx =
        if not ctx.env.hygienic then ctx
        else
          match template_locals items with
          | [] -> ctx
          | locals ->
              let mapping =
                List.map
                  (fun name ->
                    (name, Ms2_support.Gensym.fresh ctx.env.gensym name))
                  locals
              in
              { ctx with renames = mapping @ ctx.renames }
      in
      rs (St_compound (fill_block_items ctx items))
  | St_if (c, t, e) ->
      rs
        (St_if
           (fill_expr ctx c, fill_stmt ctx t, Option.map (fill_stmt ctx) e))
  | St_while (c, body) -> rs (St_while (fill_expr ctx c, fill_stmt ctx body))
  | St_do (body, c) -> rs (St_do (fill_stmt ctx body, fill_expr ctx c))
  | St_for (init, cond, step, body) ->
      rs
        (St_for
           ( Option.map (fill_expr ctx) init,
             Option.map (fill_expr ctx) cond,
             Option.map (fill_expr ctx) step,
             fill_stmt ctx body ))
  | St_switch (e, body) -> rs (St_switch (fill_expr ctx e, fill_stmt ctx body))
  | St_case (e, s) -> rs (St_case (fill_expr ctx e, fill_stmt ctx s))
  | St_default s -> rs (St_default (fill_stmt ctx s))
  | St_return e -> rs (St_return (Option.map (fill_expr ctx) e))
  | St_break | St_continue | St_goto _ | St_null -> rs stmt.s
  | St_label (id, s) -> rs (St_label (id, fill_stmt ctx s))
  | St_macro inv -> rs (St_macro (fill_invocation ctx inv))

and fill_block_items ctx (items : block_item list) : block_item list =
  List.concat_map
    (function
      | Bi_decl { d = Decl_splice sp; dloc } ->
          List.map
            (fun d -> Bi_decl d)
            (value_to_decls ~loc:(stamp ctx dloc) (eval_splice ctx sp))
      | Bi_decl d -> List.map (fun d -> Bi_decl d) (fill_decl_multi ctx d)
      | Bi_stmt { s = St_splice sp; sloc } ->
          List.map
            (fun s -> Bi_stmt s)
            (value_to_stmts ~loc:(stamp ctx sloc) (eval_splice ctx sp))
      | Bi_stmt s -> [ Bi_stmt (fill_stmt ctx s) ])
    items

and fill_decl ctx (decl : decl) : decl =
  match fill_decl_multi ctx decl with
  | [ d ] -> d
  | ds ->
      error ~loc:decl.dloc
        "placeholder produced %d declarations where exactly one was expected"
        (List.length ds)

and fill_decl_multi ctx (decl : decl) : decl list =
  let loc = stamp ctx decl.dloc in
  Value.charge_node ctx.env ~loc;
  let rd d = [ { d; dloc = loc } ] in
  match decl.d with
  | Decl_splice sp -> value_to_decls ~loc (eval_splice ctx sp)
  | Decl_plain (specs, idecls) ->
      rd (Decl_plain (fill_specs ctx specs, fill_init_declarators ctx idecls))
  | Decl_fun (specs, d, kr, body) ->
      rd
        (Decl_fun
           ( fill_specs ctx specs,
             fill_declarator ctx d,
             List.concat_map (fill_decl_multi ctx) kr,
             fill_stmt ctx body ))
  | Decl_metadcl inner -> rd (Decl_metadcl (fill_decl ctx inner))
  | Decl_macro_def md ->
      (* a generated macro definition: the *name* may be parameterized
         by the generating macro; the body is meta code whose
         placeholders fire when the generated macro is expanded, so it
         is left untouched (generated macros are self-contained) *)
      rd (Decl_macro_def { md with m_name = fill_id_or_splice ctx md.m_name })
  | Decl_macro inv -> rd (Decl_macro (fill_invocation ctx inv))

and fill_invocation ctx (inv : invocation) : invocation =
  (* stamping the invocation's own location is what chains *nested*
     expansions: when the engine later expands this invocation, its call
     site already records which expansion wrote it *)
  { inv with
    inv_loc = stamp ctx inv.inv_loc;
    inv_actuals = List.map (fun (n, a) -> (n, fill_actual ctx a)) inv.inv_actuals
  }

and fill_actual ctx (a : actual) : actual =
  match a with
  | Act_node (N_exp { e = E_splice sp; eloc }) ->
      (* an identifier- or num-typed placeholder used as an actual *)
      Act_node (value_to_node ~loc:(stamp ctx eloc) (eval_splice ctx sp))
  | Act_node n -> Act_node (fill_node ctx n)
  | Act_list items -> Act_list (List.map (fill_actual ctx) items)
  | Act_tuple fields ->
      Act_tuple (List.map (fun (n, a) -> (n, fill_actual ctx a)) fields)

and fill_node ctx (n : node) : node =
  match n with
  | N_id id -> N_id (stamp_ident ctx id)
  | N_num _ -> n
  | N_exp e -> N_exp (fill_expr ctx e)
  | N_stmt s -> N_stmt (fill_stmt ctx s)
  | N_decl d -> N_decl (fill_decl ctx d)
  | N_typespec specs -> N_typespec (fill_specs ctx specs)
  | N_declarator d -> N_declarator (fill_declarator ctx d)
  | N_init_declarator d -> (
      let loc = stamp ctx (node_loc n) in
      match fill_init_declarators ctx [ d ] with
      | [ d ] -> N_init_declarator d
      | _ ->
          error ~loc
            "placeholder produced several init-declarators where one was \
             expected")
  | N_param p -> (
      let loc = stamp ctx (node_loc n) in
      match fill_params ctx [ p ] with
      | [ p ] -> N_param p
      | _ ->
          error ~loc
            "placeholder produced several parameters where one was expected")
  | N_enumerator e -> (
      let loc = stamp ctx (node_loc n) in
      match fill_enum_spec ctx { enum_tag = None; enum_items = Some [ e ] }
      with
      | { enum_items = Some [ e ]; _ } -> N_enumerator e
      | _ ->
          error ~loc
            "placeholder produced several enumerators where one was expected")

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Evaluate a backquote template to a value.  [eval] is the
    interpreter's expression evaluator. *)
let c_templates = Ms2_support.Obs.Metrics.counter "fill.templates"

let fill_template ~(eval : env -> expr -> Value.t) (env : env)
    (tpl : template) : Value.t =
  let tpl_loc =
    match tpl with
    | T_exp e -> e.eloc
    | T_stmt s -> s.sloc
    | T_decl d -> d.dloc
    | T_general _ -> Loc.dummy
  in
  Failpoint.hit ~watchdog:env.budget.watchdog ~loc:tpl_loc "fill/alloc";
  Ms2_support.Obs.Metrics.incr c_templates;
  Ms2_support.Obs.with_span ~cat:"fill" "fill-template" (fun () ->
      let ctx = { eval; env; renames = []; origin = !(env.provenance) } in
      match tpl with
      | T_exp e -> Vnode (N_exp (fill_expr ctx e))
      | T_stmt s -> Vnode (N_stmt (fill_stmt ctx s))
      | T_decl d -> Vnode (N_decl (fill_decl ctx d))
      | T_general (_ps, a) -> Value.of_actual (fill_actual ctx a))
