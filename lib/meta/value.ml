(** Runtime values of the macro (meta) language.

    Meta programs run at macro-expansion time; their values are C scalars
    (ints, strings), AST nodes, lists, tuples, and the paper's
    downward-only anonymous functions. *)

open Ms2_syntax
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort

type t =
  | Vint of int
  | Vstring of string
  | Vnode of Ast.node
  | Vlist of t list
  | Vtuple of (string * t) list
  | Vclosure of closure
  | Vbuiltin of string  (** a primitive function used as a value *)
  | Vvoid  (** value of [error]/[print]; also "uninitialized" *)

and closure = {
  cl_params : (string * Mtype.t) list;
  cl_body : body;
  cl_env : env;  (** captured environment (downward-only closures) *)
}

(** Anonymous functions have expression bodies (no [return] needed, per
    the paper); meta functions have statement bodies. *)
and body = Body_expr of Ast.expr | Body_stmt of Ast.stmt

(** Runtime environments: a stack of mutable scopes.  The global scope
    holds [metadcl] globals and meta functions, and persists across
    macro expansions — which is what makes the paper's non-local
    transformations (the window-procedure example) work. *)
and env = {
  mutable scopes : (string, t ref) Hashtbl.t list;
  gensym : Gensym.t;
  mutable hygienic : bool;
      (** rename template-introduced block locals automatically when
          filling templates (the paper's future-work hygiene, opt-in) *)
  mutable semantic : Ms2_csem.Senv.t option;
      (** the object-level symbol table at the current expansion point,
          maintained by the engine; powers the semantic-macro primitives
          (exp_typespec, type_name_of, ...) *)
  expand_invocation : (Ast.invocation -> t) ref;
      (** hook installed by the expansion engine so meta code (and filled
          templates) can expand macro invocations *)
  budget : budget;
      (** fuel and output-size accounting, shared (not copied) by every
          {!derived} environment so all meta code drains one pool *)
  provenance : Loc.origin ref;
      (** the expansion frame the engine is currently inside ([User]
          outside any invocation); shared by every {!derived}
          environment.  The template filler reads it to stamp the
          origin of every node it produces *)
  greads : int ref;
      (** monotonic odometer of lookups that resolved in the {e global}
          scope (a [ref] so {!derived} environments share it): the
          speculative fragment commit protocol measures its delta to
          learn whether a fragment observed shared [metadcl] state.
          Misses are not counted — an unbound name either errors or
          falls through to a builtin, neither of which can go stale. *)
}

(** Mutable resource counters.  [fuel] and [nodes] count *down*;
    [max_int] effectively disables a bound (decrements still happen, so
    consumption can always be observed via the [_initial] baselines).
    The engine narrows both to per-invocation caps around each macro
    invocation. *)
and budget = {
  mutable fuel : int;  (** remaining interpreter steps *)
  mutable nodes : int;  (** remaining produced-AST node allowance *)
  fuel_initial : int;
  nodes_initial : int;
  watchdog : Watchdog.t;
      (** wall-clock deadline, polled from the fuel hook so a stalling
          meta-program is bounded in time as well as in steps *)
}

(* No dummy default: every expansion-error site must say where.  Sites
   with genuinely no span pass [Loc.dummy] explicitly. *)
let error ~loc fmt = Diag.error ~loc Diag.Expansion fmt

let create_budget ?(fuel = max_int) ?(nodes = max_int) ?watchdog () : budget =
  let watchdog =
    match watchdog with Some w -> w | None -> Watchdog.create ()
  in
  { fuel; nodes; fuel_initial = fuel; nodes_initial = nodes; watchdog }

let fuel_consumed b = b.fuel_initial - b.fuel
let nodes_produced b = b.nodes_initial - b.nodes

let out_of_fuel ~loc =
  Diag.error ~loc ~code:Diag.code_fuel Diag.Resource
    "meta-program fuel budget exhausted; is a macro body looping forever?"

(** Charge one interpreter step; raises a [Resource] diagnostic once the
    budget runs dry.  Kept tiny — it runs on every statement executed
    and expression evaluated. *)
let charge_fuel env ~loc =
  let b = env.budget in
  let f = b.fuel - 1 in
  b.fuel <- f;
  if f < 0 then out_of_fuel ~loc;
  Watchdog.poll b.watchdog ~loc

let out_of_nodes ~loc =
  Diag.error ~loc ~code:Diag.code_nodes Diag.Resource
    "macro expansion exceeded its produced-AST node budget (an expansion \
     bomb?)"

(** Charge one produced AST node (called by the template filler). *)
let charge_node env ~loc =
  let b = env.budget in
  let n = b.nodes - 1 in
  b.nodes <- n;
  if n < 0 then out_of_nodes ~loc

let create_env ?gensym ?budget () : env =
  {
    scopes = [ Hashtbl.create 16 ];
    gensym = (match gensym with Some g -> g | None -> Gensym.create ());
    hygienic = false;
    semantic = None;
    expand_invocation =
      ref (fun (inv : Ast.invocation) ->
          error ~loc:inv.Ast.inv_loc
            "macro invocations inside meta code need an expansion engine");
    budget = (match budget with Some b -> b | None -> create_budget ());
    provenance = ref Loc.User;
    greads = ref 0;
  }

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] | [ _ ] -> invalid_arg "Value.pop_scope: global scope"
  | _ :: rest -> env.scopes <- rest

let with_scope env f =
  push_scope env;
  Fun.protect ~finally:(fun () -> pop_scope env) f

(** A child environment sharing the global scope (used to run a macro
    body: its locals must not leak, but [metadcl] globals are shared). *)
let derived env : env =
  match List.rev env.scopes with
  | global :: _ ->
      { env with scopes = [ Hashtbl.create 16; global ] }
  | [] -> assert false

let bind env name v =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> assert false

let bind_global env name v =
  match List.rev env.scopes with
  | global :: _ -> Hashtbl.replace global name (ref v)
  | [] -> assert false

let lookup_ref env name : t ref option =
  let rec go = function
    | [] -> None
    | [ global ] -> (
        match Hashtbl.find_opt global name with
        | Some r ->
            (* the last scope is the global one: a hit here is an
               observation of shared state (see [greads]) *)
            env.greads := !(env.greads) + 1;
            Some r
        | None -> None)
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some r -> Some r
        | None -> go rest)
  in
  go env.scopes

let lookup env name : t option = Option.map ( ! ) (lookup_ref env name)

(** Default value for a declared-but-uninitialized meta variable: lists
    start empty (so [metadcl @stmt frags[];] can be accumulated into),
    ints are 0, strings are empty; AST variables start out void and
    reading one is an expansion error. *)
let rec default_of_type : Mtype.t -> t = function
  | Mtype.Int -> Vint 0
  | Mtype.String -> Vstring ""
  | Mtype.List _ -> Vlist []
  | Mtype.Tuple fields ->
      Vtuple
        (List.map
           (fun f -> (f.Mtype.fld_name, default_of_type f.Mtype.fld_type))
           fields)
  | Mtype.Ast _ | Mtype.Void | Mtype.Fun _ -> Vvoid

let type_name = function
  | Vint _ -> "int"
  | Vstring _ -> "string"
  | Vnode n -> "@" ^ Sort.keyword (Ast.node_sort n)
  | Vlist _ -> "list"
  | Vtuple _ -> "tuple"
  | Vclosure _ | Vbuiltin _ -> "function"
  | Vvoid -> "void"

let rec pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vstring s -> Fmt.pf ppf "%S" s
  | Vnode n -> Fmt.pf ppf "@[%s@]" (Pretty.node_to_string n)
  | Vlist items -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) items
  | Vtuple fields ->
      let f ppf (n, v) = Fmt.pf ppf "%s = %a" n pp v in
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") f) fields
  | Vclosure _ -> Fmt.string ppf "<function>"
  | Vbuiltin name -> Fmt.pf ppf "<builtin %s>" name
  | Vvoid -> Fmt.string ppf "<void>"

let to_string v = Fmt.str "%a" pp v

(** Convert a parsed actual parameter to a runtime value. *)
let rec of_actual : Ast.actual -> t = function
  | Ast.Act_node n -> Vnode n
  | Ast.Act_list items -> Vlist (List.map of_actual items)
  | Ast.Act_tuple fields ->
      Vtuple (List.map (fun (n, a) -> (n, of_actual a)) fields)

(* -- tuple field selection ------------------------------------------ *)

(* Below this width a linear scan (pointer-compare fast path first: both
   the selector and the stored field names are interned by the lexer) is
   cheaper than any index. *)
let tuple_index_threshold = 16

(* Tiny identity-keyed cache of field indexes for wide tuples.  Keyed by
   the physical fields list, so a hot loop selecting from the same tuple
   value builds its index once.  Fixed size, round-robin eviction: the
   cache can never retain more than [Array.length] dead tuples. *)
let tuple_index_cache : ((string * t) list * t Intern.Tbl.t) option array =
  Array.make 8 None

let tuple_index_next = ref 0

let tuple_index (fields : (string * t) list) : t Intern.Tbl.t =
  let n = Array.length tuple_index_cache in
  let rec probe i =
    if i >= n then None
    else
      match tuple_index_cache.(i) with
      | Some (key, idx) when key == fields -> Some idx
      | _ -> probe (i + 1)
  in
  match probe 0 with
  | Some idx -> idx
  | None ->
      let idx = Intern.Tbl.create (List.length fields * 2) in
      List.iter
        (fun (name, v) ->
          let sym = Intern.intern name in
          (* first field wins, matching assoc-style resolution *)
          if not (Intern.Tbl.mem idx sym) then Intern.Tbl.replace idx sym v)
        fields;
      tuple_index_cache.(!tuple_index_next) <- Some (fields, idx);
      tuple_index_next := (!tuple_index_next + 1) mod n;
      idx

(** [tuple_field fields name] resolves a field of a [Vtuple] payload.
    Narrow tuples use a pointer-fast-path scan; wide ones (≥ 16 fields)
    go through a per-value memoized interned-key index, so repeated
    selections cost O(1) instead of O(width). *)
let tuple_field (fields : (string * t) list) (name : string) : t option =
  let rec scan n = function
    | [] -> None
    | (f, v) :: rest ->
        if f == name || String.equal f name then Some v
        else if n >= tuple_index_threshold then
          Intern.Tbl.find_opt (tuple_index fields) (Intern.intern name)
        else scan (n + 1) rest
  in
  scan 0 fields

(** Truthiness for meta conditionals: ints like C; other values err. *)
let truthy ~loc = function
  | Vint n -> n <> 0
  | v -> error ~loc "expected an int in a condition, got a %s" (type_name v)

let as_int ~loc ~what = function
  | Vint n -> n
  | v -> error ~loc "%s: expected an int, got a %s" what (type_name v)

let as_string ~loc ~what = function
  | Vstring s -> s
  | v -> error ~loc "%s: expected a string, got a %s" what (type_name v)

let as_list ~loc ~what = function
  | Vlist l -> l
  | v -> error ~loc "%s: expected a list, got a %s" what (type_name v)

let as_node ~loc ~what = function
  | Vnode n -> n
  | v -> error ~loc "%s: expected an AST value, got a %s" what (type_name v)

(** Does a runtime value conform to a meta type?  Used to validate macro
    return values against the declared return type. *)
let rec conforms (v : t) (ty : Mtype.t) : bool =
  match (v, ty) with
  | Vint _, Mtype.Int -> true
  | Vstring _, Mtype.String -> true
  | Vnode n, Mtype.Ast s -> Sort.subsort (Ast.node_sort n) s
  | Vlist items, Mtype.List t -> List.for_all (fun v -> conforms v t) items
  | Vtuple fields, Mtype.Tuple tfields ->
      List.length fields = List.length tfields
      && List.for_all2
           (fun (n, v) f -> n = f.Mtype.fld_name && conforms v f.Mtype.fld_type)
           fields tfields
  | (Vclosure _ | Vbuiltin _), Mtype.Fun _ -> true
  | Vvoid, Mtype.Void -> true
  | _, _ -> false
