(** The embedded interpreter for the macro language.

    "Because the macro language is C extended with AST datatypes and a
    few new primitive functions, macro expansion is simply a matter of
    running a C program on the parsed arguments of a macro invocation.
    The present implementation uses an embedded interpreter for a subset
    of the C language to execute meta-code." (paper, §3)

    Statement execution returns an {!outcome} so [return]/[break]/
    [continue] unwind properly. *)

open Ms2_syntax.Ast
open Value
module Mtype = Ms2_mtype.Mtype
module Of_cdecl = Ms2_typing.Of_cdecl
module Failpoint = Ms2_support.Failpoint

type outcome = Normal | Returned of Value.t | Broke | Continued

let error = Value.error

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval (env : env) (expr : expr) : Value.t =
  let loc = expr.eloc in
  charge_fuel env ~loc;
  match expr.e with
  | E_ident id -> (
      match lookup env id.id_name with
      | Some Vvoid ->
          error ~loc:id.id_loc "meta variable %s is uninitialized" id.id_name
      | Some v -> v
      | None ->
          if Builtins.is_primitive id.id_name then Vbuiltin id.id_name
          else error ~loc:id.id_loc "unbound meta variable %s" id.id_name)
  | E_const (Cint (v, _)) -> Vint v
  | E_const (Cfloat _) ->
      error ~loc "floating-point literals are not part of the macro language"
  | E_const (Cchar c) -> Vint (Char.code c)
  | E_const (Cstring s) -> Vstring s
  | E_call ({ e = E_ident f; _ }, args)
    when Builtins.is_primitive f.id_name && lookup env f.id_name = None ->
      let vargs = List.map (eval env) args in
      Builtins.call ~apply:(apply env) env loc f.id_name vargs
  | E_call (f, args) ->
      let vf = eval env f in
      let vargs = List.map (eval env) args in
      apply env ~loc vf vargs
  | E_index (l, i) -> (
      let vl = eval env l and vi = eval env i in
      match (vl, vi) with
      | Vlist items, Vint n -> (
          match List.nth_opt items n with
          | Some v -> v
          | None ->
              error ~loc "list index %d out of bounds (length %d)" n
                (List.length items))
      | Vtuple fields, Vint n -> (
          match List.nth_opt fields n with
          | Some (_, v) -> v
          | None ->
              error ~loc "tuple index %d out of bounds (size %d)" n
                (List.length fields))
      | v, _ -> error ~loc "cannot index a %s" (type_name v))
  | E_member (e, f) | E_arrow (e, f) -> (
      let f =
        match f with
        | Ii_id id -> id
        | Ii_splice sp ->
            error ~loc:sp.sp_loc
              "placeholders cannot name components of meta values"
      in
      match eval env e with
      | Vtuple fields -> (
          match Value.tuple_field fields f.id_name with
          | Some v -> v
          | None -> error ~loc:f.id_loc "tuple has no field %s" f.id_name)
      | Vnode n -> Builtins.component ~loc n f.id_name
      | v -> error ~loc "cannot select a component from a %s" (type_name v))
  | E_unary (Deref, e) -> (
      (* *l : head of list *)
      match eval env e with
      | Vlist (x :: _) -> x
      | Vlist [] -> error ~loc "head of an empty list"
      | v -> error ~loc "cannot dereference a %s" (type_name v))
  | E_unary (Addr, _) ->
      error ~loc "it is illegal to take the address of a meta value"
  | E_unary (Neg, e) -> Vint (-as_int ~loc ~what:"-" (eval env e))
  | E_unary (Plus, e) -> Vint (as_int ~loc ~what:"+" (eval env e))
  | E_unary (Bitnot, e) -> Vint (lnot (as_int ~loc ~what:"~" (eval env e)))
  | E_unary (Lognot, e) -> Vint (if truthy ~loc (eval env e) then 0 else 1)
  | E_unary (Preincr, e) -> incr_decr env ~loc e 1 ~pre:true
  | E_unary (Predecr, e) -> incr_decr env ~loc e (-1) ~pre:true
  | E_postincr e -> incr_decr env ~loc e 1 ~pre:false
  | E_postdecr e -> incr_decr env ~loc e (-1) ~pre:false
  | E_binary (Add, l, r) -> (
      (* l + n : drop the first n elements (the paper's cdr when n=1) *)
      match eval env l with
      | Vlist items ->
          let n = as_int ~loc ~what:"list offset" (eval env r) in
          let rec drop n l =
            if n <= 0 then l
            else
              match l with
              | [] -> error ~loc "list offset %d past end of list" n
              | _ :: tl -> drop (n - 1) tl
          in
          Vlist (drop n items)
      | Vint a -> Vint (a + as_int ~loc ~what:"+" (eval env r))
      | Vstring a -> Vstring (a ^ as_string ~loc ~what:"+" (eval env r))
      | v -> error ~loc "cannot apply + to a %s" (type_name v))
  | E_binary ((Logand | Logor) as op, l, r) ->
      let vl = truthy ~loc (eval env l) in
      let shortcut = match op with Logand -> not vl | _ -> vl in
      if shortcut then Vint (if vl then 1 else 0)
      else Vint (if truthy ~loc (eval env r) then 1 else 0)
  | E_binary ((Eq | Ne) as op, l, r) ->
      let eq =
        match (eval env l, eval env r) with
        | Vint a, Vint b -> a = b
        | Vstring a, Vstring b -> a = b
        | Vnode (N_id a), Vnode (N_id b) -> a.id_name = b.id_name
        | Vlist [], Vlist [] -> true
        | Vlist (_ :: _), Vlist [] | Vlist [], Vlist (_ :: _) -> false
        | a, b ->
            error ~loc "cannot compare a %s with a %s" (type_name a)
              (type_name b)
      in
      Vint (if (op = Eq) = eq then 1 else 0)
  | E_binary (op, l, r) ->
      let a = as_int ~loc ~what:"arithmetic" (eval env l)
      and b = as_int ~loc ~what:"arithmetic" (eval env r) in
      let bool_ c = Vint (if c then 1 else 0) in
      (match op with
      | Sub -> Vint (a - b)
      | Mul -> Vint (a * b)
      | Div ->
          if b = 0 then error ~loc "division by zero in meta code";
          Vint (a / b)
      | Mod ->
          if b = 0 then error ~loc "division by zero in meta code";
          Vint (a mod b)
      | Shl -> Vint (a lsl b)
      | Shr -> Vint (a asr b)
      | Lt -> bool_ (a < b)
      | Gt -> bool_ (a > b)
      | Le -> bool_ (a <= b)
      | Ge -> bool_ (a >= b)
      | Band -> Vint (a land b)
      | Bxor -> Vint (a lxor b)
      | Bor -> Vint (a lor b)
      | Add | Eq | Ne | Logand | Logor -> assert false)
  | E_cond (c, t, e) ->
      if truthy ~loc (eval env c) then eval env t else eval env e
  | E_assign (A_eq, lhs, rhs) ->
      let v = eval env rhs in
      assign env ~loc lhs v;
      v
  | E_assign (op, lhs, rhs) ->
      let cur = as_int ~loc ~what:"compound assignment" (eval env lhs) in
      let b = as_int ~loc ~what:"compound assignment" (eval env rhs) in
      let v =
        match op with
        | A_add -> cur + b
        | A_sub -> cur - b
        | A_mul -> cur * b
        | A_div ->
            if b = 0 then error ~loc "division by zero in meta code";
            cur / b
        | A_mod ->
            if b = 0 then error ~loc "division by zero in meta code";
            cur mod b
        | A_shl -> cur lsl b
        | A_shr -> cur asr b
        | A_band -> cur land b
        | A_bxor -> cur lxor b
        | A_bor -> cur lor b
        | A_eq -> assert false
      in
      assign env ~loc lhs (Vint v);
      Vint v
  | E_comma (a, b) ->
      ignore (eval env a);
      eval env b
  | E_sizeof_expr _ | E_sizeof_type _ ->
      error ~loc "sizeof is not part of the macro language"
  | E_cast _ -> error ~loc "casts are not part of the macro language"
  | E_backquote t -> Fill.fill_template ~eval env t
  | E_lambda (params, body) ->
      let bindings = Of_cdecl.params_of_func ~loc params in
      Vclosure { cl_params = bindings; cl_body = Body_expr body; cl_env = env }
  | E_splice _ -> error ~loc "placeholder outside a template"
  | E_macro inv -> !(env.expand_invocation) inv

and incr_decr env ~loc e delta ~pre =
  let cur = as_int ~loc ~what:"++/--" (eval env e) in
  assign env ~loc e (Vint (cur + delta));
  Vint (if pre then cur + delta else cur)

and assign env ~loc (lhs : expr) (v : Value.t) : unit =
  match lhs.e with
  | E_ident id -> (
      match lookup_ref env id.id_name with
      | Some r -> r := v
      | None -> error ~loc:id.id_loc "unbound meta variable %s" id.id_name)
  | _ ->
      error ~loc
        "only meta variables are assignable (list and tuple components are \
         immutable)"

and apply env ~loc (f : Value.t) (args : Value.t list) : Value.t =
  Failpoint.hit ~watchdog:env.budget.watchdog ~loc "interp/call";
  match f with
  | Vclosure cl -> (
      if List.length args <> List.length cl.cl_params then
        error ~loc "wrong number of arguments: expected %d, got %d"
          (List.length cl.cl_params) (List.length args);
      match cl.cl_body with
      | Body_expr body ->
          with_scope cl.cl_env (fun () ->
              List.iter2
                (fun (name, _ty) v -> bind cl.cl_env name v)
                cl.cl_params args;
              eval cl.cl_env body)
      | Body_stmt body ->
          (* meta function: fresh frame over the globals it closed over *)
          let call_env = derived cl.cl_env in
          List.iter2 (fun (name, _) v -> bind call_env name v) cl.cl_params
            args;
          run_body call_env body)
  | Vbuiltin name -> Builtins.call ~apply:(apply env) env loc name args
  | v -> error ~loc "this is not a function (it is a %s)" (type_name v)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Execute a meta declaration: bind the declared variables, evaluating
    initializers; nested meta functions become closures. *)
and exec_decl (env : env) (decl : decl) : unit =
  match decl.d with
  | Decl_plain (specs, idecls) ->
      List.iter
        (function
          | Init_decl (d, init) ->
              let name, ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
              let v =
                match init with
                | Some (I_expr e) -> eval env e
                | Some (I_list _) ->
                    error ~loc:decl.dloc
                      "brace initializers are not part of the macro language"
                | None -> default_of_type ty
              in
              bind env name v
          | Init_splice _ ->
              error ~loc:decl.dloc "unfilled placeholder in meta declaration")
        idecls
  | Decl_fun (specs, d, _, body) ->
      let name, _ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
      let params =
        match Of_cdecl.func_params d with
        | Some ps -> Of_cdecl.params_of_func ~loc:decl.dloc ps
        | None -> error ~loc:decl.dloc "malformed meta function declarator"
      in
      bind env name
        (Vclosure { cl_params = params; cl_body = Body_stmt body;
                    cl_env = env })
  | Decl_metadcl inner -> exec_decl env inner
  | Decl_macro_def _ | Decl_splice _ | Decl_macro _ ->
      error ~loc:decl.dloc "cannot execute this declaration as meta code"

and exec_stmt (env : env) (stmt : stmt) : outcome =
  let loc = stmt.sloc in
  charge_fuel env ~loc;
  Failpoint.hit ~watchdog:env.budget.watchdog ~loc "interp/step";
  match stmt.s with
  | St_expr e ->
      ignore (eval env e);
      Normal
  | St_compound items ->
      with_scope env (fun () ->
          let rec go = function
            | [] -> Normal
            | item :: rest -> (
                match item with
                | Bi_decl d ->
                    exec_decl env d;
                    go rest
                | Bi_stmt s -> (
                    match exec_stmt env s with
                    | Normal -> go rest
                    | out -> out))
          in
          go items)
  | St_if (c, t, e) ->
      if truthy ~loc (eval env c) then exec_stmt env t
      else (match e with Some e -> exec_stmt env e | None -> Normal)
  | St_while (c, body) ->
      let rec loop () =
        if truthy ~loc (eval env c) then
          match exec_stmt env body with
          | Normal | Continued -> loop ()
          | Broke -> Normal
          | Returned _ as r -> r
        else Normal
      in
      loop ()
  | St_do (body, c) ->
      let rec loop () =
        match exec_stmt env body with
        | Normal | Continued ->
            if truthy ~loc (eval env c) then loop () else Normal
        | Broke -> Normal
        | Returned _ as r -> r
      in
      loop ()
  | St_for (init, cond, step, body) ->
      Option.iter (fun e -> ignore (eval env e)) init;
      let rec loop () =
        let go =
          match cond with Some c -> truthy ~loc (eval env c) | None -> true
        in
        if not go then Normal
        else
          match exec_stmt env body with
          | Normal | Continued ->
              Option.iter (fun e -> ignore (eval env e)) step;
              loop ()
          | Broke -> Normal
          | Returned _ as r -> r
      in
      loop ()
  | St_switch (e, body) -> exec_switch env ~loc (eval env e) body
  | St_case (_, s) | St_default s | St_label (_, s) -> exec_stmt env s
  | St_return None -> Returned Vvoid
  | St_return (Some e) -> Returned (eval env e)
  | St_break -> Broke
  | St_continue -> Continued
  | St_goto _ -> error ~loc "goto is not part of the macro language"
  | St_null -> Normal
  | St_splice _ -> error ~loc "placeholder outside a template"
  | St_macro inv -> (
      match !(env.expand_invocation) inv with
      | Vnode (N_stmt s) -> exec_stmt env s
      | v ->
          error ~loc
            "macro %s used as a meta statement expanded to a %s, not a \
             statement"
            inv.inv_name.id_name (type_name v))

and exec_switch env ~loc (scrutinee : Value.t) (body : stmt) : outcome =
  let v = as_int ~loc ~what:"switch" scrutinee in
  match body.s with
  | St_compound items ->
      (* find the matching case (or default), then run to completion or
         break, falling through like C *)
      let stmts =
        List.filter_map
          (function Bi_stmt s -> Some s | Bi_decl _ -> None)
          items
      in
      let matches s =
        match s.s with
        | St_case (e, _) -> as_int ~loc ~what:"case" (eval env e) = v
        | _ -> false
      in
      let is_default s = match s.s with St_default _ -> true | _ -> false in
      let rec find pred = function
        | [] -> None
        | s :: rest when pred s -> Some (s :: rest)
        | _ :: rest -> find pred rest
      in
      let tail =
        match find matches stmts with
        | Some tail -> Some tail
        | None -> find is_default stmts
      in
      (match tail with
      | None -> Normal
      | Some stmts ->
          let rec run = function
            | [] -> Normal
            | s :: rest -> (
                match exec_stmt env s with
                | Normal | Continued -> run rest
                | Broke -> Normal
                | Returned _ as r -> r)
          in
          run stmts)
  | _ -> (
      (* switch over a single statement *)
      match exec_stmt env body with Broke -> Normal | out -> out)

(** Run a macro or meta-function body (a compound statement) and return
    the value of its [return] statement ([Vvoid] if it falls off the
    end). *)
and run_body (env : env) (body : stmt) : Value.t =
  Ms2_support.Obs.with_span ~cat:"meta" "eval-body" (fun () ->
      match exec_stmt env body with
      | Returned v -> v
      | Normal -> Vvoid
      | Broke | Continued ->
          error ~loc:body.sloc "break/continue outside a loop in meta code")
