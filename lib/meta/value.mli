(** Runtime values and environments of the macro (meta) language. *)

open Ms2_syntax
open Ms2_support
module Mtype = Ms2_mtype.Mtype

type t =
  | Vint of int
  | Vstring of string
  | Vnode of Ast.node
  | Vlist of t list
  | Vtuple of (string * t) list
  | Vclosure of closure
  | Vbuiltin of string
  | Vvoid  (** also "uninitialized" for AST-typed variables *)

and closure = {
  cl_params : (string * Mtype.t) list;
  cl_body : body;
  cl_env : env;  (** captured environment (downward-only closures) *)
}

and body = Body_expr of Ast.expr | Body_stmt of Ast.stmt

and env = {
  mutable scopes : (string, t ref) Hashtbl.t list;
  gensym : Gensym.t;
  mutable hygienic : bool;
      (** rename template-introduced block locals automatically *)
  mutable semantic : Ms2_csem.Senv.t option;
      (** object-level symbol table at the current expansion point *)
  expand_invocation : (Ast.invocation -> t) ref;
      (** engine hook for macro invocations inside meta code *)
  budget : budget;
      (** fuel / output-size accounting, shared by derived environments *)
  provenance : Loc.origin ref;
      (** the expansion frame currently being filled ([User] outside any
          invocation); shared by derived environments, maintained by the
          engine, read by the template filler *)
  greads : int ref;
      (** monotonic odometer of lookups resolving in the global scope
          (shared by derived environments): the speculative fragment
          commit protocol measures its delta to learn whether a fragment
          observed shared [metadcl] state *)
}

(** Countdown resource counters ([max_int] = effectively unlimited). *)
and budget = {
  mutable fuel : int;  (** remaining interpreter steps *)
  mutable nodes : int;  (** remaining produced-AST node allowance *)
  fuel_initial : int;
  nodes_initial : int;
  watchdog : Watchdog.t;  (** wall-clock deadline, polled with the fuel *)
}

val error :
  loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise an [Expansion]-phase diagnostic.  The location is required so
    no raise site silently drops provenance; pass [Loc.dummy] explicitly
    at the (rare) sites with genuinely no span. *)

val create_budget :
  ?fuel:int -> ?nodes:int -> ?watchdog:Watchdog.t -> unit -> budget
val fuel_consumed : budget -> int
val nodes_produced : budget -> int

val charge_fuel : env -> loc:Loc.t -> unit
(** Charge one interpreter step; raises a [Resource]-phase diagnostic
    (code {!Ms2_support.Diag.code_fuel}) when the budget is exhausted. *)

val charge_node : env -> loc:Loc.t -> unit
(** Charge one produced AST node; raises with code
    {!Ms2_support.Diag.code_nodes} when the allowance is exhausted. *)

val create_env : ?gensym:Gensym.t -> ?budget:budget -> unit -> env
val push_scope : env -> unit
val pop_scope : env -> unit
val with_scope : env -> (unit -> 'a) -> 'a

val derived : env -> env
(** A child environment sharing only the global scope — the frame a
    macro body runs in ([metadcl] globals shared, locals isolated). *)

val bind : env -> string -> t -> unit
val bind_global : env -> string -> t -> unit
val lookup_ref : env -> string -> t ref option
val lookup : env -> string -> t option

val default_of_type : Mtype.t -> t
(** Lists start empty, ints 0, strings empty; AST variables start
    [Vvoid] and reading one is an error. *)

val type_name : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_actual : Ast.actual -> t

val tuple_field : (string * t) list -> string -> t option
(** Resolve a field of a [Vtuple] payload (first declaration wins).
    Wide tuples (≥ 16 fields) resolve through a memoized interned-key
    index, so repeated selections are O(1) instead of O(width). *)

val truthy : loc:Loc.t -> t -> bool
val as_int : loc:Loc.t -> what:string -> t -> int
val as_string : loc:Loc.t -> what:string -> t -> string
val as_list : loc:Loc.t -> what:string -> t -> t list
val as_node : loc:Loc.t -> what:string -> t -> Ast.node

val conforms : t -> Mtype.t -> bool
(** Does a runtime value conform to a meta type?  Validates macro return
    values against declared return types. *)
