(** Runtime implementations of the macro language's primitive functions,
    and the component-extraction table (the runtime mirror of
    [Ms2_typing.Component]). *)

open Ms2_syntax
open Ms2_syntax.Ast
open Ms2_support
open Value
module Sort = Ms2_mtype.Sort

let error = Value.error

(* ------------------------------------------------------------------ *)
(* Identifier helpers                                                  *)
(* ------------------------------------------------------------------ *)

let as_id ~loc ~what v =
  match v with
  | Vnode (N_id id) -> id
  | v -> error ~loc "%s: expected an @id, got a %s" what (type_name v)

let id_node name = Vnode (N_id (Ast.ident name))

(* ------------------------------------------------------------------ *)
(* Component extraction (x->member on AST values)                      *)
(* ------------------------------------------------------------------ *)

let node_kind : node -> string = function
  | N_id _ -> "id"
  | N_num _ -> "num"
  | N_exp e -> (
      match e.e with
      | E_ident _ -> "identifier"
      | E_const _ -> "constant"
      | E_call _ -> "call"
      | E_index _ -> "index"
      | E_member _ | E_arrow _ -> "member"
      | E_unary _ | E_postincr _ | E_postdecr _ -> "unary"
      | E_binary _ -> "binary"
      | E_cond _ -> "conditional"
      | E_assign _ -> "assignment"
      | E_comma _ -> "comma"
      | E_cast _ -> "cast"
      | E_sizeof_expr _ | E_sizeof_type _ -> "sizeof"
      | E_backquote _ | E_lambda _ | E_splice _ | E_macro _ -> "meta")
  | N_stmt s -> (
      match s.s with
      | St_expr _ -> "expression-statement"
      | St_compound _ -> "compound"
      | St_if _ -> "if"
      | St_while _ -> "while"
      | St_do _ -> "do"
      | St_for _ -> "for"
      | St_switch _ -> "switch"
      | St_case _ -> "case"
      | St_default _ -> "default"
      | St_return _ -> "return"
      | St_break | St_continue -> "jump"
      | St_goto _ -> "goto"
      | St_label _ -> "label"
      | St_null -> "null"
      | St_splice _ | St_macro _ -> "meta")
  | N_decl d -> (
      match d.d with
      | Decl_plain _ -> "declaration"
      | Decl_fun _ -> "function-definition"
      | Decl_metadcl _ | Decl_macro_def _ | Decl_splice _ | Decl_macro _ ->
          "meta")
  | N_typespec _ -> "typespec"
  | N_declarator _ -> "declarator"
  | N_init_declarator _ -> "init-declarator"
  | N_param _ -> "param"
  | N_enumerator _ -> "enumerator"

let rec declarator_ident ~loc : declarator -> ident = function
  | D_ident id -> id
  | D_pointer d | D_array (d, _) | D_func (d, _) -> declarator_ident ~loc d
  | D_abstract -> error ~loc "abstract declarator has no name"
  | D_splice _ -> error ~loc "unfilled placeholder in declarator"

(** [component ~loc node member] extracts a component, mirroring the
    static table in [Ms2_typing.Component.type_of]. *)
let component ~loc (n : node) (member : string) : Value.t =
  let no () =
    error ~loc "@%s values have no component %s"
      (Sort.keyword (Ast.node_sort n))
      member
  in
  if member = "kind" then Vstring (node_kind n)
  else
    match n with
    | N_decl { d = Decl_plain (specs, idecls); _ } -> (
        match member with
        | "type_spec" -> Vnode (N_typespec specs)
        | "init_declarators" ->
            Vlist (List.map (fun d -> Vnode (N_init_declarator d)) idecls)
        | "name" -> (
            match idecls with
            | Init_decl (d, _) :: _ ->
                Vnode (N_id (declarator_ident ~loc d))
            | _ -> error ~loc "declaration has no declared name")
        | _ -> no ())
    | N_decl { d = Decl_fun (_, d, _, _); _ } -> (
        match member with
        | "name" -> Vnode (N_id (declarator_ident ~loc d))
        | _ -> no ())
    | N_decl _ -> no ()
    | N_stmt { s = St_compound items; _ } -> (
        match member with
        | "declarations" ->
            Vlist
              (List.filter_map
                 (function
                   | Bi_decl d -> Some (Vnode (N_decl d)) | Bi_stmt _ -> None)
                 items)
        | "statements" ->
            Vlist
              (List.filter_map
                 (function
                   | Bi_stmt s -> Some (Vnode (N_stmt s)) | Bi_decl _ -> None)
                 items)
        | _ -> no ())
    | N_stmt { s = St_expr e; _ } | N_stmt { s = St_return (Some e); _ } -> (
        match member with "expression" -> Vnode (N_exp e) | _ -> no ())
    | N_stmt _ -> (
        match member with
        | "declarations" | "statements" ->
            error ~loc "statement is not a compound statement"
        | _ -> no ())
    | N_init_declarator (Init_decl (d, _)) -> (
        match member with
        | "declarator" -> Vnode (N_declarator d)
        | _ -> no ())
    | N_init_declarator (Init_splice _) ->
        error ~loc "unfilled placeholder in init-declarator"
    | N_declarator d -> (
        match member with
        | "name" -> Vnode (N_id (declarator_ident ~loc d))
        | _ -> no ())
    | N_exp { e = E_call (f, args); _ } -> (
        match member with
        | "callee" -> Vnode (N_exp f)
        | "args" -> Vlist (List.map (fun a -> Vnode (N_exp a)) args)
        | _ -> no ())
    | N_exp _ -> no ()
    | N_typespec specs -> (
        match member with
        | "enumerators" -> (
            match
              List.find_map
                (function S_enum es -> es.enum_items | _ -> None)
                specs
            with
            | Some items ->
                Vlist (List.map (fun e -> Vnode (N_enumerator e)) items)
            | None -> error ~loc "type specifier is not an enum with items")
        | "tag" -> (
            match
              List.find_map
                (function
                  | S_enum es -> es.enum_tag
                  | S_struct (Some tag, _) | S_union (Some tag, _) ->
                      Some tag
                  | _ -> None)
                specs
            with
            | Some (Ii_id id) -> Vnode (N_id id)
            | Some (Ii_splice _) -> error ~loc "unfilled placeholder in tag"
            | None -> error ~loc "type specifier has no tag")
        | "field_names" -> (
            match
              List.find_map
                (function
                  | S_struct (_, Some fields) | S_union (_, Some fields) ->
                      Some fields
                  | _ -> None)
                specs
            with
            | Some fields ->
                Vlist
                  (List.concat_map
                     (fun f ->
                       List.map
                         (fun d ->
                           Vnode (N_id (declarator_ident ~loc d)))
                         f.f_declarators)
                     fields)
            | None ->
                error ~loc
                  "type specifier is not a struct/union with a member list")
        | _ -> no ())
    | N_enumerator (Enum_item (Ii_id id, _)) -> (
        match member with "name" -> Vnode (N_id id) | _ -> no ())
    | N_enumerator (Enum_item (Ii_splice _, _)) ->
        error ~loc "unfilled placeholder in enumerator name"
    | N_enumerator (Enum_splice _) ->
        error ~loc "unfilled placeholder in enumerator"
    | N_num c -> (
        match member with
        | "value" -> (
            match c with
            | Cint (v, _) -> Vint v
            | Cchar ch -> Vint (Char.code ch)
            | Cfloat _ ->
                error ~loc "no floating-point values at the meta level"
            | Cstring _ -> error ~loc "string literal has no numeric value")
        | _ -> no ())
    | N_param p -> (
        match member with
        | "name" -> (
            match p with
            | P_name id -> Vnode (N_id id)
            | P_decl (_, d) -> Vnode (N_id (declarator_ident ~loc d))
            | P_ellipsis -> error ~loc "... has no name"
            | P_splice _ -> error ~loc "unfilled placeholder in parameter")
        | _ -> no ())
    | N_id _ -> no ()

(* ------------------------------------------------------------------ *)
(* Primitive functions                                                 *)
(* ------------------------------------------------------------------ *)

(** Is an expression "simple" (duplicable without changing semantics)?
    Used by the paper's [throw] macro to avoid introducing a temporary
    for identifiers and constants. *)
let simple_expression (e : expr) : bool =
  match e.e with E_ident _ | E_const _ -> true | _ -> false

let part_to_string ~loc ~what = function
  | Vstring s -> s
  | Vnode (N_id id) -> id.id_name
  | Vint n -> string_of_int n
  | v -> error ~loc "%s: expected a string, @id or int, got a %s" what
           (type_name v)

(* ------------------------------------------------------------------ *)
(* Semantic-macro primitives                                           *)
(* ------------------------------------------------------------------ *)

let semantic_env ~loc (env : env) : Ms2_csem.Senv.t =
  match env.semantic with
  | Some senv -> senv
  | None ->
      error ~loc
        "semantic primitives need an expansion engine (no semantic \
         environment is installed)"

let value_as_exp ~loc ~what (v : Value.t) : expr =
  match v with
  | Vnode (N_exp e) -> e
  | Vnode (N_id id) -> Ast.mk_expr ~loc:id.id_loc (E_ident id)
  | Vnode (N_num c) -> Ast.mk_expr ~loc (E_const c)
  | v -> error ~loc "%s: expected an @exp, got a %s" what (type_name v)

(** The object-level type of an expression at the current expansion
    point. *)
let ctype_of ~loc env ~what v : Ms2_csem.Ctype.t =
  let senv = semantic_env ~loc env in
  Ms2_csem.Infer_c.type_of senv (value_as_exp ~loc ~what v)

(** [call ~apply env loc name args] runs primitive [name].  [apply] is
    the interpreter's function-application entry point, needed by the
    higher-order primitives ([map], [filter]). *)
let call ~(apply : loc:Loc.t -> Value.t -> Value.t list -> Value.t)
    (env : env) (loc : Loc.t) (name : string) (args : Value.t list) : Value.t
    =
  Ms2_support.Failpoint.hit ~watchdog:env.budget.watchdog ~loc
    "builtins/call";
  let arity ns =
    if not (List.mem (List.length args) ns) then
      error ~loc "%s: wrong number of arguments (%d)" name (List.length args)
  in
  let arg i = List.nth args i in
  match name with
  | "gensym" ->
      arity [ 0; 1 ];
      let base =
        match args with
        | [] -> "t"
        | [ Vstring s ] -> s
        | [ Vnode (N_id id) ] -> id.id_name
        | [ v ] ->
            error ~loc "gensym: expected a string or @id, got a %s"
              (type_name v)
        | _ -> assert false
      in
      id_node (Gensym.fresh env.gensym base)
  | "concat_ids" ->
      arity [ 2 ];
      let a = as_id ~loc ~what:"concat_ids" (arg 0)
      and b = as_id ~loc ~what:"concat_ids" (arg 1) in
      id_node (a.id_name ^ b.id_name)
  | "symbolconc" ->
      if args = [] then error ~loc "symbolconc: needs at least one argument";
      id_node
        (String.concat ""
           (List.map (part_to_string ~loc ~what:"symbolconc") args))
  | "make_id" ->
      arity [ 1 ];
      id_node (as_string ~loc ~what:"make_id" (arg 0))
  | "id_string" ->
      arity [ 1 ];
      Vstring (as_id ~loc ~what:"id_string" (arg 0)).id_name
  | "make_string" ->
      (* a string *literal expression* from a meta string *)
      arity [ 1 ];
      Vnode
        (N_exp (Ast.e_string (as_string ~loc ~what:"make_string" (arg 0))))
  | "exp_string" ->
      (* concrete rendering of an expression, e.g. for assertion
         messages *)
      arity [ 1 ];
      Vstring
        (Pretty.expr_to_string (value_as_exp ~loc ~what:"exp_string" (arg 0)))
  | "make_num" ->
      arity [ 1 ];
      let n = as_int ~loc ~what:"make_num" (arg 0) in
      Vnode (N_num (Cint (n, string_of_int n)))
  | "num_value" -> (
      arity [ 1 ];
      match arg 0 with
      | Vnode (N_num (Cint (v, _))) -> Vint v
      | Vnode (N_num (Cchar c)) -> Vint (Char.code c)
      | Vnode (N_num (Cfloat _)) ->
          error ~loc "num_value: no floating-point values at the meta level"
      | v -> error ~loc "num_value: expected an @num, got a %s" (type_name v))
  | "int_string" ->
      arity [ 1 ];
      Vstring (string_of_int (as_int ~loc ~what:"int_string" (arg 0)))
  | "pstring" ->
      arity [ 1 ];
      let id = as_id ~loc ~what:"pstring" (arg 0) in
      Vnode (N_exp (Ast.e_string id.id_name))
  | "simple_expression" -> (
      arity [ 1 ];
      match arg 0 with
      | Vnode (N_exp e) -> Vint (if simple_expression e then 1 else 0)
      | Vnode (N_id _) | Vnode (N_num _) -> Vint 1
      | v ->
          error ~loc "simple_expression: expected an @exp, got a %s"
            (type_name v))
  | "strcmp" ->
      arity [ 2 ];
      Vint
        (compare
           (as_string ~loc ~what:"strcmp" (arg 0))
           (as_string ~loc ~what:"strcmp" (arg 1)))
  | "strcat" ->
      arity [ 2 ];
      Vstring
        (as_string ~loc ~what:"strcat" (arg 0)
        ^ as_string ~loc ~what:"strcat" (arg 1))
  | "length" ->
      arity [ 1 ];
      Vint (List.length (as_list ~loc ~what:"length" (arg 0)))
  | "list" -> Vlist args
  | "append" ->
      arity [ 2 ];
      Vlist
        (as_list ~loc ~what:"append" (arg 0)
        @ as_list ~loc ~what:"append" (arg 1))
  | "cons" ->
      arity [ 2 ];
      Vlist (arg 0 :: as_list ~loc ~what:"cons" (arg 1))
  | "map" ->
      arity [ 2 ];
      let f = arg 0 and l = as_list ~loc ~what:"map" (arg 1) in
      Vlist (List.map (fun x -> apply ~loc f [ x ]) l)
  | "filter" ->
      arity [ 2 ];
      let f = arg 0 and l = as_list ~loc ~what:"filter" (arg 1) in
      Vlist (List.filter (fun x -> truthy ~loc (apply ~loc f [ x ])) l)
  | "reverse" ->
      arity [ 1 ];
      Vlist (List.rev (as_list ~loc ~what:"reverse" (arg 0)))
  | "nth" -> (
      arity [ 2 ];
      let l = as_list ~loc ~what:"nth" (arg 0)
      and i = as_int ~loc ~what:"nth" (arg 1) in
      match List.nth_opt l i with
      | Some v -> v
      | None ->
          error ~loc "nth: index %d out of bounds (length %d)" i
            (List.length l))
  (* semantic-macro primitives (paper §5) *)
  | "exp_typespec" -> (
      arity [ 1 ];
      let ty = ctype_of ~loc env ~what:"exp_typespec" (arg 0) in
      match Ms2_csem.To_ast.specs_of ty with
      | Some specs -> Vnode (N_typespec specs)
      | None ->
          error ~loc
            "exp_typespec: type %s cannot be written as a type specifier \
             (use declare_like for pointer and array types)"
            (Ms2_csem.Ctype.to_string ty))
  | "declare_like" -> (
      arity [ 2 ];
      (* expression values decay: an array-typed expression stashes into
         a pointer variable *)
      let ty =
        Ms2_csem.Ctype.decay (ctype_of ~loc env ~what:"declare_like" (arg 0))
      in
      let name = as_id ~loc ~what:"declare_like" (arg 1) in
      match Ms2_csem.To_ast.declaration_of ty name with
      | Some d -> Vnode (N_decl d)
      | None ->
          error ~loc "declare_like: cannot declare a variable of type %s"
            (Ms2_csem.Ctype.to_string ty))
  | "type_name_of" ->
      arity [ 1 ];
      Vstring
        (Ms2_csem.Ctype.to_string
           (ctype_of ~loc env ~what:"type_name_of" (arg 0)))
  | "is_pointer" ->
      arity [ 1 ];
      let ty =
        Ms2_csem.Ctype.decay (ctype_of ~loc env ~what:"is_pointer" (arg 0))
      in
      Vint (match ty with Ms2_csem.Ctype.Pointer _ -> 1 | _ -> 0)
  | "is_integer" ->
      arity [ 1 ];
      let ty = ctype_of ~loc env ~what:"is_integer" (arg 0) in
      Vint
        (match ty with
        | Ms2_csem.Ctype.Unknown -> 0
        | ty -> if Ms2_csem.Ctype.is_integer ty then 1 else 0)
  | "types_compatible" ->
      arity [ 2 ];
      let a = ctype_of ~loc env ~what:"types_compatible" (arg 0)
      and b = ctype_of ~loc env ~what:"types_compatible" (arg 1) in
      Vint (if Ms2_csem.Ctype.compatible ~dst:a ~src:b then 1 else 0)
  | "error" ->
      let parts =
        List.map
          (function
            | Vstring s -> s
            | v -> Value.to_string v)
          args
      in
      error ~loc "macro error: %s" (String.concat " " parts)
  | "print" ->
      List.iter (fun v -> prerr_string (Value.to_string v)) args;
      prerr_newline ();
      Vvoid
  | _ -> error ~loc "unknown primitive function %s" name

let is_primitive = Ms2_typing.Infer.is_builtin
