(** Provenance-aware C emission: render an expanded (pure-C) program
    while tracking which construct — and through its location's
    expansion chain, which macro invocation — produced every physical
    output line.  Optionally interleaves [#line] directives mapping the
    generated code back to the user's invocation sites; the map can be
    serialized as a line-oriented JSON source map. *)

open Ast

type entry = {
  out_line : int;  (** 1-based physical line in the emitted text *)
  loc : Ms2_support.Loc.t;
      (** the producing construct's location, expansion chain included;
          dummy for structural lines (separators between declarations) *)
}

type result = {
  text : string;
  map : entry list;  (** ascending [out_line]; one entry per line *)
}

val program : ?line_directives:bool -> program -> result
(** Render a program (strict mode: meta residue raises
    {!Pretty.Meta_residue}).  Function bodies are emitted block item by
    block item, so lines produced by different invocations map to
    different provenance.  With [line_directives] (default false),
    [#line] directives pointing at each construct's outermost
    user-written span ({!Ms2_support.Loc.root}) are interleaved
    whenever the compiler's presumed position would otherwise be
    wrong. *)

val sourcemap_to_string : entry list -> string
(** One JSON object per map entry, newline-separated, in [out_line]
    order: [{"out_line":N,"source":...,"line":...,"col":...,
    "end_line":...,"end_col":...,"stack":[{"macro":...,...},...]}] with
    the expansion stack innermost-first (same conventions as
    {!Ms2_support.Diag.to_json}). *)
