(** Provenance-aware C emission: [#line] directives and source maps.

    {!Pretty} renders an AST with no regard for where its nodes came
    from; this module renders a (pure-C) program while tracking, for
    every physical output line, the location — and therefore the whole
    expansion backtrace — of the construct that produced it.  Two
    consumers:

    - [#line] directives ([emit ~line_directives:true]) make a C
      compiler attribute errors and debug info in the generated code to
      the *user's* source: the outermost invocation site for expanded
      code ({!Ms2_support.Loc.root}), the original span for code copied
      through unchanged.
    - A line-oriented source map ({!sourcemap_to_string}) serializes
      the full mapping, expansion stack included, for external tools.

    Granularity is one map entry per output line; within a function
    body, consecutive block items are tracked item by item, so the
    lines of a statement produced by [swap x, y;] map to that
    invocation even when its neighbours are ordinary user code. *)

open Ast
module Loc = Ms2_support.Loc
module Diag = Ms2_support.Diag

type entry = {
  out_line : int;  (** 1-based physical line in the emitted text *)
  loc : Loc.t;
      (** producing construct's location, carrying the expansion chain;
          {!Ms2_support.Loc.dummy} for structural lines (separators) *)
}

type result = {
  text : string;
  map : entry list;  (** ascending [out_line]; one entry per line *)
}

(* ------------------------------------------------------------------ *)
(* Emission state                                                      *)
(* ------------------------------------------------------------------ *)

type st = {
  buf : Buffer.t;
  mutable out_line : int;
  mutable map_rev : entry list;
  line_directives : bool;
  mutable presumed : (string * int) option;
      (** where the C compiler believes it is — [Some (file, line)]
          after a [#line] directive, advanced by every emitted line;
          [None] before any directive *)
}

let split_lines s = String.split_on_char '\n' s

(** Append one physical line (no embedded newlines) mapped to [loc]. *)
let put_line st ~loc line =
  Buffer.add_string st.buf line;
  Buffer.add_char st.buf '\n';
  st.map_rev <- { out_line = st.out_line; loc } :: st.map_rev;
  st.out_line <- st.out_line + 1;
  st.presumed <-
    (match st.presumed with
    | Some (f, l) -> Some (f, l + 1)
    | None -> None)

(** Point the C compiler at [loc]'s outermost user-written span, unless
    it already presumes to be there.  Expanded code maps to the
    invocation the user wrote ({!Loc.root}); unknown locations emit
    nothing and leave the presumed position alone. *)
let sync_directive st (loc : Loc.t) =
  if st.line_directives then begin
    let r = Loc.root loc in
    if not (Loc.is_dummy r) then begin
      let want = (r.Loc.source, r.Loc.start_pos.Loc.line) in
      if st.presumed <> Some want then begin
        Buffer.add_string st.buf
          (Printf.sprintf "#line %d \"%s\"\n" (snd want)
             (Diag.json_escape (fst want)));
        (* the directive itself is an output line produced by the same
           construct *)
        st.map_rev <- { out_line = st.out_line; loc } :: st.map_rev;
        st.out_line <- st.out_line + 1;
        st.presumed <- Some want
      end
    end
  end

(** Emit a rendered chunk: a directive sync, then every line of [text]
    (prefixed by [indent]) mapped to [loc]. *)
let chunk st ~loc ?(indent = "") text =
  sync_directive st loc;
  List.iter
    (fun line ->
      put_line st ~loc (if line = "" then line else indent ^ line))
    (split_lines text)

let blank_sep st = put_line st ~loc:Loc.dummy ""

(* ------------------------------------------------------------------ *)
(* Program walk                                                        *)
(* ------------------------------------------------------------------ *)

(* Strict mode throughout: this is an emitter for *expanded* programs,
   so meta residue is a bug and raises {!Pretty.Meta_residue}, exactly
   as [Pretty.program_to_string ~mode:strict] would. *)
let mode = Pretty.strict

let fun_header (specs : spec list) (d : declarator) : string =
  if specs = [] then Fmt.str "%a" (Pretty.pp_declarator mode) d
  else
    Fmt.str "%a %a" (Pretty.pp_specs mode) specs (Pretty.pp_declarator mode) d

let block_item_loc = function
  | Bi_decl d -> d.dloc
  | Bi_stmt s -> s.sloc

let block_item_to_string = function
  | Bi_decl d -> Pretty.decl_to_string ~mode d
  | Bi_stmt s -> Pretty.stmt_to_string ~mode s

let emit_decl st (decl : decl) =
  match decl.d with
  | Decl_fun (specs, d, kr, ({ s = St_compound items; _ } as body)) ->
      (* item-by-item: each statement or local declaration of the body
         is its own chunk, so lines produced by different invocations
         carry different provenance *)
      chunk st ~loc:decl.dloc (fun_header specs d);
      List.iter
        (fun kd -> chunk st ~loc:kd.dloc (Pretty.decl_to_string ~mode kd))
        kr;
      chunk st ~loc:body.sloc "{";
      List.iter
        (fun item ->
          chunk st
            ~loc:(block_item_loc item)
            ~indent:"  "
            (block_item_to_string item))
        items;
      chunk st ~loc:body.sloc "}"
  | _ -> chunk st ~loc:decl.dloc (Pretty.decl_to_string ~mode decl)

(** Render a program, producing the text and its line-by-line source
    map.  With [line_directives], [#line] directives pointing at each
    construct's outermost user-written location are interleaved. *)
let program ?(line_directives = false) (prog : program) : result =
  let st =
    { buf = Buffer.create 4096;
      out_line = 1;
      map_rev = [];
      line_directives;
      presumed = None }
  in
  List.iteri
    (fun i decl ->
      if i > 0 then blank_sep st;
      emit_decl st decl)
    prog;
  { text = Buffer.contents st.buf; map = List.rev st.map_rev }

(* ------------------------------------------------------------------ *)
(* Source-map serialization                                            *)
(* ------------------------------------------------------------------ *)

let loc_fields (loc : Loc.t) =
  if Loc.is_dummy loc then
    {|"source":null,"line":null,"col":null,"end_line":null,"end_col":null|}
  else
    Printf.sprintf
      {|"source":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d|}
      (Diag.json_escape loc.Loc.source)
      loc.Loc.start_pos.Loc.line loc.Loc.start_pos.Loc.col
      loc.Loc.end_pos.Loc.line loc.Loc.end_pos.Loc.col

let entry_to_json { out_line; loc } =
  let frame f =
    Printf.sprintf {|{"macro":"%s",%s}|}
      (Diag.json_escape f.Loc.macro)
      (loc_fields f.Loc.call_site)
  in
  Printf.sprintf {|{"out_line":%d,%s,"stack":[%s]}|} out_line
    (loc_fields loc)
    (String.concat "," (List.map frame (Loc.backtrace loc)))

(** One JSON object per line of the map (newline-separated, in
    [out_line] order): the producing span plus its expansion stack,
    innermost frame first — same field conventions as
    {!Ms2_support.Diag.to_json}. *)
let sourcemap_to_string (map : entry list) : string =
  String.concat "" (List.map (fun e -> entry_to_json e ^ "\n") map)
