(** Tokens of the extended language: C plus the paper's seven meta-tokens
    ([{|], [|}], [$$], [$], [::], [`] and [@]). *)

type keyword =
  | Kauto | Kbreak | Kcase | Kchar | Kconst | Kcontinue | Kdefault | Kdo
  | Kdouble | Kelse | Kenum | Kextern | Kfloat | Kfor | Kgoto | Kif | Kint
  | Klong | Kregister | Kreturn | Kshort | Ksigned | Ksizeof | Kstatic
  | Kstruct | Kswitch | Ktypedef | Kunion | Kunsigned | Kvoid | Kvolatile
  | Kwhile
  (* meta keywords *)
  | Ksyntax  (** introduces a macro definition *)
  | Kmetadcl  (** introduces a meta declaration *)

type t =
  | IDENT of string
  | INT_LIT of int * string  (** value and original spelling *)
  | FLOAT_LIT of float * string  (** value and original spelling *)
  | CHAR_LIT of char
  | STRING_LIT of string
  | KW of keyword
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION | ELLIPSIS
  | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | AMP | BAR | CARET | TILDE | BANG
  | LT | GT | LE | GE | EQEQ | NE
  | ANDAND | OROR
  | SHL | SHR
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PERCENT_ASSIGN | SHL_ASSIGN | SHR_ASSIGN | AMP_ASSIGN | CARET_ASSIGN
  | BAR_ASSIGN
  (* meta tokens *)
  | LMETA  (** left meta-brace: open-brace bar *)
  | RMETA  (** right meta-brace: bar close-brace *)
  | DOLLAR  (** [$] *)
  | DOLLARDOLLAR  (** [$$] *)
  | COLONCOLON  (** [::] *)
  | BACKQUOTE  (** [`] *)
  | AT  (** [@] *)
  | EOF

let keyword_table : (string * keyword) list =
  [ ("auto", Kauto); ("break", Kbreak); ("case", Kcase); ("char", Kchar);
    ("const", Kconst); ("continue", Kcontinue); ("default", Kdefault);
    ("do", Kdo); ("double", Kdouble); ("else", Kelse); ("enum", Kenum);
    ("extern", Kextern); ("float", Kfloat); ("for", Kfor); ("goto", Kgoto);
    ("if", Kif); ("int", Kint); ("long", Klong); ("register", Kregister);
    ("return", Kreturn); ("short", Kshort); ("signed", Ksigned);
    ("sizeof", Ksizeof); ("static", Kstatic); ("struct", Kstruct);
    ("switch", Kswitch); ("typedef", Ktypedef); ("union", Kunion);
    ("unsigned", Kunsigned); ("void", Kvoid); ("volatile", Kvolatile);
    ("while", Kwhile); ("syntax", Ksyntax); ("metadcl", Kmetadcl) ]

(* The lexer consults this on every identifier, so it is a hashtable
   rather than a 34-entry assoc scan. *)
let keyword_lookup : (string, keyword) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, kw) -> Hashtbl.replace tbl name kw) keyword_table;
  tbl

let keyword_of_string s = Hashtbl.find_opt keyword_lookup s

let keyword_names : (keyword, string) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, kw) -> Hashtbl.replace tbl kw name) keyword_table;
  tbl

let keyword_name kw =
  match Hashtbl.find_opt keyword_names kw with
  | Some name -> name
  | None -> assert false

(** Concrete spelling of a token, used by the pretty-printer for pattern
    "buzz tokens" and by error messages. *)
let to_string = function
  | IDENT s -> s
  | INT_LIT (_, text) | FLOAT_LIT (_, text) -> text
  | CHAR_LIT c -> Printf.sprintf "'%s'" (Char.escaped c)
  | STRING_LIT s -> Printf.sprintf "%S" s
  | KW kw -> keyword_name kw
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | COLON -> ":" | QUESTION -> "?" | ELLIPSIS -> "..." | DOT -> "."
  | ARROW -> "->" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | PLUSPLUS -> "++" | MINUSMINUS -> "--" | AMP -> "&"
  | BAR -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!" | LT -> "<"
  | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | ANDAND -> "&&" | OROR -> "||" | SHL -> "<<" | SHR -> ">>"
  | ASSIGN -> "=" | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*=" | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | SHL_ASSIGN -> "<<=" | SHR_ASSIGN -> ">>=" | AMP_ASSIGN -> "&="
  | CARET_ASSIGN -> "^=" | BAR_ASSIGN -> "|="
  | LMETA -> "{|" | RMETA -> "|}" | DOLLAR -> "$" | DOLLARDOLLAR -> "$$"
  | COLONCOLON -> "::" | BACKQUOTE -> "`" | AT -> "@"
  | EOF -> "<eof>"

(** Token equality for pattern matching of invocation "buzz tokens".
    Literal tokens compare by value; [IDENT]s by spelling.  The physical
    fast path covers both shared constant constructors and interned
    identifier spellings (the lexer canonicalizes them, so two [IDENT]s
    with one spelling usually share the payload too). *)
let equal (a : t) (b : t) =
  a == b
  || (match (a, b) with
     | IDENT x, IDENT y -> x == y || String.equal x y
     | _ -> a = b)

let pp ppf t = Fmt.string ppf (to_string t)

(** A token paired with its source location, as produced by the lexer. *)
type located = { tok : t; loc : Ms2_support.Loc.t }
