(** Hand-written lexer for the extended language (C plus the paper's
    meta-tokens, which are recognized by character adjacency). *)

val tokenize :
  ?origin:Ms2_support.Loc.origin ->
  ?source:string ->
  ?reject_reserved:bool ->
  string ->
  Token.located array
(** Lex a whole source into located tokens terminated by one [EOF].

    @param origin expansion provenance stamped onto every token
    location (default [User]); pass a [Macro] frame when lexing text
    produced by an expansion so downstream nodes carry the backtrace
    @param source name used in locations (default ["<string>"])
    @param reject_reserved reject identifiers that collide with
    generated (gensym) names; enable when lexing user programs so that
    hygiene by generated names is sound.
    @raise Ms2_support.Diag.Error on lexical errors. *)
