(** Hand-written lexer for the extended language.

    Produces the whole token stream up front (the parser does arbitrary
    lookahead on the resulting array, and the paper's placeholder-token
    mechanism is implemented parser-side).

    Meta-tokens are recognized by adjacency: [{|], [|}], [$$] and [::]
    are single tokens only when the characters are contiguous.  None of
    these sequences is valid C, so lexing them unconditionally does not
    change the C fragment of the language. *)

open Ms2_support

type state = {
  src : string;
  len : int;  (** [String.length src], hoisted out of the scan loops *)
  source_name : string;
  mutable pos : int;  (** byte offset *)
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
  reject_reserved : bool;
}

let current_pos st : Loc.pos =
  { line = st.line; col = st.pos - st.bol; offset = st.pos }

let loc_from st (start : Loc.pos) =
  Loc.make ~source:st.source_name ~start_pos:start ~end_pos:(current_pos st)

let error st start fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Diag.Error (Diag.make ~loc:(loc_from st start) Diag.Lexing message)))
    fmt

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < st.len then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start = current_pos st in
      advance st;
      advance st;
      let rec close () =
        match peek st with
        | None -> error st start "unterminated comment"
        | Some '*' when peek2 st = Some '/' ->
            advance st;
            advance st
        | Some _ ->
            advance st;
            close ()
      in
      close ();
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      let rec eol () =
        match peek st with
        | None | Some '\n' -> ()
        | Some _ ->
            advance st;
            eol ()
      in
      eol ();
      skip_trivia st
  | Some _ | None -> ()

let lex_ident st =
  let start = current_pos st in
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  (* Intern the spelling: a session lexes the same names thousands of
     times, and canonical copies make every later equality/hash cheap. *)
  let name = Intern.canon (Buffer.contents b) in
  if st.reject_reserved && Gensym.is_reserved name then
    error st start
      "identifier %S uses the reserved generated-name marker %S" name
      Gensym.reserved_marker;
  match Token.keyword_of_string name with
  | Some kw -> Token.KW kw
  | None -> Token.IDENT name

let lex_number st =
  let start = current_pos st in
  let b = Buffer.create 8 in
  let add () =
    Buffer.add_char b (Option.get (peek st));
    advance st
  in
  let hex = peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') in
  let is_float = ref false in
  if hex then (
    add ();
    add ();
    if not (match peek st with Some c -> is_hex c | None -> false) then
      error st start "malformed hexadecimal literal";
    while (match peek st with Some c -> is_hex c | None -> false) do
      add ()
    done)
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      add ()
    done;
    (* fractional part: "1.5" but not "1.m" (member access) or "1..." *)
    (match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
        is_float := true;
        add ();
        while (match peek st with Some c -> is_digit c | None -> false) do
          add ()
        done
    | _ -> ());
    (* exponent *)
    (match peek st with
    | Some ('e' | 'E')
      when (match peek2 st with
           | Some c -> is_digit c || c = '+' || c = '-'
           | None -> false) ->
        is_float := true;
        add ();
        (match peek st with Some ('+' | '-') -> add () | _ -> ());
        if not (match peek st with Some c -> is_digit c | None -> false)
        then error st start "malformed exponent";
        while (match peek st with Some c -> is_digit c | None -> false) do
          add ()
        done
    | _ -> ())
  end;
  if !is_float then begin
    (* float suffixes *)
    (match peek st with Some ('f' | 'F' | 'l' | 'L') -> add () | _ -> ());
    let text = Buffer.contents b in
    let digits =
      (* only allocate the sub-string when a suffix is actually there *)
      let n = String.length text in
      match text.[n - 1] with
      | 'f' | 'F' | 'l' | 'L' -> String.sub text 0 (n - 1)
      | _ -> text
    in
    match float_of_string_opt digits with
    | Some v -> Token.FLOAT_LIT (v, text)
    | None -> error st start "malformed floating-point literal %S" text
  end
  else begin
    (* integer suffixes, consumed into the spelling *)
    while
      match peek st with
      | Some ('u' | 'U' | 'l' | 'L') -> true
      | Some _ | None -> false
    do
      add ()
    done;
    let text = Buffer.contents b in
    let digits =
      (* strip suffix letters for value computation, allocating only
         when a suffix is actually present (the common literal has
         none, and [text] itself is already the digits) *)
      let n = String.length text in
      let rec core i =
        if
          i > 0
          && (match text.[i - 1] with
             | 'u' | 'U' | 'l' | 'L' -> true
             | _ -> false)
        then core (i - 1)
        else i
      in
      let c = core n in
      if c = n then text else String.sub text 0 c
    in
    match int_of_string_opt digits with
    | Some v -> Token.INT_LIT (v, text)
    | None -> error st start "integer literal %S out of range" text
  end

let lex_escape st start =
  match peek st with
  | None -> error st start "unterminated escape sequence"
  | Some c ->
      advance st;
      (match c with
      | 'n' -> '\n'
      | 't' -> '\t'
      | 'r' -> '\r'
      | '0' -> '\000'
      | '\\' -> '\\'
      | '\'' -> '\''
      | '"' -> '"'
      | c -> error st start "unknown escape sequence \\%c" c)

let lex_char st =
  let start = current_pos st in
  advance st;
  let c =
    match peek st with
    | None -> error st start "unterminated character literal"
    | Some '\\' ->
        advance st;
        lex_escape st start
    | Some c ->
        advance st;
        c
  in
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> error st start "unterminated character literal");
  Token.CHAR_LIT c

let lex_string st =
  let start = current_pos st in
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st start "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        Buffer.add_char b (lex_escape st start);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Token.STRING_LIT (Buffer.contents b)

(** Lex one token.  Assumes trivia has been skipped and end of input not
    reached. *)
let lex_token st =
  let c = Option.get (peek st) in
  let c2 = peek2 st in
  let one tok =
    advance st;
    tok
  in
  let two tok =
    advance st;
    advance st;
    tok
  in
  let three tok =
    advance st;
    advance st;
    advance st;
    tok
  in
  let open Token in
  if is_ident_start c then lex_ident st
  else if is_digit c then lex_number st
  else
    match (c, c2) with
    | '\'', _ -> lex_char st
    | '"', _ -> lex_string st
    | '{', Some '|' -> two LMETA
    | '|', Some '}' -> two RMETA
    | '$', Some '$' -> two DOLLARDOLLAR
    | '$', _ -> one DOLLAR
    | ':', Some ':' -> two COLONCOLON
    | '`', _ -> one BACKQUOTE
    | '@', _ -> one AT
    | '{', _ -> one LBRACE
    | '}', _ -> one RBRACE
    | '(', _ -> one LPAREN
    | ')', _ -> one RPAREN
    | '[', _ -> one LBRACKET
    | ']', _ -> one RBRACKET
    | ';', _ -> one SEMI
    | ',', _ -> one COMMA
    | ':', _ -> one COLON
    | '?', _ -> one QUESTION
    | '.', Some '.' when st.pos + 2 < st.len && st.src.[st.pos + 2] = '.' ->
        three ELLIPSIS
    | '.', _ -> one DOT
    | '-', Some '>' -> two ARROW
    | '-', Some '-' -> two MINUSMINUS
    | '-', Some '=' -> two MINUS_ASSIGN
    | '-', _ -> one MINUS
    | '+', Some '+' -> two PLUSPLUS
    | '+', Some '=' -> two PLUS_ASSIGN
    | '+', _ -> one PLUS
    | '*', Some '=' -> two STAR_ASSIGN
    | '*', _ -> one STAR
    | '/', Some '=' -> two SLASH_ASSIGN
    | '/', _ -> one SLASH
    | '%', Some '=' -> two PERCENT_ASSIGN
    | '%', _ -> one PERCENT
    | '&', Some '&' -> two ANDAND
    | '&', Some '=' -> two AMP_ASSIGN
    | '&', _ -> one AMP
    | '|', Some '|' -> two OROR
    | '|', Some '=' -> two BAR_ASSIGN
    | '|', _ -> one BAR
    | '^', Some '=' -> two CARET_ASSIGN
    | '^', _ -> one CARET
    | '~', _ -> one TILDE
    | '!', Some '=' -> two NE
    | '!', _ -> one BANG
    | '<', Some '<' ->
        if st.pos + 2 < st.len && st.src.[st.pos + 2] = '=' then
          three SHL_ASSIGN
        else two SHL
    | '<', Some '=' -> two LE
    | '<', _ -> one LT
    | '>', Some '>' ->
        if st.pos + 2 < st.len && st.src.[st.pos + 2] = '=' then
          three SHR_ASSIGN
        else two SHR
    | '>', Some '=' -> two GE
    | '>', _ -> one GT
    | '=', Some '=' -> two EQEQ
    | '=', _ -> one ASSIGN
    | c, _ ->
        let start = current_pos st in
        error st start "unexpected character %C" c

(** [tokenize ?origin ?source ?reject_reserved text] lexes [text] into an
    array of located tokens terminated by a single [EOF] token.

    @param origin expansion provenance stamped onto every token location
    (default [Loc.User]).  Pass a [Loc.Macro] frame when the text being
    lexed was produced by a macro expansion, so tokens — and through
    them every AST node the parser builds, including the placeholder
    tokens standing for splices — carry the invocation backtrace.
    @param reject_reserved reject identifiers that collide with generated
    (gensym) names; used when lexing user programs so that hygiene by
    generated names is sound. *)
let tokenize ?(origin = Loc.User) ?(source = "<string>")
    ?(reject_reserved = false) text : Token.located array =
  (* feed the diagnostic source registry so errors anywhere downstream
     can quote the offending line *)
  Diag.register_source source text;
  let st =
    { src = text; len = String.length text; source_name = source; pos = 0;
      line = 1; bol = 0; reject_reserved }
  in
  let with_origin loc =
    match origin with Loc.User -> loc | o -> Loc.set_origin loc o
  in
  let acc = ref [] in
  let rec go () =
    skip_trivia st;
    if st.pos >= st.len then
      acc :=
        { Token.tok = Token.EOF;
          loc = with_origin (loc_from st (current_pos st)) }
        :: !acc
    else begin
      let start = current_pos st in
      let tok = lex_token st in
      acc := { Token.tok; loc = with_origin (loc_from st start) } :: !acc;
      go ()
    end
  in
  go ();
  Array.of_list (List.rev !acc)
