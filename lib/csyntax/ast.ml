(** Abstract syntax of the extended language.

    This is the AST of C (the subset described in DESIGN.md §3) extended
    with the paper's meta constructs:

    - {b splices} ([$x], [$(e)]) — placeholders inside code templates.
      Each syntactic class that the paper allows a placeholder to stand
      for has a [..._splice] alternative carrying the placeholder
      expression and its AST type, inferred at parse time;
    - {b backquote templates} (expressions of the meta language);
    - {b anonymous functions} (meta language only);
    - {b macro invocations}, which the parser packages with their
      pattern-matched actual parameters for later expansion;
    - {b macro definitions} and {b meta declarations} (top level);
    - {b invocation patterns} (part of macro headers).

    Expansion (in [ms2.core]) eliminates every meta construct; the
    pretty-printer for pure C refuses meta residue. *)

open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort

type ident = { id_name : string; id_loc : Loc.t }

let ident ?(loc = Loc.dummy) name = { id_name = name; id_loc = loc }

type unop =
  | Neg | Plus | Lognot | Bitnot
  | Deref  (** also list head ([car]) in the meta language *)
  | Addr
  | Preincr | Predecr

type binop =
  | Add  (** also list tail ([l + 1] is [cdr l]) in the meta language *)
  | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | Band | Bxor | Bor
  | Logand | Logor

type assignop =
  | A_eq | A_add | A_sub | A_mul | A_div | A_mod
  | A_shl | A_shr | A_band | A_bxor | A_bor

type constant =
  | Cint of int * string  (** value, original spelling *)
  | Cfloat of float * string  (** object-level only: no meta floats *)
  | Cchar of char
  | Cstring of string

(** A placeholder occurrence inside a backquote template.  [sp_type] is
    the AST type of the placeholder expression, computed by parse-time
    type analysis; it decides which syntactic position the placeholder
    may fill (the mechanism behind the paper's Figures 2 and 3).
    [sp_depth] is the backquote nesting depth at which the splice fires
    (1 = innermost enclosing backquote). *)
type splice = {
  sp_expr : expr;  (** the meta expression to evaluate at expansion time *)
  sp_type : Mtype.t;
  sp_depth : int;
  sp_loc : Loc.t;
}

and expr = { e : expr_desc; eloc : Loc.t }

and expr_desc =
  | E_ident of ident
  | E_const of constant
  | E_call of expr * expr list
  | E_index of expr * expr
  | E_member of expr * id_or_splice
  | E_arrow of expr * id_or_splice
  | E_postincr of expr
  | E_postdecr of expr
  | E_unary of unop * expr
  | E_cast of ctype * expr
  | E_sizeof_expr of expr
  | E_sizeof_type of ctype
  | E_binary of binop * expr * expr
  | E_cond of expr * expr * expr
  | E_assign of assignop * expr * expr
  | E_comma of expr * expr
  (* --- meta extensions --- *)
  | E_backquote of template  (** code template; meta language only *)
  | E_lambda of param list * expr  (** anonymous meta function *)
  | E_splice of splice  (** placeholder in expression position *)
  | E_macro of invocation  (** macro invocation in expression position *)

(** Type name as used in casts and [sizeof]: specifiers plus an abstract
    declarator. *)
and ctype = { ct_specs : spec list; ct_decl : declarator }

(** Declaration specifier.  A declaration's specifier list mixes storage
    classes, qualifiers and type specifiers, in source order. *)
and spec =
  | S_void | S_char | S_int | S_float | S_double
  | S_short | S_long | S_signed | S_unsigned
  | S_named of ident  (** typedef name *)
  | S_enum of enum_spec
  | S_struct of id_or_splice option * field list option
      (** struct tag/fields; the tag may be a placeholder *)
  | S_union of id_or_splice option * field list option
  | S_typedef | S_extern | S_static | S_auto | S_register
  | S_const | S_volatile
  | S_ast of Sort.t  (** [@stmt] etc.: AST-typed meta declaration *)
  | S_splice of splice  (** placeholder in type-specifier position *)

and enum_spec = {
  enum_tag : id_or_splice option;
  enum_items : enumerator list option;  (** [None] for [enum foo x;] *)
}

(** An identifier position that may hold a placeholder (e.g. the tag in
    [enum $name {...}], or the member in [o->$field]). *)
and id_or_splice = Ii_id of ident | Ii_splice of splice

and enumerator =
  | Enum_item of id_or_splice * expr option
      (** the name may be a placeholder, so macros can build enumerators
          with computed values ([$flag = $(make_num(v))]) *)
  | Enum_splice of splice  (** an [@id] ([one item]) or [@id[]] (several) *)

and field = { f_specs : spec list; f_declarators : declarator list }

and declarator =
  | D_ident of ident
  | D_abstract  (** missing name (abstract declarators) *)
  | D_pointer of declarator
  | D_array of declarator * expr option
  | D_func of declarator * param list
  | D_splice of splice  (** [@declarator]-typed, or [@id]-typed (Fig. 2) *)

and init_declarator =
  | Init_decl of declarator * init option
  | Init_splice of splice  (** [@init_declarator] or [@init_declarator[]] *)

and init = I_expr of expr | I_list of init list

and param =
  | P_decl of spec list * declarator
  | P_name of ident  (** K&R-style parameter name *)
  | P_ellipsis  (** trailing [...] (variadic prototype) *)
  | P_splice of splice

and stmt = { s : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | St_expr of expr
  | St_compound of block_item list
      (** C89 compounds are declarations followed by statements; the
          parser enforces that no declaration item follows a statement
          item (the rule that makes the paper's Figure 3 (stmt, decl)
          case illegal). *)
  | St_if of expr * stmt * stmt option
  | St_while of expr * stmt
  | St_do of stmt * expr
  | St_for of expr option * expr option * expr option * stmt
  | St_switch of expr * stmt
  | St_case of expr * stmt
  | St_default of stmt
  | St_return of expr option
  | St_break
  | St_continue
  | St_goto of ident
  | St_label of ident * stmt
  | St_null
  | St_splice of splice  (** placeholder in statement position *)
  | St_macro of invocation  (** statement-macro invocation *)

and block_item = Bi_decl of decl | Bi_stmt of stmt

and decl = { d : decl_desc; dloc : Loc.t }

and decl_desc =
  | Decl_plain of spec list * init_declarator list
  | Decl_fun of spec list * declarator * decl list * stmt
      (** return specs, declarator, K&R parameter declarations, body *)
  | Decl_metadcl of decl  (** [metadcl] declaration: meta level *)
  | Decl_macro_def of macro_def  (** [syntax] macro definition *)
  | Decl_splice of splice  (** placeholder in declaration position *)
  | Decl_macro of invocation  (** declaration-macro invocation *)

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

(** Invocation pattern: the concrete syntax and actual-parameter types of
    a macro's invocations (the part of the header between [{|] and
    [|}]). *)
and pattern = pattern_elem list

and pattern_elem =
  | Pe_token of Token.t  (** concrete ("buzz") token *)
  | Pe_binder of binder  (** [$$pspec :: name] *)

and binder = { b_spec : pspec; b_name : ident }

and pspec =
  | Ps_sort of Sort.t
  | Ps_plus of Token.t option * pspec
      (** list of one or more, with optional separator token *)
  | Ps_star of Token.t option * pspec  (** list of zero or more *)
  | Ps_opt of Token.t option * pspec
      (** optional element, with optional preamble token *)
  | Ps_tuple of pattern  (** tuple sub-pattern *)

(* ------------------------------------------------------------------ *)
(* Macros                                                              *)
(* ------------------------------------------------------------------ *)

and macro_def = {
  m_name : id_or_splice;
      (** a placeholder name ([syntax stmt $name ...]) makes sense only
          inside templates: macro-generating macros fill it in *)
  m_ret : Mtype.t;  (** declared AST type of invocation results *)
  m_pattern : pattern;
  m_body : stmt;  (** compound statement of meta-code *)
  m_loc : Loc.t;
}

(** A parsed macro invocation: the pattern-directed parse binds each
    binder name to an {!actual}. *)
and invocation = {
  inv_name : ident;
  inv_actuals : (string * actual) list;
  inv_ret : Mtype.t;  (** copied from the macro's declaration *)
  inv_loc : Loc.t;
}

(** Actual parameter shapes mirror pattern shapes: repetitions produce
    lists, tuple patterns produce tuples, optional elements produce
    lists of length zero or one. *)
and actual =
  | Act_node of node
  | Act_list of actual list
  | Act_tuple of (string * actual) list

(** A single AST value, classified by sort.  This is both the payload of
    actual parameters and the AST part of meta-language runtime values. *)
and node =
  | N_id of ident
  | N_exp of expr
  | N_num of constant
  | N_stmt of stmt
  | N_decl of decl
  | N_typespec of spec list
  | N_declarator of declarator
  | N_init_declarator of init_declarator
  | N_param of param
  | N_enumerator of enumerator

(* ------------------------------------------------------------------ *)
(* Templates                                                           *)
(* ------------------------------------------------------------------ *)

(** Backquote templates.  The first token after the backquote selects the
    syntactic type: [`( e )] expression, [`{ s }] statement, [`[ d ]]
    top-level declaration, and the general form [`{| pspec :: syntax |}]
    parses [syntax] according to [pspec]. *)
and template =
  | T_exp of expr
  | T_stmt of stmt
  | T_decl of decl
  | T_general of pspec * actual
      (** general form; the actual's nodes may contain splices *)

type program = decl list

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(loc = Loc.dummy) e = { e; eloc = loc }
let mk_stmt ?(loc = Loc.dummy) s = { s; sloc = loc }
let mk_decl ?(loc = Loc.dummy) d = { d; dloc = loc }

let e_ident ?loc name = mk_expr ?loc (E_ident (ident ?loc name))
let e_int ?loc n = mk_expr ?loc (E_const (Cint (n, string_of_int n)))
let e_string ?loc s = mk_expr ?loc (E_const (Cstring s))
let e_call ?loc f args = mk_expr ?loc (E_call (f, args))

let node_sort = function
  | N_id _ -> Sort.Id
  | N_exp _ -> Sort.Exp
  | N_num _ -> Sort.Num
  | N_stmt _ -> Sort.Stmt
  | N_decl _ -> Sort.Decl
  | N_typespec _ -> Sort.Typespec
  | N_declarator _ -> Sort.Declarator
  | N_init_declarator _ -> Sort.Init_declarator
  | N_param _ -> Sort.Param
  | N_enumerator _ -> Sort.Enumerator

(* Declarators, parameters and enumerators carry no span of their own;
   the nearest identifier inside them is the best recoverable
   location. *)
let rec declarator_loc = function
  | D_ident id -> id.id_loc
  | D_abstract -> Loc.dummy
  | D_pointer d | D_array (d, _) | D_func (d, _) -> declarator_loc d
  | D_splice sp -> sp.sp_loc

let node_loc = function
  | N_id i -> i.id_loc
  | N_exp e -> e.eloc
  | N_num _ -> Loc.dummy  (* numbers are bare constants, no span *)
  | N_stmt s -> s.sloc
  | N_decl d -> d.dloc
  | N_typespec specs -> (
      match
        List.find_map
          (function
            | S_splice sp -> Some sp.sp_loc
            | S_named id -> Some id.id_loc
            | _ -> None)
          specs
      with
      | Some loc -> loc
      | None -> Loc.dummy (* keyword-only specifier lists have no span *))
  | N_declarator d -> declarator_loc d
  | N_init_declarator (Init_decl (d, _)) -> declarator_loc d
  | N_init_declarator (Init_splice sp) -> sp.sp_loc
  | N_param (P_decl (_, d)) -> declarator_loc d
  | N_param (P_name id) -> id.id_loc
  | N_param P_ellipsis -> Loc.dummy  (* "..." is not a located token *)
  | N_param (P_splice sp) -> sp.sp_loc
  | N_enumerator (Enum_item (Ii_id id, _)) -> id.id_loc
  | N_enumerator (Enum_item (Ii_splice sp, _)) -> sp.sp_loc
  | N_enumerator (Enum_splice sp) -> sp.sp_loc

(** Type of the value bound by a pattern specifier: repetitions and
    optionals give lists, tuples give tuples. *)
let rec pspec_type = function
  | Ps_sort s -> Mtype.Ast s
  | Ps_plus (_, p) | Ps_star (_, p) | Ps_opt (_, p) ->
      Mtype.List (pspec_type p)
  | Ps_tuple pat ->
      let fields =
        List.filter_map
          (function
            | Pe_token _ -> None
            | Pe_binder b ->
                Some
                  { Mtype.fld_name = b.b_name.id_name;
                    fld_type = pspec_type b.b_spec })
          pat
      in
      Mtype.Tuple fields
