(** Scoped symbol tables for the object-level semantic analysis:
    variables/functions, typedefs, enum constants (per scope), and
    struct/union field layouts (per file). *)

type t

val create : unit -> t
val push_scope : t -> unit
val pop_scope : t -> unit
val with_scope : t -> (unit -> 'a) -> 'a

val snapshot : t -> t
(** A deep copy for transactional rollback; shares no mutable state. *)

val restore : t -> t -> unit
(** [restore t snap] resets [t] in place to the state captured by
    [snap].  The anonymous-tag counter is deliberately not rolled back
    so tags stay fresh after an aborted expansion. *)

val depth : t -> int
(** Number of open scopes (1 = just the global scope). *)

val fresh_tag : t -> string
(** A name for an anonymous struct/union/enum tag. *)

val anon_count : t -> int
(** Anonymous tags minted so far.  Monotonic — never rolled back — which
    is what lets the expansion cache refuse to store runs that minted
    tags (their pre-state can never recur). *)

val add_var : t -> string -> Ctype.t -> unit
val add_typedef : t -> string -> Ctype.t -> unit
val add_layout : t -> string -> (string * Ctype.t) list -> unit
val find_var : t -> string -> Ctype.t option
val find_typedef : t -> string -> Ctype.t option
val find_layout : t -> string -> (string * Ctype.t) list option

val field_type : t -> string -> string -> Ctype.t
(** Field type within a tagged struct/union; [Unknown] when unknown.
    Resolved through an interned-key index, so cost is independent of
    the struct's width. *)

val rehydrate : t -> t
(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): re-interns every key (scopes, layouts, field indexes)
    into fresh tables, restoring the pointer identity [Intern.Tbl]
    lookups rely on.  The input is not mutated. *)

val digest : t -> string
(** Deterministic digest of the whole environment (scopes, bindings,
    layouts, anonymous-tag counter), for content-addressed
    expansion-cache keys. *)
