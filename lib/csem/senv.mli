(** Scoped symbol tables for the object-level semantic analysis:
    variables/functions, typedefs, enum constants (per scope), and
    struct/union field layouts (per file). *)

type t

val create : unit -> t
val push_scope : t -> unit
val pop_scope : t -> unit
val with_scope : t -> (unit -> 'a) -> 'a

val snapshot : t -> t
(** A deep copy for transactional rollback; shares no mutable state. *)

val restore : t -> t -> unit
(** [restore t snap] resets [t] in place to the state captured by
    [snap].  The anonymous-tag counter is deliberately not rolled back
    so tags stay fresh after an aborted expansion. *)

val depth : t -> int
(** Number of open scopes (1 = just the global scope). *)

val fresh_tag : t -> string
(** A name for an anonymous struct/union/enum tag. *)

val anon_count : t -> int
(** Anonymous tags minted so far.  Monotonic — never rolled back — which
    is what lets the expansion cache refuse to store runs that minted
    tags (their pre-state can never recur). *)

val add_var : t -> string -> Ctype.t -> unit
val add_typedef : t -> string -> Ctype.t -> unit
val add_layout : t -> string -> (string * Ctype.t) list -> unit
val find_var : t -> string -> Ctype.t option
val find_typedef : t -> string -> Ctype.t option
val find_layout : t -> string -> (string * Ctype.t) list option

val field_type : t -> string -> string -> Ctype.t
(** Field type within a tagged struct/union; [Unknown] when unknown.
    Resolved through an interned-key index, so cost is independent of
    the struct's width. *)

(** {1 Speculative-commit support}

    The engine's intra-file fragment parallelism expands fragments
    against snapshot-isolated copies of the environment and decides at
    commit time whether the speculation was consistent.  These hooks
    expose what it needs: read/write odometers per table kind, and a
    diff/apply pair for the top scope. *)

val reads : t -> int * int * int
(** Monotonic lookup odometers [(vars, typedefs, layouts)] — callers
    measure deltas across a fragment.  Never rolled back. *)

val writes : t -> int * int * int
(** Monotonic {e top-scope} write odometers [(vars, typedefs,
    layouts)].  Writes into pushed (function-local) scopes are not
    counted: they are popped before any fragment boundary. *)

type top_delta
(** What a fragment wrote into the top scope (and the layout table),
    relative to the snapshot it started from. *)

val diff_top : t -> base:t -> top_delta option
(** [diff_top t ~base] — [base] must be the {!snapshot} [t] was
    {!restore}d from; [None] when either side has scopes still open
    (not at a fragment boundary). *)

val delta_counts : top_delta -> int * int * int
(** Entry counts [(vars, typedefs, layouts)] of a delta. *)

val apply_top : t -> top_delta -> unit
(** Replay a delta into [t]'s innermost scope, with the same replace
    semantics as the original bindings. *)

val rehydrate : t -> t
(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): re-interns every key (scopes, layouts, field indexes)
    into fresh tables, restoring the pointer identity [Intern.Tbl]
    lookups rely on.  The input is not mutated. *)

val digest : t -> string
(** Deterministic digest of the whole environment (scopes, bindings,
    layouts, anonymous-tag counter), for content-addressed
    expansion-cache keys. *)
