(** Scoped symbol tables for the object-level semantic analysis.

    Tracks, per scope: variables and functions (name → type), typedefs
    (name → type), enum constants (name → enum type), and — globally,
    since C tags share one file-scope namespace per kind in our subset —
    struct/union field layouts. *)

type scope = {
  vars : (string, Ctype.t) Hashtbl.t;
  typedefs : (string, Ctype.t) Hashtbl.t;
}

type t = {
  mutable scopes : scope list;
  layouts : (string, (string * Ctype.t) list) Hashtbl.t;
      (** struct/union tag → field layout *)
  mutable anon_counter : int;  (** names for anonymous tags *)
}

let new_scope () = { vars = Hashtbl.create 16; typedefs = Hashtbl.create 4 }

let create () =
  { scopes = [ new_scope () ]; layouts = Hashtbl.create 16; anon_counter = 0 }

let push_scope t = t.scopes <- new_scope () :: t.scopes

let pop_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Senv.pop_scope: global scope"
  | _ :: rest -> t.scopes <- rest

let with_scope t f =
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

let copy_scope s =
  { vars = Hashtbl.copy s.vars; typedefs = Hashtbl.copy s.typedefs }

(** A deep snapshot for transactional rollback.  [anon_counter] is
    captured but deliberately not restored: anonymous-tag names must stay
    fresh across a rollback or a re-expansion could collide with layouts
    recorded by the aborted attempt. *)
let snapshot t : t =
  {
    scopes = List.map copy_scope t.scopes;
    layouts = Hashtbl.copy t.layouts;
    anon_counter = t.anon_counter;
  }

(** Reset [t] in place to [snap] (which is never mutated).  In place
    because the engine hands the same [t] to every expansion. *)
let restore t (snap : t) =
  t.scopes <- List.map copy_scope snap.scopes;
  Hashtbl.reset t.layouts;
  Hashtbl.iter (fun tag fields -> Hashtbl.replace t.layouts tag fields)
    snap.layouts

let depth t = List.length t.scopes

let fresh_tag t =
  t.anon_counter <- t.anon_counter + 1;
  Printf.sprintf "<anonymous-%d>" t.anon_counter

let add_var t name ty =
  match t.scopes with
  | scope :: _ -> Hashtbl.replace scope.vars name ty
  | [] -> assert false

let add_typedef t name ty =
  match t.scopes with
  | scope :: _ -> Hashtbl.replace scope.typedefs name ty
  | [] -> assert false

let add_layout t tag fields = Hashtbl.replace t.layouts tag fields

let find tbl_of t name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt (tbl_of scope) name with
        | Some v -> Some v
        | None -> go rest)
  in
  go t.scopes

let find_var t name = find (fun s -> s.vars) t name
let find_typedef t name = find (fun s -> s.typedefs) t name
let find_layout t tag = Hashtbl.find_opt t.layouts tag

(** Field type within a struct/union, [Unknown] when the layout (or the
    field) is unknown. *)
let field_type t tag field : Ctype.t =
  match find_layout t tag with
  | None -> Ctype.Unknown
  | Some fields -> (
      match List.assoc_opt field fields with
      | Some ty -> ty
      | None -> Ctype.Unknown)
