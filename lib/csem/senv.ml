(** Scoped symbol tables for the object-level semantic analysis.

    Tracks, per scope: variables and functions (name → type), typedefs
    (name → type), enum constants (name → enum type), and — globally,
    since C tags share one file-scope namespace per kind in our subset —
    struct/union field layouts.

    All tables are keyed by interned symbols ({!Ms2_support.Intern}):
    the analyzer probes these environments for every identifier and
    member access it sees, so lookups resolve with a cached hash and
    pointer-equality bucket scans.  Field layouts keep their declared
    order (the public [(string * Ctype.t) list] view) alongside an
    interned-key index so [field_type] is a hash probe rather than an
    association-list walk — wide structs made the linear scan a real
    cost. *)

module Intern = Ms2_support.Intern

type scope = {
  vars : Ctype.t Intern.Tbl.t;
  typedefs : Ctype.t Intern.Tbl.t;
}

(** A struct/union layout: declared field order plus a lookup index. *)
type layout = {
  fields : (string * Ctype.t) list;  (** declared order, public view *)
  index : Ctype.t Intern.Tbl.t;  (** field symbol → type *)
}

type t = {
  mutable scopes : scope list;
  layouts : layout Intern.Tbl.t;  (** struct/union tag → field layout *)
  mutable anon_counter : int;  (** names for anonymous tags *)
  (* Read/write odometers for the speculative fragment commit protocol
     (see engine.ml): a speculative fragment expanded against a snapshot
     is only committable when either it read nothing from a table kind,
     or nothing of that kind was written since the snapshot.  The
     counters are monotonic (like [anon_counter]) and never rolled back;
     callers measure deltas.  Writes count only top-scope mutations —
     function-local scopes are popped before a fragment boundary, so
     they cannot be observed across fragments. *)
  mutable reads_vars : int;
  mutable reads_typedefs : int;
  mutable reads_layouts : int;
  mutable writes_vars : int;
  mutable writes_typedefs : int;
  mutable writes_layouts : int;
}

let new_scope () =
  { vars = Intern.Tbl.create 16; typedefs = Intern.Tbl.create 4 }

let create () =
  {
    scopes = [ new_scope () ];
    layouts = Intern.Tbl.create 16;
    anon_counter = 0;
    reads_vars = 0;
    reads_typedefs = 0;
    reads_layouts = 0;
    writes_vars = 0;
    writes_typedefs = 0;
    writes_layouts = 0;
  }

let push_scope t = t.scopes <- new_scope () :: t.scopes

let pop_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Senv.pop_scope: global scope"
  | _ :: rest -> t.scopes <- rest

let with_scope t f =
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

let copy_scope s =
  { vars = Intern.Tbl.copy s.vars; typedefs = Intern.Tbl.copy s.typedefs }

(** A deep snapshot for transactional rollback.  [anon_counter] is
    captured but deliberately not restored: anonymous-tag names must stay
    fresh across a rollback or a re-expansion could collide with layouts
    recorded by the aborted attempt.  Layout records are immutable once
    built, so sharing them between snapshot and original is safe. *)
let snapshot t : t =
  {
    scopes = List.map copy_scope t.scopes;
    layouts = Intern.Tbl.copy t.layouts;
    anon_counter = t.anon_counter;
    reads_vars = 0;
    reads_typedefs = 0;
    reads_layouts = 0;
    writes_vars = 0;
    writes_typedefs = 0;
    writes_layouts = 0;
  }

(** Reset [t] in place to [snap] (which is never mutated).  In place
    because the engine hands the same [t] to every expansion. *)
let restore t (snap : t) =
  t.scopes <- List.map copy_scope snap.scopes;
  Intern.Tbl.reset t.layouts;
  Intern.Tbl.iter (fun tag layout -> Intern.Tbl.replace t.layouts tag layout)
    snap.layouts

let depth t = List.length t.scopes

let fresh_tag t =
  t.anon_counter <- t.anon_counter + 1;
  Printf.sprintf "<anonymous-%d>" t.anon_counter

let anon_count t = t.anon_counter

let add_var t name ty =
  match t.scopes with
  | [ top ] ->
      t.writes_vars <- t.writes_vars + 1;
      Intern.Tbl.replace top.vars (Intern.intern name) ty
  | scope :: _ -> Intern.Tbl.replace scope.vars (Intern.intern name) ty
  | [] -> assert false

let add_typedef t name ty =
  match t.scopes with
  | [ top ] ->
      t.writes_typedefs <- t.writes_typedefs + 1;
      Intern.Tbl.replace top.typedefs (Intern.intern name) ty
  | scope :: _ -> Intern.Tbl.replace scope.typedefs (Intern.intern name) ty
  | [] -> assert false

let add_layout t tag fields =
  t.writes_layouts <- t.writes_layouts + 1;
  let index = Intern.Tbl.create (List.length fields * 2) in
  List.iter
    (fun (name, ty) ->
      let sym = Intern.intern name in
      (* first declaration of a duplicated field name wins, matching the
         old [List.assoc_opt] front-to-back resolution *)
      if not (Intern.Tbl.mem index sym) then Intern.Tbl.replace index sym ty)
    fields;
  Intern.Tbl.replace t.layouts (Intern.intern tag) { fields; index }

let find tbl_of t name =
  let sym = Intern.intern name in
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Intern.Tbl.find_opt (tbl_of scope) sym with
        | Some v -> Some v
        | None -> go rest)
  in
  go t.scopes

let find_var t name =
  t.reads_vars <- t.reads_vars + 1;
  find (fun s -> s.vars) t name

let find_typedef t name =
  t.reads_typedefs <- t.reads_typedefs + 1;
  find (fun s -> s.typedefs) t name

let find_layout t tag =
  t.reads_layouts <- t.reads_layouts + 1;
  match Intern.Tbl.find_opt t.layouts (Intern.intern tag) with
  | Some layout -> Some layout.fields
  | None -> None

(** Field type within a struct/union, [Unknown] when the layout (or the
    field) is unknown.  One interned-key probe, independent of width. *)
let field_type t tag field : Ctype.t =
  t.reads_layouts <- t.reads_layouts + 1;
  match Intern.Tbl.find_opt t.layouts (Intern.intern tag) with
  | None -> Ctype.Unknown
  | Some layout -> (
      match Intern.Tbl.find_opt layout.index (Intern.intern field) with
      | Some ty -> ty
      | None -> Ctype.Unknown)

(* -- speculative-commit support ------------------------------------- *)

(** Per-kind (vars, typedefs, layouts) counter triples, as deltas of
    monotonic odometers.  See the field comments on [t]. *)
let reads t = (t.reads_vars, t.reads_typedefs, t.reads_layouts)
let writes t = (t.writes_vars, t.writes_typedefs, t.writes_layouts)

(** The top-scope difference between [t] and the snapshot it was
    restored from: what a speculative fragment wrote.  [None] when the
    environments are not at a comparable fragment boundary (both must be
    a single open scope).  Unchanged-layout detection is physical — a
    [restore] shares layout records with its snapshot, so any entry the
    fragment did not touch is the same record. *)
type top_delta = {
  dl_vars : (string * Ctype.t) list;
  dl_typedefs : (string * Ctype.t) list;
  dl_layouts : (string * (string * Ctype.t) list) list;
}

let diff_top (t : t) ~(base : t) : top_delta option =
  match (t.scopes, base.scopes) with
  | [ top ], [ base_top ] ->
      let tbl_delta cur base =
        Intern.Tbl.fold
          (fun sym ty acc ->
            match Intern.Tbl.find_opt base sym with
            | Some ty0 when ty0 == ty || ty0 = ty -> acc
            | _ -> (Intern.str sym, ty) :: acc)
          cur []
      in
      let dl_layouts =
        Intern.Tbl.fold
          (fun tag layout acc ->
            match Intern.Tbl.find_opt base.layouts tag with
            | Some l0 when l0 == layout -> acc
            | _ -> (Intern.str tag, layout.fields) :: acc)
          t.layouts []
      in
      Some
        {
          dl_vars = tbl_delta top.vars base_top.vars;
          dl_typedefs = tbl_delta top.typedefs base_top.typedefs;
          dl_layouts;
        }
  | _ -> None

let delta_counts (d : top_delta) : int * int * int =
  (List.length d.dl_vars, List.length d.dl_typedefs, List.length d.dl_layouts)

(** Replay a delta into [t]'s innermost scope.  [add_layout] rebuilds
    the field index exactly as the original binding would have, so the
    committed state is indistinguishable from a sequential run. *)
let apply_top (t : t) (d : top_delta) : unit =
  List.iter (fun (name, ty) -> add_var t name ty) d.dl_vars;
  List.iter (fun (name, ty) -> add_typedef t name ty) d.dl_typedefs;
  List.iter (fun (tag, fields) -> add_layout t tag fields) d.dl_layouts

(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): unmarshalled symbols keep their spelling but lose pointer
    identity with the live interner, and [Intern.Tbl] compares keys by
    pointer.  Re-intern every key — scope vars/typedefs, the layout
    table, and each layout's field index.  [Ctype.t] values and the
    ordered field lists are pure data and survive marshalling as-is. *)
let rehydrate (t : t) : t =
  let rebuild tbl =
    let fresh = Intern.Tbl.create (max 4 (Intern.Tbl.length tbl)) in
    Intern.Tbl.iter
      (fun sym v -> Intern.Tbl.replace fresh (Intern.intern (Intern.str sym)) v)
      tbl;
    fresh
  in
  let layouts = Intern.Tbl.create (max 16 (Intern.Tbl.length t.layouts)) in
  Intern.Tbl.iter
    (fun tag layout ->
      Intern.Tbl.replace layouts
        (Intern.intern (Intern.str tag))
        { fields = layout.fields; index = rebuild layout.index })
    t.layouts;
  {
    scopes =
      List.map
        (fun s -> { vars = rebuild s.vars; typedefs = rebuild s.typedefs })
        t.scopes;
    layouts;
    anon_counter = t.anon_counter;
    reads_vars = 0;
    reads_typedefs = 0;
    reads_layouts = 0;
    writes_vars = 0;
    writes_typedefs = 0;
    writes_layouts = 0;
  }

(** A deterministic digest of the whole environment (scope structure,
    bindings, layouts), for content-addressed cache keys.  The
    anonymous-tag counter is included: it feeds [fresh_tag], so two
    states differing only in the counter can still produce different
    output.  [Ctype.t] is pure data, so marshalling is faithful. *)
let digest (t : t) : string =
  let b = Buffer.create 256 in
  let add_tbl label tbl =
    Buffer.add_string b label;
    Intern.Tbl.fold (fun sym v acc -> (Intern.str sym, v) :: acc) tbl []
    |> List.sort compare
    |> List.iter (fun (name, ty) ->
           Buffer.add_string b name;
           Buffer.add_char b '=';
           Buffer.add_string b (Marshal.to_string (ty : Ctype.t) []))
  in
  List.iter
    (fun scope ->
      add_tbl "(vars" scope.vars;
      add_tbl ")(typedefs" scope.typedefs;
      Buffer.add_char b ')')
    t.scopes;
  Buffer.add_string b "(layouts";
  Intern.Tbl.fold
    (fun tag layout acc -> (Intern.str tag, layout.fields) :: acc)
    t.layouts []
  |> List.sort compare
  |> List.iter (fun (tag, fields) ->
         Buffer.add_string b tag;
         Buffer.add_char b '=';
         Buffer.add_string b
           (Marshal.to_string (fields : (string * Ctype.t) list) []));
  Buffer.add_char b ')';
  Buffer.add_string b (string_of_int t.anon_counter);
  Digest.string (Buffer.contents b)
