(** Scoped symbol tables for the object-level semantic analysis.

    Tracks, per scope: variables and functions (name → type), typedefs
    (name → type), enum constants (name → enum type), and — globally,
    since C tags share one file-scope namespace per kind in our subset —
    struct/union field layouts.

    All tables are keyed by interned symbols ({!Ms2_support.Intern}):
    the analyzer probes these environments for every identifier and
    member access it sees, so lookups resolve with a cached hash and
    pointer-equality bucket scans.  Field layouts keep their declared
    order (the public [(string * Ctype.t) list] view) alongside an
    interned-key index so [field_type] is a hash probe rather than an
    association-list walk — wide structs made the linear scan a real
    cost. *)

module Intern = Ms2_support.Intern

type scope = {
  vars : Ctype.t Intern.Tbl.t;
  typedefs : Ctype.t Intern.Tbl.t;
}

(** A struct/union layout: declared field order plus a lookup index. *)
type layout = {
  fields : (string * Ctype.t) list;  (** declared order, public view *)
  index : Ctype.t Intern.Tbl.t;  (** field symbol → type *)
}

type t = {
  mutable scopes : scope list;
  layouts : layout Intern.Tbl.t;  (** struct/union tag → field layout *)
  mutable anon_counter : int;  (** names for anonymous tags *)
}

let new_scope () =
  { vars = Intern.Tbl.create 16; typedefs = Intern.Tbl.create 4 }

let create () =
  {
    scopes = [ new_scope () ];
    layouts = Intern.Tbl.create 16;
    anon_counter = 0;
  }

let push_scope t = t.scopes <- new_scope () :: t.scopes

let pop_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Senv.pop_scope: global scope"
  | _ :: rest -> t.scopes <- rest

let with_scope t f =
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

let copy_scope s =
  { vars = Intern.Tbl.copy s.vars; typedefs = Intern.Tbl.copy s.typedefs }

(** A deep snapshot for transactional rollback.  [anon_counter] is
    captured but deliberately not restored: anonymous-tag names must stay
    fresh across a rollback or a re-expansion could collide with layouts
    recorded by the aborted attempt.  Layout records are immutable once
    built, so sharing them between snapshot and original is safe. *)
let snapshot t : t =
  {
    scopes = List.map copy_scope t.scopes;
    layouts = Intern.Tbl.copy t.layouts;
    anon_counter = t.anon_counter;
  }

(** Reset [t] in place to [snap] (which is never mutated).  In place
    because the engine hands the same [t] to every expansion. *)
let restore t (snap : t) =
  t.scopes <- List.map copy_scope snap.scopes;
  Intern.Tbl.reset t.layouts;
  Intern.Tbl.iter (fun tag layout -> Intern.Tbl.replace t.layouts tag layout)
    snap.layouts

let depth t = List.length t.scopes

let fresh_tag t =
  t.anon_counter <- t.anon_counter + 1;
  Printf.sprintf "<anonymous-%d>" t.anon_counter

let anon_count t = t.anon_counter

let add_var t name ty =
  match t.scopes with
  | scope :: _ -> Intern.Tbl.replace scope.vars (Intern.intern name) ty
  | [] -> assert false

let add_typedef t name ty =
  match t.scopes with
  | scope :: _ -> Intern.Tbl.replace scope.typedefs (Intern.intern name) ty
  | [] -> assert false

let add_layout t tag fields =
  let index = Intern.Tbl.create (List.length fields * 2) in
  List.iter
    (fun (name, ty) ->
      let sym = Intern.intern name in
      (* first declaration of a duplicated field name wins, matching the
         old [List.assoc_opt] front-to-back resolution *)
      if not (Intern.Tbl.mem index sym) then Intern.Tbl.replace index sym ty)
    fields;
  Intern.Tbl.replace t.layouts (Intern.intern tag) { fields; index }

let find tbl_of t name =
  let sym = Intern.intern name in
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Intern.Tbl.find_opt (tbl_of scope) sym with
        | Some v -> Some v
        | None -> go rest)
  in
  go t.scopes

let find_var t name = find (fun s -> s.vars) t name
let find_typedef t name = find (fun s -> s.typedefs) t name

let find_layout t tag =
  match Intern.Tbl.find_opt t.layouts (Intern.intern tag) with
  | Some layout -> Some layout.fields
  | None -> None

(** Field type within a struct/union, [Unknown] when the layout (or the
    field) is unknown.  One interned-key probe, independent of width. *)
let field_type t tag field : Ctype.t =
  match Intern.Tbl.find_opt t.layouts (Intern.intern tag) with
  | None -> Ctype.Unknown
  | Some layout -> (
      match Intern.Tbl.find_opt layout.index (Intern.intern field) with
      | Some ty -> ty
      | None -> Ctype.Unknown)

(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): unmarshalled symbols keep their spelling but lose pointer
    identity with the live interner, and [Intern.Tbl] compares keys by
    pointer.  Re-intern every key — scope vars/typedefs, the layout
    table, and each layout's field index.  [Ctype.t] values and the
    ordered field lists are pure data and survive marshalling as-is. *)
let rehydrate (t : t) : t =
  let rebuild tbl =
    let fresh = Intern.Tbl.create (max 4 (Intern.Tbl.length tbl)) in
    Intern.Tbl.iter
      (fun sym v -> Intern.Tbl.replace fresh (Intern.intern (Intern.str sym)) v)
      tbl;
    fresh
  in
  let layouts = Intern.Tbl.create (max 16 (Intern.Tbl.length t.layouts)) in
  Intern.Tbl.iter
    (fun tag layout ->
      Intern.Tbl.replace layouts
        (Intern.intern (Intern.str tag))
        { fields = layout.fields; index = rebuild layout.index })
    t.layouts;
  {
    scopes =
      List.map
        (fun s -> { vars = rebuild s.vars; typedefs = rebuild s.typedefs })
        t.scopes;
    layouts;
    anon_counter = t.anon_counter;
  }

(** A deterministic digest of the whole environment (scope structure,
    bindings, layouts), for content-addressed cache keys.  The
    anonymous-tag counter is included: it feeds [fresh_tag], so two
    states differing only in the counter can still produce different
    output.  [Ctype.t] is pure data, so marshalling is faithful. *)
let digest (t : t) : string =
  let b = Buffer.create 256 in
  let add_tbl label tbl =
    Buffer.add_string b label;
    Intern.Tbl.fold (fun sym v acc -> (Intern.str sym, v) :: acc) tbl []
    |> List.sort compare
    |> List.iter (fun (name, ty) ->
           Buffer.add_string b name;
           Buffer.add_char b '=';
           Buffer.add_string b (Marshal.to_string (ty : Ctype.t) []))
  in
  List.iter
    (fun scope ->
      add_tbl "(vars" scope.vars;
      add_tbl ")(typedefs" scope.typedefs;
      Buffer.add_char b ')')
    t.scopes;
  Buffer.add_string b "(layouts";
  Intern.Tbl.fold
    (fun tag layout acc -> (Intern.str tag, layout.fields) :: acc)
    t.layouts []
  |> List.sort compare
  |> List.iter (fun (tag, fields) ->
         Buffer.add_string b tag;
         Buffer.add_char b '=';
         Buffer.add_string b
           (Marshal.to_string (fields : (string * Ctype.t) list) []));
  Buffer.add_char b ')';
  Buffer.add_string b (string_of_int t.anon_counter);
  Digest.string (Buffer.contents b)
