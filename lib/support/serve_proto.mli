(** The [ms2-serve-1] wire protocol of the expansion daemon.

    Line-oriented JSON: every request and response is exactly one JSON
    object on one line, so the stream stays in sync even when a request
    fails to decode.  The same framing runs over stdin/stdout and over a
    Unix-domain socket connection.

    Request object:
    {v
    {"schema": "ms2-serve-1",      // optional; validated when present
     "id": <any JSON>,             // echoed verbatim in the response
     "method": "expand" | "check" | "reset" | "ping" | "stats"
             | "failpoints" | "shutdown" | "bye",
     "session": "alice",           // optional, default "default"
     "source": "a.mc",             // optional diagnostic name
     "text": "...",                // the fragment (expand/check)
     "deadline_ms": 5000,          // optional; ms from arrival.  0 (or
                                   // any non-positive remainder) means
                                   // already expired
     "spec": "serve/expand=error"} // failpoints method only
    v}

    Responses are [{"schema": ..., "id": ..., "ok": true, ...}] or
    [{"schema": ..., "id": ..., "ok": false, "error": {"kind": ...,
    "message": ..., "retry_after_ms"?: ..., "diagnostics"?: [...]}}].
    The [diagnostics] array carries full {!Diag.to_json} objects.
    [overloaded] and [draining] are the retryable kinds; [overloaded]
    always carries a [retry_after_ms] hint. *)

val schema : string
(** ["ms2-serve-1"]. *)

val default_max_request_bytes : int
(** Request-line size cap (4 MiB): longer lines are answered with an
    [oversized] error and discarded without being buffered whole. *)

type request = {
  rq_id : Json.t;  (** echoed verbatim; [Null] when absent *)
  rq_method : string;
  rq_session : string;  (** default ["default"] *)
  rq_source : string;  (** diagnostic source name, default ["<request>"] *)
  rq_text : string;  (** fragment text; [""] when absent *)
  rq_deadline_ms : int option;
  rq_spec : string;  (** failpoint spec ([failpoints] method); [""] *)
}

val decode_request : Json.t -> (request, string) result
(** Shape-check a parsed request object.  Method-specific requirements
    (e.g. [expand] needs [text]) are the server's to enforce; this
    validates the envelope: an object, a string [method], a matching
    [schema] when present, sane field types. *)

val request_id : Json.t -> Json.t
(** Best-effort [id] of a request object that failed {!decode_request}
    (so even a malformed-request error can be correlated). *)

(** Error kinds, in the stable wire spelling of {!kind_name}. *)
type error_kind =
  | Oversized  (** request line exceeded the size cap *)
  | Malformed  (** not JSON, or not a valid request envelope *)
  | Unknown_method
  | Overloaded  (** shed: the pending queue is full; retryable *)
  | Draining  (** shutting down, refusing new work; retryable *)
  | Deadline_expired  (** [deadline_ms] was already spent on arrival *)
  | Rejected  (** failed admission (the accept/decode failpoints) *)
  | Expand_error  (** the expansion itself failed; see [diagnostics] *)
  | Respond_error  (** the response path failed (respond failpoint) *)
  | Internal

val kind_name : error_kind -> string
val retryable : error_kind -> bool

val ok_response :
  ?trace_id:string -> id:Json.t -> (string * Json.t) list -> string
(** One response line (no trailing newline): [schema], [id],
    [trace_id] when given, [ok: true], then the given fields. *)

val error_response :
  ?trace_id:string ->
  id:Json.t ->
  kind:error_kind ->
  ?retry_after_ms:int ->
  ?diagnostics:string list ->
  message:string ->
  unit ->
  string
(** One error-response line.  [diagnostics] are pre-rendered
    {!Diag.to_json} lines, spliced verbatim.  [trace_id], when given,
    rides after [id] exactly as in {!ok_response} — error responses
    must be joinable against logs too. *)
