(** Expansion telemetry: structured tracing, a metrics registry, and a
    per-macro profiler.

    The pipeline is a program run at parse time; this module is its
    instrumentation.  Three facilities share one design rule — {e zero
    overhead when disabled}: every recording site first tests a single
    mutable flag, and payload construction is deferred behind thunks so
    a disabled sink never allocates.

    - {b Spans and events} ({!with_span}, {!instant}): wall-clock
      start/stop pairs recorded while {!recording} is on, rendered as
      Chrome trace-event JSON ({!chrome_trace}) loadable in Perfetto or
      [chrome://tracing].  Spans nest by scope; an expansion span's
      {e logical} parent (the producing macro) additionally travels in
      its args, derived from the {!Loc.origin} chain — see DESIGN.md
      for why there is no separate context stack.
    - {b Metrics} ({!Metrics}): named counters, gauges and histograms
      in a process-global registry.  Counters are plain mutable ints
      obtained once at module initialization, so hot paths pay one
      increment.  Snapshots are marshal-safe for shipping across the
      [--jobs] worker pipes and merging in the parent.
    - {b Profiler} ({!Profile}): per-macro aggregation — invocation
      count, self/total wall time, fuel, produced nodes, cache-credited
      invocations, maximum expansion depth — behind its own flag, for
      [ms2c profile].

    Forked workers inherit the process-global state; each worker
    records into its own copy and ships events/snapshots back over its
    result pipe.

    {b Domain safety.}  The span recorder is {e domain-local}
    ([Domain.DLS]): each domain records into its own buffer under its
    own flag, so [--jobs-mode=domains] workers batch per-file events
    with no synchronization and no interleaving.  Metrics counters are
    atomics (increments from any domain), and the registry tables,
    gauges, histograms and profiler aggregates share one mutex — see
    DESIGN.md, "Domain-safety invariants". *)

(** {1 Structured payloads} *)

type value = Int of int | Float of float | Str of string | Bool of bool

type payload = (string * value) list
(** Ordered key/value pairs; rendered as a JSON object. *)

(** {1 Spans and events} *)

type event = {
  ev_name : string;
  ev_cat : string;  (** trace category, e.g. ["expand"], ["cache"] *)
  ev_ph : char;  (** ['X'] complete span, ['i'] instant event *)
  ev_ts_us : float;  (** start timestamp, microseconds *)
  ev_dur_us : float;  (** duration, microseconds; [0.] for instants *)
  ev_args : payload;
}
(** One recorded trace event.  Contains only scalars, so event lists
    are [Marshal]-safe across the worker pipes. *)

val recording : unit -> bool

val start_recording : unit -> unit
(** Enable span/event recording (idempotent; keeps prior events). *)

val stop_recording : unit -> event list
(** Disable recording and return the recorded events in chronological
    order, clearing the buffer. *)

val events : unit -> event list
(** The events recorded so far, chronological, without clearing. *)

val with_span :
  cat:string -> ?args:(unit -> payload) -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f], recording a complete span around
    it when {!recording}; disabled, it is one flag test.  The span is
    recorded even when [f] raises — a failing stage still shows up in
    the timeline.  [args] must be pure: in capture-only mode the thunk
    is deferred off the hot path and forced at
    {!stop_recording}/{!events} time (when the flight ring is on it is
    forced at record time, since ring slots publish immutable events to
    concurrent readers); it is never forced while sinks are off. *)

val instant : cat:string -> ?args:(unit -> payload) -> string -> unit
(** Record a zero-duration event when {!recording}; otherwise free. *)

val now_us : unit -> float
(** The recorder's clock (microseconds).  Wall clock shared with the
    {!Watchdog}; monotonic for the process lifetimes involved here. *)

(** {1 Trace context}

    A per-domain request identity.  While set, every recorded event
    (capture buffer {e and} flight ring) carries a [("trace_id", Str
    id)] pair prepended to its args, which is what lets a flight dump,
    a log line and a serve response be joined on one id.  Propagated
    into {!Pool.map} worker domains automatically. *)

val set_trace : string option -> unit
(** Set or clear this domain's trace id. *)

val current_trace : unit -> string option

val with_trace : string option -> (unit -> 'a) -> 'a
(** Run with the trace id set, restoring the previous value on exit
    (even when the thunk raises). *)

(** {1 Flight recorder}

    An always-on bounded ring of recent events, per domain: writes are
    lock-free single-writer stores, memory is fixed at
    [capacity × one event] per domain, and nothing is rendered until
    an anomaly asks for a dump.  Enabling the flight ring does {e not}
    make {!recording} true — the engine keys cache-bypass and
    speculation-degradation decisions on {!recording}, and the flight
    recorder must never change expansion behavior.  Consequently the
    ring sees the coarse structural spans (lex, parse, fragments,
    cache, serve) but not the per-invocation spans the capture
    recorder adds. *)

module Flight : sig
  val default_capacity : int
  (** 4096 events per domain. *)

  val enable : ?capacity:int -> unit -> unit
  (** Attach a ring to the calling domain (idempotent; call once per
      domain that should contribute to dumps). *)

  val enabled : unit -> bool
  (** Whether the calling domain has a ring attached. *)

  val events : unit -> event list
  (** The calling domain's ring contents, oldest first. *)

  val all_events : unit -> (string * event list) list
  (** Every registered domain's ring contents, as [(label, events)]
      pairs suitable for {!chrome_trace}.  Reads race benignly with
      concurrent writers: each slot holds an immutable event, so a
      torn read yields a slightly stale mix, never a corrupt event. *)
end

val event_to_json : event -> string
(** One event as a single-line JSON object ([name, cat, ph, ts, dur,
    args]) — the flight-dump record format. *)

val chrome_trace : (string * event list) list -> string
(** Render per-process event lists as Chrome trace-event JSON:
    [{"traceEvents": [...]}].  The list index becomes the [pid] and
    each process gets a [process_name] metadata event, so a merged
    [--jobs] trace shows one named track per worker.  Field order
    within an event object is stable
    ([name, cat, ph, ts, dur, pid, tid, args]). *)

(** {1 Metrics registry} *)

module Metrics : sig
  type counter

  val counter : string -> counter
  (** Find-or-create a named counter.  Call once (module or function
      setup), keep the handle: {!incr} is then a single store. *)

  val incr : ?by:int -> counter -> unit
  val set : counter -> int -> unit
  (** Absolute set — for publishing point-in-time engine statistics
      into the registry (idempotent, unlike {!incr}). *)

  val value : counter -> int

  val gauge : string -> float -> unit
  (** Set a named gauge to a point-in-time value. *)

  type histogram

  val histogram : string -> histogram
  (** Find-or-create a histogram over the fixed exponential bucket
      bounds {!bucket_bounds}. *)

  val observe : histogram -> float -> unit

  val bucket_bounds : float array
  (** Upper bounds of the histogram buckets (an implicit [+Inf] bucket
      follows the last). *)

  type snapshot
  (** A marshal-safe copy of the registry, for worker → parent
      shipping. *)

  val snapshot : unit -> snapshot

  val absorb : snapshot -> unit
  (** Merge a snapshot into this process's registry: counters and
      histogram buckets add; gauges keep the maximum (they are
      point-in-time readings, not totals). *)

  val to_json : unit -> string
  (** The registry as JSON (schema ["ms2-metrics-1"]): [counters] and
      [gauges] objects sorted by name, and [histograms] with
      count/sum/cumulative buckets ([le] bounds, Prometheus-style
      ["+Inf"] last). *)

  val to_prometheus : unit -> string
  (** The registry in Prometheus text exposition format 0.0.4: one
      [# TYPE] comment per metric, names sanitized (every byte outside
      [[a-zA-Z0-9_:]] becomes ['_']), histograms as cumulative
      [_bucket{le="..."}] series plus [_sum] and [_count]. *)

  val reset : unit -> unit
end

(** {1 Per-macro profiler} *)

module Profile : sig
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit
  val reset : unit -> unit

  type frame
  (** An open activation, returned by {!enter}; closed by {!exit}. *)

  val enter : ?depth:int -> string -> frame
  (** Open an activation of macro [name].  The caller must guarantee
      the matching {!exit} (e.g. [Fun.protect]) so failing expansions
      are still accounted.  [depth] is the logical expansion depth (the
      {!Loc.origin} chain length); the frame keeps the larger of it and
      the live activation-stack depth, because re-expansion of produced
      code nests logically but not dynamically. *)

  val exit : frame -> fuel:int -> nodes:int -> unit
  (** Close the activation, charging the invocation's {e total} fuel
      and produced-node deltas (children included; wall time is split
      into self and total internally). *)

  val credit_cached : string -> int -> unit
  (** Credit [n] invocations of [name] satisfied by an expansion-cache
      replay (they ran in a recorded run, not this one). *)

  val counts : unit -> (string * int) list
  (** Per-macro completed-activation counts so far (for computing the
      per-fragment deltas stored in cache entries). *)

  type row = {
    pr_macro : string;
    pr_count : int;  (** invocations actually expanded *)
    pr_cached : int;  (** invocations credited from cache replays *)
    pr_self_us : float;  (** wall time excluding nested invocations *)
    pr_total_us : float;
        (** wall time including nested invocations (recursive macros
            count each nested activation, as in classic call-stack
            profilers) *)
    pr_fuel : int;
    pr_nodes : int;
    pr_max_depth : int;  (** deepest invocation-nesting this macro hit *)
  }

  val report : unit -> row list
  (** Aggregated rows, hottest first (descending self time). *)

  val report_to_text : row list -> string
  (** Aligned table; columns documented in MANUAL §14. *)

  val report_to_json : row list -> string
  (** Schema ["ms2-profile-1"]: [{"macros": [...]}] in report order. *)
end
