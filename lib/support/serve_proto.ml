(** The [ms2-serve-1] wire protocol.  See the interface for the model. *)

let schema = "ms2-serve-1"
let default_max_request_bytes = 4 * 1024 * 1024

type request = {
  rq_id : Json.t;
  rq_method : string;
  rq_session : string;
  rq_source : string;
  rq_text : string;
  rq_deadline_ms : int option;
  rq_spec : string;
}

let request_id (j : Json.t) : Json.t =
  match Json.member j "id" with Some v -> v | None -> Json.Null

let decode_request (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj _ -> (
      let field_str name ~default =
        match Json.member j name with
        | None -> Ok default
        | Some v -> (
            match Json.str v with
            | Some s -> Ok s
            | None -> Error (Printf.sprintf "field %S must be a string" name))
      in
      match Json.member j "schema" with
      | Some v when Json.str v <> Some schema ->
          Error
            (Printf.sprintf "unsupported schema (this daemon speaks %S)"
               schema)
      | _ -> (
          match Json.member j "method" with
          | None -> Error "missing \"method\""
          | Some m -> (
              match Json.str m with
              | None -> Error "field \"method\" must be a string"
              | Some rq_method -> (
                  let deadline =
                    match Json.member j "deadline_ms" with
                    | None -> Ok None
                    | Some v -> (
                        match Json.int v with
                        | Some d -> Ok (Some d)
                        | None ->
                            Error "field \"deadline_ms\" must be an integer")
                  in
                  match
                    ( field_str "session" ~default:"default",
                      field_str "source" ~default:"<request>",
                      field_str "text" ~default:"",
                      field_str "spec" ~default:"",
                      deadline )
                  with
                  | Ok rq_session, Ok rq_source, Ok rq_text, Ok rq_spec,
                    Ok rq_deadline_ms ->
                      Ok
                        {
                          rq_id = request_id j;
                          rq_method;
                          rq_session;
                          rq_source;
                          rq_text;
                          rq_deadline_ms;
                          rq_spec;
                        }
                  | Error e, _, _, _, _
                  | _, Error e, _, _, _
                  | _, _, Error e, _, _
                  | _, _, _, Error e, _
                  | _, _, _, _, Error e ->
                      Error e))))
  | _ -> Error "request must be a JSON object"

type error_kind =
  | Oversized
  | Malformed
  | Unknown_method
  | Overloaded
  | Draining
  | Deadline_expired
  | Rejected
  | Expand_error
  | Respond_error
  | Internal

let kind_name = function
  | Oversized -> "oversized"
  | Malformed -> "malformed"
  | Unknown_method -> "unknown_method"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Deadline_expired -> "deadline_expired"
  | Rejected -> "rejected"
  | Expand_error -> "expand_error"
  | Respond_error -> "respond_error"
  | Internal -> "internal"

let retryable = function
  | Overloaded | Draining -> true
  | Oversized | Malformed | Unknown_method | Deadline_expired | Rejected
  | Expand_error | Respond_error | Internal ->
      false

(* The trace id rides right after [id] so clients (and humans tailing
   the wire) can join any response — success or error — against log
   lines and flight dumps without digging into the payload. *)
let trace_field = function
  | Some tid -> [ ("trace_id", Json.Str tid) ]
  | None -> []

let ok_response ?trace_id ~(id : Json.t) (fields : (string * Json.t) list) :
    string =
  Json.to_string
    (Json.Obj
       (("schema", Json.Str schema) :: ("id", id)
       :: (trace_field trace_id
          @ (("ok", Json.Bool true) :: fields))))

let error_response ?trace_id ~(id : Json.t) ~(kind : error_kind)
    ?retry_after_ms ?(diagnostics : string list option)
    ~(message : string) () : string =
  let err =
    [ ("kind", Json.Str (kind_name kind)); ("message", Json.Str message) ]
    @ (match retry_after_ms with
      | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
      | None -> [])
    @
    match diagnostics with
    | Some ds when ds <> [] ->
        [ ("diagnostics", Json.List (List.map (fun d -> Json.Raw d) ds)) ]
    | _ -> []
  in
  Json.to_string
    (Json.Obj
       (("schema", Json.Str schema) :: ("id", id)
       :: (trace_field trace_id
          @ [ ("ok", Json.Bool false); ("error", Json.Obj err) ])))
