(** Failure-injection points for testing the engine's failure paths.

    A failpoint is a named site woven into the pipeline (e.g.
    ["interp/step"], ["fill/alloc"], ["parser/token"]).  Normally a hit
    is a no-op costing one branch.  When armed — via the
    [MS2_FAILPOINTS] environment variable or [ms2c --failpoints] — a hit
    fires its trigger:

    - [error]: raise a located diagnostic (code {!Diag.code_failpoint}),
      as if the site itself had failed;
    - [timeout]: stall (in bounded slices) until the engine's wall-clock
      watchdog fires, exercising the deadline path end to end;
    - [after=N]: let [N] hits pass, then behave like [error];
    - [hang] / [hang=N]: let [N] hits pass (0 for bare [hang]), then
      stall without limit so a crash test can [kill -9] the process at a
      known point (a 300s fallback aborts a process nobody killed);
    - [off]: disarm.

    The spec grammar is a comma- (or semicolon-) separated list of
    [site=trigger] clauses: ["fill/alloc=error,interp/step=after=100"].
    Site names must come from {!sites}; the test sweep iterates that
    list, so adding a site here automatically puts it under test. *)

type trigger =
  | Error
  | Timeout
  | After of int Atomic.t
      (** hits remaining before firing like [Error]; atomic so
          concurrent hits from several domains never lose a count *)
  | Hang of int Atomic.t
      (** hits remaining before stalling without limit (for [kill -9]
          crash tests); same atomic-count discipline as [After] *)

val sites : string list
(** The canonical registry of failpoint names woven into the pipeline.
    Arming any other name is a spec error. *)

val serve_site : string -> bool
(** Is this a [serve/*] site?  Those fire in the request lifecycle of
    [ms2c serve], not in the in-process engine pipeline — the engine
    failpoint sweep filters them out and the serve chaos sweep
    ([make serve-sweep]) owns them. *)

val persist_site : string -> bool
(** Is this an [io/*], [snapshot/*] or [journal/*] site?  Those fire in
    the crash-safe persistence layer (durable writes, cache snapshots,
    the batch journal), not in the engine pipeline — the engine sweep
    filters them out and the recovery chaos sweep
    ([make recovery-sweep]) owns them. *)

type spec = (string * trigger option) list
(** Parsed spec clauses: [None] means [off]. *)

val parse_spec : string -> (spec, string) result
(** Parse without arming (for CLI validation). *)

val arm_all : spec -> unit

val arm_spec : string -> (unit, string) result
(** Parse and arm in one step. *)

val arm : string -> trigger -> unit
(** @raise Invalid_argument on a name not in {!sites}. *)

val disarm : string -> unit
val reset : unit -> unit
(** Disarm everything (the test sweep calls this between cases). *)

val armed : unit -> bool
(** Is any failpoint currently armed?  Machinery that would mask
    injected failures (e.g. the expansion cache) checks this and stands
    aside. *)

val hit : ?watchdog:Watchdog.t -> loc:Loc.t -> string -> unit
(** Trip the named failpoint if armed; a cheap no-op otherwise.  The
    [timeout] trigger stalls against [watchdog] when given (and falls
    back to a bounded 2s stall before raising the timeout diagnostic
    itself, so an unarmed watchdog can never hang the process). *)
