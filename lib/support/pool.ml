(** A work-stealing scheduler over OCaml 5 domains.

    The driver's unit of parallel work is coarse — one input file per
    item — so the scheduler optimizes for simplicity and determinism
    rather than for fine-grained stealing throughput:

    - every item is known up front ([map] over indices [0 .. n-1]), so
      there is no dynamic spawning and no idle blocking: a worker that
      finds every deque empty is done;
    - each worker owns a deque seeded with a contiguous block of item
      indices.  The owner takes from the low end (input order, which
      keeps a warm expansion cache warm for humanly-ordered corpora);
      thieves steal from the high end, so a thief grabs the work its
      victim would have reached last;
    - deques are mutex-per-deque rather than lock-free: with whole-file
      items a deque operation is tens of nanoseconds against
      milliseconds of expansion work, so the lock is never contended
      enough to matter, and the mutex gives the happens-before edge
      that publishes a stolen item's index to the thief.

    Early stop: when [stop] returns true for item [i]'s result (a fatal
    diagnostic without [--keep-going]), items {e after} [i] in input
    order are cancelled — but everything before [i] still runs, because
    the caller must be able to find the {e first} stopping item exactly
    as the sequential pipeline would.  (A global stop would be wrong:
    with block-distributed deques a worker can hit a fatal at index 9
    while index 3 — also fatal — has not run yet; cancelling everything
    would report 9 where [--jobs 1] reports 3.)  The cancellation
    threshold is a CAS-min over stopping indices; claimed items above it
    are discarded unrun, so their result slots stay [None].

    Results land in an array indexed by item — input order is
    reconstruction-free — and the first worker exception (the work
    function is expected to catch its own; this is a backstop) is
    re-raised in the caller after every domain joins. *)

type deque = {
  mutex : Mutex.t;
  items : int array;  (** item indices, fixed at seed time *)
  mutable lo : int;  (** owner's next claim (inclusive) *)
  mutable hi : int;  (** thieves' end (exclusive) *)
}

let take_own (d : deque) : int option =
  Mutex.lock d.mutex;
  let r =
    if d.lo < d.hi then begin
      let i = d.items.(d.lo) in
      d.lo <- d.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.mutex;
  r

let steal (d : deque) : int option =
  Mutex.lock d.mutex;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some d.items.(d.hi)
    end
    else None
  in
  Mutex.unlock d.mutex;
  r

(** [recommended ()] — the runtime's view of usable cores; what
    [--jobs 0]/[--jobs auto] resolves to. *)
let recommended () : int = Domain.recommended_domain_count ()

let map ~(jobs : int) ?(stop : ('r -> bool) option) (n : int)
    (f : int -> 'r) : 'r option array =
  let jobs = max 1 (min jobs (max 1 n)) in
  let results : 'r option array = Array.make n None in
  (* items with index > [limit] are cancelled; [max_int] = run all *)
  let limit = Atomic.make max_int in
  let lower_limit_to i =
    let rec go () =
      let cur = Atomic.get limit in
      if i < cur && not (Atomic.compare_and_set limit cur i) then go ()
    in
    go ()
  in
  let hard_stop = Atomic.make false in
  let failure : exn option Atomic.t = Atomic.make None in
  (* Seed worker [w] with the contiguous block [w*n/jobs, (w+1)*n/jobs). *)
  let deques =
    Array.init jobs (fun w ->
        let first = w * n / jobs and last = (w + 1) * n / jobs in
        {
          mutex = Mutex.create ();
          items = Array.init (last - first) (fun i -> first + i);
          lo = 0;
          hi = last - first;
        })
  in
  let run_item i =
    if i <= Atomic.get limit then
      match f i with
      | r ->
          results.(i) <- Some r;
          (match stop with
          | Some p when p r -> lower_limit_to i
          | _ -> ())
      | exception e ->
          (* Backstop: record the first failure, stop the pool, re-raise
             after join so the caller sees it on its own stack. *)
          if Atomic.compare_and_set failure None (Some e) then
            Atomic.set hard_stop true
  in
  let worker w () =
    let mine = deques.(w) in
    let rec next_steal v =
      if v >= jobs then None
      else
        let victim = deques.((w + v) mod jobs) in
        match steal victim with Some i -> Some i | None -> next_steal (v + 1)
    in
    let rec loop () =
      if not (Atomic.get hard_stop) then
        match take_own mine with
        | Some i ->
            run_item i;
            loop ()
        | None -> (
            match next_steal 1 with
            | Some i ->
                run_item i;
                loop ()
            | None -> ())
    in
    loop ()
  in
  (* The calling domain is worker 0; [jobs - 1] domains are spawned.
     Each spawned domain inherits the caller's trace context so events
     recorded on a speculation worker join the request's trace id. *)
  let trace = Obs.current_trace () in
  let spawned =
    Array.init
      (jobs - 1)
      (fun k ->
        Domain.spawn (fun () ->
            Obs.set_trace trace;
            worker (k + 1) ()))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  results
