(** Source locations with expansion provenance.

    A location is a half-open span [(start, stop)] within a named source
    (usually a file, or ["<string>"] for in-memory programs).  Positions
    count lines from 1 and columns from 0, like the OCaml compiler.

    Beyond the bare span, every location carries an {e origin}: either it
    denotes text the user wrote ([User]), or it was produced by a macro
    expansion ([Macro f]) — in which case [f.call_site] is the location
    of the invocation that produced it.  Because call sites are
    themselves locations, nested expansions form a backtrace chain
    reachable with {!backtrace}; the outermost user-written span is
    {!root}.

    Invariants:
    - [known = false] iff the span is meaningless ({!dummy} and any
      location derived from it); the positions of an unknown location
      must not be interpreted.
    - A location constructed by {!make} is [User]-originated; origins are
      only attached by the expansion machinery ({!in_expansion},
      {!push_frame}).
    - The chain is finite: each [call_site] was constructed strictly
      before the frame pointing at it. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset from start of source *)
}

type t = {
  source : string;  (** source name, e.g. a file name *)
  start_pos : pos;
  end_pos : pos;
  known : bool;  (** [false] for the dummy location; span is meaningless *)
  origin : origin;
}

and origin =
  | User  (** written by the user (or origin not yet attached) *)
  | Macro of frame  (** produced by expanding [frame.macro] *)

and frame = { macro : string; call_site : t }

let dummy_pos = { line = 0; col = 0; offset = 0 }

let dummy =
  { source = "<none>";
    start_pos = dummy_pos;
    end_pos = dummy_pos;
    known = false;
    origin = User }

(* Dummy-ness is the explicit [known] flag, not a line-number sentinel:
   a real location at line 0 (e.g. from a #line-preprocessed input) is
   representable, and stamping an origin onto a dummy location does not
   accidentally make it "real". *)
let is_dummy t = not t.known

let make ~source ~start_pos ~end_pos =
  { source; start_pos; end_pos; known = true; origin = User }

(** [merge a b] spans from the start of [a] to the end of [b].  If either
    side is the dummy location the other is returned unchanged.  Spans
    from *different* sources cannot be merged meaningfully (the result
    would claim byte offsets of one file with the name of another), so
    [a] is returned unchanged; the same applies when only one side came
    out of a macro expansion.  The origin of the result is [a]'s. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else if a.source <> b.source then a
  else { a with end_pos = b.end_pos }

(* ------------------------------------------------------------------ *)
(* Origins                                                             *)
(* ------------------------------------------------------------------ *)

let origin t = t.origin
let set_origin t origin = { t with origin }

(** [in_expansion ~macro ~call_site t] marks [t] as produced by [macro]
    invoked at [call_site].  When [t] itself is unknown, the best
    available location is the call site, so that is returned. *)
let in_expansion ~macro ~call_site t =
  if is_dummy t then call_site
  else { t with origin = Macro { macro; call_site } }

(** [push_frame ~macro ~call_site t] attaches an *outermost* frame: the
    innermost frames of [t] (closest to the error) are kept, and the new
    frame is appended at the far end of the chain.  Used when an error
    that already carries part of a backtrace propagates out of an
    enclosing invocation. *)
let rec push_frame ~macro ~call_site t =
  match t.origin with
  | User -> { t with origin = Macro { macro; call_site } }
  | Macro f ->
      { t with
        origin =
          Macro { f with call_site = push_frame ~macro ~call_site f.call_site }
      }

(** Expansion frames, innermost first. *)
let backtrace t =
  let rec go acc t =
    match t.origin with
    | User -> List.rev acc
    | Macro f -> go (f :: acc) f.call_site
  in
  go [] t

(* The two facts a per-invocation telemetry span wants from the chain —
   producing macro and depth — in one walk with no list allocation.
   Deeply nested expansions record one span per invocation, each of
   which would otherwise build (and then count) an O(depth) backtrace,
   making payload cost quadratic in nesting depth. *)
let backtrace_summary t =
  let rec go ~parent n t =
    match t.origin with
    | User -> (parent, n)
    | Macro f ->
        go ~parent:(if n = 0 then f.macro else parent) (n + 1) f.call_site
  in
  go ~parent:"" 0 t

(** The outermost user-written location of the chain: [t] itself when it
    is user code, otherwise the root of the last call site. *)
let rec root t = match t.origin with User -> t | Macro f -> root f.call_site

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown location>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.source t.start_pos.line t.start_pos.col
      t.end_pos.col
  else
    Fmt.pf ppf "%s:%d:%d-%d:%d" t.source t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col

(* Same rendering as {!pp}, built by direct concatenation: this runs
   once per recorded invocation span (and per diagnostic), and the
   format-combinator path costs enough to show up in the telemetry
   overhead benchmark. *)
let to_string t =
  if is_dummy t then "<unknown location>"
  else
    let i = string_of_int in
    let common =
      t.source ^ ":" ^ i t.start_pos.line ^ ":" ^ i t.start_pos.col ^ "-"
    in
    if t.start_pos.line = t.end_pos.line then common ^ i t.end_pos.col
    else common ^ i t.end_pos.line ^ ":" ^ i t.end_pos.col

(** Backtraces deeper than this render the innermost
    [max_backtrace_frames] frames and summarize the rest — runaway
    recursion would otherwise print hundreds of identical lines. *)
let max_backtrace_frames = 8

(** The backtrace of [t] as indented note lines, one per frame,
    innermost first:

    {v
      in expansion of macro `swap' at a.c:12:3-7
      in expansion of macro `swap_all' at a.c:40:0-8
    v}

    Prints nothing for user code.  Deep chains are capped at
    {!max_backtrace_frames} with a trailing summary line. *)
let pp_backtrace ppf t =
  let frames = backtrace t in
  let n = List.length frames in
  let shown, elided =
    if n <= max_backtrace_frames then (frames, 0)
    else (List.filteri (fun i _ -> i < max_backtrace_frames) frames,
          n - max_backtrace_frames)
  in
  List.iter
    (fun f ->
      Fmt.pf ppf "@,  in expansion of macro `%s' at %a" f.macro pp f.call_site)
    shown;
  if elided > 0 then Fmt.pf ppf "@,  ... (%d more expansion frames)" elided
