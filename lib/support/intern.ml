(** Global string interning.

    The expansion pipeline compares and hashes the same identifier
    spellings over and over: every token lookup, every typedef test,
    every macro-table probe, every symbol-table bind re-hashes the name
    from scratch, and every [lex_ident] allocates a fresh copy of a name
    the session has usually seen thousands of times before.

    An interned symbol ({!t}) fixes both costs:

    - each distinct spelling is allocated exactly once per process
      ({!canon} returns the canonical copy, so [==] implies spelling
      equality for canonicalized strings);
    - the symbol records its hash, so hashtables keyed by symbols
      ({!Tbl}) never re-hash the characters, and equality is one pointer
      comparison.

    {b Domain safety.}  The lexer probes this table once per identifier
    token, from every domain at once under [--jobs-mode=domains], so the
    read path must never take a lock.  The table is therefore an
    {e immutable} open-hashing snapshot published through an [Atomic.t]:
    a reader grabs the current snapshot with one atomic load and scans a
    bucket of an array that, once published, is never written again.
    Inserts take a mutex, re-check against the latest snapshot (two
    domains racing on a new spelling must agree on one symbol — the
    physical-equality contract depends on it), then publish a copied
    bucket array with the new symbol consed in.  Copying is
    O(bucket count) per insert, which sounds expensive and is not: the
    set of distinct identifiers a compiler-shaped process sees is small
    and front-loaded, so inserts vanish after warmup while reads run
    forever.

    The table is global and append-only: symbols are never collected.
    That is the right trade for a compiler-shaped process — the set of
    distinct identifiers is bounded by the source actually seen — but it
    means [intern] must not be fed attacker-controlled unbounded data
    outside a compilation session. *)

type t = {
  str : string;  (** the canonical spelling (unique per contents) *)
  hash : int;  (** [Hashtbl.hash str], computed once *)
  uid : int;  (** dense allocation order, for cheap total ordering *)
}

(* One published generation of the table.  [buckets] is frozen at
   publication: lock-free readers scan it with no fence beyond the
   initial [Atomic.get]. *)
type table = {
  buckets : t list array;
  mask : int;  (** [Array.length buckets - 1]; length is a power of two *)
  size : int;  (** symbols interned; doubles as the next [uid] *)
}

let empty_table bits =
  let len = 1 lsl bits in
  { buckets = Array.make len []; mask = len - 1; size = 0 }

let state : table Atomic.t = Atomic.make (empty_table 10)
let write_lock = Mutex.create ()

let find_in (tbl : table) (s : string) (h : int) : t option =
  let rec scan = function
    | [] -> None
    | sym :: rest ->
        if sym.hash = h && String.equal sym.str s then Some sym
        else scan rest
  in
  scan tbl.buckets.(h land tbl.mask)

(* Under [write_lock]: publish a new generation containing [sym]. *)
let publish_with (tbl : table) (sym : t) : unit =
  let need_grow = tbl.size + 1 > (tbl.mask + 1) * 3 / 4 in
  let next =
    if need_grow then begin
      let len = (tbl.mask + 1) * 2 in
      let buckets = Array.make len [] and mask = len - 1 in
      Array.iter
        (List.iter (fun s -> buckets.(s.hash land mask) <- s :: buckets.(s.hash land mask)))
        tbl.buckets;
      { buckets; mask; size = tbl.size }
    end
    else
      { tbl with buckets = Array.copy tbl.buckets }
  in
  let slot = sym.hash land next.mask in
  next.buckets.(slot) <- sym :: next.buckets.(slot);
  Atomic.set state { next with size = next.size + 1 }

let intern (s : string) : t =
  let h = Hashtbl.hash s in
  match find_in (Atomic.get state) s h with
  | Some sym -> sym
  | None -> (
      Mutex.lock write_lock;
      (* Re-check against the latest generation: another domain may
         have interned [s] between our read and the lock. *)
      let tbl = Atomic.get state in
      match find_in tbl s h with
      | Some sym ->
          Mutex.unlock write_lock;
          sym
      | None ->
          let sym = { str = s; hash = h; uid = tbl.size } in
          publish_with tbl sym;
          Mutex.unlock write_lock;
          sym
      | exception e ->
          Mutex.unlock write_lock;
          raise e)

(** The canonical copy of [s]: spelling-equal strings map to one shared
    allocation, so later [String.equal]s on canonical strings hit their
    physical-equality fast path. *)
let canon (s : string) : string = (intern s).str

let str (sym : t) : string = sym.str

(* Sound because {!intern} never creates two symbols with one spelling. *)
let equal (a : t) (b : t) : bool = a == b
let hash (sym : t) : int = sym.hash
let compare (a : t) (b : t) : int = Int.compare a.uid b.uid

(** Number of distinct spellings interned so far (process-wide). *)
let interned () : int = (Atomic.get state).size

(** Hashtables keyed by interned symbols: hashing reads the cached
    field, equality is physical. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
