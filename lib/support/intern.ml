(** Global string interning.

    The expansion pipeline compares and hashes the same identifier
    spellings over and over: every token lookup, every typedef test,
    every macro-table probe, every symbol-table bind re-hashes the name
    from scratch, and every [lex_ident] allocates a fresh copy of a name
    the session has usually seen thousands of times before.

    An interned symbol ({!t}) fixes both costs:

    - each distinct spelling is allocated exactly once per process
      ({!canon} returns the canonical copy, so [==] implies spelling
      equality for canonicalized strings);
    - the symbol records its hash, so hashtables keyed by symbols
      ({!Tbl}) never re-hash the characters, and equality is one pointer
      comparison.

    The table is global and append-only: symbols are never collected.
    That is the right trade for a compiler-shaped process — the set of
    distinct identifiers is bounded by the source actually seen — but it
    means [intern] must not be fed attacker-controlled unbounded data
    outside a compilation session. *)

type t = {
  str : string;  (** the canonical spelling (unique per contents) *)
  hash : int;  (** [Hashtbl.hash str], computed once *)
  uid : int;  (** dense allocation order, for cheap total ordering *)
}

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let count = ref 0

let intern (s : string) : t =
  match Hashtbl.find_opt table s with
  | Some sym -> sym
  | None ->
      let sym = { str = s; hash = Hashtbl.hash s; uid = !count } in
      incr count;
      Hashtbl.replace table s sym;
      sym

(** The canonical copy of [s]: spelling-equal strings map to one shared
    allocation, so later [String.equal]s on canonical strings hit their
    physical-equality fast path. *)
let canon (s : string) : string = (intern s).str

let str (sym : t) : string = sym.str

(* Sound because {!intern} never creates two symbols with one spelling. *)
let equal (a : t) (b : t) : bool = a == b
let hash (sym : t) : int = sym.hash
let compare (a : t) (b : t) : int = Int.compare a.uid b.uid

(** Number of distinct spellings interned so far (process-wide). *)
let interned () : int = !count

(** Hashtables keyed by interned symbols: hashing reads the cached
    field, equality is physical. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
