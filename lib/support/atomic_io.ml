(** Atomic whole-file writes (temp + rename).  See the interface. *)

let write (path : string) (content : string) : (unit, string) result =
  match
    Filename.temp_file ~temp_dir:(Filename.dirname path) ".ms2" ".tmp"
  with
  | exception Sys_error msg -> Error msg
  | tmp -> (
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content);
        Sys.rename tmp path
      with
      | () -> Ok ()
      | exception Sys_error msg ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error msg
      | exception e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e)

let write_exn path content =
  match write path content with
  | Ok () -> ()
  | Error msg -> raise (Sys_error msg)
