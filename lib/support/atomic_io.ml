(** Atomic whole-file writes (temp + fsync + rename).  See the
    interface. *)

(* Push the temp file's bytes to stable storage before the rename
   publishes it.  Without this, a crash shortly after [rename] can leave
   the *new* name pointing at not-yet-written data on journaling
   filesystems that reorder data behind metadata — exactly the torn
   state the temp+rename dance exists to rule out. *)
let fsync_path_out (oc : out_channel) : unit =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Best effort: persist the directory entry created by the rename.  Not
   all platforms allow fsync on a directory fd (and none of our
   invariants break if the *name* is lost in a crash — only if the name
   exists with bad bytes), so failures are swallowed. *)
let fsync_dir (dir : string) : unit =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write (path : string) (content : string) : (unit, string) result =
  match
    Filename.temp_file ~temp_dir:(Filename.dirname path) ".ms2" ".tmp"
  with
  | exception Sys_error msg -> Error msg
  | tmp -> (
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc content;
            fsync_path_out oc)
      with
      | exception Sys_error msg ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error msg
      | exception Unix.Unix_error (e, _, _) ->
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (Unix.error_message e)
      | exception e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e
      | () -> (
          (* The [io/rename] failpoint models a crash in the window
             between writing the temp file and publishing it: the temp
             file is deliberately left behind (that is what a real crash
             leaves) so tests can exercise {!sweep_stale}. *)
          match Failpoint.hit ~loc:Loc.dummy "io/rename" with
          | exception Diag.Error d -> Error d.Diag.message
          | () -> (
              match Sys.rename tmp path with
              | () ->
                  fsync_dir (Filename.dirname path);
                  Ok ()
              | exception Sys_error msg ->
                  (try Sys.remove tmp with Sys_error _ -> ());
                  Error msg)))

let write_exn path content =
  match write path content with
  | Ok () -> ()
  | Error msg -> raise (Sys_error msg)

(* Crashed writers (and the [io/rename] failpoint) leave ".ms2*.tmp"
   orphans beside their destination.  They are never picked up again —
   every write mints a fresh temp name — so long-lived processes sweep
   them at startup.  Only files old enough to predate any plausibly
   in-flight write are removed: a concurrent writer's fresh temp file
   must survive the sweep. *)
let default_stale_age = 3600.0

let is_temp_name (name : string) : bool =
  String.length name >= 8
  && String.sub name 0 4 = ".ms2"
  && Filename.check_suffix name ".tmp"

let sweep_stale ?(max_age_s = default_stale_age) (dir : string) : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun removed name ->
          if not (is_temp_name name) then removed
          else
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> removed
            | st ->
                if
                  st.Unix.st_kind = Unix.S_REG
                  && now -. st.Unix.st_mtime > max_age_s
                then (
                  match Sys.remove path with
                  | () -> removed + 1
                  | exception Sys_error _ -> removed)
                else removed)
        0 names
