(** Capped exponential backoff with full jitter, for clients retrying a
    retryable failure ([overloaded], a daemon mid-restart, a connection
    refused).

    The classic full-jitter scheme: attempt [k] sleeps a uniformly
    random duration in [1, min (cap, base * 2^k)].  Jitter decorrelates
    a fleet of clients that were all shed at the same instant — without
    it they retry in lockstep and stampede the server again.  Randomness
    comes from a self-contained [Random.State] so a seeded backoff is
    reproducible in tests and never perturbs the global generator. *)

type t

val create : ?base_ms:int -> ?cap_ms:int -> ?seed:int -> unit -> t
(** @param base_ms first-attempt ceiling (default 50)
    @param cap_ms ceiling growth stops at (default 5000)
    @param seed jitter PRNG seed (default: derived from the process id,
    so concurrent clients naturally decorrelate) *)

val next_ms : t -> int
(** The next delay in milliseconds (>= 1), advancing the attempt
    counter. *)

val attempts : t -> int
(** Attempts consumed so far (the number of {!next_ms} calls since the
    last {!reset}). *)

val reset : t -> unit
(** Back to attempt 0 (call after a success). *)
