(** Wall-clock watchdog for the expansion pipeline.

    Fuel counts interpreter steps, but a pathological pattern parse or a
    blocking primitive consumes no fuel while stalling forever.  A
    watchdog is an absolute wall-clock deadline polled at the pipeline's
    hot points (the interpreter fuel hook, the parser's token advance,
    compiled-pattern execution).  The poll is counter-gated: the clock
    is read once every few hundred polls, so the clean-path cost is a
    decrement and a branch.

    Deadlines are absolute, so narrowing composes: a per-invocation
    deadline nested inside the fragment deadline can only move the
    deadline earlier, and restoring the saved state on exit reinstates
    the enclosing bound. *)

type t

val create : unit -> t
(** An unarmed watchdog: {!poll} and {!check} never fire. *)

val arm : t -> ms:int -> unit
(** Arm (or re-arm) with a deadline [ms] milliseconds from now.
    [ms = max_int] means unlimited and disarms. *)

val disarm : t -> unit

val armed : t -> bool

type saved
(** Deadline state captured by {!narrow}, for exact restoration. *)

val narrow : t -> ms:int -> saved
(** Tighten the deadline to at most [ms] milliseconds from now (a wider
    or unlimited [ms] leaves it unchanged — deadlines only ever move
    earlier), returning the previous state for {!restore}. *)

val restore : t -> saved -> unit

val check : t -> loc:Loc.t -> unit
(** Read the clock immediately; raises a [Resource] diagnostic (code
    {!Diag.code_timeout}) at [loc] when the deadline has passed. *)

val poll : t -> loc:Loc.t -> unit
(** Counter-gated {!check}: reads the clock only every
    {!poll_interval}th call.  Cheap enough for per-token and
    per-interpreter-step use. *)

val poll_interval : int
(** Polls between clock reads (a bound on detection latency, not a
    guarantee: a poll site must actually be reached). *)

val remaining_ms : t -> int option
(** Milliseconds until the deadline, [None] when unarmed. *)
