(** Source locations: half-open spans within a named source, carrying
    expansion provenance.

    Every location records, besides its span, an {!origin}: user-written
    text, or "produced by macro [m] invoked at [call_site]".  Call sites
    are locations themselves, so nested expansions chain into a
    backtrace ({!backtrace}); {!root} recovers the outermost
    user-written span.  Dummy-ness is an explicit flag in the
    representation, not a line-number sentinel. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset from start of source *)
}

type t = {
  source : string;  (** source name, e.g. a file name *)
  start_pos : pos;
  end_pos : pos;
  known : bool;  (** [false] for the dummy location; span is meaningless *)
  origin : origin;
}

and origin =
  | User  (** written by the user (or origin not yet attached) *)
  | Macro of frame  (** produced by expanding [frame.macro] *)

and frame = { macro : string; call_site : t }

val dummy_pos : pos

val dummy : t
(** The unknown location; {!is_dummy} recognizes it. *)

val is_dummy : t -> bool
(** True iff the span is meaningless ([known = false]).  Explicit in the
    representation: attaching an origin never changes dummy-ness. *)

val make : source:string -> start_pos:pos -> end_pos:pos -> t
(** A known, [User]-originated span. *)

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]; dummy
    sides are ignored.  Spans from different sources cannot be merged
    meaningfully, so [a] is returned unchanged.  The result keeps [a]'s
    origin. *)

(** {1 Provenance} *)

val origin : t -> origin
val set_origin : t -> origin -> t

val in_expansion : macro:string -> call_site:t -> t -> t
(** Mark a location as produced by [macro] invoked at [call_site];
    a dummy location degrades to the call site itself. *)

val push_frame : macro:string -> call_site:t -> t -> t
(** Append a frame at the {e outer} end of the chain (the innermost
    frames, closest to the error, are preserved).  For errors that
    already carry part of a backtrace and propagate out of an enclosing
    invocation. *)

val backtrace : t -> frame list
(** Expansion frames, innermost first; [[]] for user code. *)

val backtrace_summary : t -> string * int
(** [(producing macro, depth)] of the chain — [("", 0)] for user code —
    computed in one walk with no allocation.  What a per-invocation
    telemetry span records instead of materializing {!backtrace}: one
    span fires per invocation, so the list-building variant would make
    payload cost quadratic in nesting depth. *)

val root : t -> t
(** The outermost user-written location of the chain. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** The span only (origins do not change the classic rendering). *)

val to_string : t -> string

val max_backtrace_frames : int
(** Rendering cap for {!pp_backtrace} (and the JSON expansion stack). *)

val pp_backtrace : Format.formatter -> t -> unit
(** The chain as indented ["in expansion of macro `m' at loc"] note
    lines, innermost first, each preceded by a cut; empty for user code;
    capped at {!max_backtrace_frames} frames with a summary line. *)
