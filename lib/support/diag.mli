(** Diagnostics: located, coded messages raised or collected by every
    phase of the system.

    Each diagnostic records the phase that produced it — in particular,
    errors in macro bodies carry definition-time phases
    ([Pattern_check], [Type_check]), supporting the paper's guarantee
    that macro users only see errors about code they wrote.

    Diagnostics carry a severity, a stable machine-readable code, and a
    location; they can be raised (the classic first-error model),
    collected into a bounded {!collector} (the multi-error recovery
    model), rendered with source-line carets, or serialized to JSON. *)

type phase =
  | Lexing
  | Parsing
  | Pattern_check  (** pattern well-formedness (one-token lookahead) *)
  | Type_check  (** parse-time meta type analysis *)
  | Expansion  (** running the meta-program *)
  | Resource  (** a {!Limits.t} budget was exhausted *)

val phase_name : phase -> string
val phase_slug : phase -> string
(** Short lowercase identifier used in the JSON form. *)

val default_code : phase -> string
(** The stable error code used when a raise site does not pass one. *)

val code_fuel : string
(** ["E0601"]: interpreter fuel exhausted. *)

val code_nodes : string
(** ["E0602"]: produced-AST node budget exceeded. *)

val code_depth : string
(** ["E0603"]: expansion nesting too deep. *)

val code_too_many_errors : string
(** ["E0604"]: collector overflowed. *)

val code_timeout : string
(** ["E0605"]: the wall-clock watchdog deadline passed. *)

val code_stack : string
(** ["E0606"]: [Stack_overflow] contained during expansion or
    rendering (pathologically deep AST). *)

val code_failpoint : string
(** ["E0607"]: an armed failpoint injected a failure
    ({!Ms2_support.Failpoint}). *)

type severity = Error | Warning | Note

val severity_name : severity -> string

type t = {
  severity : severity;
  phase : phase;
  code : string;  (** stable machine-readable code, e.g. ["E0501"] *)
  loc : Loc.t;
  message : string;
}

exception Error of t

val make :
  ?severity:severity -> ?loc:Loc.t -> ?code:string -> phase -> string -> t
(** Build a diagnostic without raising it (for collectors). *)

val error :
  ?loc:Loc.t -> ?code:string -> phase ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc phase fmt ...] raises {!Error}. *)

val errorf :
  ?loc:Loc.t -> ?code:string -> phase ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Source registry and rendering} *)

val register_source : string -> string -> unit
(** [register_source name text] records a source text so later
    diagnostics in [name] can quote the offending line.  The lexer does
    this automatically for everything it tokenizes. *)

val source_line : string -> int -> string option
(** [source_line name n] is line [n] (1-based) of a registered source. *)

val render : t -> string
(** Like {!to_string}, followed by the source line and a caret marker
    when the source is registered and the location is real, and by the
    expansion backtrace ("in expansion of macro `m' at loc" note lines,
    innermost first, capped at {!Loc.max_backtrace_frames}) when the
    location has one. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal (used by the
    source-map emitter as well). *)

val to_json : t -> string
(** One diagnostic as a single-line JSON object with stable field order:
    severity, code, phase, source, line, col, end_line, end_col,
    message[, expansion_stack].  The [expansion_stack] array (innermost
    frame first, each [{"macro":..., "source":..., ...}], capped at
    {!Loc.max_backtrace_frames} with an [elided_frames] count) appears
    only when the location carries expansion provenance, so plain
    diagnostics serialize exactly as before. *)

(** {1 Collector} *)

type collector
(** A bounded bag of diagnostics for multi-error (recovery) runs. *)

val collector : ?max_errors:int -> unit -> collector
val add : collector -> t -> unit
(** Diagnostics beyond [max_errors] are counted as dropped, not stored. *)

val is_full : collector -> bool
val count : collector -> int
val dropped : collector -> int
val items : collector -> t list
(** Oldest first. *)

val error_count : collector -> int

(** {1 Protect} *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a computation, converting a raised diagnostic into [Error diag]
    (structured — apply {!to_string} or {!render} for text).  Other
    exceptions propagate. *)
