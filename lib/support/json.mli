(** Minimal JSON: a value type, a strict parser, and a compact one-line
    printer.

    This backs the line-oriented serve protocol ({!Serve_proto}): every
    request and response is one JSON object per line, so the printer
    never emits a newline.  The [Raw] constructor splices pre-rendered
    JSON verbatim (e.g. {!Diag.to_json} output) without a parse
    round-trip; the parser never produces it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** spliced verbatim by {!to_string}; the caller guarantees it is
          valid JSON.  Never produced by {!parse}. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing whitespace
    allowed, trailing garbage is an error).  Numbers without a fraction
    or exponent that fit in an OCaml [int] parse as [Int], everything
    else as [Float].  [\uXXXX] escapes decode to UTF-8 (surrogate pairs
    included). *)

val to_string : t -> string
(** Compact rendering on a single line (no newlines, minimal spaces). *)

val escape : string -> string
(** Escape a string for inclusion between JSON double quotes. *)

(** {1 Accessors} — shape-checked projections, [None] on mismatch. *)

val member : t -> string -> t option
(** Field of an [Obj] (first match). *)

val str : t -> string option
val int : t -> int option
(** [Int n], or a [Float] that is integral. *)

val number : t -> float option
val bool : t -> bool option
val list : t -> t list option
