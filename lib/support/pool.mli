(** Work-stealing scheduler over OCaml 5 domains.  See the design notes
    in [pool.ml]. *)

val recommended : unit -> int
(** The runtime's recommended domain count for this machine — what
    [--jobs 0] / [--jobs auto] resolves to. *)

val map : jobs:int -> ?stop:('r -> bool) -> int -> (int -> 'r) -> 'r option array
(** [map ~jobs n f] evaluates [f i] for [i] in [0 .. n-1] on [jobs]
    domains (the calling domain participates; [jobs - 1] are spawned)
    and returns the results indexed by item.  Workers own contiguous
    blocks and steal from each other's far ends when their own deque
    drains.

    When [stop] returns true for item [i]'s result, items {e after} [i]
    in input order are cancelled (their slots stay [None]); items before
    [i] still run, so the caller can locate the first stopping item
    exactly as a sequential left-to-right run would.

    [f] is expected to contain its own failures in its result type; if
    it raises anyway, the pool stops and the first exception is
    re-raised here after all domains join. *)
