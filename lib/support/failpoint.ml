(** Named failure-injection points.  See the interface for the model. *)

type trigger =
  | Error
  | Timeout
  | After of int Atomic.t
  | Hang of int Atomic.t

(* One registry per process: failpoints are a test/debug facility, and a
   global keeps the disarmed fast path to a single atomic read.

   Domain safety: [hit] runs on every domain at token granularity, so
   the read path must not touch the mutable table.  Arming (rare; CLI
   setup or a serve admin request) mutates [table] under [lock] and
   publishes an immutable association-list snapshot through [view];
   [hit] reads the snapshot — empty means disarmed, one atomic load.
   [After] counters are atomics so concurrent hits from several domains
   never lose a decrement. *)
let table : (string, trigger) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let view : (string * trigger) list Atomic.t = Atomic.make []

let sites =
  [ "engine/fragment";  (* expand_source entry; in fragment-parallel
                           mode, also each speculative fragment *)
    "engine/invoke";  (* macro invocation expansion *)
    "engine/register";  (* macro definition registration *)
    "interp/step";  (* every interpreted statement *)
    "interp/call";  (* meta-function / closure application *)
    "builtins/call";  (* primitive dispatch *)
    "fill/alloc";  (* template fill entry *)
    "parser/token";  (* every token consumed *)
    "parser/pattern";  (* compiled invocation-pattern execution *)
    "parser/invocation";  (* invocation parse entry *)
    (* serve-daemon request lifecycle (ms2c serve); never reached by the
       in-process engine pipeline, so the engine-level sweep in
       test_txn.ml skips them — test_serve.ml (make serve-sweep) is
       their chaos harness *)
    "serve/accept";  (* request admission into the pending queue *)
    "serve/decode";  (* request validation after JSON decode *)
    "serve/expand";  (* request processing, before the engine runs *)
    "serve/respond";  (* response serialization/write *)
    (* crash-safe persistence layer; like serve/*, never reached by the
       in-process engine pipeline — test_recovery.ml (make
       recovery-sweep) is the chaos harness *)
    "io/rename";  (* between temp-file write and rename (Atomic_io) *)
    "snapshot/save";  (* cache snapshot serialization *)
    "snapshot/load";  (* cache snapshot deserialization *)
    "journal/append" (* batch journal record append *) ]

let serve_site name = String.length name >= 6 && String.sub name 0 6 = "serve/"

let has_prefix p name =
  String.length name >= String.length p
  && String.sub name 0 (String.length p) = p

let persist_site name =
  has_prefix "io/" name || has_prefix "snapshot/" name
  || has_prefix "journal/" name

let is_site name = List.mem name sites

type spec = (string * trigger option) list

let parse_trigger name = function
  | "off" -> Ok None
  | "error" -> Ok (Some Error)
  | "timeout" -> Ok (Some Timeout)
  | "hang" -> Ok (Some (Hang (Atomic.make 0)))
  | t -> (
      match String.index_opt t '=' with
      | Some i when String.sub t 0 i = "after" -> (
          let n = String.sub t (i + 1) (String.length t - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 0 -> Ok (Some (After (Atomic.make n)))
          | _ -> Result.Error (Printf.sprintf "%s: after=N needs N >= 0" name))
      | Some i when String.sub t 0 i = "hang" -> (
          let n = String.sub t (i + 1) (String.length t - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 0 -> Ok (Some (Hang (Atomic.make n)))
          | _ -> Result.Error (Printf.sprintf "%s: hang=N needs N >= 0" name))
      | _ ->
          Result.Error
            (Printf.sprintf
               "%s: unknown trigger %S (expected off | error | timeout | \
                after=N | hang=N)"
               name t))

let parse_clause clause : (string * trigger option, string) result =
  match String.index_opt clause '=' with
  | None ->
      Result.Error
        (Printf.sprintf "%S: expected site=trigger" clause)
  | Some i ->
      let name = String.sub clause 0 i in
      let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
      if not (is_site name) then
        Result.Error
          (Printf.sprintf "unknown failpoint %S (known: %s)" name
             (String.concat ", " sites))
      else Result.map (fun t -> (name, t)) (parse_trigger name rest)

let parse_spec spec : (spec, string) result =
  let clauses =
    String.split_on_char ','
      (String.map (function ';' -> ',' | c -> c) spec)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc clause ->
      Result.bind acc (fun parsed ->
          Result.map (fun c -> c :: parsed) (parse_clause clause)))
    (Ok []) clauses
  |> Result.map List.rev

(* assumes [lock] held *)
let refresh_view () =
  Atomic.set view (Hashtbl.fold (fun k t acc -> (k, t) :: acc) table [])

let under_lock f =
  Mutex.lock lock;
  let r = f () in
  refresh_view ();
  Mutex.unlock lock;
  r

let arm name trigger =
  if not (is_site name) then
    invalid_arg (Printf.sprintf "Failpoint.arm: unknown failpoint %S" name);
  under_lock (fun () -> Hashtbl.replace table name trigger)

let disarm name = under_lock (fun () -> Hashtbl.remove table name)
let reset () = under_lock (fun () -> Hashtbl.reset table)

let arm_all spec =
  List.iter
    (function
      | name, Some t -> arm name t
      | name, None -> disarm name)
    spec

let arm_spec s = Result.map arm_all (parse_spec s)

let fire_error ~loc name =
  Diag.error ~loc ~code:Diag.code_failpoint Diag.Expansion
    "injected failure at failpoint %s" name

(* A [timeout] trigger stalls so the *watchdog* reports the failure —
   the whole point is to exercise the deadline path.  The stall sleeps
   in small slices, checking the watchdog each time; a hard 2s fallback
   bounds the stall when no deadline is armed, so an injected timeout
   can never hang the process. *)
let fire_timeout ?watchdog ~loc name =
  let give_up = Unix.gettimeofday () +. 2.0 in
  let rec wait () =
    Unix.sleepf 0.002;
    (match watchdog with Some w -> Watchdog.check w ~loc | None -> ());
    if Unix.gettimeofday () >= give_up then
      Diag.error ~loc ~code:Diag.code_timeout Diag.Resource
        "injected stall at failpoint %s hit the 2s fallback deadline" name
    else wait ()
  in
  wait ()

(* A [hang] trigger stalls without limit: it exists so crash tests can
   [kill -9] a process frozen at a known point.  The stall ignores the
   watchdog on purpose — the process is supposed to look dead.  A long
   fallback (far beyond any test timeout) turns a harness that forgot to
   kill into an abnormal exit instead of a wedged CI job. *)
let fire_hang name =
  let give_up = Unix.gettimeofday () +. 300.0 in
  let rec wait () =
    Unix.sleepf 0.05;
    if Unix.gettimeofday () >= give_up then (
      Printf.eprintf
        "ms2: failpoint %s hang hit the 300s fallback; aborting\n%!" name;
      exit 70)
    else wait ()
  in
  wait ()

let armed () = Atomic.get view <> []

let hit ?watchdog ~loc name =
  match Atomic.get view with
  | [] -> ()
  | armed -> (
      match List.assoc_opt name armed with
      | None -> ()
      | Some Error -> fire_error ~loc name
      | Some Timeout -> fire_timeout ?watchdog ~loc name
      | Some (After n) ->
          if Atomic.fetch_and_add n (-1) <= 0 then fire_error ~loc name
      | Some (Hang n) ->
          if Atomic.fetch_and_add n (-1) <= 0 then fire_hang name)

(* Arm from the environment at first load, so any ms2 process can be
   fault-injected without code changes. *)
let () =
  match Sys.getenv_opt "MS2_FAILPOINTS" with
  | None -> ()
  | Some s -> (
      match arm_spec s with
      | Ok () -> ()
      | Result.Error msg ->
          Printf.eprintf "ms2: ignoring bad MS2_FAILPOINTS: %s\n%!" msg)
