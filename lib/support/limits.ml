(** Resource limits for the expansion pipeline.

    MS² runs user-written meta-programs at compile time, so a buggy
    macro can loop forever or produce unbounded output.  A [Limits.t]
    bundles every defensive bound the pipeline enforces:

    - [fuel]: total interpreter steps (statements executed, expressions
      evaluated) across the whole run — a global budget shared by every
      macro invocation and meta declaration;
    - [invocation_fuel]: interpreter steps a single macro invocation may
      consume before it is cut off (so one runaway macro cannot starve
      the rest of the file of the global budget);
    - [max_nodes]: AST nodes a single invocation's expansion may
      produce (template fills plus spliced results) — the guard against
      expansion bombs;
    - [max_depth]: recursive-expansion nesting (macros expanding into
      invocations of other macros);
    - [max_errors]: diagnostics recorded before error recovery gives up
      and the run aborts;
    - [timeout_ms]: wall-clock deadline for expanding one fragment
      (one [expand_source] call).  Fuel only counts interpreter steps;
      the deadline also covers parsing, pattern execution and builtins,
      where a stall consumes no fuel;
    - [invocation_timeout_ms]: wall-clock deadline for a single macro
      invocation (narrows the fragment deadline; deadlines only ever
      move earlier).

    [max_int] in any budget field means "unlimited": the accounting
    still runs (a decrement and a comparison), but the bound can never
    fire. *)

type t = {
  fuel : int;  (** global interpreter step budget ([max_int] = unlimited) *)
  invocation_fuel : int;  (** interpreter steps per macro invocation *)
  max_nodes : int;  (** AST nodes produced per macro invocation *)
  max_depth : int;  (** recursive-expansion nesting bound *)
  max_errors : int;  (** diagnostics collected before aborting *)
  timeout_ms : int;  (** wall-clock deadline per fragment *)
  invocation_timeout_ms : int;  (** wall-clock deadline per invocation *)
}

(** No bound ever fires (the seed system's behaviour, except for the
    nesting depth, which was always guarded). *)
let unlimited =
  {
    fuel = max_int;
    invocation_fuel = max_int;
    max_nodes = max_int;
    max_depth = 200;
    max_errors = max_int;
    timeout_ms = max_int;
    invocation_timeout_ms = max_int;
  }

(** Generous production defaults: far above anything a legitimate macro
    library needs, low enough that a nonterminating macro fails in well
    under a second (and a stalling one within a minute). *)
let default =
  {
    fuel = 100_000_000;
    invocation_fuel = 10_000_000;
    max_nodes = 2_000_000;
    max_depth = 200;
    max_errors = 20;
    timeout_ms = 60_000;
    invocation_timeout_ms = 30_000;
  }

let pp_budget ppf n =
  if n = max_int then Fmt.string ppf "unlimited" else Fmt.int ppf n

let pp ppf t =
  Fmt.pf ppf
    "fuel=%a invocation-fuel=%a max-nodes=%a max-depth=%d max-errors=%a \
     timeout-ms=%a invocation-timeout-ms=%a"
    pp_budget t.fuel pp_budget t.invocation_fuel pp_budget t.max_nodes
    t.max_depth pp_budget t.max_errors pp_budget t.timeout_ms pp_budget
    t.invocation_timeout_ms

let to_string t = Fmt.str "%a" pp t
