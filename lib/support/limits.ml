(** Resource limits for the expansion pipeline.

    MS² runs user-written meta-programs at compile time, so a buggy
    macro can loop forever or produce unbounded output.  A [Limits.t]
    bundles every defensive bound the pipeline enforces:

    - [fuel]: total interpreter steps (statements executed, expressions
      evaluated) across the whole run — a global budget shared by every
      macro invocation and meta declaration;
    - [invocation_fuel]: interpreter steps a single macro invocation may
      consume before it is cut off (so one runaway macro cannot starve
      the rest of the file of the global budget);
    - [max_nodes]: AST nodes a single invocation's expansion may
      produce (template fills plus spliced results) — the guard against
      expansion bombs;
    - [max_depth]: recursive-expansion nesting (macros expanding into
      invocations of other macros);
    - [max_errors]: diagnostics recorded before error recovery gives up
      and the run aborts.

    [max_int] in any budget field means "unlimited": the accounting
    still runs (a decrement and a comparison), but the bound can never
    fire. *)

type t = {
  fuel : int;  (** global interpreter step budget ([max_int] = unlimited) *)
  invocation_fuel : int;  (** interpreter steps per macro invocation *)
  max_nodes : int;  (** AST nodes produced per macro invocation *)
  max_depth : int;  (** recursive-expansion nesting bound *)
  max_errors : int;  (** diagnostics collected before aborting *)
}

(** No bound ever fires (the seed system's behaviour, except for the
    nesting depth, which was always guarded). *)
let unlimited =
  {
    fuel = max_int;
    invocation_fuel = max_int;
    max_nodes = max_int;
    max_depth = 200;
    max_errors = max_int;
  }

(** Generous production defaults: far above anything a legitimate macro
    library needs, low enough that a nonterminating macro fails in well
    under a second. *)
let default =
  {
    fuel = 100_000_000;
    invocation_fuel = 10_000_000;
    max_nodes = 2_000_000;
    max_depth = 200;
    max_errors = 20;
  }

let pp_budget ppf n =
  if n = max_int then Fmt.string ppf "unlimited" else Fmt.int ppf n

let pp ppf t =
  Fmt.pf ppf
    "fuel=%a invocation-fuel=%a max-nodes=%a max-depth=%d max-errors=%a"
    pp_budget t.fuel pp_budget t.invocation_fuel pp_budget t.max_nodes
    t.max_depth pp_budget t.max_errors

let to_string t = Fmt.str "%a" pp t
