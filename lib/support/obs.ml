(** Expansion telemetry: see the interface for the design contract.

    Implementation notes.  The recorder keeps events in a reversed
    list (append = cons); {!stop_recording}/{!events} reverse once.
    Spans are recorded at {e close} time (when the duration is known),
    so the chronological order used for rendering is close order —
    Chrome trace viewers sort by [ts] themselves and nest complete
    events by time containment, so emission order is cosmetic.  The
    clock is [Unix.gettimeofday]: the same clock the watchdog polls,
    wall-valid across [fork], precise to the microsecond — a
    dedicated monotonic source would need a C stub this repo does not
    carry.

    {b Domain safety} (see DESIGN.md, "Domain-safety invariants").
    Three different strategies, one per sink, each picked for its
    hot-path cost:

    - the {e recorder} is domain-local ([Domain.DLS]): each domain owns
      its flag and event buffer, so recording in a [--jobs-mode=domains]
      worker needs no synchronization at all and per-file event batches
      never interleave.  The disabled guard is one DLS load and one
      field test.
    - {e counters} are [Atomic.t] ints: increments from every domain
      race benignly via [fetch_and_add]; the registry tables behind
      find-or-create, gauges, histograms, snapshots and rendering share
      one mutex (registry mutation is setup/exit-path work, never
      per-token).
    - the {e profiler}'s frame stack is domain-local (frames of
      different domains are unrelated activations); the aggregate table
      takes the same mutex as the registry on [exit], which runs once
      per macro invocation, not per token. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type payload = (string * value) list

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_args : payload;
}

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Recorder (domain-local)                                             *)
(* ------------------------------------------------------------------ *)

type rec_state = {
  mutable r_on : bool;
  mutable r_events : event list;  (* newest first *)
}

let rec_key : rec_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { r_on = false; r_events = [] })

let rstate () = Domain.DLS.get rec_key

let recording () = (rstate ()).r_on
let start_recording () = (rstate ()).r_on <- true

let stop_recording () =
  let rs = rstate () in
  rs.r_on <- false;
  let evs = List.rev rs.r_events in
  rs.r_events <- [];
  evs

let events () = List.rev (rstate ()).r_events

let no_args () = []

let with_span ~cat ?(args = no_args) name f =
  let rs = rstate () in
  if not rs.r_on then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      (* a span survives the flag flipping mid-run (stop_recording in a
         nested scope): record iff still on *)
      if rs.r_on then
        rs.r_events <-
          { ev_name = name; ev_cat = cat; ev_ph = 'X'; ev_ts_us = t0;
            ev_dur_us = now_us () -. t0; ev_args = args () }
          :: rs.r_events
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ~cat ?(args = no_args) name =
  let rs = rstate () in
  if rs.r_on then
    rs.r_events <-
      { ev_name = name; ev_cat = cat; ev_ph = 'i'; ev_ts_us = now_us ();
        ev_dur_us = 0.; ev_args = args () }
      :: rs.r_events

(* ------------------------------------------------------------------ *)
(* JSON helpers (no JSON library in the image: hand-rolled, stable     *)
(* field order, proper string escaping)                                *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/Infinity literals; clamp the pathological cases. *)
let json_float (x : float) : string =
  if Float.is_nan x then "0"
  else if x = Float.infinity then "1e308"
  else if x = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%g" x

let value_to_json = function
  | Int n -> string_of_int n
  | Float x -> json_float x
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

let payload_to_json (p : payload) : string =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (value_to_json v))
         p)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event rendering                                        *)
(* ------------------------------------------------------------------ *)

let chrome_trace (procs : (string * event list) list) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  List.iteri
    (fun pid (pname, evs) ->
      emit
        (Printf.sprintf
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
            \"tid\": 0, \"args\": {\"name\": \"%s\"}}"
           pid (json_escape pname));
      List.iter
        (fun e ->
          let dur =
            if e.ev_ph = 'X' then
              Printf.sprintf ", \"dur\": %.1f" e.ev_dur_us
            else ", \"s\": \"t\""
          in
          emit
            (Printf.sprintf
               "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \
                \"ts\": %.1f%s, \"pid\": %d, \"tid\": 0, \"args\": %s}"
               (json_escape e.ev_name) (json_escape e.ev_cat) e.ev_ph
               e.ev_ts_us dur pid
               (payload_to_json e.ev_args)))
        evs)
    procs;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

(* One mutex covers every registry structure (counter/histogram tables,
   gauges, profiler aggregates).  Counter *increments* bypass it via
   atomics; everything else is setup- or exit-path work. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  match f () with
  | v ->
      Mutex.unlock registry_mutex;
      v
  | exception e ->
      Mutex.unlock registry_mutex;
      raise e

module Metrics = struct
  type counter = { c_name : string; c_v : int Atomic.t }

  (* An implicit +Inf bucket follows the last bound. *)
  let bucket_bounds = [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7 |]

  type histogram = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : float;
    h_buckets : int array;  (* length = bounds + 1 (the +Inf bucket) *)
  }

  let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 16
  let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

  (* assumes [registry_mutex] held *)
  let counter_locked name =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_v = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c

  let counter name = locked (fun () -> counter_locked name)
  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_v by)
  let set c v = Atomic.set c.c_v v
  let value c = Atomic.get c.c_v
  let gauge name v = locked (fun () -> Hashtbl.replace gauges name v)

  (* assumes [registry_mutex] held *)
  let histogram_locked name =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          { h_name = name; h_count = 0; h_sum = 0.;
            h_buckets = Array.make (Array.length bucket_bounds + 1) 0 }
        in
        Hashtbl.replace histograms name h;
        h

  let histogram name = locked (fun () -> histogram_locked name)

  let observe h x =
    locked (fun () ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. x;
        let n = Array.length bucket_bounds in
        let rec slot i =
          if i >= n || x <= bucket_bounds.(i) then i else slot (i + 1)
        in
        let i = slot 0 in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1)

  type snapshot = {
    sn_counters : (string * int) list;
    sn_gauges : (string * float) list;
    sn_hists : (string * int * float * int array) list;
        (* name, count, sum, per-bucket counts *)
  }

  let snapshot () : snapshot =
    locked (fun () ->
        {
          sn_counters =
            Hashtbl.fold
              (fun k c acc -> (k, Atomic.get c.c_v) :: acc)
              counters [];
          sn_gauges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [];
          sn_hists =
            Hashtbl.fold
              (fun k h acc ->
                (k, h.h_count, h.h_sum, Array.copy h.h_buckets) :: acc)
              histograms [];
        })

  let absorb (s : snapshot) : unit =
    locked (fun () ->
        List.iter
          (fun (k, v) ->
            let c = counter_locked k in
            ignore (Atomic.fetch_and_add c.c_v v))
          s.sn_counters;
        List.iter
          (fun (k, v) ->
            match Hashtbl.find_opt gauges k with
            | Some v0 when v0 >= v -> ()
            | _ -> Hashtbl.replace gauges k v)
          s.sn_gauges;
        List.iter
          (fun (k, count, sum, buckets) ->
            let h = histogram_locked k in
            h.h_count <- h.h_count + count;
            h.h_sum <- h.h_sum +. sum;
            Array.iteri
              (fun i n -> h.h_buckets.(i) <- h.h_buckets.(i) + n)
              buckets)
          s.sn_hists)

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let to_json () : string =
    locked (fun () ->
        let b = Buffer.create 1024 in
        Buffer.add_string b "{\n  \"schema\": \"ms2-metrics-1\",\n";
        let obj name keys render =
          Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
          List.iteri
            (fun i k ->
              Buffer.add_string b (if i = 0 then "\n" else ",\n");
              Buffer.add_string b
                (Printf.sprintf "    \"%s\": %s" (json_escape k) (render k)))
            keys;
          if keys <> [] then Buffer.add_string b "\n  ";
          Buffer.add_string b "}"
        in
        obj "counters" (sorted_keys counters) (fun k ->
            string_of_int (Atomic.get (Hashtbl.find counters k).c_v));
        Buffer.add_string b ",\n";
        obj "gauges" (sorted_keys gauges) (fun k ->
            json_float (Hashtbl.find gauges k));
        Buffer.add_string b ",\n";
        obj "histograms" (sorted_keys histograms) (fun k ->
            let h = Hashtbl.find histograms k in
            let cumulative = ref 0 in
            let buckets =
              List.mapi
                (fun i n ->
                  cumulative := !cumulative + n;
                  let le =
                    if i < Array.length bucket_bounds then
                      json_float bucket_bounds.(i)
                    else "\"+Inf\""
                  in
                  Printf.sprintf "{\"le\": %s, \"count\": %d}" le !cumulative)
                (Array.to_list h.h_buckets)
            in
            Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]}"
              h.h_count (json_float h.h_sum)
              (String.concat ", " buckets));
        Buffer.add_string b "\n}\n";
        Buffer.contents b)

  let reset () =
    locked (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters;
        Hashtbl.reset gauges;
        Hashtbl.iter
          (fun _ h ->
            h.h_count <- 0;
            h.h_sum <- 0.;
            Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0)
          histograms)
end

(* ------------------------------------------------------------------ *)
(* Per-macro profiler                                                  *)
(* ------------------------------------------------------------------ *)

module Profile = struct
  let on = Atomic.make false

  let enabled () = Atomic.get on
  let enable () = Atomic.set on true
  let disable () = Atomic.set on false

  type agg = {
    mutable a_count : int;
    mutable a_cached : int;
    mutable a_self_us : float;
    mutable a_total_us : float;
    mutable a_fuel : int;
    mutable a_nodes : int;
    mutable a_max_depth : int;
  }

  let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

  (* assumes [registry_mutex] held *)
  let agg_of name =
    match Hashtbl.find_opt aggs name with
    | Some a -> a
    | None ->
        let a =
          { a_count = 0; a_cached = 0; a_self_us = 0.; a_total_us = 0.;
            a_fuel = 0; a_nodes = 0; a_max_depth = 0 }
        in
        Hashtbl.replace aggs name a;
        a

  type frame = {
    f_name : string;
    f_t0 : float;
    f_depth : int;
    mutable f_child_us : float;
  }

  (* Activation stacks are per-domain: an invocation opened on one
     domain closes on the same domain, and frames of different domains
     are unrelated activations. *)
  let stack_key : frame list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let enter ?(depth = 0) name : frame =
    (* the frame stack only sees invocations that are *live* at once
       (meta-code calling macros); re-expansion of produced code nests
       logically but runs after the producer's frame closed, so callers
       pass the [Loc.origin]-derived depth and we keep the larger *)
    let stack = Domain.DLS.get stack_key in
    let f =
      { f_name = name; f_t0 = now_us ();
        f_depth = Stdlib.max depth (List.length !stack + 1);
        f_child_us = 0. }
    in
    stack := f :: !stack;
    f

  let exit (f : frame) ~fuel ~nodes : unit =
    let stack = Domain.DLS.get stack_key in
    let dur = now_us () -. f.f_t0 in
    (* unwind to this frame: an exception may have skipped the exits of
       deeper frames whose owners had no chance to run their finalizers
       in order — charge them nothing rather than corrupt the stack *)
    let rec unwind = function
      | top :: rest when top != f -> unwind rest
      | top :: rest ->
          stack := rest;
          ignore top
      | [] -> stack := []
    in
    unwind !stack;
    (match !stack with
    | parent :: _ -> parent.f_child_us <- parent.f_child_us +. dur
    | [] -> ());
    locked (fun () ->
        let a = agg_of f.f_name in
        a.a_count <- a.a_count + 1;
        a.a_total_us <- a.a_total_us +. dur;
        a.a_self_us <- a.a_self_us +. Float.max 0. (dur -. f.f_child_us);
        a.a_fuel <- a.a_fuel + fuel;
        a.a_nodes <- a.a_nodes + nodes;
        if f.f_depth > a.a_max_depth then a.a_max_depth <- f.f_depth)

  let credit_cached name n =
    locked (fun () ->
        let a = agg_of name in
        a.a_cached <- a.a_cached + n)

  let counts () =
    locked (fun () ->
        Hashtbl.fold (fun k a acc -> (k, a.a_count) :: acc) aggs [])

  let reset () =
    locked (fun () -> Hashtbl.reset aggs);
    Domain.DLS.get stack_key := []

  type row = {
    pr_macro : string;
    pr_count : int;
    pr_cached : int;
    pr_self_us : float;
    pr_total_us : float;
    pr_fuel : int;
    pr_nodes : int;
    pr_max_depth : int;
  }

  let report () : row list =
    locked (fun () ->
        Hashtbl.fold
          (fun name a acc ->
            { pr_macro = name; pr_count = a.a_count; pr_cached = a.a_cached;
              pr_self_us = a.a_self_us; pr_total_us = a.a_total_us;
              pr_fuel = a.a_fuel; pr_nodes = a.a_nodes;
              pr_max_depth = a.a_max_depth }
            :: acc)
          aggs [])
    |> List.sort (fun a b ->
           match compare b.pr_self_us a.pr_self_us with
           | 0 -> compare a.pr_macro b.pr_macro
           | c -> c)

  let hit_rate r =
    let total = r.pr_count + r.pr_cached in
    if total = 0 then 0. else float_of_int r.pr_cached /. float_of_int total

  let report_to_text (rows : row list) : string =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-24s %8s %8s %10s %10s %12s %10s %6s %6s\n" "macro"
         "calls" "cached" "self(ms)" "total(ms)" "fuel" "nodes" "hit%"
         "depth");
    Buffer.add_string b (String.make 100 '-');
    Buffer.add_char b '\n';
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf
             "%-24s %8d %8d %10.3f %10.3f %12d %10d %5.1f%% %6d\n"
             r.pr_macro r.pr_count r.pr_cached (r.pr_self_us /. 1e3)
             (r.pr_total_us /. 1e3) r.pr_fuel r.pr_nodes
             (hit_rate r *. 100.) r.pr_max_depth))
      rows;
    Buffer.contents b

  let report_to_json (rows : row list) : string =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"schema\": \"ms2-profile-1\",\n  \"macros\": [";
    List.iteri
      (fun i r ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b
          (Printf.sprintf
             "    {\"macro\": \"%s\", \"invocations\": %d, \
              \"cached_invocations\": %d, \"self_ms\": %.3f, \
              \"total_ms\": %.3f, \"fuel\": %d, \"nodes\": %d, \
              \"cache_hit_rate\": %.3f, \"max_depth\": %d}"
             (json_escape r.pr_macro) r.pr_count r.pr_cached
             (r.pr_self_us /. 1e3) (r.pr_total_us /. 1e3) r.pr_fuel
             r.pr_nodes (hit_rate r) r.pr_max_depth))
      rows;
    if rows <> [] then Buffer.add_string b "\n  ";
    Buffer.add_string b "]\n}\n";
    Buffer.contents b
end
