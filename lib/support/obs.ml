(** Expansion telemetry: see the interface for the design contract.

    Implementation notes.  The recorder keeps events in a pooled
    structure-of-arrays buffer that persists across
    {!start_recording}/{!stop_recording} cycles: names, categories,
    phases, timestamps, durations and payloads live in parallel arrays
    (timestamps and durations in flat [float array]s, so appending a
    span stores unboxed floats), and the buffer grows by doubling and
    is never shrunk.  Recording a span is therefore allocation-free in
    steady state except for its payload; the immutable {!event}
    records the public API exposes are materialized once, at
    {!stop_recording}/{!events} time, off the hot path.  Spans are
    recorded at {e close} time (when the duration is known), so the
    chronological order used for rendering is close order — Chrome
    trace viewers sort by [ts] themselves and nest complete events by
    time containment, so emission order is cosmetic.  The clock is
    [Unix.gettimeofday]: the same clock the watchdog polls, wall-valid
    across [fork], precise to the microsecond — a dedicated monotonic
    source would need a C stub this repo does not carry.

    The {e flight recorder} is a second sink sharing the same
    recording sites: a bounded per-domain ring of the most recent
    immutable events, written lock-free by the owning domain and
    readable (racily, but memory-safely — slots hold immutable
    records, so a concurrent reader sees either the old or the new
    event, never a torn one) from any domain for anomaly dumps.
    Crucially, enabling the flight ring does {e not} make
    {!recording} true: the engine keys cache bypasses, speculation
    degradation and per-invocation spans off trace capture, and an
    always-on flight ring must not trigger any of those.

    {b Domain safety} (see DESIGN.md, "Domain-safety invariants").
    Three different strategies, one per sink, each picked for its
    hot-path cost:

    - the {e recorder} is domain-local ([Domain.DLS]): each domain owns
      its flag and event buffer, so recording in a [--jobs-mode=domains]
      worker needs no synchronization at all and per-file event batches
      never interleave.  The disabled guard is one DLS load and one
      field test.
    - {e counters} are [Atomic.t] ints: increments from every domain
      race benignly via [fetch_and_add]; the registry tables behind
      find-or-create, gauges, histograms, snapshots and rendering share
      one mutex (registry mutation is setup/exit-path work, never
      per-token).
    - the {e profiler}'s frame stack is domain-local (frames of
      different domains are unrelated activations); the aggregate table
      takes the same mutex as the registry on [exit], which runs once
      per macro invocation, not per token. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type payload = (string * value) list

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_args : payload;
}

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Recorder (domain-local)                                             *)
(* ------------------------------------------------------------------ *)

(* The pooled capture buffer: parallel arrays, one slot per event.
   Timestamps and durations are flat float arrays (unboxed stores);
   names/categories/payloads are pointer stores.  The arrays are
   retained across start/stop cycles, so steady-state recording
   allocates nothing per span beyond its payload. *)
type pool_buf = {
  mutable p_names : string array;
  mutable p_cats : string array;
  mutable p_phs : Bytes.t;
  mutable p_ts : float array;
  mutable p_durs : float array;
  mutable p_args : (unit -> payload) array;
      (** payload {e thunks}: forced at materialization time
          ({!pool_events}), not on the recording hot path.  Span
          payloads at engine sites format locations and walk origin
          chains — deferring them is most of the difference between
          "recording on" and "sinks disabled" *)
  mutable p_len : int;
}

let no_args () = []

let pool_create cap =
  {
    p_names = Array.make cap "";
    p_cats = Array.make cap "";
    p_phs = Bytes.make cap 'X';
    p_ts = Array.make cap 0.;
    p_durs = Array.make cap 0.;
    p_args = Array.make cap no_args;
    p_len = 0;
  }

let pool_grow (p : pool_buf) =
  let cap = Array.length p.p_names in
  let cap' = cap * 2 in
  let grow_arr a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  p.p_names <- grow_arr p.p_names "";
  p.p_cats <- grow_arr p.p_cats "";
  (let b = Bytes.make cap' 'X' in
   Bytes.blit p.p_phs 0 b 0 cap;
   p.p_phs <- b);
  p.p_ts <- grow_arr p.p_ts 0.;
  p.p_durs <- grow_arr p.p_durs 0.;
  p.p_args <- grow_arr p.p_args no_args

let pool_push (p : pool_buf) ~name ~cat ~ph ~ts ~dur args =
  if p.p_len >= Array.length p.p_names then pool_grow p;
  let i = p.p_len in
  p.p_names.(i) <- name;
  p.p_cats.(i) <- cat;
  Bytes.set p.p_phs i ph;
  p.p_ts.(i) <- ts;
  p.p_durs.(i) <- dur;
  p.p_args.(i) <- args;
  p.p_len <- i + 1

(* materialize the pooled slots as immutable events, chronological;
   this is where the deferred payload thunks finally run *)
let pool_events (p : pool_buf) : event list =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ({ ev_name = p.p_names.(i); ev_cat = p.p_cats.(i);
           ev_ph = Bytes.get p.p_phs i; ev_ts_us = p.p_ts.(i);
           ev_dur_us = p.p_durs.(i); ev_args = p.p_args.(i) () }
        :: acc)
  in
  go (p.p_len - 1) []

let pool_clear (p : pool_buf) =
  (* drop the payload/name pointers so a cleared buffer does not pin
     the last run's strings; the arrays themselves are the pool *)
  Array.fill p.p_names 0 p.p_len "";
  Array.fill p.p_cats 0 p.p_len "";
  Array.fill p.p_args 0 p.p_len no_args;
  p.p_len <- 0

(* The flight ring: a bounded per-domain buffer of the most recent
   events.  Single-writer (the owning domain) lock-free appends; any
   domain may snapshot it for an anomaly dump. *)
type ring = {
  rg_label : string;
  rg_cap : int;
  rg_slots : event array;
  rg_idx : int Atomic.t;  (** total events ever written *)
}

let ring_push (rg : ring) (ev : event) =
  let i = Atomic.get rg.rg_idx in
  rg.rg_slots.(i mod rg.rg_cap) <- ev;
  (* the write above is published by this store; single writer, so a
     plain set (not fetch_and_add) is enough *)
  Atomic.set rg.rg_idx (i + 1)

let ring_events (rg : ring) : event list =
  let n = Atomic.get rg.rg_idx in
  let first = if n > rg.rg_cap then n - rg.rg_cap else 0 in
  let rec go i acc =
    if i < first then acc
    else
      let ev = rg.rg_slots.(i mod rg.rg_cap) in
      go (i - 1) (if ev.ev_name = "" then acc else ev :: acc)
  in
  go (n - 1) []

type rec_state = {
  mutable r_on : bool;  (** any sink active (capture or flight) *)
  mutable r_capture : bool;  (** start/stop_recording trace capture *)
  r_buf : pool_buf;
  mutable r_flight : ring option;
  mutable r_trace : string option;  (** stamped into recorded events *)
}

let rec_key : rec_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { r_on = false; r_capture = false; r_buf = pool_create 1024;
        r_flight = None; r_trace = None })

let rstate () = Domain.DLS.get rec_key

(* [recording] deliberately reports only trace *capture*: engine-side
   gates (cache bypass announcements, speculation degradation,
   per-invocation spans) must not fire for an always-on flight ring. *)
let recording () = (rstate ()).r_capture

let start_recording () =
  let rs = rstate () in
  rs.r_capture <- true;
  rs.r_on <- true

let stop_recording () =
  let rs = rstate () in
  rs.r_capture <- false;
  rs.r_on <- rs.r_flight <> None;
  let evs = pool_events rs.r_buf in
  pool_clear rs.r_buf;
  evs

let events () = pool_events (rstate ()).r_buf

let set_trace t = (rstate ()).r_trace <- t
let current_trace () = (rstate ()).r_trace

let with_trace t f =
  let rs = rstate () in
  let saved = rs.r_trace in
  rs.r_trace <- t;
  Fun.protect ~finally:(fun () -> rs.r_trace <- saved) f

let record (rs : rec_state) ~name ~cat ~ph ~ts ~dur args_thunk =
  match rs.r_flight with
  | None ->
      (* capture-only: store the thunk, don't run it.  The ambient
         trace id is pinned now (it is request-scoped mutable state);
         the payload itself renders at stop_recording/events time,
         off the hot path.  With no trace this is a single pointer
         store — zero allocation beyond the pool slot. *)
      if rs.r_capture then
        let args_fn =
          match rs.r_trace with
          | None -> args_thunk
          | Some tid -> fun () -> ("trace_id", Str tid) :: args_thunk ()
        in
        pool_push rs.r_buf ~name ~cat ~ph ~ts ~dur args_fn
  | Some rg ->
      (* the flight ring publishes immutable events to concurrent
         anomaly-dump readers, so its payloads must materialize now *)
      let args =
        match rs.r_trace with
        | None -> args_thunk ()
        | Some tid -> ("trace_id", Str tid) :: args_thunk ()
      in
      ring_push rg
        { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts_us = ts;
          ev_dur_us = dur; ev_args = args };
      if rs.r_capture then
        pool_push rs.r_buf ~name ~cat ~ph ~ts ~dur (fun () -> args)

let with_span ~cat ?(args = no_args) name f =
  let rs = rstate () in
  if not rs.r_on then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      (* a span survives the flag flipping mid-run (stop_recording in a
         nested scope): record iff still on *)
      if rs.r_on then
        record rs ~name ~cat ~ph:'X' ~ts:t0 ~dur:(now_us () -. t0) args
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ~cat ?(args = no_args) name =
  let rs = rstate () in
  if rs.r_on then
    record rs ~name ~cat ~ph:'i' ~ts:(now_us ()) ~dur:0. args

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = struct
  let default_capacity = 4096

  (* every ring ever enabled, so an anomaly dump (or SIGQUIT) can
     collect the recent events of *all* domains, not just its own *)
  let rings_mutex = Mutex.create ()
  let rings : ring list ref = ref []

  let enabled () = (rstate ()).r_flight <> None

  let enable ?(capacity = default_capacity) () =
    let rs = rstate () in
    match rs.r_flight with
    | Some _ -> ()
    | None ->
        let dummy =
          { ev_name = ""; ev_cat = ""; ev_ph = 'i'; ev_ts_us = 0.;
            ev_dur_us = 0.; ev_args = [] }
        in
        let rg =
          {
            rg_label =
              Printf.sprintf "domain-%d" (Domain.self () :> int);
            rg_cap = max 16 capacity;
            rg_slots = Array.make (max 16 capacity) dummy;
            rg_idx = Atomic.make 0;
          }
        in
        rs.r_flight <- Some rg;
        rs.r_on <- true;
        Mutex.lock rings_mutex;
        rings := rg :: !rings;
        Mutex.unlock rings_mutex

  let events () =
    match (rstate ()).r_flight with
    | None -> []
    | Some rg -> ring_events rg

  let all_events () =
    Mutex.lock rings_mutex;
    let rgs = !rings in
    Mutex.unlock rings_mutex;
    List.rev_map (fun rg -> (rg.rg_label, ring_events rg)) rgs
end

(* ------------------------------------------------------------------ *)
(* JSON helpers (no JSON library in the image: hand-rolled, stable     *)
(* field order, proper string escaping)                                *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no NaN/Infinity literals; clamp the pathological cases. *)
let json_float (x : float) : string =
  if Float.is_nan x then "0"
  else if x = Float.infinity then "1e308"
  else if x = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%g" x

let value_to_json = function
  | Int n -> string_of_int n
  | Float x -> json_float x
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

let payload_to_json (p : payload) : string =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (value_to_json v))
         p)
  ^ "}"

let event_to_json (e : event) : string =
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %.1f, \
     \"dur\": %.1f, \"args\": %s}"
    (json_escape e.ev_name) (json_escape e.ev_cat) e.ev_ph e.ev_ts_us
    e.ev_dur_us
    (payload_to_json e.ev_args)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event rendering                                        *)
(* ------------------------------------------------------------------ *)

let chrome_trace (procs : (string * event list) list) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  List.iteri
    (fun pid (pname, evs) ->
      emit
        (Printf.sprintf
           "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
            \"tid\": 0, \"args\": {\"name\": \"%s\"}}"
           pid (json_escape pname));
      List.iter
        (fun e ->
          let dur =
            if e.ev_ph = 'X' then
              Printf.sprintf ", \"dur\": %.1f" e.ev_dur_us
            else ", \"s\": \"t\""
          in
          emit
            (Printf.sprintf
               "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \
                \"ts\": %.1f%s, \"pid\": %d, \"tid\": 0, \"args\": %s}"
               (json_escape e.ev_name) (json_escape e.ev_cat) e.ev_ph
               e.ev_ts_us dur pid
               (payload_to_json e.ev_args)))
        evs)
    procs;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

(* One mutex covers every registry structure (counter/histogram tables,
   gauges, profiler aggregates).  Counter *increments* bypass it via
   atomics; everything else is setup- or exit-path work. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  match f () with
  | v ->
      Mutex.unlock registry_mutex;
      v
  | exception e ->
      Mutex.unlock registry_mutex;
      raise e

module Metrics = struct
  type counter = { c_name : string; c_v : int Atomic.t }

  (* An implicit +Inf bucket follows the last bound. *)
  let bucket_bounds = [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7 |]

  type histogram = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : float;
    h_buckets : int array;  (* length = bounds + 1 (the +Inf bucket) *)
  }

  let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 16
  let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

  (* assumes [registry_mutex] held *)
  let counter_locked name =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_v = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c

  let counter name = locked (fun () -> counter_locked name)
  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_v by)
  let set c v = Atomic.set c.c_v v
  let value c = Atomic.get c.c_v
  let gauge name v = locked (fun () -> Hashtbl.replace gauges name v)

  (* assumes [registry_mutex] held *)
  let histogram_locked name =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          { h_name = name; h_count = 0; h_sum = 0.;
            h_buckets = Array.make (Array.length bucket_bounds + 1) 0 }
        in
        Hashtbl.replace histograms name h;
        h

  let histogram name = locked (fun () -> histogram_locked name)

  let observe h x =
    locked (fun () ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. x;
        let n = Array.length bucket_bounds in
        let rec slot i =
          if i >= n || x <= bucket_bounds.(i) then i else slot (i + 1)
        in
        let i = slot 0 in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1)

  type snapshot = {
    sn_counters : (string * int) list;
    sn_gauges : (string * float) list;
    sn_hists : (string * int * float * int array) list;
        (* name, count, sum, per-bucket counts *)
  }

  let snapshot () : snapshot =
    locked (fun () ->
        {
          sn_counters =
            Hashtbl.fold
              (fun k c acc -> (k, Atomic.get c.c_v) :: acc)
              counters [];
          sn_gauges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [];
          sn_hists =
            Hashtbl.fold
              (fun k h acc ->
                (k, h.h_count, h.h_sum, Array.copy h.h_buckets) :: acc)
              histograms [];
        })

  let absorb (s : snapshot) : unit =
    locked (fun () ->
        List.iter
          (fun (k, v) ->
            let c = counter_locked k in
            ignore (Atomic.fetch_and_add c.c_v v))
          s.sn_counters;
        List.iter
          (fun (k, v) ->
            match Hashtbl.find_opt gauges k with
            | Some v0 when v0 >= v -> ()
            | _ -> Hashtbl.replace gauges k v)
          s.sn_gauges;
        List.iter
          (fun (k, count, sum, buckets) ->
            let h = histogram_locked k in
            h.h_count <- h.h_count + count;
            h.h_sum <- h.h_sum +. sum;
            Array.iteri
              (fun i n -> h.h_buckets.(i) <- h.h_buckets.(i) + n)
              buckets)
          s.sn_hists)

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let to_json () : string =
    locked (fun () ->
        let b = Buffer.create 1024 in
        Buffer.add_string b "{\n  \"schema\": \"ms2-metrics-1\",\n";
        let obj name keys render =
          Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
          List.iteri
            (fun i k ->
              Buffer.add_string b (if i = 0 then "\n" else ",\n");
              Buffer.add_string b
                (Printf.sprintf "    \"%s\": %s" (json_escape k) (render k)))
            keys;
          if keys <> [] then Buffer.add_string b "\n  ";
          Buffer.add_string b "}"
        in
        obj "counters" (sorted_keys counters) (fun k ->
            string_of_int (Atomic.get (Hashtbl.find counters k).c_v));
        Buffer.add_string b ",\n";
        obj "gauges" (sorted_keys gauges) (fun k ->
            json_float (Hashtbl.find gauges k));
        Buffer.add_string b ",\n";
        obj "histograms" (sorted_keys histograms) (fun k ->
            let h = Hashtbl.find histograms k in
            let cumulative = ref 0 in
            let buckets =
              List.mapi
                (fun i n ->
                  cumulative := !cumulative + n;
                  let le =
                    if i < Array.length bucket_bounds then
                      json_float bucket_bounds.(i)
                    else "\"+Inf\""
                  in
                  Printf.sprintf "{\"le\": %s, \"count\": %d}" le !cumulative)
                (Array.to_list h.h_buckets)
            in
            Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]}"
              h.h_count (json_float h.h_sum)
              (String.concat ", " buckets));
        Buffer.add_string b "\n}\n";
        Buffer.contents b)

  (* Prometheus text exposition (format 0.0.4).  Metric names are the
     registry names with every byte outside [a-zA-Z0-9_:] mapped to
     '_' (so "serve.latency_ms.expand" scrapes as
     [serve_latency_ms_expand]).  Histograms render the canonical
     cumulative [_bucket{le=...}] series plus [_sum] / [_count]. *)
  let prom_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

  let prom_float (f : float) : string =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_prometheus () : string =
    locked (fun () ->
        let b = Buffer.create 2048 in
        List.iter
          (fun k ->
            let n = prom_name k in
            Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
            Buffer.add_string b
              (Printf.sprintf "%s %d\n" n
                 (Atomic.get (Hashtbl.find counters k).c_v)))
          (sorted_keys counters);
        List.iter
          (fun k ->
            let n = prom_name k in
            Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
            Buffer.add_string b
              (Printf.sprintf "%s %s\n" n
                 (prom_float (Hashtbl.find gauges k))))
          (sorted_keys gauges);
        List.iter
          (fun k ->
            let h = Hashtbl.find histograms k in
            let n = prom_name k in
            Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
            let cumulative = ref 0 in
            Array.iteri
              (fun i c ->
                cumulative := !cumulative + c;
                let le =
                  if i < Array.length bucket_bounds then
                    prom_float bucket_bounds.(i)
                  else "+Inf"
                in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le
                     !cumulative))
              h.h_buckets;
            Buffer.add_string b
              (Printf.sprintf "%s_sum %s\n" n (prom_float h.h_sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count %d\n" n h.h_count))
          (sorted_keys histograms);
        Buffer.contents b)

  let reset () =
    locked (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters;
        Hashtbl.reset gauges;
        Hashtbl.iter
          (fun _ h ->
            h.h_count <- 0;
            h.h_sum <- 0.;
            Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0)
          histograms)
end

(* ------------------------------------------------------------------ *)
(* Per-macro profiler                                                  *)
(* ------------------------------------------------------------------ *)

module Profile = struct
  let on = Atomic.make false

  let enabled () = Atomic.get on
  let enable () = Atomic.set on true
  let disable () = Atomic.set on false

  type agg = {
    mutable a_count : int;
    mutable a_cached : int;
    mutable a_self_us : float;
    mutable a_total_us : float;
    mutable a_fuel : int;
    mutable a_nodes : int;
    mutable a_max_depth : int;
  }

  let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

  (* assumes [registry_mutex] held *)
  let agg_of name =
    match Hashtbl.find_opt aggs name with
    | Some a -> a
    | None ->
        let a =
          { a_count = 0; a_cached = 0; a_self_us = 0.; a_total_us = 0.;
            a_fuel = 0; a_nodes = 0; a_max_depth = 0 }
        in
        Hashtbl.replace aggs name a;
        a

  type frame = {
    f_name : string;
    f_t0 : float;
    f_depth : int;
    mutable f_child_us : float;
  }

  (* Activation stacks are per-domain: an invocation opened on one
     domain closes on the same domain, and frames of different domains
     are unrelated activations. *)
  let stack_key : frame list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let enter ?(depth = 0) name : frame =
    (* the frame stack only sees invocations that are *live* at once
       (meta-code calling macros); re-expansion of produced code nests
       logically but runs after the producer's frame closed, so callers
       pass the [Loc.origin]-derived depth and we keep the larger *)
    let stack = Domain.DLS.get stack_key in
    let f =
      { f_name = name; f_t0 = now_us ();
        f_depth = Stdlib.max depth (List.length !stack + 1);
        f_child_us = 0. }
    in
    stack := f :: !stack;
    f

  let exit (f : frame) ~fuel ~nodes : unit =
    let stack = Domain.DLS.get stack_key in
    let dur = now_us () -. f.f_t0 in
    (* unwind to this frame: an exception may have skipped the exits of
       deeper frames whose owners had no chance to run their finalizers
       in order — charge them nothing rather than corrupt the stack *)
    let rec unwind = function
      | top :: rest when top != f -> unwind rest
      | top :: rest ->
          stack := rest;
          ignore top
      | [] -> stack := []
    in
    unwind !stack;
    (match !stack with
    | parent :: _ -> parent.f_child_us <- parent.f_child_us +. dur
    | [] -> ());
    locked (fun () ->
        let a = agg_of f.f_name in
        a.a_count <- a.a_count + 1;
        a.a_total_us <- a.a_total_us +. dur;
        a.a_self_us <- a.a_self_us +. Float.max 0. (dur -. f.f_child_us);
        a.a_fuel <- a.a_fuel + fuel;
        a.a_nodes <- a.a_nodes + nodes;
        if f.f_depth > a.a_max_depth then a.a_max_depth <- f.f_depth)

  let credit_cached name n =
    locked (fun () ->
        let a = agg_of name in
        a.a_cached <- a.a_cached + n)

  let counts () =
    locked (fun () ->
        Hashtbl.fold (fun k a acc -> (k, a.a_count) :: acc) aggs [])

  let reset () =
    locked (fun () -> Hashtbl.reset aggs);
    Domain.DLS.get stack_key := []

  type row = {
    pr_macro : string;
    pr_count : int;
    pr_cached : int;
    pr_self_us : float;
    pr_total_us : float;
    pr_fuel : int;
    pr_nodes : int;
    pr_max_depth : int;
  }

  let report () : row list =
    locked (fun () ->
        Hashtbl.fold
          (fun name a acc ->
            { pr_macro = name; pr_count = a.a_count; pr_cached = a.a_cached;
              pr_self_us = a.a_self_us; pr_total_us = a.a_total_us;
              pr_fuel = a.a_fuel; pr_nodes = a.a_nodes;
              pr_max_depth = a.a_max_depth }
            :: acc)
          aggs [])
    |> List.sort (fun a b ->
           match compare b.pr_self_us a.pr_self_us with
           | 0 -> compare a.pr_macro b.pr_macro
           | c -> c)

  let hit_rate r =
    let total = r.pr_count + r.pr_cached in
    if total = 0 then 0. else float_of_int r.pr_cached /. float_of_int total

  let report_to_text (rows : row list) : string =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-24s %8s %8s %10s %10s %12s %10s %6s %6s\n" "macro"
         "calls" "cached" "self(ms)" "total(ms)" "fuel" "nodes" "hit%"
         "depth");
    Buffer.add_string b (String.make 100 '-');
    Buffer.add_char b '\n';
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf
             "%-24s %8d %8d %10.3f %10.3f %12d %10d %5.1f%% %6d\n"
             r.pr_macro r.pr_count r.pr_cached (r.pr_self_us /. 1e3)
             (r.pr_total_us /. 1e3) r.pr_fuel r.pr_nodes
             (hit_rate r *. 100.) r.pr_max_depth))
      rows;
    Buffer.contents b

  let report_to_json (rows : row list) : string =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"schema\": \"ms2-profile-1\",\n  \"macros\": [";
    List.iteri
      (fun i r ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b
          (Printf.sprintf
             "    {\"macro\": \"%s\", \"invocations\": %d, \
              \"cached_invocations\": %d, \"self_ms\": %.3f, \
              \"total_ms\": %.3f, \"fuel\": %d, \"nodes\": %d, \
              \"cache_hit_rate\": %.3f, \"max_depth\": %d}"
             (json_escape r.pr_macro) r.pr_count r.pr_cached
             (r.pr_self_us /. 1e3) (r.pr_total_us /. 1e3) r.pr_fuel
             r.pr_nodes (hit_rate r) r.pr_max_depth))
      rows;
    if rows <> [] then Buffer.add_string b "\n  ";
    Buffer.add_string b "]\n}\n";
    Buffer.contents b
end
