(** Diagnostics: located, coded messages raised or collected by every
    phase of the system.

    The paper's central safety claim is that a macro *user* only ever sees
    syntax errors in code they wrote themselves; errors in macro bodies are
    reported at macro *definition* time.  To support distinguishing these,
    every diagnostic records the phase that produced it.

    Beyond the classic raise-first-error model, this module supports the
    resilient pipeline: severities, stable error codes, a bounded
    collector for multi-error runs, source-line caret rendering (backed
    by a source-text registry fed by the lexer), and a machine-readable
    JSON form with stable field order. *)

type phase =
  | Lexing
  | Parsing
  | Pattern_check  (** pattern well-formedness (one-token-lookahead rule) *)
  | Type_check  (** parse-time meta type analysis *)
  | Expansion  (** running the meta-program *)
  | Resource  (** a {!Limits.t} budget was exhausted *)

let phase_name = function
  | Lexing -> "lexical error"
  | Parsing -> "syntax error"
  | Pattern_check -> "pattern error"
  | Type_check -> "type error"
  | Expansion -> "expansion error"
  | Resource -> "resource limit"

let phase_slug = function
  | Lexing -> "lexing"
  | Parsing -> "parsing"
  | Pattern_check -> "pattern"
  | Type_check -> "type"
  | Expansion -> "expansion"
  | Resource -> "resource"

(* Stable error codes: EPNN where P identifies the phase.  Sites that
   want a more specific code (the resource guards do) pass ~code. *)
let default_code = function
  | Lexing -> "E0101"
  | Parsing -> "E0201"
  | Pattern_check -> "E0301"
  | Type_check -> "E0401"
  | Expansion -> "E0501"
  | Resource -> "E0601"

(* Specific resource codes, used by the budget guards. *)
let code_fuel = "E0601"
let code_nodes = "E0602"
let code_depth = "E0603"
let code_too_many_errors = "E0604"
let code_timeout = "E0605"
let code_stack = "E0606"
let code_failpoint = "E0607"

type severity = Error | Warning | Note

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  severity : severity;
  phase : phase;
  code : string;  (** stable machine-readable code, e.g. ["E0501"] *)
  loc : Loc.t;
  message : string;
}

exception Error of t

let make ?(severity = (Error : severity)) ?(loc = Loc.dummy) ?code phase
    message =
  let code = match code with Some c -> c | None -> default_code phase in
  { severity; phase; code; loc; message }

let error ?(loc = Loc.dummy) ?code phase fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ~loc ?code phase message)))
    fmt

let errorf = error

let pp ppf { severity; phase; code; loc; message } =
  let sev =
    match severity with Error -> "" | s -> severity_name s ^ ": "
  in
  if Loc.is_dummy loc then
    Fmt.pf ppf "%s%s[%s]: %s" sev (phase_name phase) code message
  else
    Fmt.pf ppf "%a: %s%s[%s]: %s" Loc.pp loc sev (phase_name phase) code
      message

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Source registry and caret rendering                                 *)
(* ------------------------------------------------------------------ *)

(* Source texts, registered by the lexer (and anyone else who parses),
   so diagnostics can quote the offending line.  Keyed by source name;
   re-registering replaces, which is what repeated in-memory parses of
   "<string>" want.  The registry is process-global and written by
   every [--jobs-mode=domains] worker (once per lexed fragment), so
   both sides take a mutex — registration and caret-render lookups are
   per-fragment and per-diagnostic, never per-token. *)
let sources : (string, string) Hashtbl.t = Hashtbl.create 16
let sources_lock = Mutex.create ()

let register_source name text =
  Mutex.lock sources_lock;
  Hashtbl.replace sources name text;
  Mutex.unlock sources_lock

let find_source name =
  Mutex.lock sources_lock;
  let r = Hashtbl.find_opt sources name in
  Mutex.unlock sources_lock;
  r

let source_line name n =
  match find_source name with
  | None -> None
  | Some text ->
      let len = String.length text in
      let rec skip_lines i line =
        if line >= n then Some i
        else
          match String.index_from_opt text i '\n' with
          | Some j when j + 1 <= len -> skip_lines (j + 1) (line + 1)
          | _ -> None
      in
      if n < 1 then None
      else
        Option.map
          (fun start ->
            let stop =
              match String.index_from_opt text start '\n' with
              | Some j -> j
              | None -> len
            in
            String.sub text start (stop - start))
          (skip_lines 0 1)

(** Render with source context when the registry knows the source, and
    the expansion backtrace (if any) as trailing note lines:

    {v
    f.mc:3:2: expansion error[E0501]: boom
      3 | m bad;
        |   ^^^
      in expansion of macro `m' at f.mc:9:0-1
    v} *)
let render t =
  let header = to_string t in
  let body =
    if Loc.is_dummy t.loc then header
    else
      match source_line t.loc.Loc.source t.loc.Loc.start_pos.Loc.line with
      | None -> header
      | Some line ->
          let lno = t.loc.Loc.start_pos.Loc.line in
          let col = t.loc.Loc.start_pos.Loc.col in
          let width =
            if t.loc.Loc.end_pos.Loc.line = lno then
              max 1 (t.loc.Loc.end_pos.Loc.col - col)
            else max 1 (String.length line - col)
          in
          let col = min col (String.length line) in
          let width = min width (max 1 (String.length line - col + 1)) in
          let gutter = string_of_int lno in
          let pad = String.make (String.length gutter) ' ' in
          Fmt.str "%s\n  %s | %s\n  %s | %s%s" header gutter line pad
            (String.make col ' ')
            (String.make width '^')
  in
  (* Backtrace lines only when the location came out of an expansion, so
     plain (user-code) diagnostics render exactly as before. *)
  body ^ Fmt.str "@[<v>%a@]" Loc.pp_backtrace t.loc

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** The span of [loc] as JSON object fields (no braces); null fields for
    dummy locations.  Shared between {!to_json} and the expansion-stack
    frames. *)
let loc_json_fields loc =
  if Loc.is_dummy loc then
    {|"source":null,"line":null,"col":null,"end_line":null,"end_col":null|}
  else
    Printf.sprintf
      {|"source":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d|}
      (json_escape loc.Loc.source)
      loc.Loc.start_pos.Loc.line loc.Loc.start_pos.Loc.col
      loc.Loc.end_pos.Loc.line loc.Loc.end_pos.Loc.col

(** One diagnostic as a single-line JSON object with stable field
    order: severity, code, phase, source, line, col, end_line, end_col,
    message[, expansion_stack].  Location fields are null for dummy
    locations; [expansion_stack] (innermost frame first, capped at
    {!Loc.max_backtrace_frames} with an [elided_frames] count) appears
    only when the location has expansion provenance. *)
let to_json t =
  let stack_fields =
    match Loc.backtrace t.loc with
    | [] -> ""
    | frames ->
        let n = List.length frames in
        let shown =
          List.filteri (fun i _ -> i < Loc.max_backtrace_frames) frames
        in
        let frame_json f =
          Printf.sprintf {|{"macro":"%s",%s}|}
            (json_escape f.Loc.macro)
            (loc_json_fields f.Loc.call_site)
        in
        let elided =
          if n > Loc.max_backtrace_frames then
            Printf.sprintf {|,"elided_frames":%d|}
              (n - Loc.max_backtrace_frames)
          else ""
        in
        Printf.sprintf {|,"expansion_stack":[%s]%s|}
          (String.concat "," (List.map frame_json shown))
          elided
  in
  Printf.sprintf
    {|{"severity":"%s","code":"%s","phase":"%s",%s,"message":"%s"%s}|}
    (severity_name t.severity) (json_escape t.code) (phase_slug t.phase)
    (loc_json_fields t.loc) (json_escape t.message) stack_fields

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

(** A bounded diagnostic collector for multi-error (recovery) runs.
    Keeps at most [max_errors] diagnostics; further ones are counted in
    [dropped] but not stored. *)
type collector = {
  mutable items_rev : t list;
  mutable count : int;
  mutable dropped : int;
  max_errors : int;
}

let collector ?(max_errors = max_int) () =
  { items_rev = []; count = 0; dropped = 0; max_errors }

let add c d =
  if c.count >= c.max_errors then c.dropped <- c.dropped + 1
  else begin
    c.items_rev <- d :: c.items_rev;
    c.count <- c.count + 1
  end

let is_full c = c.count >= c.max_errors
let count c = c.count
let dropped c = c.dropped
let items c = List.rev c.items_rev

let error_count c =
  List.fold_left
    (fun n d -> if d.severity = (Error : severity) then n + 1 else n)
    0 c.items_rev

(* ------------------------------------------------------------------ *)
(* Protect                                                             *)
(* ------------------------------------------------------------------ *)

(** [protect f] runs [f ()] and converts a raised diagnostic into
    [Error diag], keeping its structure (phase, code, location); other
    exceptions propagate.  Callers that only need text apply
    {!to_string} (or {!render}) to the error. *)
let protect f = try Ok (f ()) with Error d -> Result.Error d
