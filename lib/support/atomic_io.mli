(** Atomic whole-file writes: write to a temp file in the destination's
    directory, then [rename] into place.

    A reader (or a process killed mid-write) can then never observe a
    truncated file where good content was — the invariant every
    machine-readable artifact of this system relies on: [-o] output,
    [--sourcemap], [--metrics], [--trace-out], the [BENCH_*.json]
    records, pidfiles.  The rename is atomic only within one filesystem,
    which the same-directory temp file guarantees. *)

val write : string -> string -> (unit, string) result
(** [write path content] replaces [path] atomically.  [Error msg] on any
    I/O failure (unwritable directory, disk full …); the temp file is
    removed on failure. *)

val write_exn : string -> string -> unit
(** Like {!write}, raising [Sys_error] on failure. *)
