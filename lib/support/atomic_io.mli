(** Atomic whole-file writes: write to a temp file in the destination's
    directory, fsync it, then [rename] into place.

    A reader (or a process killed mid-write) can then never observe a
    truncated file where good content was — the invariant every
    machine-readable artifact of this system relies on: [-o] output,
    [--sourcemap], [--metrics], [--trace-out], the [BENCH_*.json]
    records, pidfiles, cache snapshots.  The rename is atomic only
    within one filesystem, which the same-directory temp file
    guarantees; the pre-rename fsync guarantees the published name never
    points at unwritten data after a crash, and a best-effort directory
    fsync persists the rename itself. *)

val write : string -> string -> (unit, string) result
(** [write path content] replaces [path] atomically and durably.
    [Error msg] on any I/O failure (unwritable directory, disk full …);
    the temp file is removed on failure — except under the [io/rename]
    failpoint, which models a crash between write and rename and
    deliberately leaves the temp file behind (see {!sweep_stale}). *)

val write_exn : string -> string -> unit
(** Like {!write}, raising [Sys_error] on failure. *)

val sweep_stale : ?max_age_s:float -> string -> int
(** [sweep_stale dir] removes ".ms2*.tmp" orphans left in [dir] by
    writers that crashed between write and rename, returning the number
    removed.  Only regular files older than [max_age_s] (default one
    hour) are touched, so an in-flight concurrent write is never
    swept.  Errors (unreadable directory, racing removals) are
    swallowed: sweeping is hygiene, not correctness. *)
