(** Capped exponential backoff with full jitter.  See the interface. *)

type t = {
  base_ms : int;
  cap_ms : int;
  rng : Random.State.t;
  mutable attempt : int;
}

let create ?(base_ms = 50) ?(cap_ms = 5000) ?seed () =
  let seed = match seed with Some s -> s | None -> Unix.getpid () * 7919 in
  {
    base_ms = max 1 base_ms;
    cap_ms = max 1 cap_ms;
    rng = Random.State.make [| seed |];
    attempt = 0;
  }

let next_ms (b : t) : int =
  (* ceiling = min (cap, base * 2^attempt), overflow-safe *)
  let ceiling =
    if b.attempt >= 30 then b.cap_ms
    else min b.cap_ms (b.base_ms * (1 lsl b.attempt))
  in
  b.attempt <- b.attempt + 1;
  1 + Random.State.int b.rng (max 1 ceiling)

let attempts (b : t) = b.attempt
let reset (b : t) = b.attempt <- 0
