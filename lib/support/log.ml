(** Structured line-JSON logging (schema [ms2-log-1]).

    One log record per line, one JSON object per record, so `grep
    trace_id` and `jq` both work on a raw log stream.  The sink is a
    process-global formatter (stderr by default) behind a mutex —
    serve worker domains log concurrently, and a torn line is worse
    than a brief lock.  Levels filter at the call site: a suppressed
    record never builds its payload (the fields are a thunk), matching
    the zero-overhead rule of {!Obs}.

    Trace ids: {!new_trace_id} mints 16 hex chars from a digest of
    (pid, time, counter) — unique enough to join log lines, responses
    and flight dumps within one daemon's lifetime, short enough to
    read aloud.  When a record carries no explicit [?trace] the
    domain's {!Obs.current_trace} is stamped instead, so engine-level
    code logging mid-request inherits the request's id for free. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string (s : string) : level option =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* The filter level is read on every call site, from any domain. *)
let threshold = Atomic.make (level_rank Warn)

let set_level (l : level) = Atomic.set threshold (level_rank l)
let enabled (l : level) = level_rank l >= Atomic.get threshold

let sink_mutex = Mutex.create ()
let sink : out_channel ref = ref stderr

let set_sink (oc : out_channel) =
  Mutex.lock sink_mutex;
  sink := oc;
  Mutex.unlock sink_mutex

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

let trace_counter = Atomic.make 0

let new_trace_id () : string =
  let n = Atomic.fetch_and_add trace_counter 1 in
  let seed =
    Printf.sprintf "%d:%f:%d" (Unix.getpid ()) (Unix.gettimeofday ()) n
  in
  String.sub (Digest.to_hex (Digest.string seed)) 0 16

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let value_to_json : Obs.value -> string = function
  | Obs.Int i -> string_of_int i
  | Obs.Bool b -> if b then "true" else "false"
  | Obs.Float f -> (
      match Float.classify_float f with
      | FP_nan | FP_infinite -> "0"
      | _ ->
          if Float.is_integer f && Float.abs f < 1e15 then
            Printf.sprintf "%.0f" f
          else Printf.sprintf "%.6g" f)
  | Obs.Str s -> Printf.sprintf "\"%s\"" (Json.escape s)

let emit (l : level) ?trace ~(event : string)
    (fields : unit -> Obs.payload) : unit =
  if enabled l then begin
    let ts_us = Obs.now_us () in
    let trace =
      match trace with Some _ as t -> t | None -> Obs.current_trace ()
    in
    let b = Buffer.create 160 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"schema\": \"ms2-log-1\", \"ts_us\": %.0f, \"level\": \"%s\", \
          \"event\": \"%s\""
         ts_us (level_name l) (Json.escape event));
    (match trace with
    | Some tid ->
        Buffer.add_string b
          (Printf.sprintf ", \"trace_id\": \"%s\"" (Json.escape tid))
    | None -> ());
    List.iter
      (fun (k, v) ->
        Buffer.add_string b
          (Printf.sprintf ", \"%s\": %s" (Json.escape k) (value_to_json v)))
      (fields ());
    Buffer.add_string b "}\n";
    Mutex.lock sink_mutex;
    (try
       output_string !sink (Buffer.contents b);
       flush !sink
     with _ -> ());
    Mutex.unlock sink_mutex
  end

let debug ?trace ~event fields = emit Debug ?trace ~event fields
let info ?trace ~event fields = emit Info ?trace ~event fields
let warn ?trace ~event fields = emit Warn ?trace ~event fields
let error ?trace ~event fields = emit Error ?trace ~event fields
