(* Memoized by hand rather than [lazy]: a benign double computation
   under racing domains yields the same string, whereas concurrently
   forcing a lazy raises. *)
let computed : string option ref = ref None

let digest () : string =
  match !computed with
  | Some d -> d
  | None ->
      let d =
        match Digest.file Sys.executable_name with
        | d -> d
        | exception _ ->
            Digest.string
              (String.concat ":"
                 [ "ms2"; Sys.executable_name; Sys.ocaml_version ])
      in
      computed := Some d;
      d

let hex () : string = Digest.to_hex (digest ())
let pid () : int = Unix.getpid ()
