(** Global string interning: one allocation and one hash per distinct
    spelling, process-wide.  See the implementation notes in
    [intern.ml]. *)

type t = private {
  str : string;  (** canonical spelling, unique per contents *)
  hash : int;  (** cached [Hashtbl.hash] of the spelling *)
  uid : int;  (** allocation order; total ordering for determinism *)
}

val intern : string -> t
(** The symbol for [s], allocated on first sight. *)

val canon : string -> string
(** The canonical copy of [s]: spelling-equal inputs return the same
    physical string. *)

val str : t -> string
val equal : t -> t -> bool  (** one pointer comparison *)

val hash : t -> int  (** cached; never re-reads the characters *)

val compare : t -> t -> int  (** by allocation order *)

val interned : unit -> int
(** Distinct spellings interned so far. *)

module Tbl : Hashtbl.S with type key = t
