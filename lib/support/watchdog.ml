(** Wall-clock watchdog: an absolute deadline polled cheaply from the
    pipeline's hot loops.  See the interface for the design notes. *)

type t = {
  mutable deadline : float;
      (** absolute [Unix.gettimeofday] seconds; [infinity] = unarmed *)
  mutable budget_ms : int;  (** the armed budget, for the diagnostic *)
  mutable countdown : int;  (** polls remaining until the next clock read *)
}

let poll_interval = 512

let create () =
  { deadline = infinity; budget_ms = max_int; countdown = poll_interval }

let now () = Unix.gettimeofday ()

let arm t ~ms =
  if ms = max_int then begin
    t.deadline <- infinity;
    t.budget_ms <- max_int
  end
  else begin
    t.deadline <- now () +. (float_of_int ms /. 1000.);
    t.budget_ms <- ms
  end;
  t.countdown <- poll_interval

let disarm t =
  t.deadline <- infinity;
  t.budget_ms <- max_int

let armed t = t.deadline < infinity

type saved = { s_deadline : float; s_budget_ms : int }

let narrow t ~ms : saved =
  let saved = { s_deadline = t.deadline; s_budget_ms = t.budget_ms } in
  if ms <> max_int then begin
    let d = now () +. (float_of_int ms /. 1000.) in
    if d < t.deadline then begin
      t.deadline <- d;
      t.budget_ms <- ms
    end
  end;
  saved

let restore t (s : saved) =
  t.deadline <- s.s_deadline;
  t.budget_ms <- s.s_budget_ms

let expired ~loc t =
  Obs.instant ~cat:"watchdog" "deadline-expired"
    ~args:(fun () -> [ ("budget_ms", Obs.Int t.budget_ms) ]);
  Diag.error ~loc ~code:Diag.code_timeout Diag.Resource
    "wall-clock deadline exceeded (%dms); is a macro body stalling?"
    t.budget_ms

(* every counter-gated poll that actually reads the clock lands here *)
let c_clock_reads = Obs.Metrics.counter "watchdog.clock_reads"

let check t ~loc =
  Obs.Metrics.incr c_clock_reads;
  if now () > t.deadline then expired ~loc t

let poll t ~loc =
  let c = t.countdown - 1 in
  t.countdown <- c;
  if c <= 0 then begin
    t.countdown <- poll_interval;
    check t ~loc
  end

let remaining_ms t =
  if not (armed t) then None
  else Some (int_of_float (Float.max 0. ((t.deadline -. now ()) *. 1000.)))
