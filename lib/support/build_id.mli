(** Identity of the running binary and of the running process.

    OCaml's [Marshal] is untyped: decoding bytes written by a build
    whose value layout differs can segfault or silently yield garbage.
    Every on-disk artifact that embeds marshalled payloads (cache
    snapshots, batch journals) therefore stamps the writer's build
    fingerprint, and a reader from any other build degrades cleanly —
    a cold start or a skipped record — instead of decoding.  The
    fingerprint makes the safety automatic: it needs no hand-bumped
    format constant to stay honest across rebuilds. *)

val digest : unit -> string
(** 16-byte fingerprint of the running executable: the MD5 of the
    binary image itself, so ANY rebuild — not just one that remembered
    to bump a format version — reads as a different build.  Falls back
    to a digest of the executable path and compiler version when the
    image cannot be read (e.g. unlinked while running).  Computed once
    and cached. *)

val hex : unit -> string
(** {!digest} rendered as 32 lowercase hex characters, for embedding
    in textual formats. *)

val pid : unit -> int
(** The current process id, re-read on every call — after [Unix.fork]
    a child sees its own pid, which callers use to derive per-process
    identities that fork cannot duplicate. *)
