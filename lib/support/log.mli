(** Structured line-JSON logging (schema [ms2-log-1]).

    Every record is one line, one JSON object:
    [{"schema": "ms2-log-1", "ts_us": ..., "level": "...",
    "event": "...", "trace_id": "...", <fields>...}].  The [trace_id]
    key appears when the record has a trace — explicit [?trace], or
    the domain's ambient {!Obs.current_trace}.  Fields are an
    {!Obs.payload} behind a thunk, never built for a suppressed level.

    The sink (stderr by default) is shared by all domains under a
    mutex, so concurrent records never tear.  Default level: [Warn]. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]
    (case-insensitive). *)

val set_level : level -> unit
(** Records below this level are dropped at the call site. *)

val enabled : level -> bool

val set_sink : out_channel -> unit
(** Redirect records (tests; default [stderr]).  The channel is
    flushed after every record. *)

val new_trace_id : unit -> string
(** Mint a 16-hex-char id, unique within (and practically across)
    this process's lifetime. *)

val debug :
  ?trace:string -> event:string -> (unit -> Obs.payload) -> unit

val info :
  ?trace:string -> event:string -> (unit -> Obs.payload) -> unit

val warn :
  ?trace:string -> event:string -> (unit -> Obs.payload) -> unit

val error :
  ?trace:string -> event:string -> (unit -> Obs.payload) -> unit
