(** Minimal JSON codec.  See the interface for the model. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN/Infinity *)
      if Float.is_nan f || f = infinity || f = neg_infinity then
        Buffer.add_string b "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Raw s -> Buffer.add_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at byte %d" m st.pos))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st "expected %C, found %C" c d
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

(* UTF-8 encode one code point *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = st.pos to st.pos + 3 do
    let d =
      match st.src.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | c -> fail st "bad hex digit %C in \\u escape" c
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st : string =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if st.pos >= String.length st.src then fail st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            let cp = hex4 st in
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF
               && st.pos + 2 <= String.length st.src
               && st.src.[st.pos] = '\\'
               && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let lo = hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 b
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                add_utf8 b cp;
                add_utf8 b lo
              end
            end
            else add_utf8 b cp
        | c -> fail st "bad escape \\%C" c);
        go ())
    | c when Char.code c < 0x20 -> fail st "raw control character in string"
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number st : t =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let d0 = st.pos in
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = d0 then fail st "expected digits"
  in
  digits ();
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let parse (src : string) : (t, string) result =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos < String.length src then
        Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member v k =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None

let str = function Str s -> Some s | _ -> None

let int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

let number = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
