(** Resource limits enforced by the expansion pipeline: interpreter
    fuel (global and per-invocation), produced-AST size, recursive
    expansion depth, and the diagnostic cap for error recovery.

    [max_int] in a budget field means "unlimited". *)

type t = {
  fuel : int;  (** global interpreter step budget ([max_int] = unlimited) *)
  invocation_fuel : int;  (** interpreter steps per macro invocation *)
  max_nodes : int;  (** AST nodes produced per macro invocation *)
  max_depth : int;  (** recursive-expansion nesting bound *)
  max_errors : int;  (** diagnostics collected before aborting *)
  timeout_ms : int;
      (** wall-clock deadline for one fragment ([expand_source] call),
          enforced by the {!Watchdog} polls woven through the pipeline *)
  invocation_timeout_ms : int;
      (** wall-clock deadline for a single macro invocation (narrows the
          fragment deadline) *)
}

val unlimited : t
(** No budget ever fires; [max_depth] stays at its classic 200. *)

val default : t
(** Generous production defaults (documented in MANUAL.md): fuel 1e8,
    per-invocation fuel 1e7, 2e6 nodes per invocation, depth 200,
    20 errors, 60s per fragment, 30s per invocation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
