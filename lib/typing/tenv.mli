(** Meta-level type environments: the parse-time semantic analyzer's
    knowledge of "the declared types of meta-variables (both globals and
    parameters of macros and meta-functions)" (paper §3). *)

module Mtype = Ms2_mtype.Mtype

type t

val create : unit -> t

val copy : t -> t
(** A snapshot sharing no mutable state, for re-entrant parses. *)

val restore : t -> t -> unit
(** [restore t snap] resets [t] in place to the state captured by
    [snap] (itself untouched, so one snapshot supports many restores). *)

val push_scope : t -> unit
val pop_scope : t -> unit
val with_scope : t -> (unit -> 'a) -> 'a

val add : t -> string -> Mtype.t -> unit
(** Bind in the innermost scope. *)

val add_global : t -> string -> Mtype.t -> unit
val find : t -> string -> Mtype.t option
val mem : t -> string -> bool

val rehydrate : t -> t
(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): re-interns every key into fresh tables, restoring the
    pointer identity [Intern.Tbl] lookups rely on.  The input is not
    mutated. *)

val digest : t -> string
(** Deterministic digest of the whole environment (scopes, names,
    types), for content-addressed expansion-cache keys. *)
