(** Meta-level type environments.

    The parse-time semantic analyzer "knows the declared types of
    meta-variables (both globals and parameters of macros and
    meta-functions) and the types returned by primitive operations on
    ASTs" (paper, §3).  A [Tenv.t] holds exactly that knowledge: a stack
    of scopes mapping meta-variable names to {!Ms2_mtype.Mtype.t}.

    Scopes are keyed by interned symbols ({!Ms2_support.Intern}): the
    parser probes this environment for essentially every identifier it
    sees, and the interned keys make each probe one cached-hash lookup
    with pointer-equality bucket scans instead of re-hashing the
    spelling. *)

module Mtype = Ms2_mtype.Mtype
module Intern = Ms2_support.Intern

type t = { mutable scopes : Mtype.t Intern.Tbl.t list }

let create () = { scopes = [ Intern.Tbl.create 16 ] }

(** A snapshot usable for re-entrant parses: shares no mutable state with
    the original. *)
let copy t = { scopes = List.map Intern.Tbl.copy t.scopes }

(** Reset [t] in place to the state captured by [snap].  In-place because
    re-entrant parser states alias the same [t]; the snapshot itself is
    never mutated, so it stays reusable. *)
let restore t snap = t.scopes <- List.map Intern.Tbl.copy snap.scopes

let push_scope t = t.scopes <- Intern.Tbl.create 16 :: t.scopes

let pop_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Tenv.pop_scope: global scope"
  | _ :: rest -> t.scopes <- rest

let with_scope t f =
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

let add t name ty =
  match t.scopes with
  | scope :: _ -> Intern.Tbl.replace scope (Intern.intern name) ty
  | [] -> assert false

let add_global t name ty =
  match List.rev t.scopes with
  | global :: _ -> Intern.Tbl.replace global (Intern.intern name) ty
  | [] -> assert false

let find t name =
  let sym = Intern.intern name in
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Intern.Tbl.find_opt scope sym with
        | Some ty -> Some ty
        | None -> go rest)
  in
  go t.scopes

let mem t name = Option.is_some (find t name)

(** Rebuild an environment that went through [Marshal] (a cache
    snapshot): unmarshalled symbols keep their spelling but lose pointer
    identity with the live interner, and [Intern.Tbl] compares keys by
    pointer — every lookup against a stale key would miss.  Re-intern
    every key into fresh tables.  [Mtype.t] values are pure data and
    survive marshalling as-is. *)
let rehydrate (t : t) : t =
  let rebuild scope =
    let fresh = Intern.Tbl.create (max 16 (Intern.Tbl.length scope)) in
    Intern.Tbl.iter
      (fun sym ty -> Intern.Tbl.replace fresh (Intern.intern (Intern.str sym)) ty)
      scope;
    fresh
  in
  { scopes = List.map rebuild t.scopes }

(** A deterministic digest of the whole environment (scope structure,
    names, types), for content-addressed cache keys.  [Mtype.t] is pure
    data, so marshalling it is a faithful serialization. *)
let digest (t : t) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun scope ->
      Buffer.add_string b "(scope";
      Intern.Tbl.fold
        (fun sym ty acc -> (Intern.str sym, ty) :: acc)
        scope []
      |> List.sort compare
      |> List.iter (fun (name, ty) ->
             Buffer.add_string b name;
             Buffer.add_char b '=';
             Buffer.add_string b (Marshal.to_string (ty : Mtype.t) []));
      Buffer.add_char b ')')
    t.scopes;
  Digest.string (Buffer.contents b)
