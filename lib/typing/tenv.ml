(** Meta-level type environments.

    The parse-time semantic analyzer "knows the declared types of
    meta-variables (both globals and parameters of macros and
    meta-functions) and the types returned by primitive operations on
    ASTs" (paper, §3).  A [Tenv.t] holds exactly that knowledge: a stack
    of scopes mapping meta-variable names to {!Ms2_mtype.Mtype.t}. *)

module Mtype = Ms2_mtype.Mtype

type t = { mutable scopes : (string, Mtype.t) Hashtbl.t list }

let create () = { scopes = [ Hashtbl.create 16 ] }

(** A snapshot usable for re-entrant parses: shares no mutable state with
    the original. *)
let copy t = { scopes = List.map Hashtbl.copy t.scopes }

(** Reset [t] in place to the state captured by [snap].  In-place because
    re-entrant parser states alias the same [t]; the snapshot itself is
    never mutated, so it stays reusable. *)
let restore t snap = t.scopes <- List.map Hashtbl.copy snap.scopes

let push_scope t = t.scopes <- Hashtbl.create 16 :: t.scopes

let pop_scope t =
  match t.scopes with
  | [] | [ _ ] -> invalid_arg "Tenv.pop_scope: global scope"
  | _ :: rest -> t.scopes <- rest

let with_scope t f =
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

let add t name ty =
  match t.scopes with
  | scope :: _ -> Hashtbl.replace scope name ty
  | [] -> assert false

let add_global t name ty =
  match List.rev t.scopes with
  | global :: _ -> Hashtbl.replace global name ty
  | [] -> assert false

let find t name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some ty -> Some ty
        | None -> go rest)
  in
  go t.scopes

let mem t name = Option.is_some (find t name)
