(** Public API of the MS² macro system.

    Typical use:
    {[
      match Ms2.Api.expand_string source with
      | Ok c_code -> print_string c_code
      | Error message -> prerr_endline message
    ]}

    For multi-file use, create an engine once and call {!expand}
    repeatedly: macro definitions, [metadcl] globals, meta functions and
    generated macros persist across calls. *)

open Ms2_support

type engine = Engine.t

(** Point-in-time expansion-cost counters of an engine. *)
type stats = {
  invocations_expanded : int;
  meta_declarations_run : int;
  macros_defined : int;
  fuel_consumed : int;  (** interpreter steps charged so far *)
  nodes_produced : int;  (** AST nodes charged to template fills so far *)
  cache_hits : int;  (** fragments replayed from the expansion cache *)
  cache_misses : int;  (** keyed cache lookups that found nothing *)
  cache_evictions : int;  (** cache entries dropped for the byte budget *)
  cache_bypasses : int;
      (** fragments the cache stood aside for (sum of the labeled
          bypass counters below) *)
  cache_bypass_trace : int;  (** … because trace mode was on *)
  cache_bypass_failpoints : int;  (** … because failpoints were armed *)
  cache_bypass_uncacheable : int;
      (** … because the session state had no trustworthy digest *)
  cache_bypass_budget : int;
      (** … because a replay would overdraw the remaining budget *)
  fragments_speculated : int;
      (** fragments expanded speculatively on worker domains by the
          intra-file fragment parallelism (always
          [fragments_committed + fragments_revalidated]) *)
  fragments_committed : int;
      (** speculative fragment results that passed commit validation *)
  fragments_revalidated : int;
      (** speculative fragment results discarded and re-expanded
          sequentially *)
  fragments_abort_defs_bump : int;
      (** aborts: the fragment defined or redefined a macro *)
  fragments_abort_gensym_mint : int;
      (** aborts: the fragment minted generated names or anonymous
          tags *)
  fragments_abort_meta_decl : int;  (** aborts: the fragment ran a metadcl *)
  fragments_abort_stale_read : int;
      (** aborts: reads not provably fresh at validation or commit time
          (open scopes, undiffable symbol-table delta, or dirtied by an
          earlier commit) *)
  fragments_abort_foreign_closure : int;
      (** aborts: a global was bound to a meta closure, which cannot
          cross engines *)
  pattern_memo_hits : int;
      (** compiled-invocation-pattern memo hits ({e process-global}: the
          memo is shared by every engine in the process, so this is not
          attributable to one engine) *)
  pattern_memo_misses : int;  (** … and misses (process-global) *)
  firstset_memo_hits : int;
      (** FIRST-set ring memo hits (process-global) *)
  firstset_memo_misses : int;  (** … and misses (process-global) *)
}

type shared_cache = Engine.cached_run Cache.t
(** A domain-safe expansion-cache store shared between engines: the
    [--jobs-mode=domains] driver and the serve worker pool give one
    store to every engine they create ([?cache_store]), so a fragment
    expanded on one domain replays on every other.  Sharded with
    per-shard mutexes; counters report the merged view. *)

val create_shared_cache : ?cache_bytes:int -> unit -> shared_cache

val shared_cache_stats : shared_cache -> int * int * int * int * int
(** Merged [(hits, misses, evictions, entries, used_bytes)]. *)

val save_shared_cache :
  shared_cache -> string -> (Engine.snapshot_save, string) result
(** Persist the store to a durable snapshot file (atomic + fsynced);
    see {!Engine.save_store}. *)

val load_shared_cache : shared_cache -> string -> Engine.snapshot_load
(** Restore a snapshot; never raises — missing file is a silent cold
    start, a corrupt file degrades cold with [ld_warnings] set.  See
    {!Engine.load_store}. *)

val create_engine :
  ?limits:Limits.t ->
  ?compile_patterns:bool ->
  ?hygienic:bool ->
  ?recover:bool ->
  ?provenance:bool ->
  ?transactional:bool ->
  ?cache:bool ->
  ?cache_bytes:int ->
  ?cache_store:shared_cache ->
  ?prelude:bool ->
  unit ->
  engine
(** @param limits resource bounds (default {!Ms2_support.Limits.default})
    @param recover record expansion failures and degrade gracefully
    instead of aborting at the first one (default false)
    @param provenance stamp expansion backtraces onto produced
    locations (default true; disable only for overhead benchmarking)
    @param transactional checkpoint session state around each fragment
    and roll it back on failure (default true; disable only for
    overhead benchmarking)
    @param cache content-addressed expansion caching: an identical
    fragment expanded against identical session state replays the
    recorded output and state delta (default true; disable for the
    [--no-cache] ablation)
    @param cache_bytes cache byte budget, LRU-evicted beyond it
    @param cache_store attach an existing {!shared_cache} instead of a
    private store (ignored when [~cache:false])
    @param prelude load the standard macro library ({!Prelude}) *)

type checkpoint = Engine.checkpoint
(** A session checkpoint.  Fragment-level isolation is automatic on
    transactional engines; {!checkpoint}/{!rollback} serve callers
    managing coarser units (e.g. a whole multi-file batch). *)

val checkpoint : engine -> checkpoint
val rollback : engine -> checkpoint -> unit

val expand_exn : ?engine:engine -> ?source:string -> string -> string
(** Parse and expand, rendering pure C.
    @raise Ms2_support.Diag.Error on any error. *)

val expand_diag :
  ?engine:engine -> ?source:string -> string -> (string, Diag.t) result
(** Like {!expand_exn} but catching diagnostics, keeping their
    structure (phase, code, location). *)

val expand_string :
  ?engine:engine -> ?source:string -> string -> (string, string) result
(** {!expand_diag} with the error pre-rendered via
    {!Ms2_support.Diag.to_string}. *)

val expand : engine -> ?source:string -> string -> (string, string) result

val expand_to_ast :
  ?engine:engine -> ?source:string -> string ->
  (Ms2_syntax.Ast.program, Diag.t) result

val stats : engine -> stats
(** Snapshot of the engine's expansion-cost counters, including fuel
    and produced-AST accounting. *)

val publish_metrics : engine -> unit
(** Publish the engine's statistics into the
    {!Ms2_support.Obs.Metrics} registry under [engine.*] and [cache.*]
    (idempotent absolute sets; call before dumping the registry). *)

val diagnostics : engine -> Diag.t list
(** Diagnostics recorded by the engine's recovery mode, oldest first
    (empty unless the engine was created with [~recover:true]). *)

val check_program : Ms2_syntax.Ast.program -> string list
(** Object-level static checking of a pure-C program (e.g. an
    expansion); human-readable findings. *)

val expand_checked :
  ?engine:engine -> ?source:string -> string ->
  (string * string list, string) result
(** Expand, then statically check the result: the rendered C plus any
    findings of the object-level type checker. *)

(** Isolated expansion sessions multiplexed onto one shared engine.

    Each session is a checkpoint boundary: {!Session.expand} rolls the
    engine back to the session's committed state, runs the fragment, and
    commits the new checkpoint on success.  A failed fragment rolls back
    (verified against {!Engine.fingerprint} on every failure) and can
    never poison another session.  Because the engine is shared, the
    string interner, compiled-pattern memos and the expansion cache are
    shared too — a fragment cached by one session replays for all of
    them — while macro tables, meta globals and the symbol table stay
    strictly per-session. *)
module Session : sig
  type t

  (** What one request changed (engine-counter movement). *)
  type delta = {
    d_cache_hits : int;
    d_cache_misses : int;
    d_invocations : int;
    d_fuel : int;
  }

  (** Per-session running totals. *)
  type session_stats = {
    s_requests : int;
    s_failures : int;
    s_cache_hits : int;
    s_cache_misses : int;
    s_invocations : int;
    s_fuel : int;
  }

  val create : engine -> id:string -> t
  (** A new session rooted at the engine's {e current} state — create
      sessions after loading any shared prelude so they all inherit it. *)

  val id : t -> string

  val expand :
    t -> ?deadline_ms:int -> ?fragment_jobs:int -> ?source:string -> string ->
    (string * delta, Diag.t * delta) result
  (** Expand one fragment in this session and render it as pure C.
      [deadline_ms] narrows the fragment watchdog; [fragment_jobs] > 1
      enables intra-file fragment parallelism for this request (see
      {!Engine.expand_source}).  On [Error] the session state is
      unchanged (the fragment rolled back); on [Ok] the session's
      checkpoint has advanced.  Not reentrant: sessions sharing an
      engine must run one fragment at a time. *)

  val reset : t -> unit
  (** Roll the session back to its creation-time state. *)

  val fingerprint : t -> string
  (** {!Engine.fingerprint} of the session's committed state. *)

  val isolated : t -> bool
  (** [false] iff a failed fragment was ever observed to leak state past
      its rollback — an engine-bug tripwire, asserted on every failure;
      the leak is contained (forced rollback) but recorded here. *)

  val stats : t -> session_stats
end
