(** Public API of the MS² macro system.

    Typical use:
    {[
      match Ms2.Api.expand_string source with
      | Ok c_code -> print_string c_code
      | Error message -> prerr_endline message
    ]}

    For multi-file use (definitions in one file, uses in another), create
    an {!Engine.t} once and call {!expand} repeatedly: macro definitions,
    [metadcl] globals and meta functions persist across calls. *)

open Ms2_support
module Pretty = Ms2_syntax.Pretty

type engine = Engine.t

(** Point-in-time expansion-cost counters of an engine. *)
type stats = {
  invocations_expanded : int;
  meta_declarations_run : int;
  macros_defined : int;
  fuel_consumed : int;  (** interpreter steps charged so far *)
  nodes_produced : int;  (** AST nodes charged to template fills so far *)
  cache_hits : int;  (** fragments replayed from the expansion cache *)
  cache_misses : int;  (** keyed cache lookups that found nothing *)
  cache_evictions : int;  (** cache entries dropped for the byte budget *)
  cache_bypasses : int;
      (** fragments the cache stood aside for (sum of the labeled
          bypass counters below) *)
  cache_bypass_trace : int;  (** … because trace mode was on *)
  cache_bypass_failpoints : int;  (** … because failpoints were armed *)
  cache_bypass_uncacheable : int;
      (** … because the session state had no trustworthy digest *)
  cache_bypass_budget : int;
      (** … because a replay would overdraw the remaining budget *)
  fragments_speculated : int;
      (** fragments expanded speculatively on worker domains (always
          [fragments_committed + fragments_revalidated]) *)
  fragments_committed : int;
      (** speculative fragment results that passed commit validation *)
  fragments_revalidated : int;
      (** speculative fragment results discarded and re-expanded
          sequentially *)
  fragments_abort_defs_bump : int;
      (** aborts: the fragment defined or redefined a macro *)
  fragments_abort_gensym_mint : int;
      (** aborts: the fragment minted generated names or anonymous
          tags *)
  fragments_abort_meta_decl : int;  (** aborts: the fragment ran a metadcl *)
  fragments_abort_stale_read : int;
      (** aborts: reads not provably fresh at validation or commit *)
  fragments_abort_foreign_closure : int;
      (** aborts: a global was bound to a meta closure *)
  pattern_memo_hits : int;
      (** compiled-invocation-pattern memo hits ({e process-global}: the
          memo is shared by every engine in the process) *)
  pattern_memo_misses : int;  (** … and misses (process-global) *)
  firstset_memo_hits : int;
      (** FIRST-set ring memo hits (process-global) *)
  firstset_memo_misses : int;  (** … and misses (process-global) *)
}

(** A standalone expansion-cache store to share between engines (see
    {!Engine.create_store}): the [--jobs-mode=domains] driver and the
    serve worker pool hand one store to every engine they create, so a
    fragment expanded on one domain replays on every other.  Counter
    reads ({!shared_cache_stats}) are merged over the store's shards —
    the whole-process view, not any single worker's. *)
type shared_cache = Engine.cached_run Cache.t

(* The parser-side memos are process-global (shared by every engine);
   their counters live in the metrics registry and are surfaced in
   {!stats} so CLI/serve stats output shows them without a registry
   walk. *)
let c_pattern_memo_hits = Obs.Metrics.counter "parser.pattern_memo.hits"
let c_pattern_memo_misses = Obs.Metrics.counter "parser.pattern_memo.misses"
let c_firstset_memo_hits = Obs.Metrics.counter "pattern.firstset.memo_hits"
let c_firstset_memo_misses = Obs.Metrics.counter "pattern.firstset.memo_misses"

let create_shared_cache ?cache_bytes () : shared_cache =
  Engine.create_store ?budget_bytes:cache_bytes ()

(** Merged point-in-time counters of a shared store:
    [(hits, misses, evictions, entries, used_bytes)]. *)
let shared_cache_stats (store : shared_cache) : int * int * int * int * int =
  ( Cache.hits store,
    Cache.misses store,
    Cache.evictions store,
    Cache.length store,
    Cache.used_bytes store )

(** Durable snapshots of a shared store ({!Engine.save_store} /
    {!Engine.load_store}): the crash-recovery warm path for
    [--cache-file].  Loading never raises — a corrupt snapshot degrades
    to a cold cache with [ld_warnings] set. *)
let save_shared_cache = Engine.save_store

let load_shared_cache = Engine.load_store

let create_engine ?limits ?compile_patterns ?hygienic ?recover ?provenance
    ?transactional ?cache ?cache_bytes ?cache_store ?(prelude = false) () =
  let engine =
    Engine.create ?limits ?compile_patterns ?hygienic ?recover ?provenance
      ?transactional ?cache ?cache_bytes ?cache_store ()
  in
  if prelude then Prelude.load engine;
  engine

(** A session checkpoint: capture with {!checkpoint}, restore with
    {!rollback}.  {!Engine.expand_source} already checkpoints around
    each fragment when the engine is transactional (the default); these
    re-exports serve callers managing coarser units of work. *)
type checkpoint = Engine.checkpoint

let checkpoint = Engine.checkpoint
let rollback = Engine.rollback

(** Parse and expand [text], rendering the result as pure C.  Raises
    {!Ms2_support.Diag.Error} on any lexical, syntax, pattern, type or
    expansion error.  A stack overflow in the renderer (an expansion can
    be legal yet too deep to print recursively) is converted to a
    located resource diagnostic rather than escaping. *)
let expand_exn ?(engine = Engine.create ()) ?source (text : string) : string =
  let prog = Engine.expand_source engine ?source text in
  try Pretty.program_to_string ~mode:Pretty.strict prog
  with Stack_overflow ->
    let p = { Loc.line = 1; col = 0; offset = 0 } in
    let source = Option.value source ~default:"<string>" in
    Diag.error
      ~loc:(Loc.make ~source ~start_pos:p ~end_pos:p)
      ~code:Diag.code_stack Diag.Resource
      "stack overflow while rendering the expansion of %s (the produced \
       program is pathologically deep)"
      source

(** Like {!expand_exn} but catching diagnostics, structured. *)
let expand_diag ?engine ?source (text : string) : (string, Diag.t) result =
  Diag.protect (fun () -> expand_exn ?engine ?source text)

(** Like {!expand_diag} with the error pre-rendered to a string. *)
let expand_string ?engine ?source (text : string) : (string, string) result =
  Result.map_error Diag.to_string (expand_diag ?engine ?source text)

(** Expand within an existing engine, keeping its definitions. *)
let expand (engine : engine) ?source (text : string) :
    (string, string) result =
  expand_string ~engine ?source text

(** Parse and expand, returning the AST instead of rendered C. *)
let expand_to_ast ?(engine = Engine.create ()) ?source (text : string) :
    (Ms2_syntax.Ast.program, Diag.t) result =
  Diag.protect (fun () -> Engine.expand_source engine ?source text)

(** Expansion statistics of an engine, including resource consumption
    (fuel and produced-AST accounting), as a snapshot. *)
let stats (engine : engine) : stats =
  {
    invocations_expanded = engine.Engine.stats.Engine.invocations_expanded;
    meta_declarations_run = engine.Engine.stats.Engine.meta_declarations_run;
    macros_defined = engine.Engine.stats.Engine.macros_defined;
    fuel_consumed = Engine.fuel_consumed engine;
    nodes_produced = Engine.nodes_produced engine;
    cache_hits = engine.Engine.stats.Engine.cache_hits;
    cache_misses = engine.Engine.stats.Engine.cache_misses;
    cache_evictions = Engine.cache_evictions engine;
    cache_bypasses = engine.Engine.stats.Engine.cache_bypasses;
    cache_bypass_trace = engine.Engine.stats.Engine.cache_bypass_trace;
    cache_bypass_failpoints =
      engine.Engine.stats.Engine.cache_bypass_failpoints;
    cache_bypass_uncacheable =
      engine.Engine.stats.Engine.cache_bypass_uncacheable;
    cache_bypass_budget = engine.Engine.stats.Engine.cache_bypass_budget;
    fragments_speculated = engine.Engine.stats.Engine.frag_speculated;
    fragments_committed = engine.Engine.stats.Engine.frag_committed;
    fragments_revalidated = engine.Engine.stats.Engine.frag_revalidated;
    fragments_abort_defs_bump =
      engine.Engine.stats.Engine.frag_abort_defs_bump;
    fragments_abort_gensym_mint =
      engine.Engine.stats.Engine.frag_abort_gensym_mint;
    fragments_abort_meta_decl =
      engine.Engine.stats.Engine.frag_abort_meta_decl;
    fragments_abort_stale_read =
      engine.Engine.stats.Engine.frag_abort_stale_read;
    fragments_abort_foreign_closure =
      engine.Engine.stats.Engine.frag_abort_foreign_closure;
    pattern_memo_hits = Obs.Metrics.value c_pattern_memo_hits;
    pattern_memo_misses = Obs.Metrics.value c_pattern_memo_misses;
    firstset_memo_hits = Obs.Metrics.value c_firstset_memo_hits;
    firstset_memo_misses = Obs.Metrics.value c_firstset_memo_misses;
  }

(** Publish an engine's statistics into the {!Ms2_support.Obs.Metrics}
    registry (see {!Engine.publish_metrics}). *)
let publish_metrics = Engine.publish_metrics

(** Diagnostics recorded by an engine's recovery mode, oldest first. *)
let diagnostics (engine : engine) : Diag.t list = Engine.diagnostics engine

(** Run the object-level static checker over a pure-C program (e.g. an
    expansion), returning human-readable findings.  This is the
    downstream half of the paper's semantic-macro story: type errors in
    generated code are caught here rather than by the C compiler. *)
let check_program (prog : Ms2_syntax.Ast.program) : string list =
  List.map Ms2_csem.Check.finding_to_string
    (Ms2_csem.Check.check_program prog)

(** Expand and then statically check the result: returns the rendered C
    and any findings of the object-level type checker. *)
let expand_checked ?(engine = Engine.create ()) ?source (text : string) :
    (string * string list, string) result =
  Result.map_error Diag.to_string
    (Diag.protect (fun () ->
         let prog = Engine.expand_source engine ?source text in
         let rendered = Pretty.program_to_string ~mode:Pretty.strict prog in
         (rendered, check_program prog)))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(** Isolated expansion sessions multiplexed onto one engine.

    A session is a named checkpoint boundary: every {!Session.expand}
    first rolls the shared engine back to the session's checkpoint, runs
    the fragment, and — on success — advances the checkpoint to the new
    state.  On failure the engine's own transaction has already rolled
    the fragment back; the session verifies that with
    {!Engine.fingerprint} and force-restores its checkpoint if the
    invariant ever broke (recording the breach in {!Session.isolated}).

    Sharing one engine, rather than one engine per session, is what
    makes sessions cheap: the string interner, compiled-pattern memos
    and the content-addressed expansion cache are all engine-level, so
    every session benefits from every other session's warm cache —
    while the rollback boundary keeps the *semantic* state (macro
    tables, meta globals, symbol table) strictly per-session.  The
    engine-side cost is {!Engine.rollback} restoring [defs_version] to
    the checkpoint's value, keeping cache keys stable across session
    switches. *)
module Session = struct
  (* the whole-engine counters; [stats] is rebound below per session *)
  let engine_stats = stats

  type t = {
    sn_engine : engine;
    sn_id : string;
    mutable sn_cp : Engine.checkpoint;  (** committed state *)
    mutable sn_fp : string;  (** fingerprint of [sn_cp]'s state *)
    sn_base_cp : Engine.checkpoint;  (** creation-time state, for reset *)
    sn_base_fp : string;
    mutable sn_requests : int;
    mutable sn_failures : int;
    mutable sn_cache_hits : int;
    mutable sn_cache_misses : int;
    mutable sn_invocations : int;
    mutable sn_fuel : int;
    mutable sn_isolated : bool;
        (** false iff a failed fragment was ever observed to leak state
            past its rollback (should never happen; asserted per
            request) *)
  }

  (** What one request changed, for per-response accounting. *)
  type delta = {
    d_cache_hits : int;
    d_cache_misses : int;
    d_invocations : int;
    d_fuel : int;
  }

  type session_stats = {
    s_requests : int;
    s_failures : int;
    s_cache_hits : int;
    s_cache_misses : int;
    s_invocations : int;
    s_fuel : int;
  }

  let create (engine : engine) ~id : t =
    let cp = Engine.checkpoint engine in
    let fp = Engine.fingerprint engine in
    {
      sn_engine = engine;
      sn_id = id;
      sn_cp = cp;
      sn_fp = fp;
      sn_base_cp = cp;
      sn_base_fp = fp;
      sn_requests = 0;
      sn_failures = 0;
      sn_cache_hits = 0;
      sn_cache_misses = 0;
      sn_invocations = 0;
      sn_fuel = 0;
      sn_isolated = true;
    }

  let id s = s.sn_id
  let isolated s = s.sn_isolated
  let fingerprint s = s.sn_fp

  let reset (s : t) : unit =
    Engine.rollback s.sn_engine s.sn_base_cp;
    s.sn_cp <- s.sn_base_cp;
    s.sn_fp <- s.sn_base_fp

  let stats (s : t) : session_stats =
    {
      s_requests = s.sn_requests;
      s_failures = s.sn_failures;
      s_cache_hits = s.sn_cache_hits;
      s_cache_misses = s.sn_cache_misses;
      s_invocations = s.sn_invocations;
      s_fuel = s.sn_fuel;
    }

  (* Accumulate the engine-counter movement of this request into the
     session totals and return it.  Counters only ever grow, so a plain
     difference is the request's share even though the engine is shared:
     sessions on one engine run strictly one at a time. *)
  let absorb_delta (s : t) st0 : delta =
    let st1 = engine_stats s.sn_engine in
    let d =
      {
        d_cache_hits = st1.cache_hits - st0.cache_hits;
        d_cache_misses = st1.cache_misses - st0.cache_misses;
        d_invocations = st1.invocations_expanded - st0.invocations_expanded;
        d_fuel = st1.fuel_consumed - st0.fuel_consumed;
      }
    in
    s.sn_cache_hits <- s.sn_cache_hits + d.d_cache_hits;
    s.sn_cache_misses <- s.sn_cache_misses + d.d_cache_misses;
    s.sn_invocations <- s.sn_invocations + d.d_invocations;
    s.sn_fuel <- s.sn_fuel + d.d_fuel;
    d

  let expand (s : t) ?deadline_ms ?fragment_jobs ?(source = "<request>")
      (text : string) : (string * delta, Diag.t * delta) result =
    let e = s.sn_engine in
    (* enter: put the shared engine on this session's committed state.
       Unconditional — cheaper to restore than to track which session
       held the engine last, and idempotent when it is already ours. *)
    Engine.rollback e s.sn_cp;
    let st0 = engine_stats e in
    s.sn_requests <- s.sn_requests + 1;
    match
      Diag.protect (fun () ->
          Engine.expand_source e ~source ?deadline_ms ?fragment_jobs text)
    with
    | Result.Error diag ->
        let d = absorb_delta s st0 in
        s.sn_failures <- s.sn_failures + 1;
        (* the engine's own transaction already rolled the fragment
           back; verify before letting the next request in.  A breach
           here is an engine bug — contain it by force-restoring the
           session checkpoint, and record it. *)
        if Engine.fingerprint e <> s.sn_fp then begin
          s.sn_isolated <- false;
          Engine.rollback e s.sn_cp
        end;
        Result.Error (diag, d)
    | Ok prog -> (
        match Pretty.program_to_string ~mode:Pretty.strict prog with
        | rendered ->
            let d = absorb_delta s st0 in
            (* commit: the session's next request starts from here *)
            s.sn_cp <- Engine.checkpoint e;
            s.sn_fp <- Engine.fingerprint e;
            Ok (rendered, d)
        | exception Stack_overflow ->
            let d = absorb_delta s st0 in
            s.sn_failures <- s.sn_failures + 1;
            (* the expansion committed but cannot be rendered: undo the
               commit.  Deliberate unwind, not an isolation breach. *)
            Engine.rollback e s.sn_cp;
            let p = { Loc.line = 1; col = 0; offset = 0 } in
            let diag =
              Diag.make
                ~loc:(Loc.make ~source ~start_pos:p ~end_pos:p)
                ~code:Diag.code_stack Diag.Resource
                (Printf.sprintf
                   "stack overflow while rendering the expansion of %s (the \
                    produced program is pathologically deep)"
                   source)
            in
            Result.Error (diag, d))
end
