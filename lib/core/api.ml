(** Public API of the MS² macro system.

    Typical use:
    {[
      match Ms2.Api.expand_string source with
      | Ok c_code -> print_string c_code
      | Error message -> prerr_endline message
    ]}

    For multi-file use (definitions in one file, uses in another), create
    an {!Engine.t} once and call {!expand} repeatedly: macro definitions,
    [metadcl] globals and meta functions persist across calls. *)

open Ms2_support
module Pretty = Ms2_syntax.Pretty

type engine = Engine.t

(** Point-in-time expansion-cost counters of an engine. *)
type stats = {
  invocations_expanded : int;
  meta_declarations_run : int;
  macros_defined : int;
  fuel_consumed : int;  (** interpreter steps charged so far *)
  nodes_produced : int;  (** AST nodes charged to template fills so far *)
  cache_hits : int;  (** fragments replayed from the expansion cache *)
  cache_misses : int;  (** keyed cache lookups that found nothing *)
  cache_evictions : int;  (** cache entries dropped for the byte budget *)
  cache_bypasses : int;
      (** fragments the cache stood aside for (sum of the labeled
          bypass counters below) *)
  cache_bypass_trace : int;  (** … because trace mode was on *)
  cache_bypass_failpoints : int;  (** … because failpoints were armed *)
  cache_bypass_uncacheable : int;
      (** … because the session state had no trustworthy digest *)
  cache_bypass_budget : int;
      (** … because a replay would overdraw the remaining budget *)
}

let create_engine ?limits ?compile_patterns ?hygienic ?recover ?provenance
    ?transactional ?cache ?cache_bytes ?(prelude = false) () =
  let engine =
    Engine.create ?limits ?compile_patterns ?hygienic ?recover ?provenance
      ?transactional ?cache ?cache_bytes ()
  in
  if prelude then Prelude.load engine;
  engine

(** A session checkpoint: capture with {!checkpoint}, restore with
    {!rollback}.  {!Engine.expand_source} already checkpoints around
    each fragment when the engine is transactional (the default); these
    re-exports serve callers managing coarser units of work. *)
type checkpoint = Engine.checkpoint

let checkpoint = Engine.checkpoint
let rollback = Engine.rollback

(** Parse and expand [text], rendering the result as pure C.  Raises
    {!Ms2_support.Diag.Error} on any lexical, syntax, pattern, type or
    expansion error.  A stack overflow in the renderer (an expansion can
    be legal yet too deep to print recursively) is converted to a
    located resource diagnostic rather than escaping. *)
let expand_exn ?(engine = Engine.create ()) ?source (text : string) : string =
  let prog = Engine.expand_source engine ?source text in
  try Pretty.program_to_string ~mode:Pretty.strict prog
  with Stack_overflow ->
    let p = { Loc.line = 1; col = 0; offset = 0 } in
    let source = Option.value source ~default:"<string>" in
    Diag.error
      ~loc:(Loc.make ~source ~start_pos:p ~end_pos:p)
      ~code:Diag.code_stack Diag.Resource
      "stack overflow while rendering the expansion of %s (the produced \
       program is pathologically deep)"
      source

(** Like {!expand_exn} but catching diagnostics, structured. *)
let expand_diag ?engine ?source (text : string) : (string, Diag.t) result =
  Diag.protect (fun () -> expand_exn ?engine ?source text)

(** Like {!expand_diag} with the error pre-rendered to a string. *)
let expand_string ?engine ?source (text : string) : (string, string) result =
  Result.map_error Diag.to_string (expand_diag ?engine ?source text)

(** Expand within an existing engine, keeping its definitions. *)
let expand (engine : engine) ?source (text : string) :
    (string, string) result =
  expand_string ~engine ?source text

(** Parse and expand, returning the AST instead of rendered C. *)
let expand_to_ast ?(engine = Engine.create ()) ?source (text : string) :
    (Ms2_syntax.Ast.program, Diag.t) result =
  Diag.protect (fun () -> Engine.expand_source engine ?source text)

(** Expansion statistics of an engine, including resource consumption
    (fuel and produced-AST accounting), as a snapshot. *)
let stats (engine : engine) : stats =
  {
    invocations_expanded = engine.Engine.stats.Engine.invocations_expanded;
    meta_declarations_run = engine.Engine.stats.Engine.meta_declarations_run;
    macros_defined = engine.Engine.stats.Engine.macros_defined;
    fuel_consumed = Engine.fuel_consumed engine;
    nodes_produced = Engine.nodes_produced engine;
    cache_hits = engine.Engine.stats.Engine.cache_hits;
    cache_misses = engine.Engine.stats.Engine.cache_misses;
    cache_evictions = engine.Engine.stats.Engine.cache_evictions;
    cache_bypasses = engine.Engine.stats.Engine.cache_bypasses;
    cache_bypass_trace = engine.Engine.stats.Engine.cache_bypass_trace;
    cache_bypass_failpoints =
      engine.Engine.stats.Engine.cache_bypass_failpoints;
    cache_bypass_uncacheable =
      engine.Engine.stats.Engine.cache_bypass_uncacheable;
    cache_bypass_budget = engine.Engine.stats.Engine.cache_bypass_budget;
  }

(** Publish an engine's statistics into the {!Ms2_support.Obs.Metrics}
    registry (see {!Engine.publish_metrics}). *)
let publish_metrics = Engine.publish_metrics

(** Diagnostics recorded by an engine's recovery mode, oldest first. *)
let diagnostics (engine : engine) : Diag.t list = Engine.diagnostics engine

(** Run the object-level static checker over a pure-C program (e.g. an
    expansion), returning human-readable findings.  This is the
    downstream half of the paper's semantic-macro story: type errors in
    generated code are caught here rather than by the C compiler. *)
let check_program (prog : Ms2_syntax.Ast.program) : string list =
  List.map Ms2_csem.Check.finding_to_string
    (Ms2_csem.Check.check_program prog)

(** Expand and then statically check the result: returns the rendered C
    and any findings of the object-level type checker. *)
let expand_checked ?(engine = Engine.create ()) ?source (text : string) :
    (string * string list, string) result =
  Result.map_error Diag.to_string
    (Diag.protect (fun () ->
         let prog = Engine.expand_source engine ?source text in
         let rendered = Pretty.program_to_string ~mode:Pretty.strict prog in
         (rendered, check_program prog)))
