(** The macro-expansion engine.

    Drives the whole MS² pipeline over a parsed program:

    - [syntax] macro definitions are recorded (their bodies were fully
      type checked at parse time);
    - [metadcl] declarations and meta functions are *executed*,
      extending the persistent meta environment ("the meta-program is
      fully run during macro-expansion; none of it exists at runtime");
    - macro invocations are expanded by running the macro body in the
      interpreter on the pattern-bound actuals, and the produced ASTs
      replace the invocation; expansion is repeated on the produced code
      (macros may produce invocations of other macros), with a depth
      guard;
    - everything else is walked for embedded invocations and emitted.

    The result is a pure C program: {!expand_program} guarantees no meta
    construct survives. *)

open Ms2_syntax
open Ms2_syntax.Ast
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Tenv = Ms2_typing.Tenv
module Of_cdecl = Ms2_typing.Of_cdecl
module State = Ms2_parser.State
module Parser = Ms2_parser.Parser
module Prescan = Ms2_parser.Prescan
module Value = Ms2_meta.Value
module Interp = Ms2_meta.Interp
module Fill = Ms2_meta.Fill
module Senv = Ms2_csem.Senv
module Of_ast = Ms2_csem.Of_ast

type stats = {
  mutable invocations_expanded : int;
  mutable meta_declarations_run : int;
  mutable macros_defined : int;
  mutable cache_hits : int;  (** fragments replayed from the cache *)
  mutable cache_misses : int;  (** keyed lookups that found nothing *)
  mutable cache_evictions : int;  (** entries dropped for the byte budget *)
  mutable cache_bypasses : int;
      (** fragments the cache stood aside for (the sum of the labeled
          bypass counters below) *)
  mutable cache_bypass_trace : int;
      (** bypasses because trace mode was on (the trace log is a side
          effect a replay would skip) *)
  mutable cache_bypass_failpoints : int;
      (** bypasses because failpoints were armed (replays would mask
          injected failures) *)
  mutable cache_bypass_uncacheable : int;
      (** bypasses because the session state had no trustworthy digest
          (e.g. a meta closure over local scopes) *)
  mutable cache_bypass_budget : int;
      (** bypasses because a replay would overdraw the remaining global
          budget (the real run must happen, and fail, for real) *)
  mutable frag_speculated : int;
      (** fragments that ran speculatively on a worker domain and
          produced a verdict; always [frag_committed +
          frag_revalidated] *)
  mutable frag_committed : int;
      (** speculative results that passed commit-time validation and
          were spliced into the output *)
  mutable frag_revalidated : int;
      (** speculative results discarded at commit time (stale reads,
          shared-state writes, worker failure) and re-expanded
          sequentially *)
  mutable frag_abort_defs_bump : int;
      (** aborts because the fragment defined or redefined a macro
          (the worker's [defs_version] moved) *)
  mutable frag_abort_gensym_mint : int;
      (** aborts because the fragment minted generated names or
          anonymous tags (name identity differs across replays) *)
  mutable frag_abort_meta_decl : int;
      (** aborts because the fragment ran a [metadcl] (meta-program
          side effects must execute on the main engine, in order) *)
  mutable frag_abort_stale_read : int;
      (** aborts because the fragment's reads could not be proven
          fresh: open scopes, an undiffable symbol-table delta, or a
          commit-time validation failure against earlier commits *)
  mutable frag_abort_foreign_closure : int;
      (** aborts because the fragment bound a global to a meta closure
          (closures cannot be transplanted between engines) *)
}

type t = {
  macros : (string, State.macro_sig) Hashtbl.t;
      (** signatures, shared with every parser state the engine creates *)
  compiled : (string, State.compiled_pattern) Hashtbl.t;
      (** compiled invocation parsers, likewise shared *)
  defs : (string, macro_def) Hashtbl.t;
  tenv : Tenv.t;
  env : Value.env;  (** persistent global meta environment *)
  senv : Senv.t;
      (** object-level symbol table, maintained during the expansion
          walk so semantic primitives see the scope at the invocation
          point *)
  gensym : Gensym.t;
  limits : Limits.t;
      (** resource governance: fuel, output size, depth, error cap *)
  watchdog : Watchdog.t;
      (** wall-clock deadline (same object the budget polls): armed per
          fragment from [limits.timeout_ms], narrowed per invocation *)
  transactional : bool;
      (** checkpoint session state on {!expand_source} entry and roll it
          back when the fragment fails, so one bad fragment cannot
          corrupt the session.  On by default; the [false] setting
          exists so the bench harness can measure checkpoint overhead *)
  compile_patterns : bool;
  provenance : bool;
      (** stamp expansion provenance (macro + call site) onto every
          produced location, forming diagnostic backtraces.  On by
          default; the [false] setting exists so the bench harness can
          measure the stamping overhead *)
  mutable recover : bool;
      (** graceful degradation: a failed invocation is recorded in
          [diags] and replaced by a placeholder of its syntactic type
          instead of aborting the run *)
  diags : Diag.collector;
      (** diagnostics recorded by recovery mode, bounded by
          [limits.max_errors] *)
  mutable trace : Format.formatter option;
      (** when set, every invocation expansion is logged ("the ease of
          debugging macros depends upon the quality of the debugger",
          paper §3 — this is the poor man's version) *)
  stats : stats;
  mutable defs_version : int;
      (** moved on every macro-table mutation the engine performs
          (definition registration, rollback).  Equal versions imply
          equal table contents at fragment boundaries, which is what
          lets the expansion-cache key and the memoized {!fingerprint}
          summarize the tables by a single integer.  Versions are
          allocated from a process-global atomic counter (see
          {!fresh_version}) so the implication holds across {e all}
          engines, not just within one — the precondition for sharing a
          cache store between the per-file engines of
          [--jobs-mode=domains].  Version [0] is reserved for the
          pristine empty tables every fresh engine starts with *)
  mutable fp_tables_memo : (int * string) option;
      (** memoized macro-tables section of {!fingerprint}, keyed by
          [defs_version] (the dirty flag) *)
  cache : cached_run Cache.t option;  (** [None] = caching disabled *)
}

(** What a cache hit replays: the produced program, the post-run session
    state (a checkpoint — restoring it {e is} the state delta, replayed
    through the same rollback machinery the transaction layer uses), and
    the run's resource/statistics deltas. *)
and cached_run = {
  ca_program : program;
  ca_post : checkpoint;
  ca_version : int;
      (** [defs_version] after the recorded run.  Replay re-establishes
          it together with the post-state tables: a version number is
          permanently associated with the table content it was allocated
          for, so restoring the pair keeps the version→content mapping
          single-valued (and lets an idempotent fragment's key recur, so
          repeat replays keep hitting) *)
  ca_pre_version : int;
      (** [defs_version] {e before} the recorded run — the version the
          cache key was computed against.  Invisible inside the key (keys
          are digests), so it is recorded here explicitly: snapshot
          loading must check {e every} version number an entry mentions
          against the live counter before trusting it (see
          {!load_store}), and the pre-version is the one a lookup key
          will quote *)
  ca_fuel : int;  (** interpreter steps the run consumed *)
  ca_nodes : int;  (** AST nodes the run charged *)
  ca_invocations : int;
  ca_meta_runs : int;
  ca_macros_defined : int;
  ca_profile : (string * int) list;
      (** per-macro invocation counts of the recorded run, captured only
          when the profiler was enabled at store time; a replay credits
          them to the profiler as cache-satisfied invocations *)
}

(* What a checkpoint captures is the *session* state a failed fragment
   could corrupt: macro tables, the meta type environment, the global
   meta environment, and the object-level symbol table.  What it
   deliberately does NOT capture: the gensym counter (rolled-back names
   must stay burned, or a retry could collide with names the aborted
   attempt leaked into diagnostics), stats, fuel consumed, and recorded
   diagnostics (the whole point of the rollback is to keep them).

   Rollback restores the engine's tables IN PLACE (reset + re-add)
   because parser states created before the checkpoint alias the same
   table objects; swapping in fresh tables would silently detach them.
   The checkpoint's own copies are never mutated, so one checkpoint
   supports any number of rollbacks. *)
and checkpoint = {
  cp_macros : (string, State.macro_sig) Hashtbl.t;
  cp_compiled : (string, State.compiled_pattern) Hashtbl.t;
  cp_defs : (string, macro_def) Hashtbl.t;
  cp_tenv : Tenv.t;
  cp_globals : (string * Value.t) list;
      (** global meta bindings, deref'd — {!Value.t} is structurally
          immutable, so a shallow capture is a deep one *)
  cp_senv : Senv.t;
  cp_version : int;
      (** [defs_version] at capture.  Rollback restores it rather than
          bumping: content at a given version is unique (every mutation
          bumps), so returning to the captured tables *is* returning to
          that version — the same argument that lets cache replay restore
          [ca_version].  Keeps cache keys stable across the
          rollback-per-request pattern of the serve daemon's sessions. *)
}

(* No dummy default: every expansion-error site must say where. *)
let error ~loc fmt = Diag.error ~loc Diag.Expansion fmt

(* ------------------------------------------------------------------ *)
(* Invocation expansion                                                *)
(* ------------------------------------------------------------------ *)

let truncate_for_trace s =
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s > 120 then String.sub s 0 117 ^ "..." else s

(** Narrow the shared budget to this invocation's caps for the duration
    of [f], then restore it, deducting whatever [f] consumed.  Nested
    invocations compose: an inner invocation's consumption counts
    against every enclosing cap and the global budget. *)
let with_invocation_budget (t : t) (f : unit -> 'a) : 'a =
  let b = t.env.Value.budget in
  let entry_fuel = b.Value.fuel and entry_nodes = b.Value.nodes in
  let cap_fuel = min entry_fuel t.limits.Limits.invocation_fuel in
  let cap_nodes = min entry_nodes t.limits.Limits.max_nodes in
  b.Value.fuel <- cap_fuel;
  b.Value.nodes <- cap_nodes;
  let saved_deadline =
    Watchdog.narrow t.watchdog ~ms:t.limits.Limits.invocation_timeout_ms
  in
  let restore () =
    b.Value.fuel <- entry_fuel - (cap_fuel - b.Value.fuel);
    b.Value.nodes <- entry_nodes - (cap_nodes - b.Value.nodes);
    Watchdog.restore t.watchdog saved_deadline
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(** Run a macro body on the invocation's actual parameters and return
    the produced value, checked against the declared return type. *)
let expand_invocation (t : t) (inv : invocation) : Value.t =
  let loc = inv.inv_loc in
  Failpoint.hit ~watchdog:t.watchdog ~loc "engine/invoke";
  match Hashtbl.find_opt t.defs inv.inv_name.id_name with
  | None ->
      error ~loc "macro %s is declared but has no recorded definition"
        inv.inv_name.id_name
  | Some md ->
      t.stats.invocations_expanded <- t.stats.invocations_expanded + 1;
      (match t.trace with
      | Some ppf ->
          (* the call site's own backtrace follows the header, one frame
             per line, so traces of nested expansions are grep-able by
             source line *)
          Format.fprintf ppf "@[<v 2>[ms2] expanding %s at %s%a@,"
            inv.inv_name.id_name (Loc.to_string loc) Loc.pp_backtrace loc;
          List.iter
            (fun (name, actual) ->
              Format.fprintf ppf "%s = %s@," name
                (truncate_for_trace
                   (Value.to_string (Value.of_actual actual))))
            inv.inv_actuals
      | None -> ());
      let call_env = Value.derived t.env in
      List.iter
        (fun (name, actual) ->
          Value.bind call_env name (Value.of_actual actual))
        inv.inv_actuals;
      (* The frame every location produced by this invocation is stamped
         with.  Allocated once: the filler stores this exact value, so
         the error handler below can recognize "already carries *this*
         frame" by physical equality. *)
      let frame =
        Loc.Macro { Loc.macro = inv.inv_name.id_name; call_site = loc }
      in
      let run () =
        with_invocation_budget t (fun () -> Interp.run_body call_env md.m_body)
      in
      let compute () =
        try
          if not t.provenance then run ()
          else begin
            (* push the frame for the duration of the body: the filler
               reads it to stamp everything this invocation produces *)
            let saved = !(t.env.Value.provenance) in
            t.env.Value.provenance := frame;
            Fun.protect
              ~finally:(fun () -> t.env.Value.provenance := saved)
              run
          end
        with
        | Diag.Error ({ Diag.phase = Diag.Expansion | Diag.Resource; _ } as d)
          ->
            (* point the user at their invocation (and name the macro —
               essential for resource diagnostics), keeping the macro-body
               location for the macro writer.  The location also gains
               this invocation as an (outermost) backtrace frame, unless
               it is already stamped with it. *)
            let loc' =
              if Loc.is_dummy d.Diag.loc then loc
              else if
                (not t.provenance) || Loc.origin d.Diag.loc == frame
              then d.Diag.loc
              else
                Loc.push_frame ~macro:inv.inv_name.id_name ~call_site:loc
                  d.Diag.loc
            in
            raise
              (Diag.Error
                 { d with
                   Diag.loc = loc';
                   Diag.message =
                     Printf.sprintf
                       "%s (while expanding macro %s invoked at %s)"
                       d.Diag.message inv.inv_name.id_name (Loc.to_string loc)
                 })
      in
      (* Telemetry wrapper: a trace span per invocation (labeled with
         the call site and the producing macro read off the Loc.origin
         chain — see DESIGN.md on span parentage), and a profiler
         activation charged with the invocation's fuel/node deltas.
         Both are closed on the failure path too, so a diverging macro
         still shows up in the timeline and the profile. *)
      let v =
        let profiling = Obs.Profile.enabled () in
        if not (profiling || Obs.recording ()) then compute ()
        else begin
          let b = t.env.Value.budget in
          let fuel0 = Value.fuel_consumed b
          and nodes0 = Value.nodes_produced b in
          let pframe =
            if profiling then
              Some
                (Obs.Profile.enter
                   ~depth:(List.length (Loc.backtrace loc) + 1)
                   inv.inv_name.id_name)
            else None
          in
          let close_profile () =
            match pframe with
            | Some f ->
                Obs.Profile.exit f
                  ~fuel:(Value.fuel_consumed b - fuel0)
                  ~nodes:(Value.nodes_produced b - nodes0)
            | None -> ()
          in
          Obs.with_span ~cat:"expand"
            ~args:(fun () ->
              let parent, depth = Loc.backtrace_summary loc in
              [ ("call_site", Obs.Str (Loc.to_string loc));
                ("parent_macro", Obs.Str parent);
                ("expansion_depth", Obs.Int depth) ])
            inv.inv_name.id_name
            (fun () -> Fun.protect ~finally:close_profile compute)
        end
      in
      if not (Value.conforms v md.m_ret) then
        error ~loc
          "macro %s returned a %s, but its declaration promises %s"
          inv.inv_name.id_name (Value.type_name v)
          (Mtype.to_string md.m_ret);
      (match t.trace with
      | Some ppf ->
          Format.fprintf ppf "=> %s@]@."
            (truncate_for_trace (Value.to_string v))
      | None -> ());
      v

(* Definition-table versions come from one process-global counter:
   version 0 is the pristine empty tables (identical in every fresh
   engine, so pristine-state expansions may be shared across engines),
   and every mutation anywhere allocates a number no other engine has
   ever associated with different contents.  Rollback and cache replay
   *restore* stored versions — sound because the content a version was
   allocated for is globally unique. *)
let version_counter = Atomic.make 0
let fresh_version () = 1 + Atomic.fetch_and_add version_counter 1

let create_store ?budget_bytes () : cached_run Cache.t =
  Cache.create ?budget_bytes ()

let create ?(limits = Limits.default) ?(compile_patterns = true)
    ?(hygienic = false) ?(recover = false) ?(provenance = true)
    ?(transactional = true) ?(cache = true) ?cache_bytes ?cache_store () : t =
  let gensym = Gensym.create () in
  let budget = Value.create_budget ~fuel:limits.Limits.fuel () in
  let env = Value.create_env ~gensym ~budget () in
  env.Value.hygienic <- hygienic;
  let senv = Senv.create () in
  env.Value.semantic <- Some senv;
  let t =
    {
      macros = Hashtbl.create 16;
      compiled = Hashtbl.create 16;
      defs = Hashtbl.create 16;
      tenv = Tenv.create ();
      env;
      senv;
      gensym;
      limits;
      watchdog = budget.Value.watchdog;
      transactional;
      compile_patterns;
      provenance;
      recover;
      diags = Diag.collector ~max_errors:limits.Limits.max_errors ();
      trace = None;
      stats =
        { invocations_expanded = 0; meta_declarations_run = 0;
          macros_defined = 0; cache_hits = 0; cache_misses = 0;
          cache_evictions = 0; cache_bypasses = 0; cache_bypass_trace = 0;
          cache_bypass_failpoints = 0; cache_bypass_uncacheable = 0;
          cache_bypass_budget = 0; frag_speculated = 0; frag_committed = 0;
          frag_revalidated = 0; frag_abort_defs_bump = 0;
          frag_abort_gensym_mint = 0; frag_abort_meta_decl = 0;
          frag_abort_stale_read = 0; frag_abort_foreign_closure = 0 };
      defs_version = 0;
      fp_tables_memo = None;
      cache =
        (if not cache then None
         else
           match cache_store with
           | Some store -> Some store  (* shared across engines *)
           | None -> Some (Cache.create ?budget_bytes:cache_bytes ()));
    }
  in
  (t.env).Value.expand_invocation := (fun inv -> expand_invocation t inv);
  t

(** Diagnostics recorded by recovery mode so far, oldest first. *)
let diagnostics (t : t) : Diag.t list = Diag.items t.diags

let fuel_consumed (t : t) : int = Value.fuel_consumed t.env.Value.budget
let nodes_produced (t : t) : int = Value.nodes_produced t.env.Value.budget

(* ------------------------------------------------------------------ *)
(* Transactional checkpoints                                           *)
(* ------------------------------------------------------------------ *)

let global_scope (t : t) : (string, Value.t ref) Hashtbl.t =
  match List.rev t.env.Value.scopes with
  | global :: _ -> global
  | [] -> assert false

let checkpoint (t : t) : checkpoint =
  {
    cp_macros = Hashtbl.copy t.macros;
    cp_compiled = Hashtbl.copy t.compiled;
    cp_defs = Hashtbl.copy t.defs;
    cp_tenv = Tenv.copy t.tenv;
    cp_globals =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) (global_scope t) [];
    cp_senv = Senv.snapshot t.senv;
    cp_version = t.defs_version;
  }

let restore_table dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let rollback (t : t) (cp : checkpoint) : unit =
  (* restore, not bump: see [cp_version].  Callers that mutated tables
     without a checkpoint still bump explicitly before failing. *)
  t.defs_version <- cp.cp_version;
  restore_table t.macros cp.cp_macros;
  restore_table t.compiled cp.cp_compiled;
  restore_table t.defs cp.cp_defs;
  Tenv.restore t.tenv cp.cp_tenv;
  let global = global_scope t in
  Hashtbl.reset global;
  List.iter (fun (name, v) -> Hashtbl.replace global name (ref v))
    cp.cp_globals;
  (* also unwinds scopes a mid-fragment abort left open *)
  t.env.Value.scopes <- [ global ];
  t.env.Value.provenance := Loc.User;
  Senv.restore t.senv cp.cp_senv

(** A structural digest of the rollback-covered session state, for
    asserting the rollback invariant in tests.  Values are summarized by
    name and type (closures have no structural identity).

    The macro-tables section is memoized under [defs_version] as the
    dirty flag: every engine-side table mutation (registration,
    rollback) bumps the version, so the sorted-name lists are only
    rebuilt when the tables actually changed.  The parser registers
    signatures directly into the shared tables {e during} a fragment
    parse; every such mid-fragment mutation is followed by either a
    definition registration or a rollback before [expand_source]
    returns, so the memo is valid whenever fingerprints are taken at
    fragment boundaries (the only supported use). *)
let fingerprint (t : t) : string =
  let tables =
    match t.fp_tables_memo with
    | Some (version, s) when version = t.defs_version -> s
    | _ ->
        let names tbl =
          Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
          |> List.sort compare |> String.concat ","
        in
        let s =
          Printf.sprintf "macros=[%s] compiled=[%s] defs=[%s]"
            (names t.macros) (names t.compiled) (names t.defs)
        in
        t.fp_tables_memo <- Some (t.defs_version, s);
        s
  in
  let globals =
    Hashtbl.fold
      (fun name r acc -> (name ^ ":" ^ Value.type_name !r) :: acc)
      (global_scope t) []
    |> List.sort compare |> String.concat ","
  in
  Printf.sprintf "%s globals=[%s] scopes=%d senv-depth=%d" tables globals
    (List.length t.env.Value.scopes)
    (Senv.depth t.senv)

(* ------------------------------------------------------------------ *)
(* Error recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* A failed invocation is recoverable when recovery is on, the failure
   happened while *running* the meta-program (definition-time errors
   still abort: the paper's staging guarantee means they are the macro
   writer's bugs, not the user's), the error cap has room, and the
   *global* fuel budget is not what ran out (once that pool is dry every
   later invocation would fail identically — degrading further would
   just repeat one diagnostic per invocation). *)
let recoverable (t : t) (d : Diag.t) : bool =
  t.recover
  && (match d.Diag.phase with
     | Diag.Expansion | Diag.Resource -> true
     | Diag.Lexing | Diag.Parsing | Diag.Pattern_check | Diag.Type_check ->
         false)
  && t.env.Value.budget.Value.fuel >= 0

(** Record a recovered diagnostic; aborts with [E0604] when the
    collector is full. *)
let record (t : t) (d : Diag.t) : unit =
  if Diag.is_full t.diags then begin
    Diag.add t.diags d;
    Diag.error ~loc:d.Diag.loc ~code:Diag.code_too_many_errors Diag.Resource
      "too many errors (%d); giving up on recovery" (Diag.count t.diags)
  end
  else Diag.add t.diags d

(* ------------------------------------------------------------------ *)
(* Expansion walk over object code                                     *)
(* ------------------------------------------------------------------ *)

(** Record a macro definition — from the source program, or produced by
    a macro-generating macro (in which case its name placeholder must
    already be filled). *)
let register_macro_def (t : t) (md : macro_def) : unit =
  Failpoint.hit ~watchdog:t.watchdog ~loc:md.m_loc "engine/register";
  let name =
    match md.m_name with
    | Ii_id id -> id.id_name
    | Ii_splice sp ->
        error ~loc:sp.sp_loc
          "generated macro definition still has a placeholder for its name"
  in
  t.stats.macros_defined <- t.stats.macros_defined + 1;
  t.defs_version <- fresh_version ();
  Hashtbl.replace t.defs name md;
  Hashtbl.replace t.macros name
    { State.sig_ret = md.m_ret; sig_pattern = md.m_pattern };
  if t.compile_patterns then
    Hashtbl.replace t.compiled name (Parser.compile_pattern md.m_pattern)

let check_depth t ~loc depth =
  if depth > t.limits.Limits.max_depth then
    Diag.error ~loc ~code:Diag.code_depth Diag.Resource
      "macro expansion exceeded the maximum nesting depth (%d); is a macro \
       expanding into itself?"
      t.limits.Limits.max_depth

let rec expand_expr t ~depth (expr : expr) : expr =
  let re e = { expr with e } in
  match expr.e with
  | E_macro inv -> (
      (* on failure in recovery mode: record, substitute a well-typed
         placeholder of the invocation's syntactic type (the paper's
         type guarantee is what makes this safe to keep parsing), and
         keep going so later errors still surface *)
      try
        check_depth t ~loc:expr.eloc depth;
        let v = expand_invocation t inv in
        let e = Fill.value_to_expr ~loc:expr.eloc v in
        expand_expr t ~depth:(depth + 1) e
      with Diag.Error d when recoverable t d ->
        record t d;
        e_int ~loc:expr.eloc 0)
  | E_ident _ | E_const _ -> expr
  | E_call (f, args) ->
      re
        (E_call
           (expand_expr t ~depth f, List.map (expand_expr t ~depth) args))
  | E_index (a, i) ->
      re (E_index (expand_expr t ~depth a, expand_expr t ~depth i))
  | E_member (e, f) -> re (E_member (expand_expr t ~depth e, f))
  | E_arrow (e, f) -> re (E_arrow (expand_expr t ~depth e, f))
  | E_postincr e -> re (E_postincr (expand_expr t ~depth e))
  | E_postdecr e -> re (E_postdecr (expand_expr t ~depth e))
  | E_unary (op, e) -> re (E_unary (op, expand_expr t ~depth e))
  | E_cast (ct, e) ->
      re (E_cast (expand_ctype t ~depth ct, expand_expr t ~depth e))
  | E_sizeof_expr e -> re (E_sizeof_expr (expand_expr t ~depth e))
  | E_sizeof_type ct -> re (E_sizeof_type (expand_ctype t ~depth ct))
  | E_binary (op, a, b) ->
      re (E_binary (op, expand_expr t ~depth a, expand_expr t ~depth b))
  | E_cond (c, a, b) ->
      re
        (E_cond
           ( expand_expr t ~depth c,
             expand_expr t ~depth a,
             expand_expr t ~depth b ))
  | E_assign (op, l, r) ->
      re (E_assign (op, expand_expr t ~depth l, expand_expr t ~depth r))
  | E_comma (a, b) ->
      re (E_comma (expand_expr t ~depth a, expand_expr t ~depth b))
  | E_backquote _ | E_lambda _ | E_splice _ ->
      error ~loc:expr.eloc
        "meta construct left in object code (%s)"
        (Pretty.expr_to_string expr)

(* specifiers and declarators can embed expressions (enum constant
   values, array sizes): macro invocations there are expanded too *)
and expand_specs t ~depth (specs : spec list) : spec list =
  List.map
    (fun spec ->
      match spec with
      | S_enum es ->
          let enum_items =
            Option.map
              (List.map (function
                | Enum_item (id, value) ->
                    Enum_item (id, Option.map (expand_expr t ~depth) value)
                | Enum_splice _ as e -> e))
              es.enum_items
          in
          S_enum { es with enum_items }
      | S_struct (tag, fields) -> S_struct (tag, expand_fields t ~depth fields)
      | S_union (tag, fields) -> S_union (tag, expand_fields t ~depth fields)
      | spec -> spec)
    specs

and expand_fields t ~depth = function
  | None -> None
  | Some fields ->
      Some
        (List.map
           (fun f ->
             { f_specs = expand_specs t ~depth f.f_specs;
               f_declarators =
                 List.map (expand_declarator t ~depth) f.f_declarators })
           fields)

and expand_declarator t ~depth (d : declarator) : declarator =
  match d with
  | D_ident _ | D_abstract | D_splice _ -> d
  | D_pointer inner -> D_pointer (expand_declarator t ~depth inner)
  | D_array (inner, size) ->
      D_array
        (expand_declarator t ~depth inner,
         Option.map (expand_expr t ~depth) size)
  | D_func (inner, params) ->
      D_func
        ( expand_declarator t ~depth inner,
          List.map
            (function
              | P_decl (specs, pd) ->
                  P_decl
                    (expand_specs t ~depth specs, expand_declarator t ~depth pd)
              | (P_name _ | P_ellipsis | P_splice _) as p -> p)
            params )

and expand_ctype t ~depth (ct : ctype) : ctype =
  { ct_specs = expand_specs t ~depth ct.ct_specs;
    ct_decl = expand_declarator t ~depth ct.ct_decl }

and expand_stmts t ~depth (stmt : stmt) : stmt list =
  let rs s = [ { stmt with s } ] in
  match stmt.s with
  | St_macro inv -> (
      try
        check_depth t ~loc:stmt.sloc depth;
        let v = expand_invocation t inv in
        let stmts = Fill.value_to_stmts ~loc:stmt.sloc v in
        List.concat_map (expand_stmts t ~depth:(depth + 1)) stmts
      with Diag.Error d when recoverable t d ->
        record t d;
        [ mk_stmt ~loc:stmt.sloc St_null ])
  | St_expr e -> rs (St_expr (expand_expr t ~depth e))
  | St_compound items ->
      (* a block opens an object-level scope for the semantic env *)
      Senv.push_scope t.senv;
      Fun.protect
        ~finally:(fun () -> Senv.pop_scope t.senv)
        (fun () -> rs (St_compound (expand_block_items t ~depth items)))
  | St_if (c, th, el) ->
      rs
        (St_if
           ( expand_expr t ~depth c,
             expand_stmt1 t ~depth th,
             Option.map (expand_stmt1 t ~depth) el ))
  | St_while (c, body) ->
      rs (St_while (expand_expr t ~depth c, expand_stmt1 t ~depth body))
  | St_do (body, c) ->
      rs (St_do (expand_stmt1 t ~depth body, expand_expr t ~depth c))
  | St_for (i, c, s, body) ->
      rs
        (St_for
           ( Option.map (expand_expr t ~depth) i,
             Option.map (expand_expr t ~depth) c,
             Option.map (expand_expr t ~depth) s,
             expand_stmt1 t ~depth body ))
  | St_switch (e, body) ->
      rs (St_switch (expand_expr t ~depth e, expand_stmt1 t ~depth body))
  | St_case (e, s) ->
      rs (St_case (expand_expr t ~depth e, expand_stmt1 t ~depth s))
  | St_default s -> rs (St_default (expand_stmt1 t ~depth s))
  | St_return e -> rs (St_return (Option.map (expand_expr t ~depth) e))
  | St_break | St_continue | St_goto _ | St_null -> [ stmt ]
  | St_label (id, s) -> rs (St_label (id, expand_stmt1 t ~depth s))
  | St_splice _ ->
      error ~loc:stmt.sloc "placeholder left in object code"

(** Expansion in a position holding exactly one statement: a
    list-returning macro is wrapped in a block. *)
and expand_stmt1 t ~depth (stmt : stmt) : stmt =
  match expand_stmts t ~depth stmt with
  | [ s ] -> s
  | [] -> mk_stmt ~loc:stmt.sloc St_null
  | many ->
      mk_stmt ~loc:stmt.sloc
        (St_compound (List.map (fun s -> Bi_stmt s) many))

and expand_block_items t ~depth (items : block_item list) : block_item list =
  List.concat_map
    (function
      | Bi_decl ({ d = Decl_metadcl _; _ } as d) ->
          (* block-scope meta declaration: run it, emit nothing *)
          t.stats.meta_declarations_run <- t.stats.meta_declarations_run + 1;
          (try with_invocation_budget t (fun () -> Interp.exec_decl t.env d)
           with Diag.Error diag when recoverable t diag -> record t diag);
          []
      | Bi_decl d ->
          List.map (fun d -> Bi_decl d) (expand_decls t ~depth d)
      | Bi_stmt s -> List.map (fun s -> Bi_stmt s) (expand_stmts t ~depth s))
    items

and expand_decls t ~depth (decl : decl) : decl list =
  let rd d = [ { decl with d } ] in
  match decl.d with
  | Decl_macro inv -> (
      try
        check_depth t ~loc:decl.dloc depth;
        let v = expand_invocation t inv in
        let decls = Fill.value_to_decls ~loc:decl.dloc v in
        List.concat_map (expand_decls t ~depth:(depth + 1)) decls
      with Diag.Error d when recoverable t d ->
        record t d;
        [])
  | Decl_plain (specs, idecls) ->
      let specs = expand_specs t ~depth specs in
      (* declared names enter the semantic env before their initializers
         are expanded (a name is in scope in its own initializer) *)
      Of_ast.bind_decl t.senv { decl with d = Decl_plain (specs, idecls) };
      let idecls =
        List.map
          (function
            | Init_decl (d, init) ->
                Init_decl
                  ( expand_declarator t ~depth d,
                    Option.map (expand_init t ~depth) init )
            | Init_splice _ ->
                error ~loc:decl.dloc "placeholder left in object code")
          idecls
      in
      rd (Decl_plain (specs, idecls))
  | Decl_fun (specs, d, kr, body) ->
      Of_ast.bind_decl t.senv decl;
      let specs = expand_specs t ~depth specs in
      let d = expand_declarator t ~depth d in
      Senv.push_scope t.senv;
      Fun.protect
        ~finally:(fun () -> Senv.pop_scope t.senv)
        (fun () ->
          let kr = List.concat_map (expand_decls t ~depth) kr in
          Of_ast.bind_params t.senv d kr;
          rd (Decl_fun (specs, d, kr, expand_stmt1 t ~depth body)))
  | Decl_macro_def md ->
      (* a macro-generating macro produced a new macro definition: its
         body was parsed and checked when the template was parsed;
         register it so *subsequent fragments* can invoke it (uses in
         the same fragment were already parsed and cannot know it).
         Generated macros must be self-contained: their placeholders may
         only reference their own formals. *)
      register_macro_def t md;
      []
  | Decl_metadcl _ ->
      error ~loc:decl.dloc
        "meta declaration in a position where object code was expected"
  | Decl_splice _ -> error ~loc:decl.dloc "placeholder left in object code"

and expand_init t ~depth = function
  | I_expr e -> I_expr (expand_expr t ~depth e)
  | I_list items -> I_list (List.map (expand_init t ~depth) items)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(** Is this top-level definition part of the meta-program?  Macro
    definitions and [metadcl] are explicitly so; following the paper's
    examples ([@stmt paint_function(@stmt s) {...}]), any definition
    whose type mentions an AST type is a meta function / meta variable
    even without [metadcl]. *)
let is_meta_top (decl : decl) : bool =
  match decl.d with
  | Decl_metadcl _ | Decl_macro_def _ -> true
  | Decl_fun (specs, d, _, _) | Decl_plain (specs, (Init_decl (d, _) :: _))
    ->
      Of_cdecl.specs_mention_ast specs || Of_cdecl.declarator_mentions_ast d
  | Decl_plain (_, _) | Decl_splice _ | Decl_macro _ -> false

(** Process one top-level declaration: meta-program elements are
    recorded/executed and emit nothing; object code is expanded. *)
let rec process_top (t : t) (decl : decl) : decl list =
  match decl.d with
  | Decl_macro_def md ->
      register_macro_def t md;
      []
  | Decl_metadcl inner ->
      t.stats.meta_declarations_run <- t.stats.meta_declarations_run + 1;
      (try with_invocation_budget t (fun () -> Interp.exec_decl t.env inner)
       with Diag.Error d when recoverable t d -> record t d);
      (* parse-time types were registered by the parser; runtime values
         must live in the *global* scope *)
      promote_globals t inner;
      []
  | _ when is_meta_top decl ->
      t.stats.meta_declarations_run <- t.stats.meta_declarations_run + 1;
      (try with_invocation_budget t (fun () -> Interp.exec_decl t.env decl)
       with Diag.Error d when recoverable t d -> record t d);
      promote_globals t decl;
      []
  | _ -> expand_decls t ~depth:0 decl

(* Interp.exec_decl binds in the current (global, for the engine's env)
   scope already — the engine env's scope stack is just the global
   scope, so nothing further is needed; kept as an explicit hook. *)
and promote_globals _t _decl = ()

(** Expand a whole program to pure C. *)
let expand_program (t : t) (prog : program) : program =
  List.concat_map (process_top t) prog

(** The location failures with no better span (end-of-input,
    [Stack_overflow]) are reported at: the start of the fragment. *)
let fragment_start ~source : Loc.t =
  let p = { Loc.line = 1; col = 0; offset = 0 } in
  Loc.make ~source ~start_pos:p ~end_pos:p

(** Parse (with this engine's macro table and meta type environment,
    so definitions from earlier calls remain in force) and expand.

    The transactional boundary: session state is checkpointed on entry
    and rolled back if the fragment fails — whether by a fatal
    diagnostic, a stack overflow (converted to a located [E0606]
    resource diagnostic), or any other escaping exception — so the
    session stays usable for the next fragment.  The fragment watchdog
    ([limits.timeout_ms]) is armed for the duration; [deadline_ms] (a
    caller's remaining budget, e.g. a serve request's propagated
    deadline) can only narrow it, never extend it. *)
let expand_source_uncached (t : t) ?deadline_ms ~source (text : string) :
    program =
  let loc0 = fragment_start ~source in
  let cp =
    if t.transactional then
      Some (Obs.with_span ~cat:"txn" "checkpoint" (fun () -> checkpoint t))
    else None
  in
  let rollback_traced cp =
    Obs.with_span ~cat:"txn" "rollback" (fun () -> rollback t cp)
  in
  let fragment_ms =
    match deadline_ms with
    | Some d -> min t.limits.Limits.timeout_ms d
    | None -> t.limits.Limits.timeout_ms
  in
  Watchdog.arm t.watchdog ~ms:fragment_ms;
  let run () =
    Failpoint.hit ~watchdog:t.watchdog ~loc:loc0 "engine/fragment";
    let st =
      (* State.of_string tokenizes eagerly: this span is the lexer's *)
      Obs.with_span ~cat:"lex"
        ~args:(fun () -> [ ("bytes", Obs.Int (String.length text)) ])
        "lex"
        (fun () ->
          State.of_string ~macros:t.macros ~tenv:t.tenv ~compiled:t.compiled
            ~watchdog:t.watchdog ~source text)
    in
    st.State.compile_patterns <- t.compile_patterns;
    let prog =
      Obs.with_span ~cat:"parse" "parse" (fun () ->
          Parser.parse_program st)
    in
    Obs.with_span ~cat:"expand" "expand-walk" (fun () ->
        expand_program t prog)
  in
  match run () with
  | prog ->
      Watchdog.disarm t.watchdog;
      prog
  | exception Stack_overflow ->
      Watchdog.disarm t.watchdog;
      (* even without a rollback, the aborted parse may have registered
         signatures into the shared tables — the version must move *)
      t.defs_version <- fresh_version ();
      Option.iter rollback_traced cp;
      Diag.error ~loc:loc0 ~code:Diag.code_stack Diag.Resource
        "stack overflow while expanding %s (a pathologically deep program, \
         or runaway recursion in a macro)"
        source
  | exception e ->
      Watchdog.disarm t.watchdog;
      t.defs_version <- fresh_version ();
      Option.iter rollback_traced cp;
      raise e

(* ------------------------------------------------------------------ *)
(* Intra-file fragment parallelism                                     *)
(* ------------------------------------------------------------------ *)

(* One translation unit, many fragments: a cheap token pre-scan
   ({!Ms2_parser.Prescan}) finds top-level fragment boundaries and
   conservatively classifies each fragment.  Definition-bearing
   fragments are sequential *barriers*; runs of pure-invocation
   fragments between barriers expand speculatively on the work-stealing
   pool against snapshot-isolated per-domain engines, and their results
   commit *in fragment order* on the main engine — or are discarded and
   re-expanded sequentially when commit-time validation finds the
   speculation observed state a predecessor has since changed.  The
   output is byte-identical to a sequential run by construction: every
   committed result is proven equivalent to what the sequential walk
   would have produced, and everything else *is* the sequential walk.

   Validation is the [defs_version] discipline extended with read/write
   odometers: a worker result is discarded unless
     - the worker saw no definition activity (its [defs_version] still
       equals the run-start version, no gensym names or anonymous tags
       were minted, no meta declarations ran), and
     - the main engine's [defs_version] still equals the run-start
       version at commit time, and
     - nothing the fragment *read* (per-kind [Senv] lookups, global meta
       bindings) has been dirtied by an earlier commit or re-expansion
       in the same run, and
     - charging the fragment's fuel/node consumption cannot overdraw
       the remaining global budget (a sequential run would have failed
       inside the fragment, so it must re-run for real). *)

let c_frag_speculated = Obs.Metrics.counter "fragments.speculated"
let c_frag_committed = Obs.Metrics.counter "fragments.committed"
let c_frag_revalidated = Obs.Metrics.counter "fragments.revalidated"
let c_frag_abort_defs_bump = Obs.Metrics.counter "fragments.abort.defs_bump"

let c_frag_abort_gensym_mint =
  Obs.Metrics.counter "fragments.abort.gensym_mint"

let c_frag_abort_meta_decl = Obs.Metrics.counter "fragments.abort.meta_decl"

let c_frag_abort_stale_read =
  Obs.Metrics.counter "fragments.abort.stale_read"

let c_frag_abort_foreign_closure =
  Obs.Metrics.counter "fragments.abort.foreign_closure"

let rec contains_closure (v : Value.t) : bool =
  match v with
  | Value.Vclosure _ -> true
  | Value.Vlist items -> List.exists contains_closure items
  | Value.Vtuple fields -> List.exists (fun (_, x) -> contains_closure x) fields
  | Value.Vint _ | Value.Vstring _ | Value.Vnode _ | Value.Vbuiltin _
  | Value.Vvoid -> false

(* Rebind a global meta value onto a worker engine's environment.
   Top-level meta functions are closures over the engine's *global*
   environment ([cl_env == from_env]); rebinding that pointer is the
   whole adoption.  A closure over anything else (a lambda that escaped
   into a global) has captured local state we cannot relocate — [None]
   makes the adoption skip the binding, so a worker that touches it
   fails lookup, aborts, and the fragment re-expands sequentially. *)
let rec transplant_value ~(from_env : Value.env) ~(to_env : Value.env)
    (v : Value.t) : Value.t option =
  match v with
  | Value.Vint _ | Value.Vstring _ | Value.Vnode _ | Value.Vbuiltin _
  | Value.Vvoid -> Some v
  | Value.Vclosure cl ->
      if cl.Value.cl_env == from_env then
        Some (Value.Vclosure { cl with Value.cl_env = to_env })
      else None
  | Value.Vlist items ->
      let rec go acc = function
        | [] -> Some (Value.Vlist (List.rev acc))
        | x :: rest -> (
            match transplant_value ~from_env ~to_env x with
            | Some x' -> go (x' :: acc) rest
            | None -> None)
      in
      go [] items
  | Value.Vtuple fields ->
      let rec go acc = function
        | [] -> Some (Value.Vtuple (List.rev acc))
        | (name, x) :: rest -> (
            match transplant_value ~from_env ~to_env x with
            | Some x' -> go ((name, x') :: acc) rest
            | None -> None)
      in
      go [] fields

(* AST-level hardening of the token classifier: anything that registers
   definitions or runs meta code at top level is a barrier even if the
   pre-scan missed it. *)
let decl_is_barrier (d : decl) : bool =
  match d.d with
  | Decl_macro_def _ | Decl_metadcl _ -> true
  | Decl_plain (specs, _) -> List.mem S_typedef specs || is_meta_top d
  | _ -> is_meta_top d

type frag_plan = { fp_barrier : bool; fp_decls : decl list }

(* Assign parsed top-level declarations to pre-scanned fragments by
   byte offset (a declaration belongs to the fragment containing its
   start).  Token-level boundary errors only group declarations
   unevenly; classification is re-derived from the AST on top of the
   token-level verdict.  Fragments that end up empty are dropped. *)
let plan_fragments (frags : Prescan.fragment list) (prog : program) :
    frag_plan array =
  let frags = Array.of_list frags in
  let n = Array.length frags in
  if n = 0 then
    [| { fp_barrier = true; fp_decls = prog } |]
  else begin
    let buckets = Array.make n [] in
    let barrier = Array.map (fun f -> f.Prescan.fg_barrier) frags in
    let fi = ref 0 in
    List.iter
      (fun (d : decl) ->
        let off = d.dloc.Loc.start_pos.Loc.offset in
        while
          !fi + 1 < n && frags.(!fi + 1).Prescan.fg_offset <= off
        do
          incr fi
        done;
        buckets.(!fi) <- d :: buckets.(!fi);
        if decl_is_barrier d then barrier.(!fi) <- true)
      prog;
    let plan = ref [] in
    for k = n - 1 downto 0 do
      match buckets.(k) with
      | [] -> ()
      | ds -> plan := { fp_barrier = barrier.(k); fp_decls = List.rev ds }
                      :: !plan
    done;
    Array.of_list !plan
  end

(* What a speculative worker hands back for one fragment.  All state
   changes are *deltas against the run-start snapshot*, applied on the
   main engine at commit; committing deltas in fragment order is
   last-writer-wins, which is exactly the sequential outcome. *)
type frag_commit = {
  fr_prog : program;  (** expanded output of the fragment *)
  fr_senv_delta : Senv.top_delta;
  fr_genv_delta : (string * Value.t) list;
      (** global meta bindings the fragment added or rebound *)
  fr_sreads : int * int * int;
      (** [Senv] lookups (vars, typedefs, layouts) the fragment made *)
  fr_greads : int;  (** global meta-binding lookups the fragment made *)
  fr_fuel : int;
  fr_nodes : int;
  fr_invocations : int;
}

(** Why a speculation could not commit — the labeled
    [fragments.abort.*] breakdown.  A [Frag_done] that later fails
    {!frag_commit_ok} (earlier commits dirtied what it read) counts as
    [Abort_stale_read]; a worker that raised ([Frag_fail]) carries no
    cause — the re-expansion will surface the real error. *)
type abort_cause =
  | Abort_defs_bump
  | Abort_gensym_mint
  | Abort_meta_decl
  | Abort_stale_read
  | Abort_foreign_closure

let abort_cause_name = function
  | Abort_defs_bump -> "defs_bump"
  | Abort_gensym_mint -> "gensym_mint"
  | Abort_meta_decl -> "meta_decl"
  | Abort_stale_read -> "stale_read"
  | Abort_foreign_closure -> "foreign_closure"

let count_abort (t : t) (cause : abort_cause) : unit =
  (match cause with
  | Abort_defs_bump ->
      t.stats.frag_abort_defs_bump <- t.stats.frag_abort_defs_bump + 1;
      Obs.Metrics.incr c_frag_abort_defs_bump
  | Abort_gensym_mint ->
      t.stats.frag_abort_gensym_mint <- t.stats.frag_abort_gensym_mint + 1;
      Obs.Metrics.incr c_frag_abort_gensym_mint
  | Abort_meta_decl ->
      t.stats.frag_abort_meta_decl <- t.stats.frag_abort_meta_decl + 1;
      Obs.Metrics.incr c_frag_abort_meta_decl
  | Abort_stale_read ->
      t.stats.frag_abort_stale_read <- t.stats.frag_abort_stale_read + 1;
      Obs.Metrics.incr c_frag_abort_stale_read
  | Abort_foreign_closure ->
      t.stats.frag_abort_foreign_closure <-
        t.stats.frag_abort_foreign_closure + 1;
      Obs.Metrics.incr c_frag_abort_foreign_closure);
  Obs.instant ~cat:"fragment"
    ~args:(fun () -> [ ("cause", Obs.Str (abort_cause_name cause)) ])
    "speculation-abort"

type frag_result =
  | Frag_done of frag_commit
  | Frag_abort of abort_cause
      (** validation failed on the worker; revalidate *)
  | Frag_fail
      (** the worker raised: revalidate, and stop later speculation so
          first-fatal semantics match the sequential index *)

(* Worker engines live in domain-local storage, stamped with the id of
   the speculation run that adopted them: the pool spawns fresh domains
   per call (empty DLS), but the calling domain is worker 0 and keeps
   its slot across runs, so adoption must be re-keyed per run. *)
type frag_worker_state = {
  fw_run : int;  (** the speculation run this worker was adopted for *)
  fw_engine : t;
  fw_adopt : checkpoint;  (** run-start state, globals transplanted *)
  fw_base : (string, Value.t) Hashtbl.t;
      (** [fw_adopt.cp_globals] as a table, for the commit diff *)
}

type frag_ctx = {
  fx_run : int;
  fx_main : t;  (** read-only from workers: configuration only *)
  fx_cp : checkpoint;  (** run-start checkpoint of the main engine *)
  fx_v0 : int;  (** [defs_version] at run start *)
  fx_frag_ms : int;  (** per-fragment watchdog deadline *)
}

let frag_run_counter = Atomic.make 0

let frag_worker_slot : frag_worker_state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let frag_worker (ctx : frag_ctx) : frag_worker_state =
  let slot = Domain.DLS.get frag_worker_slot in
  match !slot with
  | Some fw when fw.fw_run = ctx.fx_run -> fw
  | _ ->
      let m = ctx.fx_main in
      let w =
        create ~limits:m.limits ~compile_patterns:m.compile_patterns
          ~hygienic:m.env.Value.hygienic ~recover:false
          ~provenance:m.provenance ~transactional:false ~cache:false ()
      in
      let globals =
        List.filter_map
          (fun (name, v) ->
            match transplant_value ~from_env:m.env ~to_env:w.env v with
            | Some v' -> Some (name, v')
            | None -> None)
          ctx.fx_cp.cp_globals
      in
      let adopt = { ctx.fx_cp with cp_globals = globals } in
      let base = Hashtbl.create (List.length globals * 2 + 1) in
      List.iter (fun (name, v) -> Hashtbl.replace base name v) globals;
      let fw = { fw_run = ctx.fx_run; fw_engine = w; fw_adopt = adopt;
                 fw_base = base }
      in
      slot := Some fw;
      fw

(* Globals the fragment added or rebound, relative to the adopted
   snapshot.  Physical comparison against the snapshot value is sound
   because {!Value.t} is structurally immutable: a binding whose ref
   still holds the very value the snapshot recorded was not written
   (or was rewritten to the identical value, which commits as a
   no-op either way). *)
let frag_genv_delta (fw : frag_worker_state) : (string * Value.t) list =
  Hashtbl.fold
    (fun name r acc ->
      match Hashtbl.find_opt fw.fw_base name with
      | Some v0 when !r == v0 -> acc
      | _ -> (name, !r) :: acc)
    (global_scope fw.fw_engine) []

(* Expand one fragment speculatively on this domain's worker engine.
   Never raises: every failure is contained in the result. *)
let frag_speculate (ctx : frag_ctx) (decls : decl list) ~(index : int) :
    frag_result =
  match frag_worker ctx with
  | exception _ -> Frag_fail
  | fw -> (
      let w = fw.fw_engine in
      let b = w.env.Value.budget in
      let finish () = Watchdog.disarm w.watchdog in
      try
        rollback w fw.fw_adopt;
        (* full per-file budget; reconciled against the main engine's
           remaining pool at commit time *)
        b.Value.fuel <- b.Value.fuel_initial;
        b.Value.nodes <- b.Value.nodes_initial;
        let sreads0 = Senv.reads w.senv in
        let greads0 = !(w.env.Value.greads) in
        let gensym0 = Gensym.count w.gensym in
        let anon0 = Senv.anon_count w.senv in
        let meta0 = w.stats.meta_declarations_run in
        let inv0 = w.stats.invocations_expanded in
        Watchdog.arm w.watchdog ~ms:ctx.fx_frag_ms;
        let prog =
          Obs.with_span ~cat:"expand"
            ~args:(fun () ->
              [ ("fragment_index", Obs.Int index);
                ("speculative", Obs.Bool true) ])
            "fragment-expand"
            (fun () ->
              (let loc =
                 match decls with
                 | d :: _ -> d.dloc
                 | [] -> Loc.dummy
               in
               Failpoint.hit ~watchdog:w.watchdog ~loc "engine/fragment");
              expand_program w decls)
        in
        finish ();
        let sub3 (a, b, c) (a0, b0, c0) = (a - a0, b - b0, c - c0) in
        if w.defs_version <> ctx.fx_v0 then Frag_abort Abort_defs_bump
        else if
          Gensym.count w.gensym <> gensym0
          || Senv.anon_count w.senv <> anon0
        then Frag_abort Abort_gensym_mint
        else if w.stats.meta_declarations_run <> meta0 then
          Frag_abort Abort_meta_decl
        else if
          List.length w.env.Value.scopes <> 1 || Senv.depth w.senv <> 1
        then Frag_abort Abort_stale_read
        else
          match Senv.diff_top w.senv ~base:ctx.fx_cp.cp_senv with
          | None -> Frag_abort Abort_stale_read
          | Some senv_delta ->
              let genv_delta = frag_genv_delta fw in
              if List.exists (fun (_, v) -> contains_closure v) genv_delta
              then Frag_abort Abort_foreign_closure
              else
                Frag_done
                  {
                    fr_prog = prog;
                    fr_senv_delta = senv_delta;
                    fr_genv_delta = genv_delta;
                    fr_sreads = sub3 (Senv.reads w.senv) sreads0;
                    fr_greads = !(w.env.Value.greads) - greads0;
                    fr_fuel = b.Value.fuel_initial - b.Value.fuel;
                    fr_nodes = b.Value.nodes_initial - b.Value.nodes;
                    fr_invocations = w.stats.invocations_expanded - inv0;
                  }
      with _ ->
        finish ();
        Frag_fail)

(* Per-kind dirtiness of shared state *within one speculation run*: a
   speculative result may only commit if everything it read is still
   what the run-start snapshot said.  Flags are set by committed deltas
   and by whatever a sequential re-expansion wrote (measured with the
   [Senv] write odometers; global meta writes are unmeasured on the
   main engine, so any re-expansion conservatively dirties globals). *)
type frag_dirty = {
  mutable fd_vars : bool;
  mutable fd_typedefs : bool;
  mutable fd_layouts : bool;
  mutable fd_globals : bool;
}

let frag_commit_ok (t : t) (dirty : frag_dirty) ~(v0 : int)
    (r : frag_commit) : bool =
  let b = t.env.Value.budget in
  let rv, rt, rl = r.fr_sreads in
  t.defs_version = v0
  && b.Value.fuel >= r.fr_fuel
  && b.Value.nodes >= r.fr_nodes
  && ((not dirty.fd_vars) || rv = 0)
  && ((not dirty.fd_typedefs) || rt = 0)
  && ((not dirty.fd_layouts) || rl = 0)
  && ((not dirty.fd_globals) || r.fr_greads = 0)

let frag_apply_commit (t : t) (dirty : frag_dirty) (r : frag_commit) : unit =
  Senv.apply_top t.senv r.fr_senv_delta;
  let global = global_scope t in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt global name with
      | Some cell -> cell := v
      | None -> Hashtbl.replace global name (ref v))
    r.fr_genv_delta;
  let b = t.env.Value.budget in
  b.Value.fuel <- b.Value.fuel - r.fr_fuel;
  b.Value.nodes <- b.Value.nodes - r.fr_nodes;
  t.stats.invocations_expanded <-
    t.stats.invocations_expanded + r.fr_invocations;
  let dv, dt, dl = Senv.delta_counts r.fr_senv_delta in
  if dv > 0 then dirty.fd_vars <- true;
  if dt > 0 then dirty.fd_typedefs <- true;
  if dl > 0 then dirty.fd_layouts <- true;
  if r.fr_genv_delta <> [] then dirty.fd_globals <- true

(* The ordered walk: barriers and short runs expand sequentially on the
   main engine; runs of two or more pure fragments speculate on the
   pool, then commit (or re-expand) in fragment order.  Raises exactly
   like {!expand_program} — the caller's transactional wrapper handles
   rollback. *)
let frag_commit_walk (t : t) ~(jobs : int) ~(fragment_ms : int)
    (plan : frag_plan array) : program =
  let n = Array.length plan in
  let chunks = ref [] in
  let seq_expand idx decls =
    let prog =
      Obs.with_span ~cat:"expand"
        ~args:(fun () ->
          [ ("fragment_index", Obs.Int idx);
            ("speculative", Obs.Bool false) ])
        "fragment-expand"
        (fun () -> expand_program t decls)
    in
    chunks := prog :: !chunks
  in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && not plan.(!j).fp_barrier do incr j done;
    if !j - !i < 2 then begin
      (* a barrier, or a lone pure fragment not worth a checkpoint *)
      let stop = if !j = !i then !i + 1 else !j in
      while !i < stop do
        seq_expand !i plan.(!i).fp_decls;
        incr i
      done
    end
    else begin
      let base = !i and stop = !j in
      let v0 = t.defs_version in
      let cp =
        Obs.with_span ~cat:"txn" "speculation-checkpoint" (fun () ->
            checkpoint t)
      in
      let ctx =
        { fx_run = 1 + Atomic.fetch_and_add frag_run_counter 1;
          fx_main = t; fx_cp = cp; fx_v0 = v0; fx_frag_ms = fragment_ms }
      in
      let results =
        Pool.map ~jobs
          ~stop:(function Frag_fail -> true | _ -> false)
          (stop - base)
          (fun k ->
            frag_speculate ctx plan.(base + k).fp_decls ~index:(base + k))
      in
      let dirty =
        { fd_vars = false; fd_typedefs = false; fd_layouts = false;
          fd_globals = false }
      in
      let revalidate idx decls =
        t.stats.frag_revalidated <- t.stats.frag_revalidated + 1;
        Obs.Metrics.incr c_frag_revalidated;
        let w0 = Senv.writes t.senv in
        dirty.fd_globals <- true;
        seq_expand idx decls;
        let wv0, wt0, wl0 = w0 in
        let wv, wt, wl = Senv.writes t.senv in
        if wv > wv0 then dirty.fd_vars <- true;
        if wt > wt0 then dirty.fd_typedefs <- true;
        if wl > wl0 then dirty.fd_layouts <- true
      in
      for k = base to stop - 1 do
        let decls = plan.(k).fp_decls in
        match results.(k - base) with
        | Some (Frag_done r) ->
            t.stats.frag_speculated <- t.stats.frag_speculated + 1;
            Obs.Metrics.incr c_frag_speculated;
            if frag_commit_ok t dirty ~v0 r then begin
              t.stats.frag_committed <- t.stats.frag_committed + 1;
              Obs.Metrics.incr c_frag_committed;
              frag_apply_commit t dirty r;
              chunks := r.fr_prog :: !chunks
            end
            else begin
              (* the worker's result was self-consistent; what it read
                 went stale under earlier commits/re-expansions *)
              count_abort t Abort_stale_read;
              revalidate k decls
            end
        | Some (Frag_abort cause) ->
            t.stats.frag_speculated <- t.stats.frag_speculated + 1;
            Obs.Metrics.incr c_frag_speculated;
            count_abort t cause;
            revalidate k decls
        | Some Frag_fail ->
            t.stats.frag_speculated <- t.stats.frag_speculated + 1;
            Obs.Metrics.incr c_frag_speculated;
            revalidate k decls
        | None ->
            (* cancelled before it ran — plain sequential expansion,
               not a revalidation *)
            seq_expand k decls
      done;
      i := stop
    end
  done;
  List.concat (List.rev !chunks)

(** Fragment-parallel counterpart of {!expand_source_uncached}: same
    transactional boundary, same failure behavior, same output bytes.
    Degrades to the sequential path when the observability or trace
    modes need a faithful sequential event stream, when the engine is
    not transactional (speculation needs checkpoints), or when the file
    has too few fragments to win. *)
let expand_source_fragmented (t : t) ~(jobs : int) ~(fragment_min : int)
    ?deadline_ms ~source (text : string) : program =
  if t.trace <> None then begin
    (match t.trace with
    | Some fmt ->
        Format.fprintf fmt
          "fragments: expanding %s sequentially (trace mode is on)@." source
    | None -> ());
    expand_source_uncached t ?deadline_ms ~source text
  end
  else if
    jobs < 2 || (not t.transactional) || Obs.Profile.enabled ()
    || Obs.recording ()
  then expand_source_uncached t ?deadline_ms ~source text
  else begin
    let loc0 = fragment_start ~source in
    let cp =
      Some (Obs.with_span ~cat:"txn" "checkpoint" (fun () -> checkpoint t))
    in
    let rollback_traced cp =
      Obs.with_span ~cat:"txn" "rollback" (fun () -> rollback t cp)
    in
    let fragment_ms =
      match deadline_ms with
      | Some d -> min t.limits.Limits.timeout_ms d
      | None -> t.limits.Limits.timeout_ms
    in
    Watchdog.arm t.watchdog ~ms:fragment_ms;
    let run () =
      Failpoint.hit ~watchdog:t.watchdog ~loc:loc0 "engine/fragment";
      let st =
        Obs.with_span ~cat:"lex"
          ~args:(fun () -> [ ("bytes", Obs.Int (String.length text)) ])
          "lex"
          (fun () ->
            State.of_string ~macros:t.macros ~tenv:t.tenv ~compiled:t.compiled
              ~watchdog:t.watchdog ~source text)
      in
      st.State.compile_patterns <- t.compile_patterns;
      let frags = Prescan.split st.State.toks in
      let prog =
        Obs.with_span ~cat:"parse" "parse" (fun () ->
            Parser.parse_program st)
      in
      let plan = plan_fragments frags prog in
      if Array.length plan < max 2 fragment_min then
        Obs.with_span ~cat:"expand" "expand-walk" (fun () ->
            expand_program t prog)
      else
        Obs.with_span ~cat:"expand"
          ~args:(fun () ->
            [ ("fragments", Obs.Int (Array.length plan));
              ("jobs", Obs.Int jobs) ])
          "expand-walk-fragments"
          (fun () -> frag_commit_walk t ~jobs ~fragment_ms plan)
    in
    match run () with
    | prog ->
        Watchdog.disarm t.watchdog;
        prog
    | exception Stack_overflow ->
        Watchdog.disarm t.watchdog;
        t.defs_version <- fresh_version ();
        Option.iter rollback_traced cp;
        Diag.error ~loc:loc0 ~code:Diag.code_stack Diag.Resource
          "stack overflow while expanding %s (a pathologically deep \
           program, or runaway recursion in a macro)"
          source
    | exception e ->
        Watchdog.disarm t.watchdog;
        t.defs_version <- fresh_version ();
        Option.iter rollback_traced cp;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Content-addressed expansion cache                                   *)
(* ------------------------------------------------------------------ *)

(* Behavior flags that change the produced program or its locations;
   part of the cache key. *)
let cache_flags (t : t) : string =
  Printf.sprintf "hyg=%b prov=%b rec=%b cp=%b txn=%b"
    t.env.Value.hygienic t.provenance t.recover t.compile_patterns
    t.transactional

(* Why the cache stood aside for a fragment.  Each reason has its own
   labeled counter so the split is visible in [stats] output; the
   aggregate [cache_bypasses] stays their sum. *)
type bypass = Bypass_trace | Bypass_failpoints | Bypass_uncacheable | Bypass_budget

let bypass_reason = function
  | Bypass_trace -> "trace"
  | Bypass_failpoints -> "failpoints"
  | Bypass_uncacheable -> "uncacheable"
  | Bypass_budget -> "budget"

let note_bypass (t : t) ~source (why : bypass) : unit =
  t.stats.cache_bypasses <- t.stats.cache_bypasses + 1;
  (match why with
  | Bypass_trace ->
      t.stats.cache_bypass_trace <- t.stats.cache_bypass_trace + 1
  | Bypass_failpoints ->
      t.stats.cache_bypass_failpoints <- t.stats.cache_bypass_failpoints + 1
  | Bypass_uncacheable ->
      t.stats.cache_bypass_uncacheable <- t.stats.cache_bypass_uncacheable + 1
  | Bypass_budget ->
      t.stats.cache_bypass_budget <- t.stats.cache_bypass_budget + 1);
  Obs.instant ~cat:"cache" "bypass"
    ~args:(fun () ->
      [ ("source", Obs.Str source); ("reason", Obs.Str (bypass_reason why)) ]);
  (* trace mode silently disabling the cache surprised people (the stats
     suddenly show zero hits); say so in the trace log itself *)
  match (why, t.trace) with
  | Bypass_trace, Some fmt ->
      Format.fprintf fmt "cache: bypassed for %s (trace mode is on)@." source
  | _ -> ()

(* The key for expanding [text] now, or the reason the cache must stand
   aside: trace mode (the trace is a side effect a replay would skip),
   armed failpoints (replays would mask injected failures), or session
   state with no trustworthy digest. *)
let cache_key (t : t) ~source (text : string) : (string, bypass) result =
  if t.trace <> None then Error Bypass_trace
  else if Failpoint.armed () then Error Bypass_failpoints
  else
    match
      Cache.key ~defs_version:t.defs_version ~env:t.env ~tenv:t.tenv
        ~senv:t.senv ~limits:t.limits ~flags:(cache_flags t) ~source text
    with
    | key -> Ok key
    | exception Cache.Uncacheable -> Error Bypass_uncacheable

(* Replay a cached run: register the source with the diagnostic registry
   (the lexer would have), restore the recorded post-run session state —
   through the same in-place rollback the transaction layer uses, so
   aliasing parser states stay attached — and apply the run's resource
   and statistics deltas. *)
let replay (t : t) (e : cached_run) ~source (text : string) : program =
  Obs.with_span ~cat:"cache"
    ~args:(fun () ->
      [ ("source", Obs.Str source);
        ("invocations", Obs.Int e.ca_invocations) ])
    "replay"
    (fun () ->
      Diag.register_source source text;
      rollback t e.ca_post;
      t.defs_version <- e.ca_version;
      let b = t.env.Value.budget in
      b.Value.fuel <- b.Value.fuel - e.ca_fuel;
      b.Value.nodes <- b.Value.nodes - e.ca_nodes;
      t.stats.invocations_expanded <-
        t.stats.invocations_expanded + e.ca_invocations;
      t.stats.meta_declarations_run <-
        t.stats.meta_declarations_run + e.ca_meta_runs;
      t.stats.macros_defined <- t.stats.macros_defined + e.ca_macros_defined;
      if Obs.Profile.enabled () then
        List.iter
          (fun (macro, n) -> Obs.Profile.credit_cached macro n)
          e.ca_profile;
      e.ca_program)

(** Cached expansion.  A hit replays the recorded output and post-run
    state; a miss runs for real and — when the run was clean (no new
    diagnostics) and minted no generated names or anonymous tags —
    stores the result.  The mint restriction is the hygiene story: the
    gensym and anonymous-tag counters are monotonic and never rolled
    back, so a run that consulted them ran from a state that can never
    recur (the entry would be dead), and a run that did not cannot
    depend on them — replaying it is bit-for-bit the rerun. *)
let expand_source (t : t) ?(source = "<string>") ?deadline_ms
    ?(fragment_jobs = 1) ?(fragment_min = 8) (text : string) : program =
  (* fragment parallelism replaces only the *uncached* runner; the
     cache layer (probe, store, bypass accounting) is identical either
     way, and the store-side mint guards hold because committed
     speculative fragments never touch the main gensym or anonymous-tag
     counters (aborted ones are discarded with their worker state). *)
  let run_uncached () =
    if fragment_jobs > 1 then
      expand_source_fragmented t ~jobs:fragment_jobs ~fragment_min
        ?deadline_ms ~source text
    else expand_source_uncached t ?deadline_ms ~source text
  in
  Obs.with_span ~cat:"fragment"
    ~args:(fun () ->
      [ ("source", Obs.Str source);
        ("bytes", Obs.Int (String.length text)) ])
    "fragment"
  @@ fun () ->
  match t.cache with
  | None -> run_uncached ()
  | Some cache -> (
      match cache_key t ~source text with
      | Error why ->
          note_bypass t ~source why;
          run_uncached ()
      | Ok key -> (
          (* the version the key just digested; stored with a miss so
             snapshot loads can audit it (see [ca_pre_version]) *)
          let pre_version = t.defs_version in
          let b = t.env.Value.budget in
          let hit =
            Obs.with_span ~cat:"cache" "lookup" (fun () ->
                Cache.find cache key)
          in
          match hit with
          | Some e when b.Value.fuel >= e.ca_fuel && b.Value.nodes >= e.ca_nodes
            ->
              t.stats.cache_hits <- t.stats.cache_hits + 1;
              replay t e ~source text
          | Some _ ->
              (* a replay would overdraw the remaining global budget —
                 the real run must happen (and fail) for real *)
              note_bypass t ~source Bypass_budget;
              run_uncached ()
          | None ->
              t.stats.cache_misses <- t.stats.cache_misses + 1;
              let gensym0 = Gensym.count t.gensym in
              let anon0 = Senv.anon_count t.senv in
              let diags0 = Diag.count t.diags in
              let fuel0 = fuel_consumed t in
              let nodes0 = nodes_produced t in
              let inv0 = t.stats.invocations_expanded in
              let meta0 = t.stats.meta_declarations_run in
              let defs0 = t.stats.macros_defined in
              let profile0 =
                if Obs.Profile.enabled () then Obs.Profile.counts () else []
              in
              let prog = run_uncached () in
              if
                Gensym.count t.gensym = gensym0
                && Senv.anon_count t.senv = anon0
                && Diag.count t.diags = diags0
              then
                Obs.with_span ~cat:"cache" "store" (fun () ->
                (* entry weight estimate: the parsed-and-expanded
                   program scales with the fragment text and the nodes
                   the templates produced; the checkpoint's table spines
                   are a near-constant (their contents are shared with
                   the live session).  Walking the real structure with
                   [Obj.reachable_words] here would cost more than the
                   rest of the store path combined. *)
                let size_bytes =
                  2048
                  + (8 * String.length text)
                  + (128 * (nodes_produced t - nodes0))
                in
                (* per-macro invocation deltas for this fragment, so a
                   replay can credit the profiler with what it skipped *)
                let ca_profile =
                  if not (Obs.Profile.enabled ()) then []
                  else
                    List.filter_map
                      (fun (macro, n) ->
                        let n0 =
                          match List.assoc_opt macro profile0 with
                          | Some n0 -> n0
                          | None -> 0
                        in
                        if n > n0 then Some (macro, n - n0) else None)
                      (Obs.Profile.counts ())
                in
                Cache.add cache key ~size_bytes
                  {
                    ca_program = prog;
                    ca_post = checkpoint t;
                    ca_version = t.defs_version;
                    ca_pre_version = pre_version;
                    ca_fuel = fuel_consumed t - fuel0;
                    ca_nodes = nodes_produced t - nodes0;
                    ca_invocations = t.stats.invocations_expanded - inv0;
                    ca_meta_runs = t.stats.meta_declarations_run - meta0;
                    ca_macros_defined = t.stats.macros_defined - defs0;
                    ca_profile;
                  });
              prog))

(* The store-wide eviction count is a merged sweep over every shard
   (one mutex round-trip each), far too expensive to refresh on every
   miss — it used to cost more than the rest of the store path
   combined.  Readers pull it on demand instead; the cached field keeps
   the last refreshed value for engines whose store is gone. *)
let cache_evictions (t : t) : int =
  (match t.cache with
  | None -> ()
  | Some cache -> t.stats.cache_evictions <- Cache.evictions cache);
  t.stats.cache_evictions

(* ------------------------------------------------------------------ *)
(* Durable cache snapshots                                             *)
(* ------------------------------------------------------------------ *)

(* A snapshot persists a shared cache store across processes so a
   restarted batch or daemon starts warm.  The container is
   deliberately paranoid:

     magic (8) | format version (u32) | build id (16) |
     generation (16) | version-counter high water (i64) |
     entry count (u32) |
     count * [ payload length (u32) | MD5(payload) (16) | payload ]

   Every record carries its own checksum, and ANY integrity failure —
   bad magic, version skew, truncation, a flipped bit, trailing bytes,
   an undecodable record — degrades the WHOLE load to a cold cache with
   a warning counter.  Partial salvage is not worth the risk surface:
   a snapshot is an optimization, and the only unforgivable outcome is
   a wrong replay.  [Marshal.from_string] only ever runs on bytes whose
   digest matched, i.e. bytes this code wrote — and the header's build
   id ({!Build_id.digest}, the fingerprint of the executable image)
   further pins "this code" to THIS build of the binary: a snapshot
   left on disk across an upgrade whose value layout changed is a cold
   start, not an untyped decode of stale bytes, without anyone having
   to remember to bump [snapshot_format_version].

   What does NOT survive the round trip, and how loading repairs it:

   - Compiled invocation patterns are closures.  Saving strips each
     entry's [cp_compiled] table down to its name list; loading
     recompiles every pattern from the entry's own [cp_defs] (pattern
     compilation is deterministic).  An entry whose patterns cannot be
     rebuilt is dropped, never half-restored.
   - Meta globals can hold closures ([Vclosure] captures the engine
     through [env.expand_invocation]); such entries fail to marshal and
     are skipped at save time, counted in [sv_skipped].
   - Interned symbols lose pointer identity under [Marshal]; the Tenv
     and Senv tables inside each checkpoint are rebuilt by re-interning
     every key ({!Tenv.rehydrate} / {!Senv.rehydrate}).
   - Gensym state needs no persistence by construction: the engine
     never stores a run that minted generated names or anonymous tags,
     and diagnosed runs are never stored either.

   {b Version safety.}  [defs_version] numbers are allocated by a
   process-local counter, so a number from another process may collide
   with one this process already bound to different table contents —
   the one way a snapshot could cause a WRONG replay rather than a slow
   one.  Two rules keep the version→content mapping single-valued:

   - a snapshot written by this very process instance (matching
     [generation]) is trusted — every version in it was allocated or
     previously adopted by this process's counter — and the counter is
     still CAS-advanced past the header's recorded high water (a no-op
     for a genuine self-reload, whose counter is already there);
   - otherwise an entry is accepted only if every version it mentions
     ([ca_pre_version], [ca_version], [cp_version]) is either 0 (the
     reserved pristine-tables version, whose content is fixed) or
     strictly greater than the counter's current value; the counter is
     then CAS-advanced past the snapshot's maximum so those numbers can
     never be re-allocated.  The filter re-runs if the CAS loses a
     race.  Rejected entries are dropped (a miss, not a fault).

   "Process instance" must mean exactly that under [Unix.fork]: the
   [ms2c serve --supervise] workers are fork children, so any
   generation fixed at module init would be SHARED between a crashed
   worker and its restarted sibling — whose counter restarts at the
   supervisor's fork-time value, re-allocating numbers the dead
   sibling already bound to different table contents.  {!generation}
   therefore mixes the current pid into a startup-random base on every
   use: fork children never match each other, and take the adoption
   path above.  The high-water advance on the matching path is defense
   in depth for the residual aliasing risk (a recycled pid landing on
   a fork sibling of the same base). *)

let snapshot_magic = "MS2SNAP\001"
let snapshot_format_version = 2

(* 128 self-seeded bits fixed at startup, so two unrelated processes
   cannot collide; the pid mixed in per call distinguishes fork
   children sharing the base (see the module comment above). *)
let generation_base : string =
  let st = Random.State.make_self_init () in
  let b = Buffer.create 64 in
  for _ = 1 to 8 do
    Buffer.add_string b (string_of_int (Random.State.bits st));
    Buffer.add_char b '.'
  done;
  Buffer.contents b

let generation () : string =
  Digest.string
    (Printf.sprintf "%s#%d" generation_base (Build_id.pid ()))

type persisted_entry = {
  pe_key : string;
  pe_size : int;  (** the size estimate the entry was admitted with *)
  pe_compiled : string list;  (** macro names to recompile at load *)
  pe_run : cached_run;  (** with [cp_compiled] emptied *)
}

type snapshot_save = { sv_entries : int; sv_skipped : int; sv_bytes : int }

type snapshot_load = {
  ld_entries : int;  (** entries restored into the store *)
  ld_dropped : int;  (** version-unsafe or unrebuildable entries *)
  ld_warnings : int;  (** 1 when integrity failed and the load degraded *)
  ld_error : string option;  (** the reason, when [ld_warnings > 0] *)
}

let cold_load = { ld_entries = 0; ld_dropped = 0; ld_warnings = 0; ld_error = None }

let strip_compiled (run : cached_run) : cached_run * string list =
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) run.ca_post.cp_compiled []
  in
  ( { run with ca_post = { run.ca_post with cp_compiled = Hashtbl.create 1 } },
    names )

let save_store (cache : cached_run Cache.t) (path : string) :
    (snapshot_save, string) result =
  Obs.with_span ~cat:"snapshot" "save" @@ fun () ->
  match Failpoint.hit ~loc:Loc.dummy "snapshot/save" with
  | exception Diag.Error d -> Result.Error d.Diag.message
  | () -> (
      let entries = ref 0 and skipped = ref 0 in
      let records = Buffer.create 65536 in
      Cache.fold cache
        (fun key run size () ->
          let run, names = strip_compiled run in
          match
            Marshal.to_string
              ({ pe_key = key; pe_size = size; pe_compiled = names;
                 pe_run = run }
                : persisted_entry)
              []
          with
          | exception _ ->
              (* a closure reached the entry (meta globals can hold
                 them); skip it — it will be a miss next run *)
              incr skipped
          | payload ->
              incr entries;
              Buffer.add_int32_le records (Int32.of_int (String.length payload));
              Buffer.add_string records (Digest.string payload);
              Buffer.add_string records payload)
        ();
      let b = Buffer.create (Buffer.length records + 64) in
      Buffer.add_string b snapshot_magic;
      Buffer.add_int32_le b (Int32.of_int snapshot_format_version);
      Buffer.add_string b (Build_id.digest ());
      Buffer.add_string b (generation ());
      Buffer.add_int64_le b (Int64.of_int (Atomic.get version_counter));
      Buffer.add_int32_le b (Int32.of_int !entries);
      Buffer.add_buffer b records;
      let out = Buffer.contents b in
      match Atomic_io.write path out with
      | Ok () ->
          Obs.Metrics.incr ~by:!entries
            (Obs.Metrics.counter "snapshot.save.entries");
          if !skipped > 0 then
            Obs.Metrics.incr ~by:!skipped
              (Obs.Metrics.counter "snapshot.save.skipped");
          Ok
            {
              sv_entries = !entries;
              sv_skipped = !skipped;
              sv_bytes = String.length out;
            }
      | Error msg -> Result.Error msg)

exception Corrupt of string

let parse_snapshot (raw : string) : string * int * persisted_entry list =
  let len = String.length raw in
  let pos = ref 0 in
  let need n what =
    if !pos + n > len then
      raise (Corrupt (Printf.sprintf "truncated in %s" what))
  in
  let get_str n what =
    need n what;
    let s = String.sub raw !pos n in
    pos := !pos + n;
    s
  in
  let get_u32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_le raw !pos) in
    pos := !pos + 4;
    if v < 0 then raise (Corrupt (what ^ ": out of range"));
    v
  in
  let get_i64 what =
    need 8 what;
    let v = Int64.to_int (String.get_int64_le raw !pos) in
    pos := !pos + 8;
    v
  in
  if get_str 8 "magic" <> snapshot_magic then raise (Corrupt "bad magic");
  let fv = get_u32 "format version" in
  if fv <> snapshot_format_version then
    raise
      (Corrupt
         (Printf.sprintf "format version %d (this build reads %d)" fv
            snapshot_format_version));
  if get_str 16 "build id" <> Build_id.digest () then
    raise (Corrupt "written by a different build of this binary");
  let file_gen = get_str 16 "generation" in
  let high_water = get_i64 "version counter" in
  let count = get_u32 "entry count" in
  let entries = ref [] in
  for i = 1 to count do
    let plen = get_u32 "record length" in
    let digest = get_str 16 "record digest" in
    let payload = get_str plen "record payload" in
    if Digest.string payload <> digest then
      raise (Corrupt (Printf.sprintf "record %d checksum mismatch" i));
    match (Marshal.from_string payload 0 : persisted_entry) with
    | exception _ -> raise (Corrupt (Printf.sprintf "record %d undecodable" i))
    | pe -> entries := pe :: !entries
  done;
  if !pos <> len then raise (Corrupt "trailing bytes");
  (file_gen, high_water, List.rev !entries)

(* Rebuild what [Marshal] could not carry; [None] drops the entry. *)
let rehydrate_entry (pe : persisted_entry) : persisted_entry option =
  let cp = pe.pe_run.ca_post in
  let compiled = Hashtbl.create (max 4 (List.length pe.pe_compiled)) in
  match
    List.iter
      (fun name ->
        match Hashtbl.find_opt cp.cp_defs name with
        | None -> raise Exit
        | Some md ->
            Hashtbl.replace compiled name (Parser.compile_pattern md.m_pattern))
      pe.pe_compiled
  with
  | exception _ -> None
  | () ->
      Some
        {
          pe with
          pe_run =
            {
              pe.pe_run with
              ca_post =
                {
                  cp with
                  cp_compiled = compiled;
                  cp_tenv = Tenv.rehydrate cp.cp_tenv;
                  cp_senv = Senv.rehydrate cp.cp_senv;
                };
            };
        }

let entry_versions (run : cached_run) : int list =
  [ run.ca_pre_version; run.ca_version; run.ca_post.cp_version ]

(* Accept only entries whose versions cannot collide with numbers this
   process has already bound, and reserve the accepted range by
   advancing the counter past it (see the module comment above). *)
let rec adopt_versions (candidates : persisted_entry list) :
    persisted_entry list =
  let cur0 = Atomic.get version_counter in
  let safe =
    List.filter
      (fun pe ->
        List.for_all (fun v -> v = 0 || v > cur0) (entry_versions pe.pe_run))
      candidates
  in
  let vmax =
    List.fold_left
      (fun m pe -> List.fold_left max m (entry_versions pe.pe_run))
      cur0 safe
  in
  if vmax = cur0 then safe
  else if Atomic.compare_and_set version_counter cur0 vmax then safe
  else adopt_versions candidates

let load_store (cache : cached_run Cache.t) (path : string) : snapshot_load =
  Obs.with_span ~cat:"snapshot" "load" @@ fun () ->
  let degraded msg =
    Obs.Metrics.incr (Obs.Metrics.counter "snapshot.load.warnings");
    { ld_entries = 0; ld_dropped = 0; ld_warnings = 1; ld_error = Some msg }
  in
  if not (Sys.file_exists path) then cold_load
  else
    match
      Failpoint.hit ~loc:Loc.dummy "snapshot/load";
      In_channel.with_open_bin path In_channel.input_all
    with
    | exception Diag.Error d -> degraded d.Diag.message
    | exception Sys_error msg -> degraded msg
    | raw -> (
        match parse_snapshot raw with
        | exception Corrupt msg -> degraded (Printf.sprintf "%s: %s" path msg)
        | exception _ -> degraded (path ^ ": unreadable snapshot")
        | file_gen, high_water, raw_entries ->
            let rehydrated, broken =
              List.fold_left
                (fun (ok, bad) pe ->
                  match rehydrate_entry pe with
                  | Some pe -> (pe :: ok, bad)
                  | None -> (ok, bad + 1))
                ([], 0) raw_entries
            in
            let rehydrated = List.rev rehydrated in
            let accepted =
              if file_gen = generation () then begin
                (* even on the trusted path, never leave the counter
                   below the writer's high water: numbers the writer
                   allocated must stay un-mintable here (see the
                   version-safety module comment) *)
                let rec reserve () =
                  let cur = Atomic.get version_counter in
                  if
                    high_water > cur
                    && not
                         (Atomic.compare_and_set version_counter cur
                            high_water)
                  then reserve ()
                in
                reserve ();
                rehydrated
              end
              else adopt_versions rehydrated
            in
            List.iter
              (fun pe ->
                Cache.add cache ~size_bytes:pe.pe_size pe.pe_key pe.pe_run)
              accepted;
            let dropped =
              broken + List.length rehydrated - List.length accepted
            in
            Obs.Metrics.incr ~by:(List.length accepted)
              (Obs.Metrics.counter "snapshot.load.entries");
            if dropped > 0 then
              Obs.Metrics.incr ~by:dropped
                (Obs.Metrics.counter "snapshot.load.dropped");
            {
              ld_entries = List.length accepted;
              ld_dropped = dropped;
              ld_warnings = 0;
              ld_error = None;
            })

(* ------------------------------------------------------------------ *)
(* Metrics publication                                                 *)
(* ------------------------------------------------------------------ *)

(** Publish the engine's point-in-time statistics into the {!Obs.Metrics}
    registry (under [engine.*] and [cache.*]), so [--metrics] dumps and
    worker snapshots carry them alongside the hot-path counters the
    pipeline stages maintain themselves.  Uses absolute [set], so calling
    it repeatedly is idempotent per engine. *)
let publish_metrics (t : t) : unit =
  let set name v = Obs.Metrics.set (Obs.Metrics.counter name) v in
  set "engine.invocations_expanded" t.stats.invocations_expanded;
  set "engine.meta_declarations_run" t.stats.meta_declarations_run;
  set "engine.macros_defined" t.stats.macros_defined;
  set "engine.fuel_consumed" (fuel_consumed t);
  set "engine.nodes_produced" (nodes_produced t);
  set "cache.hits" t.stats.cache_hits;
  set "cache.misses" t.stats.cache_misses;
  set "cache.evictions" (cache_evictions t);
  set "cache.bypasses" t.stats.cache_bypasses;
  set "cache.bypass.trace" t.stats.cache_bypass_trace;
  set "cache.bypass.failpoints" t.stats.cache_bypass_failpoints;
  set "cache.bypass.uncacheable" t.stats.cache_bypass_uncacheable;
  set "cache.bypass.budget" t.stats.cache_bypass_budget;
  match t.cache with
  | None -> ()
  | Some cache ->
      Obs.Metrics.gauge "cache.entries" (float_of_int (Cache.length cache));
      Obs.Metrics.gauge "cache.used_bytes"
        (float_of_int (Cache.used_bytes cache))
