(** The macro-expansion engine: records [syntax] definitions, runs the
    meta-program ([metadcl], meta functions), expands invocations
    recursively, maintains the object-level symbol table for semantic
    macros, and guarantees pure-C output.

    The engine enforces a {!Ms2_support.Limits.t}: interpreter fuel
    (global and per-invocation), a produced-AST node budget per
    invocation, and the recursive-expansion depth bound.  In recovery
    mode ([~recover:true]) a failed invocation is recorded in the
    engine's diagnostic collector and replaced by a placeholder of its
    syntactic type, so one bad macro no longer hides every later
    error. *)

open Ms2_syntax.Ast
open Ms2_support
module State = Ms2_parser.State
module Tenv = Ms2_typing.Tenv
module Value = Ms2_meta.Value
module Senv = Ms2_csem.Senv

type stats = {
  mutable invocations_expanded : int;
  mutable meta_declarations_run : int;
  mutable macros_defined : int;
  mutable cache_hits : int;  (** fragments replayed from the cache *)
  mutable cache_misses : int;  (** keyed lookups that found nothing *)
  mutable cache_evictions : int;  (** entries dropped for the byte budget *)
  mutable cache_bypasses : int;
      (** fragments the cache stood aside for (the sum of the labeled
          bypass counters below) *)
  mutable cache_bypass_trace : int;
      (** bypasses because trace mode was on (the trace log is a side
          effect a replay would skip) *)
  mutable cache_bypass_failpoints : int;
      (** bypasses because failpoints were armed (replays would mask
          injected failures) *)
  mutable cache_bypass_uncacheable : int;
      (** bypasses because the session state had no trustworthy digest
          (e.g. a meta closure over local scopes) *)
  mutable cache_bypass_budget : int;
      (** bypasses because a replay would overdraw the remaining global
          budget (the real run must happen, and fail, for real) *)
  mutable frag_speculated : int;
      (** fragments that ran speculatively on a worker domain and
          produced a verdict; always [frag_committed +
          frag_revalidated] *)
  mutable frag_committed : int;
      (** speculative results that passed commit-time validation and
          were spliced into the output *)
  mutable frag_revalidated : int;
      (** speculative results discarded at commit time (stale reads,
          shared-state writes, worker failure) and re-expanded
          sequentially *)
  mutable frag_abort_defs_bump : int;
      (** aborts: the fragment defined or redefined a macro *)
  mutable frag_abort_gensym_mint : int;
      (** aborts: the fragment minted generated names or anonymous
          tags *)
  mutable frag_abort_meta_decl : int;
      (** aborts: the fragment ran a [metadcl] *)
  mutable frag_abort_stale_read : int;
      (** aborts: reads not provably fresh (open scopes, undiffable
          symbol-table delta, or commit-time validation failure) *)
  mutable frag_abort_foreign_closure : int;
      (** aborts: a global was bound to a meta closure, which cannot
          cross engines *)
}

type checkpoint
(** A session checkpoint: captures the state a failed fragment could
    corrupt (macro tables, meta type environment, global meta
    environment, object-level symbol table).  Deliberately {e not}
    captured: the gensym counter (names stay burned across a rollback),
    statistics, fuel already consumed, and recorded diagnostics.  A
    checkpoint is never mutated, so one supports any number of
    rollbacks. *)

type cached_run
(** A stored expansion: the produced program, the post-run session state
    (replayed through the rollback machinery), and resource deltas. *)

type t = {
  macros : (string, State.macro_sig) Hashtbl.t;
  compiled : (string, State.compiled_pattern) Hashtbl.t;
  defs : (string, macro_def) Hashtbl.t;
  tenv : Tenv.t;
  env : Value.env;  (** persistent global meta environment *)
  senv : Senv.t;  (** object-level symbol table (semantic macros) *)
  gensym : Gensym.t;
  limits : Limits.t;  (** resource governance *)
  watchdog : Watchdog.t;
      (** wall-clock deadline: armed per fragment, narrowed per
          invocation *)
  transactional : bool;
      (** checkpoint/rollback session state around each fragment *)
  compile_patterns : bool;
  provenance : bool;
      (** stamp expansion provenance onto produced locations (backtrace
          chains); off only for overhead benchmarking *)
  mutable recover : bool;  (** graceful degradation on *)
  diags : Diag.collector;  (** diagnostics recorded by recovery mode *)
  mutable trace : Format.formatter option;
      (** when set, every invocation expansion is logged *)
  stats : stats;
  mutable defs_version : int;
      (** moved on every engine-side macro-table mutation; equal
          versions imply equal tables at fragment boundaries.  Versions
          are allocated from a process-global atomic counter, so the
          implication holds across all engines in the process (version
          0 = pristine empty tables) — which is what makes a cache
          store shared between engines sound *)
  mutable fp_tables_memo : (int * string) option;
      (** memoized macro-tables section of {!fingerprint}, keyed by
          [defs_version] *)
  cache : cached_run Cache.t option;  (** [None] = caching disabled *)
}

val create_store : ?budget_bytes:int -> unit -> cached_run Cache.t
(** A standalone expansion-cache store, for sharing between engines
    (the [--jobs-mode=domains] driver and the serve worker pool give
    one store to every per-file/per-worker engine via [?cache_store]).
    The store is domain-safe: sharded by key digest with one mutex per
    shard, merged counters (see {!Cache}). *)

val create :
  ?limits:Limits.t -> ?compile_patterns:bool -> ?hygienic:bool ->
  ?recover:bool -> ?provenance:bool -> ?transactional:bool ->
  ?cache:bool -> ?cache_bytes:int -> ?cache_store:cached_run Cache.t ->
  unit -> t
(** @param limits resource bounds (default {!Limits.default})
    @param compile_patterns compile invocation parsers at definition
    time (default true; disable for the ablation benchmark)
    @param hygienic automatic renaming of template-introduced block
    locals (default false)
    @param recover record expansion failures and substitute placeholder
    nodes instead of aborting at the first one (default false)
    @param provenance stamp expansion provenance (macro + call site)
    onto every produced location (default true; disable only for the
    overhead benchmark)
    @param transactional checkpoint session state on each
    {!expand_source} and roll it back when the fragment fails (default
    true; disable only for the overhead benchmark)
    @param cache content-addressed expansion caching: identical
    fragments expanded against identical session state replay their
    recorded output and state delta instead of re-running (default
    true; disable for the ablation benchmark).  Runs that mint
    generated names or anonymous tags, produce diagnostics, or execute
    under trace mode / armed failpoints are never stored or replayed
    @param cache_bytes cache byte budget (default
    {!Cache.default_budget_bytes}); least-recently-used entries are
    evicted beyond it
    @param cache_store an existing store to attach instead of creating
    a private one — how engines expanding in parallel domains share
    hits (ignored when [~cache:false]) *)

(** {1 Transactional checkpoints} *)

val checkpoint : t -> checkpoint

val rollback : t -> checkpoint -> unit
(** Restore the engine — in place, so parser states sharing its tables
    stay attached — to the captured state.  Also unwinds meta-env and
    object-level scopes a mid-fragment abort left open, and restores
    [defs_version] to its value at capture (table content at a given
    version is unique, so returning to the tables is returning to the
    version) — expansion-cache keys stay stable across the
    rollback-per-request pattern of serve sessions. *)

val fingerprint : t -> string
(** A structural digest of the rollback-covered session state, for
    asserting the rollback invariant in tests. *)

val expand_invocation : t -> invocation -> Value.t
(** Run a macro body on pattern-bound actuals under the per-invocation
    fuel and node budgets; checks the result against the declared
    return type. *)

val register_macro_def : t -> macro_def -> unit

val expand_program : t -> program -> program
(** Expand a parsed program to pure C.  In recovery mode, failed
    invocations become placeholder nodes and their diagnostics are
    available from {!diagnostics}. *)

val expand_source :
  t ->
  ?source:string ->
  ?deadline_ms:int ->
  ?fragment_jobs:int ->
  ?fragment_min:int ->
  string ->
  program
(** Parse with this engine's macro table and meta type environment
    (definitions from earlier calls remain in force), then expand.
    [deadline_ms] — a caller's remaining wall-clock budget, e.g. a serve
    request's propagated deadline — narrows the fragment watchdog for
    this call; it can never extend past [limits.timeout_ms].  It is not
    part of the cache key: a cache hit replays instantly regardless.

    [fragment_jobs] (default 1 = off) > 1 enables intra-file fragment
    parallelism on a cache miss: the file is split into top-level
    fragments, definition-bearing fragments expand sequentially as
    barriers, and runs of pure-invocation fragments between barriers
    expand speculatively on [fragment_jobs] domains against
    snapshot-isolated engine copies, committing in fragment order.  A
    speculation whose reads turn out stale at commit time is discarded
    and re-expanded sequentially, so the output — bytes, diagnostics,
    diagnostic order, first-fatal behavior, resource accounting — is
    identical to a sequential run.  Files with fewer than
    [fragment_min] fragments (default 8), trace mode (announced in the
    trace log), profile/recording observability modes, and
    non-transactional engines all degrade to the sequential path. *)

val diagnostics : t -> Diag.t list
(** Diagnostics recorded by recovery mode so far, oldest first. *)

val fuel_consumed : t -> int
(** Interpreter steps consumed over this engine's lifetime. *)

val nodes_produced : t -> int
(** AST nodes charged to template fills over this engine's lifetime. *)

val cache_evictions : t -> int
(** Entries the engine's cache store has dropped for the byte budget —
    a merged sweep over the store's shards, refreshed on demand rather
    than per miss (the sweep costs more than the rest of the store
    path), so read this instead of [stats.cache_evictions]. *)

val publish_metrics : t -> unit
(** Publish the engine's point-in-time statistics (and cache occupancy
    gauges) into the {!Obs.Metrics} registry under [engine.*] and
    [cache.*].  Idempotent per engine (absolute sets, not increments);
    call before {!Obs.Metrics.to_json} or a worker snapshot. *)

(** {1 Durable cache snapshots}

    Persist a shared expansion-cache store across processes so a
    restarted batch or daemon starts warm.  The on-disk container is
    versioned, length-prefixed and per-record checksummed, and stamped
    with the writing binary's {!Build_id} fingerprint; {e any}
    integrity failure (truncation, bit-flip, format skew, a snapshot
    written by a different build — [Marshal] only ever decodes bytes
    this build wrote) degrades the whole load to a cold cache — a
    warning counter ([snapshot.load.warnings] in {!Obs.Metrics}),
    never a crash and never a wrong replay.  Entries are re-verified
    against the [defs_version] discipline before use: version numbers
    from another process — including a fork sibling, which the
    pid-mixed process generation never mistakes for the writer — are
    adopted only when they cannot collide with numbers this process
    has already bound (see engine.ml for the full argument). *)

type snapshot_save = {
  sv_entries : int;  (** entries written *)
  sv_skipped : int;  (** unmarshalable entries (meta-closure globals) *)
  sv_bytes : int;  (** snapshot file size *)
}

type snapshot_load = {
  ld_entries : int;  (** entries restored into the store *)
  ld_dropped : int;  (** version-unsafe or unrebuildable entries *)
  ld_warnings : int;  (** 1 when integrity failed and the load degraded *)
  ld_error : string option;  (** the reason, when [ld_warnings > 0] *)
}

val save_store :
  cached_run Cache.t -> string -> (snapshot_save, string) result
(** Serialize every live entry to [path] via {!Atomic_io.write} (so a
    crash mid-save never clobbers the previous snapshot).  Safe to call
    while other domains use the store.  Subject to the [snapshot/save]
    and [io/rename] failpoints. *)

val load_store : cached_run Cache.t -> string -> snapshot_load
(** Restore a snapshot into [cache].  A missing file is a silent cold
    start; a corrupt file is a cold start with [ld_warnings = 1] and
    the reason in [ld_error].  Never raises.  Subject to the
    [snapshot/load] failpoint. *)
