(** Content-addressed expansion caching: key construction and a
    byte-budgeted LRU store.

    {b The key.}  A fragment's expansion is a pure function of the
    fragment text and the session state it runs against.  {!key} digests
    everything the pipeline can read:

    - the fragment text and its source name (locations embed the name,
      so the same text under another name renders differently);
    - the macro tables, summarized by the engine's definition-table
      version counter — every mutation (registration or rollback) bumps
      it, and versions are never reused for different contents, so equal
      version implies equal tables within one engine;
    - the meta type environment, the global meta environment (by value),
      and the object-level symbol table — a [metadcl] fragment mutates
      these without touching the macro tables;
    - the resource limits and the engine's behavior flags (hygiene,
      provenance, recovery, pattern compilation): each changes the
      produced program or its locations.

    Keys are {e over}-precise by construction: any state difference that
    cannot actually influence the output merely costs a miss, never a
    wrong hit.

    {b What cannot be keyed.}  Meta globals can hold closures.  A
    closure's behavior is its parameters, its body, and its captured
    environment; when the captured environment is just the global scope
    (the common case — the globals are already in the key, and the body
    and parameters are pure data) the closure digests fine.  A closure
    that captured {e local} scopes has no finite digest we can trust, so
    {!key} raises {!Uncacheable} and the engine expands for real.

    {b Generated names.}  The gensym counter is deliberately {e not}
    part of the key.  Instead, the engine refuses to store any run that
    minted generated names (or anonymous struct tags): those counters
    are monotonic and never rolled back, so a pre-state that included
    them could never recur anyway — the entry would be dead weight — and
    a run that never consulted them cannot depend on them.  Hygiene is
    therefore preserved bit-for-bit: every expansion that allocates
    fresh names really runs, and cached replays are exactly the runs
    whose output provably does not mention fresh names.

    {b The store} is a plain string-keyed table with last-use ticks and
    a byte budget; insertion evicts least-recently-used entries until
    the new entry fits.  Callers pass a byte estimate with each entry
    ([Obj.reachable_words] is the fallback, but walking a whole stored
    run is itself a measurable clean-path cost, and it over-counts
    structure shared with live engine state). *)

open Ms2_support
module Tenv = Ms2_typing.Tenv
module Senv = Ms2_csem.Senv
module Value = Ms2_meta.Value

exception Uncacheable

(* ------------------------------------------------------------------ *)
(* Key construction                                                    *)
(* ------------------------------------------------------------------ *)

(* Meta values digest structurally.  Closures: parameters and body are
   pure data; the captured environment must be the global scope alone
   (see the module comment), which the caller digests separately. *)
let rec add_value b (v : Value.t) : unit =
  match v with
  | Value.Vint n ->
      Buffer.add_char b 'i';
      Buffer.add_string b (string_of_int n)
  | Value.Vstring s ->
      Buffer.add_char b 's';
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s
  | Value.Vnode n ->
      Buffer.add_char b 'n';
      Buffer.add_string b (Marshal.to_string n [])
  | Value.Vlist items ->
      Buffer.add_char b '[';
      List.iter (add_value b) items;
      Buffer.add_char b ']'
  | Value.Vtuple fields ->
      Buffer.add_char b '{';
      List.iter
        (fun (name, v) ->
          Buffer.add_string b name;
          Buffer.add_char b '=';
          add_value b v)
        fields;
      Buffer.add_char b '}'
  | Value.Vbuiltin name ->
      Buffer.add_char b 'b';
      Buffer.add_string b name
  | Value.Vvoid -> Buffer.add_char b 'v'
  | Value.Vclosure cl ->
      (match cl.Value.cl_env.Value.scopes with
      | [ _global ] -> ()
      | _ -> raise Uncacheable);
      Buffer.add_char b 'c';
      Buffer.add_string b (Marshal.to_string cl.Value.cl_params []);
      Buffer.add_string b (Marshal.to_string cl.Value.cl_body [])

let digest_globals (env : Value.env) : string =
  let global =
    match List.rev env.Value.scopes with
    | global :: _ -> global
    | [] -> raise Uncacheable
  in
  let b = Buffer.create 256 in
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) global []
  |> List.sort (fun (a, _) (c, _) -> String.compare a c)
  |> List.iter (fun (name, v) ->
         Buffer.add_string b name;
         Buffer.add_char b '=';
         add_value b v);
  Digest.string (Buffer.contents b)

(** The cache key for expanding [text] against the given session state.
    @raise Uncacheable when the state has no trustworthy finite digest
    (closures over local scopes, a non-global meta scope stack). *)
let key ~defs_version ~(env : Value.env) ~tenv ~senv ~(limits : Limits.t)
    ~flags ~source (text : string) : string =
  (* mid-expansion states (open meta scopes) are not cacheable keys *)
  (match env.Value.scopes with [ _ ] -> () | _ -> raise Uncacheable);
  let b = Buffer.create 512 in
  Buffer.add_string b (string_of_int defs_version);
  Buffer.add_char b '|';
  Buffer.add_string b (digest_globals env);
  Buffer.add_char b '|';
  Buffer.add_string b (Tenv.digest tenv);
  Buffer.add_char b '|';
  Buffer.add_string b (Senv.digest senv);
  Buffer.add_char b '|';
  Buffer.add_string b (Limits.to_string limits);
  Buffer.add_char b '|';
  Buffer.add_string b flags;
  Buffer.add_char b '|';
  Buffer.add_string b source;
  Buffer.add_char b '|';
  Buffer.add_string b text;
  Digest.string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* LRU store                                                           *)
(* ------------------------------------------------------------------ *)

type 'v entry = { value : 'v; size : int; mutable last_use : int }

type 'v t = {
  table : (string, 'v entry) Hashtbl.t;
  budget_bytes : int;
  mutable used_bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_budget_bytes = 64 * 1024 * 1024

let create ?(budget_bytes = default_budget_bytes) () : 'v t =
  {
    table = Hashtbl.create 64;
    budget_bytes;
    used_bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let find (t : 'v t) (key : string) : 'v option =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(* Evict the least-recently-used entry.  A linear scan: budgets hold at
   most a few thousand entries, and eviction is the rare path. *)
let evict_one (t : 'v t) : unit =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, e) ->
      Hashtbl.remove t.table key;
      t.used_bytes <- t.used_bytes - e.size;
      t.evictions <- t.evictions + 1;
      Obs.instant ~cat:"cache" "evict"
        ~args:(fun () -> [ ("bytes", Obs.Int e.size) ])

let word_bytes = Sys.word_size / 8

let add ?size_bytes (t : 'v t) (key : string) (value : 'v) : unit =
  if not (Hashtbl.mem t.table key) then begin
    let size =
      match size_bytes with
      | Some n -> n
      | None -> (Obj.reachable_words (Obj.repr value) + 16) * word_bytes
    in
    if size <= t.budget_bytes then begin
      while
        t.used_bytes + size > t.budget_bytes && Hashtbl.length t.table > 0
      do
        evict_one t
      done;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.table key { value; size; last_use = t.tick };
      t.used_bytes <- t.used_bytes + size
    end
  end

let length (t : 'v t) : int = Hashtbl.length t.table
let used_bytes (t : 'v t) : int = t.used_bytes
let hits (t : 'v t) : int = t.hits
let misses (t : 'v t) : int = t.misses
let evictions (t : 'v t) : int = t.evictions
