(** Content-addressed expansion caching: key construction and a
    byte-budgeted LRU store.

    {b The key.}  A fragment's expansion is a pure function of the
    fragment text and the session state it runs against.  {!key} digests
    everything the pipeline can read:

    - the fragment text and its source name (locations embed the name,
      so the same text under another name renders differently);
    - the macro tables, summarized by the engine's definition-table
      version counter — every mutation (registration or rollback) bumps
      it, and versions are never reused for different contents, so equal
      version implies equal tables within one engine;
    - the meta type environment, the global meta environment (by value),
      and the object-level symbol table — a [metadcl] fragment mutates
      these without touching the macro tables;
    - the resource limits and the engine's behavior flags (hygiene,
      provenance, recovery, pattern compilation): each changes the
      produced program or its locations.

    Keys are {e over}-precise by construction: any state difference that
    cannot actually influence the output merely costs a miss, never a
    wrong hit.

    {b What cannot be keyed.}  Meta globals can hold closures.  A
    closure's behavior is its parameters, its body, and its captured
    environment; when the captured environment is just the global scope
    (the common case — the globals are already in the key, and the body
    and parameters are pure data) the closure digests fine.  A closure
    that captured {e local} scopes has no finite digest we can trust, so
    {!key} raises {!Uncacheable} and the engine expands for real.

    {b Generated names.}  The gensym counter is deliberately {e not}
    part of the key.  Instead, the engine refuses to store any run that
    minted generated names (or anonymous struct tags): those counters
    are monotonic and never rolled back, so a pre-state that included
    them could never recur anyway — the entry would be dead weight — and
    a run that never consulted them cannot depend on them.  Hygiene is
    therefore preserved bit-for-bit: every expansion that allocates
    fresh names really runs, and cached replays are exactly the runs
    whose output provably does not mention fresh names.

    {b The store} is a string-keyed table with last-use ticks and a
    byte budget; insertion evicts least-recently-used entries until the
    new entry fits.  Callers pass a byte estimate with each entry
    ([Obj.reachable_words] is the fallback, but walking a whole stored
    run is itself a measurable clean-path cost, and it over-counts
    structure shared with live engine state).

    {b Domain safety.}  Under [--jobs-mode=domains] every worker reads
    and writes one shared store, so the table is {e sharded}: 16
    independent LRU shards, each with its own mutex, table, recency
    tick, slice of the byte budget, and hit/miss/evict counters.  The
    shard index is the first byte of the key — keys are MD5 digests, so
    the byte is uniform and two domains working on unrelated fragments
    almost never contend on a lock.  The public counters
    ({!hits}/{!misses}/{!evictions}/{!length}/{!used_bytes}) sum over
    shards: callers see one {e merged} view of the store, never
    per-worker or per-shard slices.  LRU recency is likewise per shard,
    which is exactly as approximate as segmented LRU always is — an
    entry competes for budget only against keys that hash beside it. *)

open Ms2_support
module Tenv = Ms2_typing.Tenv
module Senv = Ms2_csem.Senv
module Value = Ms2_meta.Value

exception Uncacheable

(* ------------------------------------------------------------------ *)
(* Key construction                                                    *)
(* ------------------------------------------------------------------ *)

(* Meta values digest structurally.  Closures: parameters and body are
   pure data; the captured environment must be the global scope alone
   (see the module comment), which the caller digests separately. *)
let rec add_value b (v : Value.t) : unit =
  match v with
  | Value.Vint n ->
      Buffer.add_char b 'i';
      Buffer.add_string b (string_of_int n)
  | Value.Vstring s ->
      Buffer.add_char b 's';
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s
  | Value.Vnode n ->
      Buffer.add_char b 'n';
      Buffer.add_string b (Marshal.to_string n [])
  | Value.Vlist items ->
      Buffer.add_char b '[';
      List.iter (add_value b) items;
      Buffer.add_char b ']'
  | Value.Vtuple fields ->
      Buffer.add_char b '{';
      List.iter
        (fun (name, v) ->
          Buffer.add_string b name;
          Buffer.add_char b '=';
          add_value b v)
        fields;
      Buffer.add_char b '}'
  | Value.Vbuiltin name ->
      Buffer.add_char b 'b';
      Buffer.add_string b name
  | Value.Vvoid -> Buffer.add_char b 'v'
  | Value.Vclosure cl ->
      (match cl.Value.cl_env.Value.scopes with
      | [ _global ] -> ()
      | _ -> raise Uncacheable);
      Buffer.add_char b 'c';
      Buffer.add_string b (Marshal.to_string cl.Value.cl_params []);
      Buffer.add_string b (Marshal.to_string cl.Value.cl_body [])

let digest_globals (env : Value.env) : string =
  let global =
    match List.rev env.Value.scopes with
    | global :: _ -> global
    | [] -> raise Uncacheable
  in
  let b = Buffer.create 256 in
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) global []
  |> List.sort (fun (a, _) (c, _) -> String.compare a c)
  |> List.iter (fun (name, v) ->
         Buffer.add_string b name;
         Buffer.add_char b '=';
         add_value b v);
  Digest.string (Buffer.contents b)

(** The cache key for expanding [text] against the given session state.
    @raise Uncacheable when the state has no trustworthy finite digest
    (closures over local scopes, a non-global meta scope stack). *)
let key ~defs_version ~(env : Value.env) ~tenv ~senv ~(limits : Limits.t)
    ~flags ~source (text : string) : string =
  (* mid-expansion states (open meta scopes) are not cacheable keys *)
  (match env.Value.scopes with [ _ ] -> () | _ -> raise Uncacheable);
  let b = Buffer.create 512 in
  Buffer.add_string b (string_of_int defs_version);
  Buffer.add_char b '|';
  Buffer.add_string b (digest_globals env);
  Buffer.add_char b '|';
  Buffer.add_string b (Tenv.digest tenv);
  Buffer.add_char b '|';
  Buffer.add_string b (Senv.digest senv);
  Buffer.add_char b '|';
  Buffer.add_string b (Limits.to_string limits);
  Buffer.add_char b '|';
  Buffer.add_string b flags;
  Buffer.add_char b '|';
  Buffer.add_string b source;
  Buffer.add_char b '|';
  Buffer.add_string b text;
  Digest.string (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* LRU store                                                           *)
(* ------------------------------------------------------------------ *)

type 'v entry = { value : 'v; size : int; mutable last_use : int }

type 'v shard = {
  lock : Mutex.t;
  table : (string, 'v entry) Hashtbl.t;
  budget_bytes : int;  (** this shard's slice of the whole budget *)
  mutable used_bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let max_shards = 16 (* a power of two; index = first key byte masked *)

(* Splitting the budget must not split it into uselessness: a shard
   whose slice cannot hold a typical entry silently caches nothing.  So
   the shard count scales with the budget — halving until every slice
   clears [min_slice_bytes] — and a tiny (test-sized) budget collapses
   to one shard, which is exactly the pre-sharding store. *)
let min_slice_bytes = 1024 * 1024

type 'v t = { shards : 'v shard array }

let default_budget_bytes = 64 * 1024 * 1024

let create ?(budget_bytes = default_budget_bytes) () : 'v t =
  let nshards =
    let n = ref max_shards in
    while !n > 1 && budget_bytes / !n < min_slice_bytes do
      n := !n / 2
    done;
    !n
  in
  (* ceiling division: the shards must jointly cover the whole budget *)
  let slice = (budget_bytes + nshards - 1) / nshards in
  {
    shards =
      Array.init nshards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 16;
            budget_bytes = slice;
            used_bytes = 0;
            tick = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
  }

let shard_of (t : 'v t) (key : string) : 'v shard =
  (* keys are MD5 digests (uniform bytes); an empty key still routes *)
  let b = if String.length key = 0 then 0 else Char.code key.[0] in
  t.shards.(b land (Array.length t.shards - 1))

let locked (s : 'v shard) f =
  Mutex.lock s.lock;
  match f () with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let find (t : 'v t) (key : string) : 'v option =
  let s = shard_of t key in
  locked s (fun () ->
      s.tick <- s.tick + 1;
      match Hashtbl.find_opt s.table key with
      | Some e ->
          e.last_use <- s.tick;
          s.hits <- s.hits + 1;
          Some e.value
      | None ->
          s.misses <- s.misses + 1;
          None)

(* Evict the least-recently-used entry of one shard (lock held).  A
   linear scan: budgets hold at most a few thousand entries, and
   eviction is the rare path. *)
let evict_one (s : 'v shard) : unit =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (key, e))
      s.table None
  in
  match victim with
  | None -> ()
  | Some (key, e) ->
      Hashtbl.remove s.table key;
      s.used_bytes <- s.used_bytes - e.size;
      s.evictions <- s.evictions + 1;
      Obs.instant ~cat:"cache" "evict"
        ~args:(fun () -> [ ("bytes", Obs.Int e.size) ])

let word_bytes = Sys.word_size / 8

let add ?size_bytes (t : 'v t) (key : string) (value : 'v) : unit =
  let s = shard_of t key in
  (* size the entry outside the lock: [Obj.reachable_words] can walk a
     large stored run *)
  let size =
    match size_bytes with
    | Some n -> n
    | None -> (Obj.reachable_words (Obj.repr value) + 16) * word_bytes
  in
  locked s (fun () ->
      if (not (Hashtbl.mem s.table key)) && size <= s.budget_bytes then begin
        while
          s.used_bytes + size > s.budget_bytes && Hashtbl.length s.table > 0
        do
          evict_one s
        done;
        s.tick <- s.tick + 1;
        Hashtbl.replace s.table key { value; size; last_use = s.tick };
        s.used_bytes <- s.used_bytes + size
      end)

(* Snapshot support: walk every live entry.  Each shard's portion runs
   under that shard's lock, so a fold taken while other domains expand
   sees a consistent per-shard view (entries may move between shards'
   reads, but every observed entry is a real, complete entry). *)
let fold (t : 'v t) (f : string -> 'v -> int -> 'a -> 'a) (init : 'a) : 'a =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          Hashtbl.fold (fun key e acc -> f key e.value e.size acc) s.table acc))
    init t.shards

(* The merged view: sum over shards.  Each shard is read under its lock
   so a concurrent expansion can shift counts between two reads, but
   every count is a real event — nothing is lost or double-counted. *)
let sum_shards (t : 'v t) (f : 'v shard -> int) : int =
  Array.fold_left (fun acc s -> acc + locked s (fun () -> f s)) 0 t.shards

let length (t : 'v t) : int = sum_shards t (fun s -> Hashtbl.length s.table)
let used_bytes (t : 'v t) : int = sum_shards t (fun s -> s.used_bytes)
let hits (t : 'v t) : int = sum_shards t (fun s -> s.hits)
let misses (t : 'v t) : int = sum_shards t (fun s -> s.misses)
let evictions (t : 'v t) : int = sum_shards t (fun s -> s.evictions)
