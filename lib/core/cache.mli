(** Content-addressed expansion caching: key construction over session
    state, and a byte-budgeted LRU store.  See [cache.ml] for the
    soundness story (what the key covers, why generated names force a
    store refusal rather than a key salt). *)

open Ms2_support
module Tenv = Ms2_typing.Tenv
module Senv = Ms2_csem.Senv
module Value = Ms2_meta.Value

exception Uncacheable
(** The session state has no trustworthy finite digest (e.g. a meta
    global holds a closure over local scopes); the caller must expand
    for real. *)

val key :
  defs_version:int ->
  env:Value.env ->
  tenv:Tenv.t ->
  senv:Senv.t ->
  limits:Limits.t ->
  flags:string ->
  source:string ->
  string ->
  string
(** Digest of everything a fragment expansion can read: the text, its
    source name, the macro tables (via the engine's definition-table
    version), the meta type environment, the global meta environment by
    value, the object-level symbol table, the resource limits, and the
    engine behavior flags.  @raise Uncacheable — see above. *)

(** {1 LRU store}

    Sharded by the first key byte with one mutex per shard, so a store
    shared across [--jobs-mode=domains] workers serializes only
    same-shard operations.  The shard count scales with the byte budget
    (16 at the default budget, fewer when slicing further would leave a
    shard too small to hold a typical entry; a test-sized budget gets a
    single shard).  Counters and occupancy report the {e merged}
    (summed-over-shards) view. *)

type 'v t

val default_budget_bytes : int
(** 64 MiB. *)

val create : ?budget_bytes:int -> unit -> 'v t

val find : 'v t -> string -> 'v option
(** Lookup; refreshes recency and counts a hit or a miss. *)

val add : ?size_bytes:int -> 'v t -> string -> 'v -> unit
(** Insert, evicting least-recently-used entries until the new entry
    fits the byte budget.  [size_bytes] is the caller's estimate of the
    entry's weight; without it the entry is sized via
    [Obj.reachable_words] (exact but walks the whole value, and
    over-counts structure shared with live state).  An entry larger
    than the whole budget is dropped; an existing key is left as is. *)

val fold : 'v t -> (string -> 'v -> int -> 'a -> 'a) -> 'a -> 'a
(** [fold t f init] folds [f key value size_bytes acc] over every live
    entry (all shards; order unspecified).  Each shard is visited under
    its own lock, so folding a store shared with running workers is
    safe — but [f] must not call back into the cache.  This is the
    snapshot path ({!Engine.save_store} wants key, value and the size
    estimate the entry was admitted with). *)

val length : 'v t -> int
val used_bytes : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
