(** FIRST sets: which tokens can begin a phrase of a given sort.

    The pattern parser "requires that detecting the end of a repetition
    or the presence of an optional element require only one token
    lookahead" (paper, §2).  Deciding that needs to know, for each
    syntactic sort, the set of tokens a phrase of that sort can start
    with.  Token sets are represented as lists of {!tclass}: exact tokens
    plus classes for the unbounded token families. *)

open Ms2_syntax
module Sort = Ms2_mtype.Sort

type tclass =
  | Exact of Token.t
  | Any_ident
  | Any_int
  | Any_char
  | Any_string

let matches (c : tclass) (tok : Token.t) : bool =
  match (c, tok) with
  | Exact t, tok -> Token.equal t tok
  | Any_ident, Token.IDENT _ -> true
  | Any_int, Token.INT_LIT _ | Any_int, Token.FLOAT_LIT _ -> true
  | Any_char, Token.CHAR_LIT _ -> true
  | Any_string, Token.STRING_LIT _ -> true
  | (Any_ident | Any_int | Any_char | Any_string), _ -> false

(** Do two token classes overlap (is there a token matched by both)? *)
let overlap (a : tclass) (b : tclass) : bool =
  match (a, b) with
  | Exact t1, Exact t2 -> Token.equal t1 t2
  | Exact t, c | c, Exact t -> matches c t
  | c1, c2 -> c1 = c2

let inter (xs : tclass list) (ys : tclass list) : (tclass * tclass) list =
  List.concat_map (fun x -> List.filter_map (fun y -> if overlap x y then Some (x, y) else None) ys) xs

let pp_tclass ppf = function
  | Exact t -> Fmt.pf ppf "%S" (Token.to_string t)
  | Any_ident -> Fmt.string ppf "<identifier>"
  | Any_int -> Fmt.string ppf "<integer>"
  | Any_char -> Fmt.string ppf "<character>"
  | Any_string -> Fmt.string ppf "<string>"

(* Tokens that can begin an expression.  Placeholders ([$]) may begin any
   phrase inside a template, so DOLLAR is in every sort's FIRST set. *)
let first_exp : tclass list =
  [ Any_ident; Any_int; Any_char; Any_string;
    Exact Token.LPAREN; Exact Token.STAR; Exact Token.AMP;
    Exact Token.MINUS; Exact Token.PLUS; Exact Token.BANG;
    Exact Token.TILDE; Exact Token.PLUSPLUS; Exact Token.MINUSMINUS;
    Exact (Token.KW Token.Ksizeof); Exact Token.DOLLAR ]

let type_spec_keywords : Token.keyword list =
  [ Token.Kvoid; Token.Kchar; Token.Kint; Token.Kfloat; Token.Kdouble;
    Token.Kshort; Token.Klong; Token.Ksigned; Token.Kunsigned; Token.Kenum;
    Token.Kstruct; Token.Kunion; Token.Kconst; Token.Kvolatile ]

let storage_keywords : Token.keyword list =
  [ Token.Ktypedef; Token.Kextern; Token.Kstatic; Token.Kauto;
    Token.Kregister ]

let first_typespec : tclass list =
  Exact Token.AT :: Exact Token.DOLLAR :: Any_ident
  :: List.map (fun k -> Exact (Token.KW k)) type_spec_keywords

let first_decl : tclass list =
  first_typespec
  @ List.map (fun k -> Exact (Token.KW k)) storage_keywords
  @ [ Exact (Token.KW Token.Kmetadcl) ]

let stmt_keywords : Token.keyword list =
  [ Token.Kif; Token.Kwhile; Token.Kdo; Token.Kfor; Token.Kswitch;
    Token.Kcase; Token.Kdefault; Token.Kreturn; Token.Kbreak;
    Token.Kcontinue; Token.Kgoto ]

let first_stmt : tclass list =
  first_exp
  @ [ Exact Token.LBRACE; Exact Token.SEMI ]
  @ List.map (fun k -> Exact (Token.KW k)) stmt_keywords

let first_declarator : tclass list =
  [ Any_ident; Exact Token.STAR; Exact Token.LPAREN; Exact Token.DOLLAR ]

let first_id : tclass list = [ Any_ident; Exact Token.DOLLAR ]
let first_num : tclass list = [ Any_int; Any_char; Exact Token.DOLLAR ]
let first_param : tclass list = first_decl @ first_declarator

(** FIRST set of a sort. *)
let of_sort (sort : Sort.t) : tclass list =
  match sort with
  | Sort.Id -> first_id
  | Sort.Num -> first_num
  | Sort.Exp -> first_exp
  | Sort.Stmt -> first_stmt
  | Sort.Decl -> first_decl
  | Sort.Typespec -> first_typespec
  | Sort.Declarator | Sort.Init_declarator -> first_declarator
  | Sort.Param -> first_param
  | Sort.Enumerator -> first_id

(* The invocation parser consults the FIRST set of a pattern specifier
   once per token while deciding repetition continuation, and specifiers
   live exactly as long as the macro definition that owns them — so an
   identity-keyed memo turns the per-token list rebuild into a pointer
   probe.  The table is a fixed ring: beyond [memo_slots] live
   specifiers the oldest entry is overwritten, costing only a
   recomputation, so the memo can never grow without bound or retain a
   dead definition's specifiers forever. *)
let memo_slots = 32

(* The ring is probed once per token — the hottest shared-state site in
   the parser — so under [--jobs-mode=domains] it is domain-local
   ([Domain.DLS]) rather than locked or atomic: each domain warms its
   own 32 slots (a few recomputations per domain) and then probes with
   zero synchronization and no cross-core cache-line traffic. *)
type pspec_memo = {
  slots : (Ast.pspec * tclass list) option array;
  mutable next : int;
}

let pspec_memo_key : pspec_memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { slots = Array.make memo_slots None; next = 0 })

(* FIRST-set lookups feed the repetition-continuation decision once per
   token; the memo hit/miss split is the signal that tells whether the
   32-slot ring is still sized right for the live macro population. *)
let c_first_hits = Ms2_support.Obs.Metrics.counter "pattern.firstset.memo_hits"
let c_first_misses =
  Ms2_support.Obs.Metrics.counter "pattern.firstset.memo_misses"

(** FIRST set of a pattern specifier. *)
let rec of_pspec (ps : Ast.pspec) : tclass list =
  let memo = Domain.DLS.get pspec_memo_key in
  let rec probe i =
    if i >= memo_slots then begin
      Ms2_support.Obs.Metrics.incr c_first_misses;
      let fs = compute_pspec ps in
      memo.slots.(memo.next) <- Some (ps, fs);
      memo.next <- (memo.next + 1) mod memo_slots;
      fs
    end
    else
      match memo.slots.(i) with
      | Some (p, fs) when p == ps ->
          Ms2_support.Obs.Metrics.incr c_first_hits;
          fs
      | _ -> probe (i + 1)
  in
  probe 0

and compute_pspec (ps : Ast.pspec) : tclass list =
  match ps with
  | Ast.Ps_sort s -> of_sort s
  | Ast.Ps_plus (_, p) -> of_pspec p
  | Ast.Ps_star (_, p) -> of_pspec p  (* may be empty; caller must consider FOLLOW *)
  | Ast.Ps_opt (Some tok, _) -> [ Exact tok ]
  | Ast.Ps_opt (None, p) -> of_pspec p
  | Ast.Ps_tuple pat -> of_pattern pat

(** FIRST set of a pattern (its first element; empty pattern gives []). *)
and of_pattern (pat : Ast.pattern) : tclass list =
  match pat with
  | [] -> []
  | Ast.Pe_token tok :: _ -> [ Exact tok ]
  | Ast.Pe_binder b :: rest -> (
      match b.b_spec with
      | Ast.Ps_star _ | Ast.Ps_opt _ ->
          (* may match empty: include what can follow *)
          of_pspec b.b_spec @ of_pattern rest
      | Ast.Ps_sort _ | Ast.Ps_plus _ | Ast.Ps_tuple _ ->
          of_pspec b.b_spec)

(** Can a phrase of [sort] begin with [tok]?  Used by the invocation
    parser to decide repetition continuation. *)
let sort_starts_with (sort : Sort.t) (tok : Token.t) : bool =
  List.exists (fun c -> matches c tok) (of_sort sort)

let pspec_starts_with (ps : Ast.pspec) (tok : Token.t) : bool =
  List.exists (fun c -> matches c tok) (of_pspec ps)
