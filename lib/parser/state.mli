(** Parser state.

    The parser is fully re-entrant, as the paper requires: all state
    lives in a {!t} value, and nested parses share only the macro
    signature/compiled-parser tables and the meta type environment they
    were given.  The record is exposed because the grammar module
    ([Parser]) and the engine drive it directly. *)

open Ms2_syntax
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Tenv = Ms2_typing.Tenv

(** What the parser needs to know about a defined macro in order to
    parse its invocations. *)
type macro_sig = { sig_ret : Mtype.t; sig_pattern : Ast.pattern }

type t = {
  mutable compile_patterns : bool;
      (** compile each macro's pattern to a specialized parse routine at
          definition time (paper §3's suggested acceleration) *)
  toks : Token.located array;
  mutable pos : int;
  mutable typedef_scopes : (string, unit) Hashtbl.t list;
  macros : (string, macro_sig) Hashtbl.t;
  tenv : Tenv.t;
  mutable in_template : bool;  (** placeholders are live *)
  mutable in_meta : bool;  (** templates, lambdas, meta decls are live *)
  mutable ph_cache : (int * (Ast.expr * Mtype.t) * int) option;
      (** the paper's placeholder tokens: (start, parsed+typed, end) *)
  compiled_patterns : (string, compiled_pattern) Hashtbl.t;
  watchdog : Watchdog.t;
      (** wall-clock deadline, polled on every token consumed *)
}

and compiled_pattern = t -> (string * Ast.actual) list

val create :
  ?macros:(string, macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?compiled:(string, compiled_pattern) Hashtbl.t ->
  ?watchdog:Watchdog.t ->
  Token.located array ->
  t

val of_string :
  ?origin:Ms2_support.Loc.origin ->
  ?macros:(string, macro_sig) Hashtbl.t ->
  ?tenv:Tenv.t ->
  ?compiled:(string, compiled_pattern) Hashtbl.t ->
  ?watchdog:Watchdog.t ->
  ?source:string ->
  ?reject_reserved:bool ->
  string ->
  t
(** [?origin] is forwarded to {!Ms2_syntax.Lexer.tokenize}: provenance
    stamped onto every token (and thus AST) location. *)

(** {1 Token access} *)

val peek_located : t -> Token.located
val peek : t -> Token.t
val peek_ahead : t -> int -> Token.t
val loc : t -> Loc.t
val advance : t -> unit

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise a [Parsing]-phase diagnostic at the current token. *)

val expect : t -> Token.t -> unit
val accept : t -> Token.t -> bool
val expect_ident : t -> Ast.ident

(** {1 Typedef scopes} *)

val push_typedef_scope : t -> unit
val pop_typedef_scope : t -> unit
val with_typedef_scope : t -> (unit -> 'a) -> 'a
val add_typedef : t -> string -> unit
val is_typedef_name : t -> string -> bool

(** {1 Macro table} *)

val find_macro : t -> string -> macro_sig option
val is_macro : t -> string -> bool
val register_macro : t -> string -> macro_sig -> unit

(** {1 Mode switches} *)

val save_modes : t -> bool * bool
val restore_modes : t -> bool * bool -> unit

val in_template_mode : t -> (unit -> 'a) -> 'a
(** Object code inside a backquote. *)

val in_meta_mode : t -> (unit -> 'a) -> 'a
(** Macro bodies and placeholder expressions. *)
