(** The parser: hand-written recursive descent at the declaration and
    statement levels, bottom-up (precedence climbing) at the expression
    level — the architecture the paper describes in §3.

    Context sensitivity is handled exactly as the paper prescribes:

    - [typedef] names are tracked in scoped tables and change parses;
    - macro names are "macro keywords": on encountering one, the parser
      parses the invocation according to the macro's pattern, packages it
      up for later expansion, and uses the macro's declared type to
      decide how to continue the parse;
    - placeholders inside templates are parsed co-routine style: the
      [$]-expression is parsed and typed in the meta environment, cached
      as a "placeholder token" ({!State.t.ph_cache}), and its AST type
      guides template disambiguation (Figures 2 and 3 of the paper). *)

open Ms2_syntax
open Ms2_support
open Ast
open State
module Mtype = Ms2_mtype.Mtype
module Sort = Ms2_mtype.Sort
module Tenv = Ms2_typing.Tenv
module Infer = Ms2_typing.Infer
module Of_cdecl = Ms2_typing.Of_cdecl
module Firstset = Ms2_pattern.Firstset
module Determinism = Ms2_pattern.Determinism

(* ------------------------------------------------------------------ *)
(* Placeholder tokens                                                  *)
(* ------------------------------------------------------------------ *)

(* Type predicates used to decide which syntactic positions a
   placeholder may fill. *)
let stmt_like = function
  | Mtype.Ast Sort.Stmt | Mtype.List (Mtype.Ast Sort.Stmt) -> true
  | _ -> false

let decl_like = function
  | Mtype.Ast Sort.Decl | Mtype.List (Mtype.Ast Sort.Decl) -> true
  | _ -> false

let exp_like ty = Mtype.subtype ty (Mtype.Ast Sort.Exp)
let exp_list_like = function
  | Mtype.List t -> Mtype.subtype t (Mtype.Ast Sort.Exp)
  | _ -> false

let typespec_like = function Mtype.Ast Sort.Typespec -> true | _ -> false

let id_like = function Mtype.Ast Sort.Id -> true | _ -> false

let declarator_like = function
  | Mtype.Ast (Sort.Declarator | Sort.Id) -> true
  | _ -> false

let init_declarator_like = function
  | Mtype.Ast Sort.Init_declarator -> true
  | _ -> false

let init_declarator_list_like = function
  | Mtype.List (Mtype.Ast (Sort.Init_declarator | Sort.Declarator | Sort.Id))
    ->
      true
  | _ -> false

let enumerator_like = function
  | Mtype.Ast (Sort.Enumerator | Sort.Id)
  | Mtype.List (Mtype.Ast (Sort.Enumerator | Sort.Id)) ->
      true
  | _ -> false

let param_like = function
  | Mtype.Ast Sort.Param | Mtype.List (Mtype.Ast Sort.Param) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Compiled-pattern memo                                               *)
(* ------------------------------------------------------------------ *)

(* A compiled invocation parser depends only on the shape of its
   pattern — tokens, binder names, specifiers — never on source
   locations.  Re-expanding the same definition (a header of macro
   definitions fed through the engine once per file, say) therefore
   reuses the previously compiled closure: compilations are memoized
   under a location-insensitive serialization of the pattern shape.
   The table is bounded; at the cap it is cleared rather than grown, so
   pathological definition churn costs only recompilation. *)
let pattern_key (pat : pattern) : string =
  let b = Buffer.create 64 in
  let add_tok tok =
    Buffer.add_string b (Token.to_string tok);
    Buffer.add_char b '\x00'
  in
  let rec add_pat pat =
    List.iter
      (function
        | Pe_token tok ->
            Buffer.add_char b 't';
            add_tok tok
        | Pe_binder bd ->
            Buffer.add_char b 'b';
            Buffer.add_string b bd.b_name.id_name;
            Buffer.add_char b '\x00';
            add_spec bd.b_spec)
      pat;
    Buffer.add_char b ')'
  and add_sep = function
    | None -> Buffer.add_char b '-'
    | Some tok ->
        Buffer.add_char b '/';
        add_tok tok
  and add_spec = function
    | Ps_sort s ->
        Buffer.add_char b 's';
        Buffer.add_string b (Sort.keyword s)
    | Ps_plus (sep, p) ->
        Buffer.add_char b '+';
        add_sep sep;
        add_spec p
    | Ps_star (sep, p) ->
        Buffer.add_char b '*';
        add_sep sep;
        add_spec p
    | Ps_opt (tok, p) ->
        Buffer.add_char b '?';
        add_sep tok;
        add_spec p
    | Ps_tuple pat ->
        Buffer.add_char b '.';
        add_pat pat
  in
  add_pat pat;
  Buffer.contents b

let compiled_pattern_memo : (string, State.compiled_pattern) Hashtbl.t =
  Hashtbl.create 64

(* The memo is probed once per *pattern compilation* — macro definition
   time, not token time — so a plain mutex covers concurrent domains.
   Compiled closures are pure (State.t in, bindings out) and therefore
   safe to share across domains once published. *)
let compiled_pattern_memo_lock = Mutex.create ()
let compiled_pattern_memo_cap = 512
let c_pat_memo_hits = Obs.Metrics.counter "parser.pattern_memo.hits"
let c_pat_memo_misses = Obs.Metrics.counter "parser.pattern_memo.misses"

(* [peek_placeholder st] implements the paper's placeholder tokens: when
   the next token is [$] inside a template, parse the placeholder
   expression in the meta context, perform AST type analysis on it, and
   cache expression and type without consuming input.  Subsequent parser
   routines look at the cached type to decide whether the placeholder is
   the phrase they are looking for. *)
let rec peek_placeholder st : (expr * Mtype.t) option =
  if (not st.in_template) || peek st <> Token.DOLLAR then None
  else
    match st.ph_cache with
    | Some (start, parsed, _) when start = st.pos -> Some parsed
    | _ ->
        let start = st.pos in
        let start_loc = loc st in
        advance st (* over $ *);
        let e =
          in_meta_mode st (fun () ->
              match peek st with
              | Token.IDENT name ->
                  let l = loc st in
                  advance st;
                  mk_expr ~loc:l (E_ident { id_name = name; id_loc = l })
              | Token.LPAREN ->
                  advance st;
                  let e = parse_expr st in
                  expect st Token.RPAREN;
                  e
              | tok ->
                  error st
                    "expected an identifier or a parenthesized expression \
                     after $, found %S"
                    (Token.to_string tok))
        in
        let ty = Infer.type_of st.tenv e in
        let stop = st.pos in
        st.pos <- start;
        st.ph_cache <- Some (start, (e, ty), stop);
        ignore start_loc;
        Some (e, ty)

(** Does the next token begin a placeholder whose type satisfies [pred]? *)
and placeholder_matches st pred =
  match peek_placeholder st with
  | Some (_, ty) -> pred ty
  | None -> false

(** Consume a placeholder; [pred] must accept its type (checked by the
    caller via {!placeholder_matches} or here with [what] naming the
    expected position). *)
and take_placeholder st ~what pred : splice =
  let start_loc = loc st in
  match peek_placeholder st with
  | None -> error st "expected a placeholder"
  | Some (e, ty) ->
      if not (pred ty) then
        Diag.error ~loc:start_loc Diag.Type_check
          "placeholder of type %s cannot stand for %s" (Mtype.to_string ty)
          what;
      (match st.ph_cache with
      | Some (start, _, stop) when start = st.pos -> st.pos <- stop
      | _ -> assert false);
      { sp_expr = e; sp_type = ty; sp_depth = 1; sp_loc = start_loc }

(* ------------------------------------------------------------------ *)
(* Lookahead classification                                            *)
(* ------------------------------------------------------------------ *)

and starts_typename st =
  match peek st with
  | Token.KW
      ( Token.Kvoid | Token.Kchar | Token.Kint | Token.Kfloat | Token.Kdouble
      | Token.Kshort | Token.Klong | Token.Ksigned | Token.Kunsigned
      | Token.Kenum | Token.Kstruct | Token.Kunion | Token.Kconst
      | Token.Kvolatile ) ->
      true
  | Token.AT -> true
  | Token.IDENT name -> is_typedef_name st name
  | Token.DOLLAR -> placeholder_matches st typespec_like
  | _ -> false

and starts_declaration st =
  match peek st with
  | Token.KW
      ( Token.Ktypedef | Token.Kextern | Token.Kstatic | Token.Kauto
      | Token.Kregister | Token.Kmetadcl | Token.Ksyntax ) ->
      true
  | Token.IDENT name when is_macro st name ->
      (* a macro keyword opens a declaration iff the macro returns one *)
      (match find_macro st name with
      | Some msig -> decl_like msig.sig_ret
      | None -> false)
  | Token.DOLLAR ->
      placeholder_matches st (fun ty -> decl_like ty || typespec_like ty)
  | _ -> starts_typename st

(* ------------------------------------------------------------------ *)
(* Expressions (bottom-up precedence parsing)                          *)
(* ------------------------------------------------------------------ *)

and binop_of_token = function
  | Token.STAR -> Some (Mul, 13)
  | Token.SLASH -> Some (Div, 13)
  | Token.PERCENT -> Some (Mod, 13)
  | Token.PLUS -> Some (Add, 12)
  | Token.MINUS -> Some (Sub, 12)
  | Token.SHL -> Some (Shl, 11)
  | Token.SHR -> Some (Shr, 11)
  | Token.LT -> Some (Lt, 10)
  | Token.GT -> Some (Gt, 10)
  | Token.LE -> Some (Le, 10)
  | Token.GE -> Some (Ge, 10)
  | Token.EQEQ -> Some (Eq, 9)
  | Token.NE -> Some (Ne, 9)
  | Token.AMP -> Some (Band, 8)
  | Token.CARET -> Some (Bxor, 7)
  | Token.BAR -> Some (Bor, 6)
  | Token.ANDAND -> Some (Logand, 5)
  | Token.OROR -> Some (Logor, 4)
  | _ -> None

and assignop_of_token = function
  | Token.ASSIGN -> Some A_eq
  | Token.PLUS_ASSIGN -> Some A_add
  | Token.MINUS_ASSIGN -> Some A_sub
  | Token.STAR_ASSIGN -> Some A_mul
  | Token.SLASH_ASSIGN -> Some A_div
  | Token.PERCENT_ASSIGN -> Some A_mod
  | Token.SHL_ASSIGN -> Some A_shl
  | Token.SHR_ASSIGN -> Some A_shr
  | Token.AMP_ASSIGN -> Some A_band
  | Token.CARET_ASSIGN -> Some A_bxor
  | Token.BAR_ASSIGN -> Some A_bor
  | _ -> None

(** Full expression, including the (left-associative) comma operator. *)
and parse_expr st : expr =
  let l = loc st in
  let e = ref (parse_assignment st) in
  while accept st Token.COMMA do
    e := mk_expr ~loc:l (E_comma (!e, parse_assignment st))
  done;
  !e

and parse_assignment st : expr =
  let l = loc st in
  let lhs = parse_conditional st in
  match assignop_of_token (peek st) with
  | Some op ->
      advance st;
      let rhs = parse_assignment st in
      mk_expr ~loc:l (E_assign (op, lhs, rhs))
  | None -> lhs

and parse_conditional st : expr =
  let l = loc st in
  let cond = parse_binary st 4 in
  if accept st Token.QUESTION then begin
    let t = parse_expr st in
    expect st Token.COLON;
    let e = parse_conditional st in
    mk_expr ~loc:l (E_cond (cond, t, e))
  end
  else cond

(* The bottom-up part: precedence climbing over binary operators. *)
and parse_binary st min_prec : expr =
  let l = loc st in
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := mk_expr ~loc:l (E_binary (op, !lhs, rhs))
    | Some _ | None -> continue := false
  done;
  !lhs

and parse_unary st : expr =
  let l = loc st in
  match peek st with
  | Token.PLUSPLUS ->
      advance st;
      mk_expr ~loc:l (E_unary (Preincr, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      mk_expr ~loc:l (E_unary (Predecr, parse_unary st))
  | Token.PLUS ->
      advance st;
      mk_expr ~loc:l (E_unary (Plus, parse_unary st))
  | Token.MINUS ->
      advance st;
      mk_expr ~loc:l (E_unary (Neg, parse_unary st))
  | Token.BANG ->
      advance st;
      mk_expr ~loc:l (E_unary (Lognot, parse_unary st))
  | Token.TILDE ->
      advance st;
      mk_expr ~loc:l (E_unary (Bitnot, parse_unary st))
  | Token.STAR ->
      advance st;
      mk_expr ~loc:l (E_unary (Deref, parse_unary st))
  | Token.AMP ->
      advance st;
      mk_expr ~loc:l (E_unary (Addr, parse_unary st))
  | Token.KW Token.Ksizeof ->
      advance st;
      if
        Token.equal (peek st) Token.LPAREN
        && (st.pos <- st.pos + 1;
            let starts = starts_typename st in
            st.pos <- st.pos - 1;
            starts)
      then begin
        expect st Token.LPAREN;
        let ct = parse_type_name st in
        expect st Token.RPAREN;
        mk_expr ~loc:l (E_sizeof_type ct)
      end
      else mk_expr ~loc:l (E_sizeof_expr (parse_unary st))
  | Token.LPAREN
    when (st.pos <- st.pos + 1;
          let starts = starts_typename st in
          st.pos <- st.pos - 1;
          starts) ->
      if st.in_meta then parse_lambda st
      else begin
        (* a cast: ( type-name ) cast-expression *)
        expect st Token.LPAREN;
        let ct = parse_type_name st in
        expect st Token.RPAREN;
        mk_expr ~loc:l (E_cast (ct, parse_unary st))
      end
  | _ -> parse_postfix st (parse_primary st)

(** Anonymous meta function: [( param-declarations ; expression )].  The
    paper's downward-only anonymous functions, heavily used with [map]. *)
and parse_lambda st : expr =
  let l = loc st in
  expect st Token.LPAREN;
  let params = ref [] in
  let rec params_loop () =
    let specs = parse_decl_specs st ~allow_storage:false in
    let d = parse_declarator st ~allow_abstract:true in
    params := P_decl (specs, d) :: !params;
    if accept st Token.COMMA then params_loop ()
  in
  params_loop ();
  if Token.equal (peek st) Token.RPAREN then
    (* "(type)" followed by ")" can only have been a cast attempt *)
    error st "casts are not part of the macro language";
  expect st Token.SEMI;
  let params = List.rev !params in
  (* the body sees the parameters: bind them for placeholder typing *)
  let body =
    Tenv.with_scope st.tenv (fun () ->
        List.iter
          (fun (n, ty) -> Tenv.add st.tenv n ty)
          (Of_cdecl.params_of_func ~loc:l params);
        parse_expr st)
  in
  expect st Token.RPAREN;
  mk_expr ~loc:l (E_lambda (params, body))

and parse_postfix st e : expr =
  let l = loc st in
  match peek st with
  | Token.LPAREN ->
      advance st;
      let args = parse_arg_list st in
      expect st Token.RPAREN;
      parse_postfix st (mk_expr ~loc:l (E_call (e, args)))
  | Token.LBRACKET ->
      advance st;
      let i = parse_expr st in
      expect st Token.RBRACKET;
      parse_postfix st (mk_expr ~loc:l (E_index (e, i)))
  | Token.DOT ->
      advance st;
      let f = parse_member_name st in
      parse_postfix st (mk_expr ~loc:l (E_member (e, f)))
  | Token.ARROW ->
      advance st;
      let f = parse_member_name st in
      parse_postfix st (mk_expr ~loc:l (E_arrow (e, f)))
  | Token.PLUSPLUS ->
      advance st;
      parse_postfix st (mk_expr ~loc:l (E_postincr e))
  | Token.MINUSMINUS ->
      advance st;
      parse_postfix st (mk_expr ~loc:l (E_postdecr e))
  | _ -> e

(* Member names after . and -> may be placeholders inside templates
   (e.g. the getter pattern [o->$field]). *)
and parse_member_name st : id_or_splice =
  match peek st with
  | Token.DOLLAR when st.in_template && placeholder_matches st id_like ->
      Ii_splice (take_placeholder st ~what:"a member name" id_like)
  | _ -> Ii_id (expect_ident st)

and parse_arg_list st : expr list =
  if Token.equal (peek st) Token.RPAREN then []
  else begin
    let rec go acc =
      let arg =
        (* a list-typed placeholder splices several arguments; scalar
           placeholders go through the expression parser so they can be
           part of larger argument expressions *)
        if placeholder_matches st exp_list_like then
          let sp = take_placeholder st ~what:"arguments" exp_list_like in
          mk_expr ~loc:sp.sp_loc (E_splice sp)
        else parse_assignment st
      in
      let acc = arg :: acc in
      if accept st Token.COMMA then go acc else List.rev acc
    in
    go []
  end

and parse_primary st : expr =
  let l = loc st in
  match peek st with
  | Token.INT_LIT (v, text) ->
      advance st;
      mk_expr ~loc:l (E_const (Cint (v, text)))
  | Token.FLOAT_LIT (v, text) ->
      advance st;
      mk_expr ~loc:l (E_const (Cfloat (v, text)))
  | Token.CHAR_LIT c ->
      advance st;
      mk_expr ~loc:l (E_const (Cchar c))
  | Token.STRING_LIT s ->
      advance st;
      mk_expr ~loc:l (E_const (Cstring s))
  | Token.IDENT name when is_macro st name ->
      let msig = Option.get (find_macro st name) in
      if not (exp_like msig.sig_ret) then
        error st
          "macro %s returns %s and cannot be invoked where an expression is \
           expected"
          name
          (Mtype.to_string msig.sig_ret);
      let inv = parse_invocation st msig in
      mk_expr ~loc:l (E_macro inv)
  | Token.IDENT name ->
      advance st;
      mk_expr ~loc:l (E_ident { id_name = name; id_loc = l })
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.BACKQUOTE ->
      if not st.in_meta then
        error st "code templates (backquote) are only allowed in meta code";
      mk_expr ~loc:l (E_backquote (parse_template st))
  | Token.DOLLAR when st.in_template ->
      let sp = take_placeholder st ~what:"an expression" exp_like in
      mk_expr ~loc:l (E_splice sp)
  | Token.DOLLAR ->
      error st "placeholder outside a code template"
  | tok -> error st "expected an expression, found %S" (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Type names (casts, sizeof)                                          *)
(* ------------------------------------------------------------------ *)

and parse_type_name st : ctype =
  let specs = parse_decl_specs st ~allow_storage:false in
  let d =
    if Token.equal (peek st) Token.RPAREN then D_abstract
    else parse_declarator st ~allow_abstract:true
  in
  { ct_specs = specs; ct_decl = d }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_statement st : stmt =
  let l = loc st in
  match peek st with
  | Token.LBRACE -> parse_compound st
  | Token.SEMI ->
      advance st;
      mk_stmt ~loc:l St_null
  | Token.KW Token.Kif ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let t = parse_statement st in
      let e =
        if accept st (Token.KW Token.Kelse) then Some (parse_statement st)
        else None
      in
      mk_stmt ~loc:l (St_if (c, t, e))
  | Token.KW Token.Kwhile ->
      advance st;
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      mk_stmt ~loc:l (St_while (c, parse_statement st))
  | Token.KW Token.Kdo ->
      advance st;
      let body = parse_statement st in
      expect st (Token.KW Token.Kwhile);
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      mk_stmt ~loc:l (St_do (body, c))
  | Token.KW Token.Kfor ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let cond =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let step =
        if Token.equal (peek st) Token.RPAREN then None
        else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      mk_stmt ~loc:l (St_for (init, cond, step, parse_statement st))
  | Token.KW Token.Kswitch ->
      advance st;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      mk_stmt ~loc:l (St_switch (e, parse_statement st))
  | Token.KW Token.Kcase ->
      advance st;
      let e = parse_conditional st in
      expect st Token.COLON;
      mk_stmt ~loc:l (St_case (e, parse_statement st))
  | Token.KW Token.Kdefault ->
      advance st;
      expect st Token.COLON;
      mk_stmt ~loc:l (St_default (parse_statement st))
  | Token.KW Token.Kreturn ->
      advance st;
      let e =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      mk_stmt ~loc:l (St_return e)
  | Token.KW Token.Kbreak ->
      advance st;
      expect st Token.SEMI;
      mk_stmt ~loc:l St_break
  | Token.KW Token.Kcontinue ->
      advance st;
      expect st Token.SEMI;
      mk_stmt ~loc:l St_continue
  | Token.KW Token.Kgoto ->
      advance st;
      let id = expect_ident st in
      expect st Token.SEMI;
      mk_stmt ~loc:l (St_goto id)
  | Token.IDENT _ when Token.equal (peek_ahead st 1) Token.COLON ->
      let id = expect_ident st in
      expect st Token.COLON;
      mk_stmt ~loc:l (St_label (id, parse_statement st))
  | Token.IDENT name when is_macro st name ->
      let msig = Option.get (find_macro st name) in
      if stmt_like msig.sig_ret then begin
        let inv = parse_invocation st msig in
        (* the paper writes "throw result;" — tolerate one decorative
           semicolon after a statement-macro invocation *)
        ignore (accept st Token.SEMI);
        mk_stmt ~loc:l (St_macro inv)
      end
      else if exp_like msig.sig_ret then begin
        (* expression-macro used as an expression statement *)
        let e = parse_expr st in
        expect st Token.SEMI;
        mk_stmt ~loc:l (St_expr e)
      end
      else
        error st
          "macro %s returns %s and cannot be invoked where a statement is \
           expected"
          name
          (Mtype.to_string msig.sig_ret)
  | Token.DOLLAR when placeholder_matches st stmt_like ->
      let sp = take_placeholder st ~what:"a statement" stmt_like in
      (* the paper writes "$s;" — tolerate one decorative semicolon *)
      ignore (accept st Token.SEMI);
      mk_stmt ~loc:l (St_splice sp)
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      mk_stmt ~loc:l (St_expr e)

(** Compound statements.  C89 compounds are a declaration list followed
    by a statement list; the parser uses placeholder types to put
    placeholders in the right part, and rejects declarations (or
    declaration-typed placeholders) after the first statement — this is
    what makes the (stmt, decl) row of the paper's Figure 3 a syntax
    error. *)
and parse_compound st : stmt =
  let l = loc st in
  expect st Token.LBRACE;
  let finally_meta_scope =
    if st.in_meta then begin
      Tenv.push_scope st.tenv;
      fun () -> Tenv.pop_scope st.tenv
    end
    else fun () -> ()
  in
  Fun.protect ~finally:finally_meta_scope (fun () ->
      with_typedef_scope st (fun () ->
          let items = ref [] in
          let seen_stmt = ref false in
          let add_decl d =
            if !seen_stmt then
              Diag.error ~loc:d.dloc Diag.Parsing
                "declaration after the first statement of a compound \
                 statement (C89)";
            items := Bi_decl d :: !items
          in
          let add_stmt s =
            seen_stmt := true;
            items := Bi_stmt s :: !items
          in
          while not (Token.equal (peek st) Token.RBRACE) do
            if Token.equal (peek st) Token.EOF then
              error st "unterminated compound statement";
            if starts_declaration st then add_decl (parse_declaration st ~top:false)
            else add_stmt (parse_statement st)
          done;
          expect st Token.RBRACE;
          mk_stmt ~loc:l (St_compound (List.rev !items))))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

and parse_decl_specs st ~allow_storage : spec list =
  let specs = ref [] in
  let push s = specs := s :: !specs in
  let storage kw s =
    if not allow_storage then
      error st "storage class %S not allowed here" (Token.keyword_name kw);
    push s
  in
  let seen_type_spec () =
    List.exists
      (function
        | S_void | S_char | S_int | S_float | S_double | S_short | S_long
        | S_signed | S_unsigned | S_named _ | S_enum _ | S_struct _
        | S_union _ | S_ast _ | S_splice _ ->
            true
        | _ -> false)
      !specs
  in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.KW Token.Kvoid -> advance st; push S_void
    | Token.KW Token.Kchar -> advance st; push S_char
    | Token.KW Token.Kint -> advance st; push S_int
    | Token.KW Token.Kfloat -> advance st; push S_float
    | Token.KW Token.Kdouble -> advance st; push S_double
    | Token.KW Token.Kshort -> advance st; push S_short
    | Token.KW Token.Klong -> advance st; push S_long
    | Token.KW Token.Ksigned -> advance st; push S_signed
    | Token.KW Token.Kunsigned -> advance st; push S_unsigned
    | Token.KW Token.Kconst -> advance st; push S_const
    | Token.KW Token.Kvolatile -> advance st; push S_volatile
    | Token.KW (Token.Ktypedef as kw) -> advance st; storage kw S_typedef
    | Token.KW (Token.Kextern as kw) -> advance st; storage kw S_extern
    | Token.KW (Token.Kstatic as kw) -> advance st; storage kw S_static
    | Token.KW (Token.Kauto as kw) -> advance st; storage kw S_auto
    | Token.KW (Token.Kregister as kw) -> advance st; storage kw S_register
    | Token.KW Token.Kenum ->
        advance st;
        push (S_enum (parse_enum_spec st))
    | Token.KW Token.Kstruct ->
        advance st;
        let tag, fields = parse_su_spec st in
        push (S_struct (tag, fields))
    | Token.KW Token.Kunion ->
        advance st;
        let tag, fields = parse_su_spec st in
        push (S_union (tag, fields))
    | Token.AT ->
        advance st;
        let id = expect_ident st in
        (match Ms2_mtype.Sort.of_keyword id.id_name with
        | Some sort -> push (S_ast sort)
        | None ->
            Diag.error ~loc:id.id_loc Diag.Parsing
              "unknown AST type @%s" id.id_name)
    | Token.IDENT name
      when is_typedef_name st name && not (seen_type_spec ()) ->
        advance st;
        push (S_named { id_name = name; id_loc = loc st })
    | Token.DOLLAR
      when (not (seen_type_spec ())) && placeholder_matches st typespec_like
      ->
        let sp = take_placeholder st ~what:"a type specifier" typespec_like in
        push (S_splice sp)
    | _ -> continue := false
  done;
  List.rev !specs

and parse_enum_spec st : enum_spec =
  let tag =
    match peek st with
    | Token.IDENT _ -> Some (Ii_id (expect_ident st))
    | Token.DOLLAR when st.in_template && placeholder_matches st id_like ->
        Some (Ii_splice (take_placeholder st ~what:"an enum tag" id_like))
    | _ -> None
  in
  if accept st Token.LBRACE then begin
    let items = ref [] in
    let rec go () =
      (match peek st with
      | Token.DOLLAR when placeholder_matches st enumerator_like ->
          let sp =
            take_placeholder st ~what:"enumeration constants" enumerator_like
          in
          items := Enum_splice sp :: !items
      | _ ->
          let id = parse_member_name st in
          let value =
            if accept st Token.ASSIGN then Some (parse_conditional st)
            else None
          in
          items := Enum_item (id, value) :: !items);
      if accept st Token.COMMA then
        if not (Token.equal (peek st) Token.RBRACE) then go ()
    in
    if not (Token.equal (peek st) Token.RBRACE) then go ();
    expect st Token.RBRACE;
    { enum_tag = tag; enum_items = Some (List.rev !items) }
  end
  else begin
    if tag = None then error st "expected an enum tag or enumerator list";
    { enum_tag = tag; enum_items = None }
  end

and parse_su_spec st : id_or_splice option * field list option =
  let tag =
    match peek st with
    | Token.IDENT _ -> Some (Ii_id (expect_ident st))
    | Token.DOLLAR when st.in_template && placeholder_matches st id_like ->
        Some
          (Ii_splice (take_placeholder st ~what:"a struct/union tag" id_like))
    | _ -> None
  in
  if accept st Token.LBRACE then begin
    let fields = ref [] in
    while not (Token.equal (peek st) Token.RBRACE) do
      let specs = parse_decl_specs st ~allow_storage:false in
      let rec decls acc =
        let d = parse_declarator st ~allow_abstract:false in
        if accept st Token.COMMA then decls (d :: acc)
        else List.rev (d :: acc)
      in
      let ds = decls [] in
      expect st Token.SEMI;
      fields := { f_specs = specs; f_declarators = ds } :: !fields
    done;
    expect st Token.RBRACE;
    (tag, Some (List.rev !fields))
  end
  else begin
    if tag = None then
      error st "expected a struct/union tag or member list";
    (tag, None)
  end

and parse_declarator st ~allow_abstract : declarator =
  if accept st Token.STAR then
    D_pointer (parse_declarator st ~allow_abstract)
  else parse_direct_declarator st ~allow_abstract

and parse_direct_declarator st ~allow_abstract : declarator =
  let base =
    match peek st with
    | Token.IDENT _ -> D_ident (expect_ident st)
    | Token.DOLLAR when st.in_template && placeholder_matches st declarator_like
      ->
        D_splice (take_placeholder st ~what:"a declarator" declarator_like)
    | Token.LPAREN
      when (match peek_ahead st 1 with
           | Token.STAR | Token.IDENT _ | Token.LPAREN | Token.DOLLAR -> true
           | _ -> false) ->
        advance st;
        let d = parse_declarator st ~allow_abstract in
        expect st Token.RPAREN;
        d
    | _ when allow_abstract -> D_abstract
    | tok -> error st "expected a declarator, found %S" (Token.to_string tok)
  in
  parse_declarator_suffixes st base

and parse_declarator_suffixes st d : declarator =
  match peek st with
  | Token.LBRACKET ->
      advance st;
      let size =
        if Token.equal (peek st) Token.RBRACKET then None
        else Some (parse_conditional st)
      in
      expect st Token.RBRACKET;
      parse_declarator_suffixes st (D_array (d, size))
  | Token.LPAREN ->
      advance st;
      let params = parse_params st in
      expect st Token.RPAREN;
      parse_declarator_suffixes st (D_func (d, params))
  | _ -> d

and parse_params st : param list =
  if Token.equal (peek st) Token.RPAREN then []
  else if
    Token.equal (peek st) (Token.KW Token.Kvoid)
    && Token.equal (peek_ahead st 1) Token.RPAREN
  then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let p =
        match peek st with
        | Token.ELLIPSIS ->
            advance st;
            P_ellipsis
        | Token.DOLLAR when placeholder_matches st param_like ->
            P_splice (take_placeholder st ~what:"parameters" param_like)
        | Token.IDENT name when not (is_typedef_name st name) ->
            P_name (expect_ident st)
        | _ ->
            let specs = parse_decl_specs st ~allow_storage:false in
            let d = parse_declarator st ~allow_abstract:true in
            P_decl (specs, d)
      in
      if p = P_ellipsis then begin
        (* "..." must be the last parameter *)
        if accept st Token.COMMA then
          error st "\"...\" must be the last parameter";
        List.rev (p :: acc)
      end
      else if accept st Token.COMMA then go (p :: acc)
      else List.rev (p :: acc)
    in
    go []
  end

and parse_initializer st : init =
  if accept st Token.LBRACE then begin
    let items = ref [] in
    let rec go () =
      items := parse_initializer st :: !items;
      if accept st Token.COMMA then
        if not (Token.equal (peek st) Token.RBRACE) then go ()
    in
    if not (Token.equal (peek st) Token.RBRACE) then go ();
    expect st Token.RBRACE;
    I_list (List.rev !items)
  end
  else I_expr (parse_assignment st)

(* Innermost declared name of a declarator, for typedef registration. *)
and declarator_name = function
  | D_ident id -> Some id.id_name
  | D_abstract | D_splice _ -> None
  | D_pointer d | D_array (d, _) | D_func (d, _) -> declarator_name d

(** Declarations, including function definitions (at top level), macro
    definitions, and meta declarations. *)
and parse_declaration st ~top : decl =
  let l = loc st in
  match peek st with
  | Token.KW Token.Ksyntax ->
      if not top then
        error st "macro definitions are only allowed at top level";
      let md = parse_macro_def st in
      mk_decl ~loc:l (Decl_macro_def md)
  | Token.KW Token.Kmetadcl ->
      advance st;
      let inner = in_meta_mode st (fun () -> parse_declaration st ~top) in
      (* meta declarations extend the global meta type environment *)
      register_meta_bindings st ~global:true inner;
      mk_decl ~loc:l (Decl_metadcl inner)
  | Token.IDENT name when is_macro st name ->
      let msig = Option.get (find_macro st name) in
      if not (decl_like msig.sig_ret) then
        error st
          "macro %s returns %s and cannot be invoked where a declaration is \
           expected"
          name
          (Mtype.to_string msig.sig_ret);
      let inv = parse_invocation st msig in
      mk_decl ~loc:l (Decl_macro inv)
  | Token.DOLLAR when placeholder_matches st decl_like ->
      let sp = take_placeholder st ~what:"a declaration" decl_like in
      ignore (accept st Token.SEMI);
      mk_decl ~loc:l (Decl_splice sp)
  | _ ->
      let specs = parse_decl_specs st ~allow_storage:true in
      if specs <> [] && accept st Token.SEMI then
        (* e.g. a bare "enum color {...};" or "struct s {...};" *)
        mk_decl ~loc:l (Decl_plain (specs, []))
      else begin
        if specs = [] && not top then
          error st "expected a declaration";
        (* whole-init-declarator-list placeholder (paper Fig. 2 row 1) *)
        if
          st.in_template && placeholder_matches st init_declarator_list_like
        then begin
          let sp =
            take_placeholder st ~what:"an init-declarator list"
              init_declarator_list_like
          in
          expect st Token.SEMI;
          mk_decl ~loc:l (Decl_plain (specs, [ Init_splice sp ]))
        end
        else begin
          let first = parse_init_declarator_head st in
          match first with
          | Init_decl (d, None)
            when top
                 && is_function_declarator d
                 && not
                      (Token.equal (peek st) Token.SEMI
                      || Token.equal (peek st) Token.COMMA
                      || Token.equal (peek st) Token.ASSIGN) ->
              parse_function_definition st ~loc:l specs d
          | first ->
              let idecls = ref [ first ] in
              while accept st Token.COMMA do
                idecls := parse_init_declarator st :: !idecls
              done;
              expect st Token.SEMI;
              let idecls = List.rev !idecls in
              register_typedefs st specs idecls;
              if st.in_meta then begin
                (* meta locals must be visible to later placeholders *)
                let decl = mk_decl ~loc:l (Decl_plain (specs, idecls)) in
                register_meta_bindings st ~global:false decl;
                decl
              end
              else mk_decl ~loc:l (Decl_plain (specs, idecls))
        end
      end

and parse_init_declarator_head st : init_declarator =
  parse_init_declarator st

and parse_init_declarator st : init_declarator =
  match peek st with
  | Token.DOLLAR when st.in_template && placeholder_matches st init_declarator_like
    ->
      Init_splice
        (take_placeholder st ~what:"an init-declarator" init_declarator_like)
  | _ ->
      let d = parse_declarator st ~allow_abstract:false in
      let init =
        if accept st Token.ASSIGN then Some (parse_initializer st) else None
      in
      Init_decl (d, init)

and is_function_declarator = function
  | D_func (_, _) -> true
  | D_pointer d -> is_function_declarator d
  | D_ident _ | D_abstract -> false
  | D_splice _ ->
      (* a declarator placeholder followed by a body brace can only be a
         function definition (e.g. `[int $d { return 0; }]) *)
      true
  | D_array (d, _) -> is_function_declarator d

and parse_function_definition st ~loc:l specs d : decl =
  (* K&R parameter declarations, if any, then the body *)
  let kr = ref [] in
  while not (Token.equal (peek st) Token.LBRACE) do
    if Token.equal (peek st) Token.EOF then
      error st "expected a function body";
    kr := parse_declaration st ~top:false :: !kr
  done;
  let kr = List.rev !kr in
  (* a definition mentioning AST types anywhere is a meta function *)
  let is_meta =
    st.in_meta
    || Of_cdecl.specs_mention_ast specs
    || Of_cdecl.declarator_mentions_ast d
  in
  let body =
    if is_meta then
      in_meta_mode st (fun () ->
          (* bind the function's own name (for recursion) and parameters *)
          let name, ty = Of_cdecl.of_decl ~loc:l specs d in
          if name <> "" then Tenv.add_global st.tenv name ty;
          Tenv.with_scope st.tenv (fun () ->
              (match Of_cdecl.func_params d with
              | Some ps ->
                  List.iter
                    (fun (n, t) -> Tenv.add st.tenv n t)
                    (Of_cdecl.params_of_func ~loc:l ps)
              | None -> ());
              parse_compound st))
    else parse_compound st
  in
  mk_decl ~loc:l (Decl_fun (specs, d, kr, body))

and register_typedefs st specs idecls =
  if List.mem S_typedef specs then
    List.iter
      (function
        | Init_decl (d, _) -> (
            match declarator_name d with
            | Some name -> add_typedef st name
            | None -> ())
        | Init_splice _ -> ())
      idecls

(* Extend the meta type environment with the bindings of a meta
   declaration, so later placeholders can be typed at parse time. *)
and register_meta_bindings st ~global (decl : decl) : unit =
  let add n ty =
    if global then Tenv.add_global st.tenv n ty else Tenv.add st.tenv n ty
  in
  let rec go (decl : decl) =
    match decl.d with
    | Decl_plain (specs, idecls) ->
        List.iter
          (function
            | Init_decl (d, _) ->
                let name, ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
                if name <> "" then add name ty
            | Init_splice _ -> ())
          idecls
    | Decl_fun (specs, d, _, _) ->
        let name, ty = Of_cdecl.of_decl ~loc:decl.dloc specs d in
        if name <> "" then add name ty
    | Decl_metadcl inner -> go inner
    | Decl_macro_def _ | Decl_splice _ | Decl_macro _ -> ()
  in
  go decl

(* ------------------------------------------------------------------ *)
(* Macro definitions                                                   *)
(* ------------------------------------------------------------------ *)

and parse_sort st : Sort.t =
  ignore (accept st Token.AT);
  let id = expect_ident st in
  match Sort.of_keyword id.id_name with
  | Some sort -> sort
  | None ->
      Diag.error ~loc:id.id_loc Diag.Parsing "unknown AST type %s" id.id_name

and parse_macro_def st : macro_def =
  let l = loc st in
  expect st (Token.KW Token.Ksyntax);
  let sort = parse_sort st in
  (* inside templates the macro name may be a placeholder, so that
     macro-generating macros can parameterize the name of the macro
     they define *)
  let name =
    match peek st with
    | Token.DOLLAR when st.in_template && placeholder_matches st id_like ->
        Ii_splice
          (take_placeholder st ~what:"the name of the generated macro"
             id_like)
    | _ -> Ii_id (expect_ident st)
  in
  (* array suffixes on the macro name make the return type a list *)
  let ret = ref (Mtype.Ast sort) in
  while accept st Token.LBRACKET do
    expect st Token.RBRACKET;
    ret := Mtype.List !ret
  done;
  let ret = !ret in
  expect st Token.LMETA;
  let pattern = parse_pattern_elems st ~stop:Token.RMETA in
  expect st Token.RMETA;
  Determinism.check_pattern ~loc:l pattern;
  (* register before parsing the body so the macro can recurse, and so
     invocation sites following the definition parse correctly *)
  (match name with
  | Ii_id name when not st.in_template ->
      register_macro st name.id_name { sig_ret = ret; sig_pattern = pattern };
      if st.compile_patterns then
        Hashtbl.replace st.compiled_patterns name.id_name
          (compile_pattern pattern)
      else Hashtbl.remove st.compiled_patterns name.id_name
  | Ii_id _ | Ii_splice _ -> ());
  let body =
    in_meta_mode st (fun () ->
        Tenv.with_scope st.tenv (fun () ->
            List.iter
              (fun (n, ty) -> Tenv.add st.tenv n ty)
              (pattern_bindings pattern);
            let body = parse_compound st in
            (* full definition-time checking of the meta-code body *)
            Ms2_typing.Check.check_body st.tenv ~ret body;
            body))
  in
  { m_name = name; m_ret = ret; m_pattern = pattern; m_body = body; m_loc = l }

and pattern_bindings (pat : pattern) : (string * Mtype.t) list =
  List.filter_map
    (function
      | Pe_token _ -> None
      | Pe_binder b -> Some (b.b_name.id_name, pspec_type b.b_spec))
    pat

and parse_pattern_elems st ~stop : pattern =
  let elems = ref [] in
  while not (Token.equal (peek st) stop) do
    (match peek st with
    | Token.EOF -> error st "unterminated macro pattern"
    | Token.DOLLARDOLLAR ->
        advance st;
        let spec = parse_pspec st in
        expect st Token.COLONCOLON;
        let name = expect_ident st in
        elems := Pe_binder { b_spec = spec; b_name = name } :: !elems
    | Token.LMETA | Token.RMETA | Token.DOLLAR ->
        error st "token %S cannot appear in a macro pattern"
          (Token.to_string (peek st))
    | tok ->
        advance st;
        elems := Pe_token tok :: !elems);
  done;
  List.rev !elems

and starts_pspec st =
  match peek st with
  | Token.PLUS | Token.STAR | Token.QUESTION | Token.DOT | Token.AT -> true
  | Token.IDENT name -> Sort.of_keyword name <> None
  | _ -> false

and parse_pspec st : pspec =
  match peek st with
  | Token.PLUS ->
      advance st;
      let sep = parse_opt_separator st in
      Ps_plus (sep, parse_pspec st)
  | Token.STAR ->
      advance st;
      let sep = parse_opt_separator st in
      Ps_star (sep, parse_pspec st)
  | Token.QUESTION ->
      advance st;
      if starts_pspec st then Ps_opt (None, parse_pspec st)
      else begin
        let tok = peek st in
        (match tok with
        | Token.EOF | Token.RMETA | Token.COLONCOLON ->
            error st "expected an optional-element token or pattern specifier"
        | _ -> advance st);
        Ps_opt (Some tok, parse_pspec st)
      end
  | Token.DOT ->
      advance st;
      expect st Token.LPAREN;
      let pat = parse_pattern_elems st ~stop:Token.RPAREN in
      expect st Token.RPAREN;
      Ps_tuple pat
  | _ -> Ps_sort (parse_sort st)

and parse_opt_separator st : Token.t option =
  if accept st Token.SLASH then begin
    let tok = peek st in
    match tok with
    | Token.EOF | Token.RMETA -> error st "expected a separator token after /"
    | _ ->
        advance st;
        Some tok
  end
  else None

(* ------------------------------------------------------------------ *)
(* Templates                                                           *)
(* ------------------------------------------------------------------ *)

and parse_template st : template =
  expect st Token.BACKQUOTE;
  match peek st with
  | Token.LBRACE ->
      (* `{ statements } — the braces delimit a compound statement; a
         template holding exactly one statement (and no declarations)
         denotes that statement alone, per the paper's grammar
         "backquote-stmt-expression: ` { statement }" *)
      in_template_mode st (fun () ->
          let compound = parse_compound st in
          match compound.s with
          | St_compound [ Bi_stmt s ] -> T_stmt s
          | _ -> T_stmt compound)
  | Token.LPAREN ->
      advance st;
      let e = in_template_mode st (fun () -> parse_expr st) in
      expect st Token.RPAREN;
      T_exp e
  | Token.LBRACKET ->
      advance st;
      let d = in_template_mode st (fun () -> parse_declaration st ~top:true) in
      expect st Token.RBRACKET;
      T_decl d
  | Token.LMETA ->
      advance st;
      let ps = parse_pspec st in
      expect st Token.COLONCOLON;
      let a = in_template_mode st (fun () -> parse_by_pspec st ps) in
      expect st Token.RMETA;
      T_general (ps, a)
  | tok ->
      error st "expected (, {, [ or {| after backquote, found %S"
        (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Macro invocations (pattern-directed parsing)                        *)
(* ------------------------------------------------------------------ *)

and parse_invocation st (msig : macro_sig) : invocation =
  let l = loc st in
  Failpoint.hit ~watchdog:st.watchdog ~loc:l "parser/invocation";
  let name = expect_ident st in
  let compiled = Hashtbl.find_opt st.compiled_patterns name.id_name in
  let actuals =
    (* the pattern-directed parse is a pipeline stage of its own in the
       trace: one span per invocation, labeled with the macro and
       whether its compiled parser was used *)
    Obs.with_span ~cat:"pattern"
      ~args:(fun () ->
        [ ("macro", Obs.Str name.id_name);
          ("compiled", Obs.Bool (compiled <> None)) ])
      "pattern-match"
      (fun () ->
        match compiled with
        | Some compiled -> compiled st
        | None -> parse_pattern_actuals st msig.sig_pattern)
  in
  { inv_name = name; inv_actuals = actuals; inv_ret = msig.sig_ret;
    inv_loc = l }

and parse_pattern_actuals st (pat : pattern) : (string * actual) list =
  List.filter_map
    (function
      | Pe_token tok ->
          expect st tok;
          None
      | Pe_binder b -> Some (b.b_name.id_name, parse_by_pspec st b.b_spec))
    pat

(* ------------------------------------------------------------------ *)
(* Compiled invocation parsers                                         *)
(* ------------------------------------------------------------------ *)

(* "Even this process could be accelerated by a routine that compiled a
   parse routine for each macro's pattern.  This specialized routine
   would be associated with the macro keyword and called when needed."
   (paper, §3.)  Compilation happens once, at macro definition time:
   the pattern's interpretive dispatch (constructor matching, separator
   lookups, FIRST-set computation for repetition continuation) is
   resolved into a chain of closures. *)

and compile_pspec (ps : pspec) : State.t -> actual =
  match ps with
  | Ps_sort sort -> fun st -> Act_node (parse_node st sort)
  | Ps_plus (sep, p) ->
      let elem = compile_pspec p in
      let continue = compile_continue sep p in
      fun st ->
        let first = elem st in
        let items = ref [ first ] in
        while continue st do
          items := elem st :: !items
        done;
        Act_list (List.rev !items)
  | Ps_star (sep, p) ->
      let elem = compile_pspec p in
      let can_start =
        let firsts = Firstset.of_pspec p in
        fun st -> List.exists (fun c -> Firstset.matches c (peek st)) firsts
      in
      let continue = compile_continue sep p in
      fun st ->
        if not (can_start st) then Act_list []
        else begin
          let items = ref [ elem st ] in
          while continue st do
            items := elem st :: !items
          done;
          Act_list (List.rev !items)
        end
  | Ps_opt (Some tok, p) ->
      let elem = compile_pspec p in
      fun st -> if accept st tok then Act_list [ elem st ] else Act_list []
  | Ps_opt (None, p) ->
      let elem = compile_pspec p in
      let firsts = Firstset.of_pspec p in
      fun st ->
        if List.exists (fun c -> Firstset.matches c (peek st)) firsts then
          Act_list [ elem st ]
        else Act_list []
  | Ps_tuple pat ->
      let compiled = compile_pattern pat in
      fun st -> Act_tuple (compiled st)

and compile_continue sep p : State.t -> bool =
  match sep with
  | Some tok -> fun st -> accept st tok
  | None ->
      let firsts = Firstset.of_pspec p in
      fun st -> List.exists (fun c -> Firstset.matches c (peek st)) firsts

and compile_pattern (pat : pattern) : State.compiled_pattern =
  let key = pattern_key pat in
  Mutex.lock compiled_pattern_memo_lock;
  let cached = Hashtbl.find_opt compiled_pattern_memo key in
  Mutex.unlock compiled_pattern_memo_lock;
  match cached with
  | Some compiled ->
      Obs.Metrics.incr c_pat_memo_hits;
      compiled
  | None ->
      Obs.Metrics.incr c_pat_memo_misses;
      let compiled = compile_pattern_uncached pat in
      Mutex.lock compiled_pattern_memo_lock;
      (if Hashtbl.length compiled_pattern_memo >= compiled_pattern_memo_cap
       then Hashtbl.reset compiled_pattern_memo;
       match Hashtbl.find_opt compiled_pattern_memo key with
       | Some _ -> ()  (* another domain won the race; either closure works *)
       | None -> Hashtbl.add compiled_pattern_memo key compiled);
      Mutex.unlock compiled_pattern_memo_lock;
      compiled

and compile_pattern_uncached (pat : pattern) : State.compiled_pattern =
  let steps =
    List.map
      (function
        | Pe_token tok ->
            fun st ->
              expect st tok;
              None
        | Pe_binder b ->
            let parse = compile_pspec b.b_spec in
            let name = b.b_name.id_name in
            fun st -> Some (name, parse st))
      pat
  in
  fun st ->
    Failpoint.hit ~watchdog:st.watchdog ~loc:(loc st) "parser/pattern";
    List.filter_map (fun step -> step st) steps

and parse_by_pspec st (ps : pspec) : actual =
  match ps with
  | Ps_sort sort -> Act_node (parse_node st sort)
  | Ps_plus (sep, p) ->
      let first = parse_by_pspec st p in
      Act_list (first :: parse_repetition_tail st sep p)
  | Ps_star (sep, p) -> (
      match sep with
      | None ->
          if pspec_can_start st p then
            let first = parse_by_pspec st p in
            Act_list (first :: parse_repetition_tail st None p)
          else Act_list []
      | Some _ ->
          if pspec_can_start st p then
            let first = parse_by_pspec st p in
            Act_list (first :: parse_repetition_tail st sep p)
          else Act_list [])
  | Ps_opt (Some tok, p) ->
      if accept st tok then Act_list [ parse_by_pspec st p ]
      else Act_list []
  | Ps_opt (None, p) ->
      if pspec_can_start st p then Act_list [ parse_by_pspec st p ]
      else Act_list []
  | Ps_tuple pat -> Act_tuple (parse_pattern_actuals st pat)

and parse_repetition_tail st sep p : actual list =
  let items = ref [] in
  let rec go () =
    let continue =
      match sep with
      | Some tok -> accept st tok
      | None -> pspec_can_start st p
    in
    if continue then begin
      items := parse_by_pspec st p :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

and pspec_can_start st p = Firstset.pspec_starts_with p (peek st)

(** Parse one phrase of the given sort — used for invocation actuals and
    for the general backquote form. *)
and parse_node st (sort : Sort.t) : node =
  match sort with
  | Sort.Id -> (
      match peek st with
      | Token.DOLLAR when st.in_template && placeholder_matches st id_like ->
          (* an identifier-typed placeholder as an actual: represented as
             an expression splice, resolved to an identifier at fill *)
          let sp = take_placeholder st ~what:"an identifier" id_like in
          N_exp (mk_expr ~loc:sp.sp_loc (E_splice sp))
      | _ -> N_id (expect_ident st))
  | Sort.Exp -> N_exp (parse_assignment st)
  | Sort.Num -> (
      match peek st with
      | Token.INT_LIT (v, text) ->
          advance st;
          N_num (Cint (v, text))
      | Token.FLOAT_LIT (v, text) ->
          advance st;
          N_num (Cfloat (v, text))
      | Token.CHAR_LIT c ->
          advance st;
          N_num (Cchar c)
      | Token.DOLLAR
        when st.in_template
             && placeholder_matches st (fun ty -> ty = Mtype.Ast Sort.Num) ->
          let sp =
            take_placeholder st ~what:"a numeric literal" (fun ty ->
                ty = Mtype.Ast Sort.Num)
          in
          N_exp (mk_expr ~loc:sp.sp_loc (E_splice sp))
      | tok ->
          error st "expected a numeric literal, found %S" (Token.to_string tok)
      )
  | Sort.Stmt -> N_stmt (parse_statement st)
  | Sort.Decl -> N_decl (parse_declaration st ~top:true)
  | Sort.Typespec ->
      let specs = parse_decl_specs st ~allow_storage:false in
      if specs = [] then error st "expected a type specifier";
      N_typespec specs
  | Sort.Declarator -> N_declarator (parse_declarator st ~allow_abstract:false)
  | Sort.Init_declarator -> N_init_declarator (parse_init_declarator st)
  | Sort.Param -> (
      match peek st with
      | Token.IDENT name when not (is_typedef_name st name) ->
          N_param (P_name (expect_ident st))
      | _ ->
          let specs = parse_decl_specs st ~allow_storage:false in
          let d = parse_declarator st ~allow_abstract:true in
          N_param (P_decl (specs, d)))
  | Sort.Enumerator ->
      let id = parse_member_name st in
      let value =
        if accept st Token.ASSIGN then Some (parse_conditional st) else None
      in
      N_enumerator (Enum_item (id, value))

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

and parse_program st : program =
  let decls = ref [] in
  while not (Token.equal (peek st) Token.EOF) do
    (* tolerate stray semicolons between top-level declarations *)
    if accept st Token.SEMI then ()
    else decls := parse_declaration st ~top:true :: !decls
  done;
  List.rev !decls

(* ------------------------------------------------------------------ *)
(* String entry points                                                 *)
(* ------------------------------------------------------------------ *)

let program_of_string ?macros ?tenv ?source ?reject_reserved text : program =
  parse_program (State.of_string ?macros ?tenv ?source ?reject_reserved text)

let finish st v =
  if not (Token.equal (peek st) Token.EOF) then
    error st "trailing input after a complete parse: %S"
      (Token.to_string (peek st));
  v

let expr_of_string ?macros ?tenv ?source text : expr =
  let st = State.of_string ?macros ?tenv ?source text in
  finish st (parse_expr st)

(** Parse an expression of the *meta* language (templates, placeholders
    and anonymous functions are live).  [tenv] supplies the types of the
    meta variables that placeholders may mention. *)
let meta_expr_of_string ?macros ?tenv ?source text : expr =
  let st = State.of_string ?macros ?tenv ?source text in
  st.State.in_meta <- true;
  finish st (parse_expr st)

let stmt_of_string ?macros ?tenv ?source text : stmt =
  let st = State.of_string ?macros ?tenv ?source text in
  finish st (parse_statement st)

let decl_of_string ?macros ?tenv ?source text : decl =
  let st = State.of_string ?macros ?tenv ?source text in
  finish st (parse_declaration st ~top:true)
