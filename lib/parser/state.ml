(** Parser state.

    The parser is fully re-entrant, as the paper requires: all state
    lives in a [t] value, and nested parses (templates inside macro
    bodies inside programs, strings parsed during expansion) each operate
    on their own [t], sharing only the macro signature table and the meta
    type environment they were given. *)

open Ms2_syntax
open Ms2_support
module Mtype = Ms2_mtype.Mtype
module Tenv = Ms2_typing.Tenv

(** What the parser needs to know about a defined macro in order to parse
    its invocations: the invocation pattern and the declared return
    type. *)
type macro_sig = { sig_ret : Mtype.t; sig_pattern : Ast.pattern }

type t = {
  mutable compile_patterns : bool;
      (** compile each macro's pattern to a specialized parse routine at
          definition time (the acceleration the paper suggests in §3);
          disable for the ablation benchmark *)
  toks : Token.located array;
  mutable pos : int;
  mutable typedef_scopes : (string, unit) Hashtbl.t list;
  macros : (string, macro_sig) Hashtbl.t;
  tenv : Tenv.t;
  mutable in_template : bool;
      (** parsing object code inside a backquote: placeholders are live *)
  mutable in_meta : bool;
      (** parsing meta code: backquote, lambdas, meta declarations live *)
  mutable ph_cache : (int * (Ast.expr * Mtype.t) * int) option;
      (** placeholder-token cache: (start position, parsed placeholder,
          end position).  This implements the paper's placeholder tokens:
          the "tokenizer" parses and types the [$]-expression once, and
          every parser routine can then look at its type. *)
  compiled_patterns : (string, compiled_pattern) Hashtbl.t;
      (** specialized parse routines, keyed by macro name; shared with
          the macro-signature table's lifetime *)
  watchdog : Watchdog.t;
      (** wall-clock deadline, polled as tokens are consumed so a parse
          driven by a pathological pattern is bounded in time *)
}

(** A compiled invocation parser: runs the pattern against the input and
    returns the actual-parameter bindings. *)
and compiled_pattern = t -> (string * Ast.actual) list

let create ?macros ?tenv ?compiled ?watchdog (toks : Token.located array) : t
    =
  {
    compile_patterns = true;
    toks;
    pos = 0;
    typedef_scopes = [ Hashtbl.create 16 ];
    macros = (match macros with Some m -> m | None -> Hashtbl.create 16);
    tenv = (match tenv with Some e -> e | None -> Tenv.create ());
    in_template = false;
    in_meta = false;
    ph_cache = None;
    compiled_patterns =
      (match compiled with Some c -> c | None -> Hashtbl.create 16);
    watchdog =
      (match watchdog with Some w -> w | None -> Watchdog.create ());
  }

let of_string ?origin ?macros ?tenv ?compiled ?watchdog
    ?(source = "<string>") ?(reject_reserved = false) text =
  create ?macros ?tenv ?compiled ?watchdog
    (Lexer.tokenize ?origin ~source ~reject_reserved text)

(* ------------------------------------------------------------------ *)
(* Token access                                                        *)
(* ------------------------------------------------------------------ *)

let peek_located st : Token.located = st.toks.(st.pos)
let peek st : Token.t = st.toks.(st.pos).Token.tok

let peek_ahead st n : Token.t =
  let i = st.pos + n in
  if i < Array.length st.toks then st.toks.(i).Token.tok else Token.EOF

let loc st : Loc.t = st.toks.(st.pos).Token.loc

let advance st =
  let l = st.toks.(st.pos).Token.loc in
  Watchdog.poll st.watchdog ~loc:l;
  Failpoint.hit ~watchdog:st.watchdog ~loc:l "parser/token";
  if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st fmt = Diag.error ~loc:(loc st) Diag.Parsing fmt

let expect st (tok : Token.t) =
  if Token.equal (peek st) tok then advance st
  else
    error st "expected %S but found %S" (Token.to_string tok)
      (Token.to_string (peek st))

let accept st (tok : Token.t) : bool =
  if Token.equal (peek st) tok then (
    advance st;
    true)
  else false

let expect_ident st : Ast.ident =
  match peek st with
  | Token.IDENT name ->
      let l = loc st in
      advance st;
      { Ast.id_name = name; id_loc = l }
  | tok -> error st "expected an identifier but found %S" (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Typedef scopes                                                      *)
(* ------------------------------------------------------------------ *)

let push_typedef_scope st =
  st.typedef_scopes <- Hashtbl.create 8 :: st.typedef_scopes

let pop_typedef_scope st =
  match st.typedef_scopes with
  | [] | [ _ ] -> invalid_arg "pop_typedef_scope: global scope"
  | _ :: rest -> st.typedef_scopes <- rest

let with_typedef_scope st f =
  push_typedef_scope st;
  Fun.protect ~finally:(fun () -> pop_typedef_scope st) f

let add_typedef st name =
  match st.typedef_scopes with
  | scope :: _ -> Hashtbl.replace scope name ()
  | [] -> assert false

let is_typedef_name st name =
  List.exists (fun scope -> Hashtbl.mem scope name) st.typedef_scopes

(* ------------------------------------------------------------------ *)
(* Macro table                                                         *)
(* ------------------------------------------------------------------ *)

let find_macro st name : macro_sig option = Hashtbl.find_opt st.macros name
let is_macro st name = Hashtbl.mem st.macros name
let register_macro st name msig = Hashtbl.replace st.macros name msig

(* ------------------------------------------------------------------ *)
(* Mode switches                                                       *)
(* ------------------------------------------------------------------ *)

let save_modes st = (st.in_template, st.in_meta)

let restore_modes st (tpl, meta) =
  st.in_template <- tpl;
  st.in_meta <- meta

(** Run [f] in template mode (object code inside a backquote). *)
let in_template_mode st f =
  let saved = save_modes st in
  st.in_template <- true;
  st.in_meta <- false;
  Fun.protect ~finally:(fun () -> restore_modes st saved) f

(** Run [f] in meta mode (macro bodies, placeholder expressions). *)
let in_meta_mode st f =
  let saved = save_modes st in
  st.in_template <- false;
  st.in_meta <- true;
  Fun.protect ~finally:(fun () -> restore_modes st saved) f
