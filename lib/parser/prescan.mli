(** Token-level fragment pre-scan for intra-file parallel expansion: a
    bracket-depth walk that finds top-level fragment boundaries and
    conservatively classifies each fragment as definition-bearing (a
    sequential barrier) or pure invocation (a speculation candidate).

    Boundary and classification errors cost performance, never
    correctness: the engine assigns parsed declarations to fragments by
    byte offset and re-validates every speculative expansion at commit
    time. *)

open Ms2_syntax

type fragment = {
  fg_offset : int;  (** byte offset of the fragment's first token *)
  fg_tokens : int;  (** number of tokens in the fragment *)
  fg_barrier : bool;
      (** definition-bearing: must expand sequentially, and fragments
          after it must observe its effects *)
}

val split : Token.located array -> fragment list
(** Split a token stream (as produced by {!Ms2_syntax.Lexer.tokenize};
    a trailing [EOF] is accepted and excluded) into fragments in source
    order.  Offsets are strictly increasing; empty fragments are not
    produced. *)
