(** Token-level fragment pre-scan for intra-file parallel expansion.

    Splits a tokenized translation unit into top-level fragments — the
    units the engine expands speculatively on worker domains — without a
    full parse, in the spirit of black-box fragment splitting: a cheap
    bracket-depth walk that ends a fragment after a top-level [;] or
    [}], plus a conservative token-set classification of each fragment
    as {e definition-bearing} (it may define macros, run meta code, or
    otherwise mutate shared session state — a sequential {e barrier}) or
    {e pure invocation} (safe to expand speculatively).

    Accuracy is a performance concern, not a correctness one.  The
    engine parses the whole file once and assigns parsed declarations to
    fragments by byte offset, so a boundary placed mid-declaration
    merely groups declarations unevenly (possibly leaving a fragment
    empty), and the speculation-commit protocol re-validates every
    classification at run time: a "pure" fragment that turns out to
    touch shared state is rolled back and re-expanded sequentially.
    The classifier only needs to be conservative enough to keep such
    rollbacks rare. *)

open Ms2_syntax

type fragment = {
  fg_offset : int;  (** byte offset of the fragment's first token *)
  fg_tokens : int;  (** number of tokens in the fragment *)
  fg_barrier : bool;
      (** definition-bearing: must expand sequentially, and fragments
          after it must observe its effects *)
}

(* Any token that can only appear in (or introduce) meta syntax marks
   the fragment as a barrier: [syntax] and [metadcl] definitions,
   [typedef] (writes the object-level typedef table other fragments
   parse and bind against), templates and placeholders (backquote,
   meta-braces, [$], [$$], [::]), and [@] (meta types / top-level meta
   functions).
   Plain C and macro *invocations* use none of these. *)
let barrier_token (tok : Token.t) : bool =
  match tok with
  | Token.KW (Token.Ksyntax | Token.Kmetadcl | Token.Ktypedef) -> true
  | Token.AT | Token.BACKQUOTE | Token.LMETA | Token.RMETA
  | Token.DOLLAR | Token.DOLLARDOLLAR | Token.COLONCOLON -> true
  | _ -> false

(* After a top-level [}], these continue the same declaration
   ([struct S { ... } x;], [typedef struct { ... } T;]) rather than
   starting a new one.  Missing a case only mis-places a boundary,
   which the offset-based declaration assignment absorbs. *)
let continues_declaration (tok : Token.t) : bool =
  match tok with
  | Token.IDENT _ | Token.SEMI | Token.COMMA | Token.STAR
  | Token.ASSIGN | Token.LBRACKET -> true
  | _ -> false

let split (toks : Token.located array) : fragment list =
  let n = Array.length toks in
  let frags = ref [] in
  let fg_start = ref 0 in
  let barrier = ref false in
  let close stop =
    if stop > !fg_start then begin
      let first = toks.(!fg_start) in
      frags :=
        {
          fg_offset =
            first.Token.loc.Ms2_support.Loc.start_pos.Ms2_support.Loc.offset;
          fg_tokens = stop - !fg_start;
          fg_barrier = !barrier;
        }
        :: !frags
    end;
    fg_start := stop;
    barrier := false
  in
  let depth = ref 0 in
  let i = ref 0 in
  (try
     while !i < n do
       let tok = toks.(!i).Token.tok in
       if barrier_token tok then barrier := true;
       (match tok with
       | Token.EOF ->
           close !i;
           raise Exit
       | Token.LPAREN | Token.LBRACE | Token.LBRACKET | Token.LMETA ->
           incr depth
       | Token.RPAREN | Token.RBRACKET | Token.RMETA ->
           if !depth > 0 then decr depth
       | Token.RBRACE ->
           if !depth > 0 then decr depth;
           if
             !depth = 0
             && not
                  (!i + 1 < n
                  && continues_declaration toks.(!i + 1).Token.tok)
           then close (!i + 1)
       | Token.SEMI -> if !depth = 0 then close (!i + 1)
       | _ -> ());
       incr i
     done;
     close n
   with Exit -> ());
  List.rev !frags
