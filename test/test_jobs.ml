(** CLI goldens for the parallel driver: [--jobs] exit codes (0 clean,
    3 degraded, 1 fatal, 124 usage), deterministic input-order
    diagnostics and output, and the [--no-cache] ablation. *)

let ms2c =
  if Sys.file_exists "../bin/ms2c.exe" then "../bin/ms2c.exe"
  else "_build/default/bin/ms2c.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Run [ms2c args], returning (exit code, stdout, stderr). *)
let run_cli args =
  let out = Filename.temp_file "ms2c_jobs" ".out" in
  let err = Filename.temp_file "ms2c_jobs" ".err" in
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2> %s" ms2c args out err)
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let write_fixture name text =
  let path = Filename.temp_file ("ms2c_jobs_" ^ name) ".mc" in
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc;
  path

(* Self-contained files (each defines the macro it uses), so their
   expansions are identical whether files share a session ([--jobs 1])
   or are independent compilation units ([--jobs N]). *)
let good_file i =
  write_fixture
    (Printf.sprintf "good%d" i)
    (Printf.sprintf
       "syntax exp TWICE%d {| ( $$exp::e ) |} { return `($e + $e); }\n\
        int f%d(int x) { return TWICE%d(x * 3); }\n"
       i i i)

let bad_file i =
  write_fixture (Printf.sprintf "bad%d" i) (Printf.sprintf "int b%d( { ;\n" i)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let index_of ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.sub s i n = sub then Some i
    else go (i + 1)
  in
  go 0

let with_files files k =
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> try Sys.remove f with _ -> ()) files)
    (fun () -> k files)

(* ------------------------------------------------------------------ *)
(* Clean runs                                                          *)
(* ------------------------------------------------------------------ *)

let clean_parallel_matches_sequential () =
  with_files [ good_file 1; good_file 2; good_file 3; good_file 4 ]
    (fun files ->
      let args = String.concat " " files in
      let c1, seq, e1 = run_cli (Printf.sprintf "expand --jobs 1 %s" args) in
      let c4, par, e4 = run_cli (Printf.sprintf "expand --jobs 4 %s" args) in
      Alcotest.(check int) "sequential exit 0" 0 c1;
      Alcotest.(check int) "parallel exit 0" 0 c4;
      Alcotest.(check string) "no sequential stderr" "" e1;
      Alcotest.(check string) "no parallel stderr" "" e4;
      Alcotest.(check string)
        "self-contained files expand identically in parallel" seq par;
      (* input order is preserved regardless of completion order *)
      let pos i = index_of ~sub:(Printf.sprintf "int f%d" i) par in
      List.iter
        (fun (a, b) ->
          match (pos a, pos b) with
          | Some pa, Some pb ->
              Alcotest.(check bool)
                (Printf.sprintf "f%d before f%d" a b)
                true (pa < pb)
          | _ -> Alcotest.fail "expected function missing from output")
        [ (1, 2); (2, 3); (3, 4) ])

let jobs_one_is_default_path () =
  with_files [ good_file 1; good_file 2 ] (fun files ->
      let args = String.concat " " files in
      let _, dflt, _ = run_cli (Printf.sprintf "expand %s" args) in
      let _, j1, _ = run_cli (Printf.sprintf "expand --jobs 1 %s" args) in
      Alcotest.(check string) "--jobs 1 is the sequential pipeline" dflt j1)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let fatal_exit_1_no_output () =
  with_files [ good_file 1; bad_file 2; good_file 3; good_file 4 ]
    (fun files ->
      let args = String.concat " " files in
      let code, out, err = run_cli (Printf.sprintf "expand --jobs 4 %s" args) in
      Alcotest.(check int) "fatal exits 1" 1 code;
      Alcotest.(check string) "no output on fatal" "" out;
      Alcotest.(check bool) "diagnostic names the bad file" true
        (contains ~sub:"syntax error" err))

let keep_going_exit_3_salvages () =
  with_files [ good_file 1; bad_file 2; good_file 3; good_file 4 ]
    (fun files ->
      let args = String.concat " " files in
      let code, out, err =
        run_cli (Printf.sprintf "expand --jobs 4 --keep-going %s" args)
      in
      Alcotest.(check int) "degraded exits 3" 3 code;
      Alcotest.(check bool) "diagnostic reported" true
        (contains ~sub:"syntax error" err);
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "f%d survives" i)
            true
            (contains ~sub:(Printf.sprintf "int f%d" i) out))
        [ 1; 3; 4 ];
      Alcotest.(check bool) "failed file contributes nothing" false
        (contains ~sub:"int b2" out))

let diagnostics_in_input_order () =
  with_files [ bad_file 1; good_file 2; bad_file 3; bad_file 4 ]
    (fun files ->
      let args = String.concat " " files in
      let code, _, err =
        run_cli (Printf.sprintf "expand --jobs 4 --keep-going %s" args)
      in
      Alcotest.(check int) "degraded exits 3" 3 code;
      let pos i = index_of ~sub:(Printf.sprintf "int b%d" i) err in
      List.iter
        (fun (a, b) ->
          match (pos a, pos b) with
          | Some pa, Some pb ->
              Alcotest.(check bool)
                (Printf.sprintf "b%d's diagnostic precedes b%d's" a b)
                true (pa < pb)
          | _ -> Alcotest.fail "expected diagnostic missing from stderr")
        [ (1, 3); (3, 4) ])

let jobs_zero_resolves_auto () =
  with_files [ good_file 1; good_file 2 ] (fun files ->
      let args = String.concat " " files in
      let c1, seq, _ = run_cli (Printf.sprintf "expand --jobs 1 %s" args) in
      let c0, auto0, _ = run_cli (Printf.sprintf "expand --jobs 0 %s" args) in
      let ca, autoa, _ =
        run_cli (Printf.sprintf "expand --jobs auto %s" args)
      in
      Alcotest.(check int) "--jobs 1 exits 0" 0 c1;
      Alcotest.(check int) "--jobs 0 resolves and exits 0" 0 c0;
      Alcotest.(check int) "--jobs auto resolves and exits 0" 0 ca;
      Alcotest.(check string) "--jobs 0 output matches --jobs 1" seq auto0;
      Alcotest.(check string) "--jobs auto output matches --jobs 1" seq autoa)

let jobs_negative_usage_error () =
  with_files [ good_file 1 ] (fun files ->
      let code, _, _ =
        run_cli (Printf.sprintf "expand --jobs -1 %s" (List.hd files))
      in
      Alcotest.(check int) "--jobs -1 is a usage error" 124 code;
      let code', _, _ =
        run_cli
          (Printf.sprintf "expand --jobs-mode=threads %s" (List.hd files))
      in
      Alcotest.(check int) "unknown --jobs-mode is a usage error" 124 code')

let fork_mode_matches_domains () =
  with_files [ good_file 1; good_file 2; good_file 3 ] (fun files ->
      let args = String.concat " " files in
      let cd, dom, ed =
        run_cli (Printf.sprintf "expand --jobs 3 --jobs-mode=domains %s" args)
      in
      let cf, frk, ef =
        run_cli (Printf.sprintf "expand --jobs 3 --jobs-mode=fork %s" args)
      in
      Alcotest.(check int) "domains exit 0" 0 cd;
      Alcotest.(check int) "fork exit 0" 0 cf;
      Alcotest.(check string) "fork output = domains output" dom frk;
      Alcotest.(check string) "fork stderr = domains stderr" ed ef)

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)
(* ------------------------------------------------------------------ *)

let no_cache_byte_identical () =
  with_files [ good_file 1; good_file 2 ] (fun files ->
      let args = String.concat " " files in
      let c1, cached, _ = run_cli (Printf.sprintf "expand %s %s" args args) in
      let c2, uncached, _ =
        run_cli (Printf.sprintf "expand --no-cache %s %s" args args)
      in
      Alcotest.(check int) "cached exit" 0 c1;
      Alcotest.(check int) "uncached exit" 0 c2;
      Alcotest.(check string) "--no-cache is byte-identical" cached uncached)

let stats_report_cache_counters () =
  with_files [ good_file 1 ] (fun files ->
      let f = List.hd files in
      (* the same file twice through the shared session: the second
         fragment replays from the cache *)
      let code, _, err =
        run_cli (Printf.sprintf "expand --stats %s %s %s" f f f)
      in
      Alcotest.(check int) "clean exit" 0 code;
      Alcotest.(check bool) "stats mention cache hits" true
        (contains ~sub:"cache hits:" err);
      Alcotest.(check bool) "no hits under --no-cache" true
        (let _, _, err' =
           run_cli (Printf.sprintf "expand --stats --no-cache %s %s" f f)
         in
         contains ~sub:"cache hits: 0" err'))

let () =
  Alcotest.run "jobs"
    [
      ( "parallel driver",
        [
          Alcotest.test_case "clean run, input order" `Quick
            clean_parallel_matches_sequential;
          Alcotest.test_case "--jobs 1 is sequential" `Quick
            jobs_one_is_default_path;
          Alcotest.test_case "fatal exits 1, no output" `Quick
            fatal_exit_1_no_output;
          Alcotest.test_case "--keep-going exits 3" `Quick
            keep_going_exit_3_salvages;
          Alcotest.test_case "diagnostics in input order" `Quick
            diagnostics_in_input_order;
          Alcotest.test_case "--jobs 0/auto resolves" `Quick
            jobs_zero_resolves_auto;
          Alcotest.test_case "--jobs -1 usage error" `Quick
            jobs_negative_usage_error;
          Alcotest.test_case "--jobs-mode=fork parity" `Quick
            fork_mode_matches_domains;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "--no-cache byte-identical" `Quick
            no_cache_byte_identical;
          Alcotest.test_case "cache counters in --stats" `Quick
            stats_report_cache_counters;
        ] );
    ]
